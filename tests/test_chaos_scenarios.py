"""Live chaos scenarios: real fleets, real faults, asserted invariants.

Each test boots a ``FleetThread``, lets the seeded controller fire its
scripted faults, and requires the full invariant suite to come back
green — these are the same runs CI's chaos-smoke job executes via
``repro chaos run --check``.  Kept to a handful of scenarios because
each one costs a few seconds of wall clock; the deterministic planning
and invariant logic is covered exhaustively (and fast) in
``test_chaos_engine.py``.
"""

import json

import pytest

from repro.chaos import run_scenario

pytestmark = pytest.mark.slow


def _assert_green(result):
    bad = [inv.to_dict() for inv in result.invariants if not inv.ok]
    assert result.ok, f"invariants failed: {bad}\n{result.observations}"


class TestScenarios:
    def test_slow_shard_stays_correct(self):
        result = run_scenario("slow-shard", seed=7)
        _assert_green(result)
        assert result.observations["outcomes"]["ok"] == len(
            result.plan.requests
        )

    def test_kill_mid_request_fails_over(self):
        result = run_scenario("kill-mid-request", seed=7)
        _assert_green(result)
        # The kill fired and the orphaned identity was answered anyway —
        # by the ring successor, not by a lucky retry to a restarted home.
        assert result.observations["faults_fired"]
        assert result.observations["failover_served"] >= 1

    def test_corrupt_cache_under_load_heals(self):
        result = run_scenario("corrupt-cache-under-load", seed=7)
        _assert_green(result)
        by_name = {inv.name: inv for inv in result.invariants}
        assert by_name["cache_healed"].ok
        assert by_name["cache_consistent"].ok

    def test_429_storm_sheds_loudly_never_fails(self):
        result = run_scenario("429-storm", seed=7)
        _assert_green(result)
        tally = result.observations["outcomes"]
        assert tally["failed"] == 0
        assert tally["shed"] >= 1  # the storm actually shed something

    def test_same_seed_same_report(self):
        first = run_scenario("kill-during-roll", seed=11)
        second = run_scenario("kill-during-roll", seed=11)
        _assert_green(first)
        _assert_green(second)
        assert json.dumps(first.report, sort_keys=True) == json.dumps(
            second.report, sort_keys=True
        )
