"""Tests for the executor, timing model and Machine facade."""

import pytest

from repro.arch import arm_cortex_a15, intel_i7_5930k
from repro.cachesim import CacheHierarchy
from repro.ir import Schedule, lower
from repro.sim import Machine, run_nests
from repro.sim.timing import TimingModel, time_nest, total_time_ms

from tests.helpers import make_copy, make_matmul, make_transpose_mask


def simulate(func, schedule=None, arch=None, budget=10**9, prefetch=True):
    arch = arch or intel_i7_5930k()
    hierarchy = CacheHierarchy(arch, enable_prefetch=prefetch)
    nests = lower(func, schedule)
    return run_nests(nests, hierarchy, line_budget=budget)


class TestExecutor:
    def test_counters_per_nest(self):
        c, _, _ = make_matmul(16)
        sim = simulate(c)
        assert len(sim.counters) == 2
        assert sim.counters[0].nest.name == "C"
        assert sim.counters[1].nest.name == "C.update0"

    def test_demand_accesses_positive(self):
        c, _, _ = make_matmul(16)
        sim = simulate(c)
        assert sim.counters[1].demand_accesses > 0

    def test_hits_plus_misses_consistent(self):
        c, _, _ = make_matmul(16)
        sim = simulate(c)
        total_hits = sum(
            c.l1_hits + c.l2_hits + c.l3_hits + c.mem_lines
            for c in sim.counters
        )
        assert total_hits == sim.hierarchy.stats.total_accesses

    def test_nest_named_lookup(self):
        c, _, _ = make_matmul(8)
        sim = simulate(c)
        assert sim.nest_named("C.update0").nest.definition_index == 1
        with pytest.raises(KeyError):
            sim.nest_named("nope")

    def test_nt_store_counters(self):
        f, _ = make_copy(32)
        s = Schedule(f)
        s.store_nontemporal()
        sim = simulate(f, s)
        counters = sim.counters[0]
        lines_per_array = 32 * 32 * 4 // 64
        assert counters.nt_lines == lines_per_array
        assert counters.writeback_lines == 0

    def test_normal_store_writebacks(self):
        f, _ = make_copy(32)
        sim = simulate(f)
        counters = sim.counters[0]
        lines_per_array = 32 * 32 * 4 // 64
        assert counters.writeback_lines == lines_per_array

    def test_scaling_on_truncation(self):
        c, _, _ = make_matmul(64)
        sim = simulate(c, budget=500)
        assert sim.counters[1].scale > 1.0
        assert sim.counters[1].scaled("mem_lines") >= sim.counters[1].mem_lines

    def test_total_scaled(self):
        c, _, _ = make_matmul(16)
        sim = simulate(c)
        assert sim.total_scaled("mem_lines") >= sim.counters[1].mem_lines


class TestTimingModel:
    def test_components_positive(self, arch):
        c, _, _ = make_matmul(16)
        sim = simulate(c, arch=arch)
        t = time_nest(sim.counters[1], arch)
        assert t.issue_cycles > 0
        assert t.loop_cycles > 0
        assert t.total_cycles >= t.dram_cycles
        assert t.total_cycles >= t.core_cycles

    def test_parallel_reduces_core_time(self, arch):
        c1, _, _ = make_matmul(64)
        serial = simulate(c1, arch=arch)
        c2, _, _ = make_matmul(64)
        s = Schedule(c2)
        s.parallel("i")
        parallel = simulate(c2, s, arch=arch)
        t_serial = time_nest(serial.counters[1], arch)
        t_parallel = time_nest(parallel.counters[1], arch)
        assert t_parallel.threads_used > 1
        assert t_parallel.core_cycles < t_serial.core_cycles

    def test_vectorize_reduces_issue(self, arch):
        c1, _, _ = make_matmul(64)
        plain = simulate(c1, arch=arch)
        c2, _, _ = make_matmul(64)
        s = Schedule(c2)
        s.reorder("j", "k", "i")
        s.vectorize("j", 8)
        vec = simulate(c2, s, arch=arch)
        assert (
            time_nest(vec.counters[1], arch).issue_cycles
            < time_nest(plain.counters[1], arch).issue_cycles
        )

    def test_total_time_sums_nests(self, arch):
        c, _, _ = make_matmul(16)
        sim = simulate(c, arch=arch)
        model = TimingModel()
        total = total_time_ms(sim.counters, arch, model)
        parts = sum(
            time_nest(x, arch, model).total_cycles for x in sim.counters
        )
        assert total == pytest.approx(parts / (arch.freq_ghz * 1e6))

    def test_threads_capped_by_trip_count(self, arch):
        c, _, _ = make_matmul(16)
        s = Schedule(c)
        s.split("i", "io", "ii", 8)  # io has 2 trips < 6 cores
        s.parallel("io")
        sim = simulate(c, s, arch=arch)
        t = time_nest(sim.counters[1], arch)
        assert t.threads_used <= 2

    def test_breakdown_keys(self, arch):
        c, _, _ = make_matmul(16)
        sim = simulate(c, arch=arch)
        keys = set(time_nest(sim.counters[1], arch).breakdown())
        assert {"issue", "loop", "latency", "dram", "core", "total"} <= keys


class TestMachine:
    def test_time_funcs_positive(self, arch):
        machine = Machine(arch, line_budget=20000)
        c, _, _ = make_matmul(32)
        assert machine.time_funcs([(c, None)]) > 0

    def test_report_breakdown(self, arch):
        machine = Machine(arch, line_budget=20000)
        c, _, _ = make_matmul(32)
        report = machine.run_funcs([(c, None)])
        assert "total" in report.breakdown()
        assert len(report.nest_times) == 2

    def test_deterministic(self, arch):
        machine = Machine(arch, line_budget=20000)
        c1, _, _ = make_matmul(32)
        c2, _, _ = make_matmul(32)
        assert machine.time_funcs([(c1, None)]) == pytest.approx(
            machine.time_funcs([(c2, None)])
        )

    def test_prefetch_off_is_slower_for_streams(self, arch):
        f1, _ = make_copy(128)
        with_pf = Machine(arch, line_budget=50000)
        without_pf = Machine(arch, line_budget=50000, enable_prefetch=False)
        t_on = with_pf.time_funcs([(f1, None)])
        f2, _ = make_copy(128)
        t_off = without_pf.time_funcs([(f2, None)])
        assert t_off > t_on

    def test_nti_reduces_time_on_streaming_store(self, arch):
        machine = Machine(arch, line_budget=50000)
        f1, _ = make_copy(256)
        s1 = Schedule(f1)
        s1.vectorize("x", 8).parallel("y")
        plain = machine.time_funcs([(f1, s1)])
        f2, _ = make_copy(256)
        s2 = Schedule(f2)
        s2.vectorize("x", 8).parallel("y")
        s2.store_nontemporal()
        nti = machine.time_funcs([(f2, s2)])
        assert nti < plain

    def test_arm_machine_runs(self, arch_arm):
        machine = Machine(arch_arm, line_budget=20000)
        c, _, _ = make_matmul(32)
        assert machine.time_funcs([(c, None)]) > 0

    def test_pipeline_time_is_sum_of_stage_runs(self, arch):
        from repro.ir import Pipeline

        machine = Machine(arch, line_budget=20000)
        c1, _, _ = make_matmul(16)
        c2, _, _ = make_matmul(16)
        both = machine.time_pipeline(Pipeline([c1, c2]))
        assert both > machine.time_funcs([(c1, None)]) * 0.9

    def test_shared_l2_divisor_on_arm(self, arch_arm):
        machine = Machine(arch_arm)
        hierarchy = machine._build_hierarchy(parallel=True)
        assert hierarchy.levels[1].ways < arch_arm.l2.ways
