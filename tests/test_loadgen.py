"""The load-generation harness: plan determinism, percentiles, the gate.

The pure pieces (arrival plan, histogram percentiles, the regression
check) are unit-tested exhaustively; one integration test drives a real
in-thread server with a small open-loop run and asserts the gated
quantities come out clean.
"""

import copy

import pytest

from repro.loadgen import (
    BENCH_SERVE_FORMAT,
    _build_plan,
    check_serve_regression,
    percentiles_from_histogram,
    run_loadgen,
)
from repro.serve import ServerThread


class TestPlan:
    def test_same_seed_same_plan(self):
        assert _build_plan(50, 4.0, 0.5, 7) == _build_plan(50, 4.0, 0.5, 7)

    def test_distinct_seeds_differ(self):
        assert _build_plan(50, 4.0, 0.5, 1) != _build_plan(50, 4.0, 0.5, 2)

    def test_arrivals_increase(self):
        plan = _build_plan(100, 10.0, 0.5, 0)
        times = [at for at, _, _ in plan]
        assert times == sorted(times)
        assert times[0] > 0

    def test_hot_fraction_extremes(self):
        all_hot = _build_plan(30, 10.0, 1.0, 0)
        assert {bench for _, bench, _ in all_hot} == {"matmul"}
        all_cold = _build_plan(30, 10.0, 0.0, 0)
        # The cold pool rotates: several distinct identities appear.
        assert len({(b, tuple(sorted(o.items()))) for _, b, o in all_cold}) > 3


class TestPercentiles:
    def test_simple_distribution(self):
        snapshot = {
            "bounds_ms": [1.0, 10.0, 100.0],
            "counts": [50, 40, 9, 1],  # 100 observations, 1 overflow
            "max_ms": 250.0,
        }
        p = percentiles_from_histogram(snapshot, (0.5, 0.9, 0.99, 1.0))
        assert p["p50_ms"] == 1.0
        assert p["p90_ms"] == 10.0
        assert p["p99_ms"] == 100.0
        assert p["p100_ms"] == 250.0  # overflow bucket reports the max

    def test_empty_histogram(self):
        snapshot = {"bounds_ms": [1.0], "counts": [0, 0], "max_ms": 0.0}
        assert percentiles_from_histogram(snapshot)["p50_ms"] == 0.0


def _payload(**overrides):
    payload = {
        "format": BENCH_SERVE_FORMAT,
        "seed": 0,
        "requests": 20,
        "hot_fraction": 0.5,
        "errors": 0,
        "error_samples": [],
        "responses_identical": True,
        "duplicates": {"total": 10, "warm": 10, "warm_duplicate_fraction": 1.0},
    }
    payload.update(overrides)
    return payload


class TestGate:
    def test_identical_payloads_pass(self):
        assert check_serve_regression(_payload(), _payload()) == []

    def test_errors_fail(self):
        failures = check_serve_regression(
            _payload(errors=2, error_samples=["request 3: boom"]), _payload()
        )
        assert any("2 request(s) failed" in f for f in failures)

    def test_nonidentical_responses_fail(self):
        failures = check_serve_regression(
            _payload(responses_identical=False), _payload()
        )
        assert any("determinism" in f for f in failures)

    def test_warm_fraction_regression_fails_one_sided(self):
        cold = copy.deepcopy(_payload())
        cold["duplicates"]["warm_duplicate_fraction"] = 0.5
        failures = check_serve_regression(cold, _payload())
        assert any("warm_duplicate_fraction regressed" in f for f in failures)
        # The other direction (better than baseline) passes.
        better = copy.deepcopy(_payload())
        baseline = copy.deepcopy(_payload())
        baseline["duplicates"]["warm_duplicate_fraction"] = 0.5
        assert check_serve_regression(better, baseline) == []

    def test_workload_mismatch_fails(self):
        failures = check_serve_regression(_payload(seed=1), _payload())
        assert any("workload mismatch" in f for f in failures)

    def test_format_mismatch_fails(self):
        failures = check_serve_regression(
            _payload(format="other"), _payload()
        )
        assert any("format mismatch" in f for f in failures)


class TestRunLoadgen:
    def test_validation(self):
        with pytest.raises(ValueError, match="requests"):
            run_loadgen(port=1, requests=0)
        with pytest.raises(ValueError, match="rate_rps"):
            run_loadgen(port=1, rate_rps=0)
        with pytest.raises(ValueError, match="hot_fraction"):
            run_loadgen(port=1, hot_fraction=1.5)

    @pytest.mark.slow
    def test_small_open_loop_run_is_clean(self, tmp_path):
        with ServerThread(
            cache_path=str(tmp_path / "cache.jsonl"), queue_limit=16
        ) as srv:
            payload = run_loadgen(
                port=srv.port,
                requests=6,
                rate_rps=8.0,
                hot_fraction=0.5,
                seed=1,
            )
        assert payload["format"] == BENCH_SERVE_FORMAT
        assert payload["errors"] == 0
        assert payload["responses_identical"] is True
        assert payload["latency_ms"]["count"] == 6
        assert payload["duplicates"]["warm_duplicate_fraction"] == 1.0
        assert sum(payload["served_by"].values()) == 6
        # A clean run gates against itself.
        assert check_serve_regression(payload, payload) == []
