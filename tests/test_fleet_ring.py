"""Unit tests for the fleet's consistent-hash ring and shard cache paths.

All pure-function determinism — no sockets, no subprocesses.  The
properties asserted here are the ones the router's correctness leans on:
same placement on every construction, one deterministic failover
sibling, bounded remap under resize, and reasonable balance.
"""

import pytest

from repro.cache import shard_cache_path
from repro.fleet import FleetMetrics, HashRing, validate_fleet_metrics


def keys(n):
    return [f"key-{i:04d}" for i in range(n)]


class TestHashRing:
    def test_route_is_deterministic_across_instances(self):
        a, b = HashRing([0, 1, 2]), HashRing([0, 1, 2])
        for key in keys(200):
            assert a.route(key) == b.route(key)

    def test_shard_order_does_not_matter(self):
        a, b = HashRing([2, 0, 1]), HashRing([0, 1, 2])
        for key in keys(100):
            assert a.route(key) == b.route(key)

    def test_successors_are_distinct_and_complete(self):
        ring = HashRing([0, 1, 2, 3])
        for key in keys(50):
            order = ring.successors(key)
            assert sorted(order) == [0, 1, 2, 3]
            assert order[0] == ring.route(key)

    def test_successors_limit_truncates(self):
        ring = HashRing([0, 1, 2, 3])
        assert len(ring.successors("k", limit=2)) == 2
        assert ring.successors("k", limit=99) == ring.successors("k")

    def test_sibling_is_deterministic_and_distinct(self):
        ring = HashRing([0, 1, 2])
        for key in keys(100):
            sibling = ring.sibling(key)
            assert sibling == ring.sibling(key)
            assert sibling != ring.route(key)

    def test_single_shard_sibling_is_itself(self):
        ring = HashRing([0])
        assert ring.route("k") == 0
        assert ring.sibling("k") == 0

    def test_balance_is_reasonable(self):
        # 64 vnodes/shard will not be perfect, but no shard should own
        # less than half or more than double its fair share.
        ring = HashRing([0, 1, 2, 3])
        share = ring.keyspace_share(keys(2000))
        assert sum(share.values()) == 2000
        for shard, owned in share.items():
            assert 250 <= owned <= 1000, (shard, owned)

    def test_resize_remaps_boundedly(self):
        # Going 3 -> 4 shards should move roughly 1/4 of the keyspace,
        # not reshuffle everything (the property modulo hashing lacks).
        small, large = HashRing([0, 1, 2]), HashRing([0, 1, 2, 3])
        sample = keys(1000)
        moved = sum(
            1 for key in sample if small.route(key) != large.route(key)
        )
        assert 0 < moved < 500

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            HashRing([])
        with pytest.raises(ValueError, match="duplicate"):
            HashRing([0, 0, 1])
        with pytest.raises(ValueError, match="replicas"):
            HashRing([0, 1], replicas=0)


class TestShardCachePath:
    def test_suffix_is_inserted_before_extension(self):
        assert shard_cache_path("cache.jsonl", 2) == "cache-shard2.jsonl"
        assert (
            shard_cache_path("/x/y/cache.jsonl", 0) == "/x/y/cache-shard0.jsonl"
        )

    def test_extensionless_path_gains_jsonl(self):
        assert shard_cache_path("cache", 1) == "cache-shard1.jsonl"

    def test_negative_shard_rejected(self):
        with pytest.raises(ValueError, match="shard"):
            shard_cache_path("cache.jsonl", -1)

    def test_shards_never_collide(self):
        paths = {shard_cache_path("cache.jsonl", s) for s in range(8)}
        assert len(paths) == 8


class TestFleetMetrics:
    def test_snapshot_passes_its_own_validator(self):
        metrics = FleetMetrics()
        metrics.bump("requests_total")
        metrics.bump("failover", 2)
        metrics.observe_latency(12.5)
        snapshot = metrics.snapshot(
            workers=[
                {"shard": 0, "port": 1234, "state": "up", "restarts": 0},
                {"shard": 1, "port": 1235, "state": "down", "restarts": 3},
            ]
        )
        assert validate_fleet_metrics(snapshot) == []
        assert snapshot["counters"]["failover"] == 2
        assert snapshot["latency_ms"]["count"] == 1

    def test_unknown_counter_is_loud(self):
        with pytest.raises(KeyError, match="unknown fleet counter"):
            FleetMetrics().bump("nope")

    def test_validator_catches_problems(self):
        snapshot = FleetMetrics().snapshot(workers=[])
        snapshot["counters"]["failover"] = -1
        snapshot["workers"] = [{"shard": "zero"}]
        problems = validate_fleet_metrics(snapshot)
        assert any("failover" in p for p in problems)
        assert any("workers[0]" in p for p in problems)
        assert validate_fleet_metrics("nope") != []
        assert validate_fleet_metrics({"format": "wrong"}) != []
