"""Tests for Algorithm 1 — the cache-emulation tile bound (repro.core.emu)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import arm_cortex_a15, intel_i7_5930k
from repro.core.emu import EmuParams, emu, emu_l1, emu_l2


class TestBasicProperties:
    def test_returns_at_least_one_row(self, arch):
        assert emu_l1(
            arch, row_width_elems=10**6, row_stride_elems=2048,
            max_rows=64, dts=4,
        ) >= 1

    def test_capped_by_max_rows(self, arch):
        out = emu_l1(
            arch, row_width_elems=16, row_stride_elems=33, max_rows=3, dts=4
        )
        assert out <= 3

    def test_small_problem_fits_entirely(self, arch):
        # 4 rows of one line each, odd stride: trivially conflict-free.
        out = emu_l1(
            arch, row_width_elems=16, row_stride_elems=1040, max_rows=4, dts=4
        )
        assert out == 4

    def test_l2_bound_not_smaller_geometry(self, arch):
        # L2 is bigger, so for the same modest row the bound should not
        # collapse below L1's for friendly strides.
        l1 = emu_l1(
            arch, row_width_elems=64, row_stride_elems=1040, max_rows=512, dts=4
        )
        l2 = emu_l2(
            arch, row_width_elems=64, row_stride_elems=1040, max_rows=512, dts=4
        )
        assert l2 >= l1

    def test_power_of_two_stride_bounded_by_way_wrap(self, arch):
        # 2048 f32 = 8KB row stride: row start positions wrap within the
        # emulated way every 8 rows in L1, so the bound is
        # positions * effective ways = 8 * 4 = 32 (the paper's Ti=32).
        aliased = emu_l1(
            arch, row_width_elems=512, row_stride_elems=2048,
            max_rows=512, dts=4,
        )
        assert aliased == 32
        # An odd (padded) stride wraps later and allows more rows.
        padded = emu_l1(
            arch, row_width_elems=64, row_stride_elems=2048 + 16,
            max_rows=512, dts=4,
        )
        assert padded > aliased

    def test_wider_rows_never_increase_bound(self, arch):
        narrow = emu_l1(
            arch, row_width_elems=32, row_stride_elems=1040,
            max_rows=512, dts=4,
        )
        wide = emu_l1(
            arch, row_width_elems=512, row_stride_elems=1040,
            max_rows=512, dts=4,
        )
        assert wide <= narrow


class TestVariants:
    def test_l1_pads_prefetched_line(self, arch):
        # The L1 variant charges one extra prefetched line per row, so a
        # one-element row still occupies two lines; the emulated capacity
        # (paper's Nsets * effective ways, line-indexed) caps the rows.
        one_elem = emu_l1(
            arch, row_width_elems=1, row_stride_elems=1040,
            max_rows=10**6, dts=4,
        )
        emulated_sets = arch.l1.size // (arch.l1.ways * 4)
        assert one_elem <= emulated_sets * arch.effective_ways(1)
        assert one_elem >= 1

    def test_l2_halves_sets(self, arch):
        # Verify through capacity: an odd-stride one-line row fills at
        # most (sets/2) * effective_ways rows.
        bound = emu_l2(
            arch, row_width_elems=16, row_stride_elems=16 * 1040,
            max_rows=10**6, dts=4,
        )
        assert bound <= (arch.l2.num_sets // 2) * arch.effective_ways(2) + 1

    def test_arm_shared_l2_tighter(self):
        arm = arm_cortex_a15()
        # ARM divides L2 ways by NCores (4): 16 -> 4.
        bound = emu_l2(
            arm, row_width_elems=16, row_stride_elems=1040,
            max_rows=10**6, dts=4,
        )
        relaxed = emu_l2(
            arm.with_overrides(l2_shared_across_cores=False),
            row_width_elems=16, row_stride_elems=1040,
            max_rows=10**6, dts=4,
        )
        assert bound <= relaxed


class TestValidation:
    def test_rejects_bad_level(self, arch):
        with pytest.raises(ValueError):
            emu(arch, EmuParams(level=3, row_width_elems=1,
                                row_stride_elems=1, max_rows=1, dts=4))

    def test_rejects_bad_width(self, arch):
        with pytest.raises(ValueError):
            emu_l1(arch, row_width_elems=0, row_stride_elems=1,
                   max_rows=1, dts=4)

    def test_rejects_bad_rows(self, arch):
        with pytest.raises(ValueError):
            emu_l1(arch, row_width_elems=1, row_stride_elems=1,
                   max_rows=0, dts=4)


class TestPropertyBased:
    @given(
        width=st.integers(1, 2048),
        stride=st.integers(1, 4096),
        level=st.sampled_from([1, 2]),
    )
    @settings(max_examples=60, deadline=None)
    def test_bound_in_range_and_deterministic(self, width, stride, level):
        arch = intel_i7_5930k()
        params = EmuParams(
            level=level, row_width_elems=width, row_stride_elems=stride,
            max_rows=256, dts=4,
        )
        out1 = emu(arch, params)
        out2 = emu(arch, params)
        assert out1 == out2
        assert 1 <= out1 <= 256

    @given(stride=st.integers(17, 4096))
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_effective_ways(self, stride):
        # More associativity (no SMT halving) never reduces the bound.
        arch = intel_i7_5930k()
        single_thread = arch.with_overrides(threads_per_core=1)
        smt = emu_l1(arch, row_width_elems=64, row_stride_elems=stride,
                     max_rows=256, dts=4)
        full = emu_l1(single_thread, row_width_elems=64,
                      row_stride_elems=stride, max_rows=256, dts=4)
        assert full >= smt
