"""CLI robustness: exit-code protocol, friendly errors, degradation flags.

Exit codes under test (see ``repro.__main__``): 0 = ok, 2 = argparse
usage error, 3 = completed but degraded, 4 = hard failure.
"""

import pytest

from repro.__main__ import EXIT_FALLBACK, EXIT_HARD, EXIT_OK, main
from repro.robust import inject, raise_on


class TestExitCodes:
    def test_clean_run_exits_zero(self, capsys):
        assert main(["optimize", "matmul", "--fast"]) == EXIT_OK
        assert "schedule:" in capsys.readouterr().out

    def test_lenient_clean_run_exits_zero(self, capsys):
        assert main(["optimize", "matmul", "--fast", "--lenient"]) == EXIT_OK

    def test_lenient_tiny_deadline_exits_three(self, capsys):
        code = main(
            ["optimize", "matmul", "--lenient", "--deadline-ms", "0.01"]
        )
        assert code == EXIT_FALLBACK
        out = capsys.readouterr().out
        assert "degraded" in out
        assert "DeadlineExceeded" in out

    def test_lenient_fault_exits_three(self, capsys):
        with inject(raise_on("classify")):
            code = main(["optimize", "matmul", "--fast", "--lenient"])
        assert code == EXIT_FALLBACK
        out = capsys.readouterr().out
        assert "auto-scheduler" in out

    def test_strict_fault_exits_four(self, capsys):
        with inject(raise_on("classify")):
            code = main(["optimize", "matmul", "--fast"])
        assert code == EXIT_HARD
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "injected fault" in err

    def test_strict_deadline_exits_four(self, capsys):
        code = main(["optimize", "matmul", "--deadline-ms", "0.01"])
        assert code == EXIT_HARD
        assert "deadline" in capsys.readouterr().err

    def test_strict_failure_prints_no_traceback(self, capsys):
        with inject(raise_on("classify")):
            main(["optimize", "matmul", "--fast"])
        assert "Traceback" not in capsys.readouterr().err


class TestFriendlyErrors:
    def test_unknown_platform_message(self):
        with pytest.raises(SystemExit, match="unknown platform 'z80'"):
            main(["optimize", "matmul", "--fast", "--platform", "z80"])

    def test_unknown_platform_suggests_list(self):
        with pytest.raises(SystemExit, match="python -m repro list"):
            main(["optimize", "matmul", "--fast", "--platform", "z80"])

    def test_unknown_benchmark_message(self):
        with pytest.raises(SystemExit, match="unknown benchmark 'nonsense'"):
            main(["optimize", "nonsense"])

    def test_codegen_unwritable_path(self, tmp_path):
        target = tmp_path / "no" / "such" / "dir" / "k.c"
        with pytest.raises(SystemExit, match="cannot write"):
            main(["codegen", "copy", "--fast", "-o", str(target)])

    def test_negative_deadline_message(self):
        with pytest.raises(SystemExit, match="invalid options: deadline_ms"):
            main(["optimize", "matmul", "--fast", "--deadline-ms", "-5"])

    def test_strict_lenient_mutually_exclusive(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["optimize", "matmul", "--strict", "--lenient"])
        assert excinfo.value.code == 2  # argparse usage error


class TestFlagPlumbing:
    def test_deadline_flag_parsed(self):
        from repro.__main__ import build_parser

        args = build_parser().parse_args(
            ["optimize", "matmul", "--deadline-ms", "250"]
        )
        assert args.deadline_ms == 250.0
        assert not args.lenient

    def test_lenient_compare_still_reports_all_rows(self, capsys):
        with inject(raise_on("classify")):
            code = main(
                ["compare", "copy", "--fast", "--budget", "3000", "--lenient"]
            )
        assert code == EXIT_FALLBACK
        out = capsys.readouterr().out
        assert "proposed" in out and "baseline" in out

    def test_lenient_codegen_still_emits(self, tmp_path, capsys):
        target = tmp_path / "k.c"
        with inject(raise_on("classify")):
            code = main(
                ["codegen", "copy", "--fast", "--lenient", "-o", str(target)]
            )
        assert code == EXIT_FALLBACK
        assert "void copy(" in target.read_text()
