"""The tune planner + runner: grid expansion, crash-safe resume, cache
warming.  The live classes boot real servers (same harness as the serve
tests); the planner tests are pure.
"""

import json

import pytest

from repro.core.exitcodes import EXIT_OK, EXIT_QUARANTINED
from repro.frontend.corpus import corpus_kernel
from repro.options import OptimizeOptions
from repro.sweep import Journal, KIND_TUNE
from repro.sweep.runner import RetryPolicy
from repro.tune import (
    CELL_QUARANTINED,
    CELL_RESUMED,
    TUNE_REPORT_FORMAT,
    TuneRunner,
    build_tune_request,
    plan_tune_cells,
    tune_id,
    validate_tune_report,
)


def tune_request():
    return build_tune_request(
        kernels=["matmul", "mxv"],
        grid=[{}, {"use_nti": False}],
        fast=True,
    )


def canon(document):
    return json.dumps(document, sort_keys=True)


class TestPlanner:
    def test_expansion_is_the_full_cross_product(self):
        cells = plan_tune_cells(tune_request())
        assert len(cells) == 4  # 2 kernels x 1 platform x 2 overlays
        assert all(cell.kind == KIND_TUNE for cell in cells)
        assert all(cell.technique == "proposed" for cell in cells)
        assert all(cell.fast for cell in cells)
        assert {cell.benchmark for cell in cells} == {"matmul", "mxv"}
        assert {cell.options.use_nti for cell in cells} == {True, False}
        # Deterministic order: kernels outermost, overlays innermost.
        assert [cell.benchmark for cell in cells] == [
            "matmul", "matmul", "mxv", "mxv",
        ]

    def test_overlay_equal_to_defaults_dedupes(self):
        # use_nti defaults to True, so {"use_nti": True} IS the defaults
        # overlay — the planner folds the duplicate cell away.
        assert OptimizeOptions().use_nti is True
        request = build_tune_request(
            kernels=["matmul"], grid=[{}, {"use_nti": True}]
        )
        assert len(plan_tune_cells(request)) == 1

    def test_family_selection_expands_in_corpus_order(self):
        request = build_tune_request(families=["micro"])
        cells = plan_tune_cells(request)
        assert cells, "micro family must not be empty"
        assert all(
            corpus_kernel(cell.benchmark).family == "micro" for cell in cells
        )
        assert cells[0].benchmark == "transpose"

    def test_invalid_request_rejected(self):
        with pytest.raises(ValueError, match="exactly one"):
            plan_tune_cells({"format": "repro-tune-v1"})


@pytest.mark.slow
class TestRunnerLive:
    def test_tune_resume_bit_identity_and_cache_warming(
        self, tmp_path, monkeypatch
    ):
        from repro.cache import ScheduleCache
        from repro.serve import ServeClient
        from repro.serve.testing import ServerThread

        monkeypatch.setenv("REPRO_LINE_BUDGET", "2000")
        request = tune_request()
        cells = plan_tune_cells(request)
        job = tune_id(request)
        journal_path = tmp_path / "tune-journal.jsonl"
        with ServerThread(
            cache_path=str(tmp_path / "serve-cache.jsonl")
        ) as srv:
            records = []
            report = TuneRunner(
                Journal(str(journal_path)), port=srv.port, timeout_s=60.0
            ).run(cells, tune_id=job, on_record=records.append)
            document = report.document()
            assert validate_tune_report(document) == []
            assert (document["cells"], document["quarantined"]) == (4, 0)
            assert len(records) == 4
            assert report.exit_code() == EXIT_OK
            assert set(document["winners"]) == {
                "matmul@i7-5930k", "mxv@i7-5930k",
            }

            # The SIGKILL-mid-tune contract: lose all but the first
            # journaled cell (as a kill after cell 1 would), re-run on
            # the same journal — one resumed cell, three live, and a
            # report bit-identical to the uninterrupted run's.
            lines = journal_path.read_bytes().splitlines(keepends=True)
            journal_path.write_bytes(lines[0])
            resumed = TuneRunner(
                Journal(str(journal_path)), port=srv.port, timeout_s=60.0
            ).run(cells, tune_id=job)
            statuses = [o.status for o in resumed.outcomes]
            assert statuses.count(CELL_RESUMED) == 1
            assert canon(resumed.document()) == canon(document)

            # With a complete journal every cell replays offline — port
            # 1 is nobody's listener, so any network round-trip would
            # quarantine the run instead.
            offline = TuneRunner(
                Journal(str(journal_path)), port=1, timeout_s=0.2
            ).run(cells, tune_id=job)
            assert all(o.status == CELL_RESUMED for o in offline.outcomes)
            assert canon(offline.document()) == canon(document)

            # Tuning warmed the serve cache as a side effect: the winner
            # identity served again comes straight from cache.
            kernel = corpus_kernel("matmul")
            winner = document["winners"]["matmul@i7-5930k"]
            client = ServeClient(port=srv.port, timeout_s=60.0)
            result = client.optimize(
                platform="i7-5930k",
                fast=True,
                spec=kernel.spec,
                dims=dict(kernel.fast_dims),
                dtypes=None if kernel.dtypes is None else dict(kernel.dtypes),
                params=None if kernel.params is None else dict(kernel.params),
                **winner["options"],
            )
            assert result["served_by"] == "cache"

        # install_winners warms a brand-new cache file: a fresh server
        # on it answers the tuned identity without searching.
        warm_path = tmp_path / "warm-cache.jsonl"
        assert report.install_winners(ScheduleCache(str(warm_path))) > 0
        with ServerThread(cache_path=str(warm_path)) as warm:
            client = ServeClient(port=warm.port, timeout_s=60.0)
            result = client.optimize(
                platform="i7-5930k",
                fast=True,
                spec=kernel.spec,
                dims=dict(kernel.fast_dims),
                dtypes=None if kernel.dtypes is None else dict(kernel.dtypes),
                params=None if kernel.params is None else dict(kernel.params),
                **winner["options"],
            )
            assert result["served_by"] == "cache"

    def test_unreachable_fleet_quarantines_loudly(self, tmp_path):
        cells = plan_tune_cells(tune_request())
        report = TuneRunner(
            Journal(str(tmp_path / "journal.jsonl")),
            port=1,
            timeout_s=0.2,
            retry=RetryPolicy(max_attempts=2, backoff_s=0.0, jitter=0.0),
            client_retries=0,
            sleeper=lambda _s: None,
        ).run(cells, tune_id="deadbeefdeadbeef")
        assert all(o.status == CELL_QUARANTINED for o in report.outcomes)
        assert all(o.attempts == 2 for o in report.outcomes)
        assert all(o.error for o in report.outcomes)
        assert report.exit_code() == EXIT_QUARANTINED
        document = report.document()
        assert validate_tune_report(document) == []
        assert document["winners"] == {}
        assert document["quarantined"] == 4


@pytest.mark.slow
class TestFleetTuneStream:
    def test_post_streams_cells_and_repost_resumes(
        self, tmp_path, monkeypatch
    ):
        from repro.fleet.testing import FleetThread
        from repro.serve import ServeClient

        monkeypatch.setenv("REPRO_LINE_BUDGET", "2000")
        request = tune_request()
        with FleetThread(
            workers=2,
            cache_path=str(tmp_path / "cache.jsonl"),
            queue_limit=8,
        ) as fleet:
            client = ServeClient(port=fleet.port, timeout_s=120.0)
            records = list(client.tune(request))
            report = records[-1]
            assert report["format"] == TUNE_REPORT_FORMAT
            assert validate_tune_report(report) == []
            assert (report["cells"], report["quarantined"]) == (4, 0)
            assert [r["kind"] for r in records[:-1]] == ["cell"] * 4

            # Same body again: the router keys its journal off the
            # request's tune_id, so the re-POST replays every cell from
            # the journal and the report is bit-identical.
            again = list(client.tune(request))
            assert all(r["status"] == "resumed" for r in again[:-1])
            assert canon(again[-1]) == canon(report)
