"""Unit and property tests for repro.util.numbers."""

import pytest
from hypothesis import given, strategies as st

from repro.util import ceil_div, clamp, divisors, pow2_range, tile_candidates


class TestCeilDiv:
    def test_exact(self):
        assert ceil_div(8, 4) == 2

    def test_rounds_up(self):
        assert ceil_div(9, 4) == 3

    def test_one(self):
        assert ceil_div(1, 4) == 1

    def test_zero_dividend(self):
        assert ceil_div(0, 4) == 0

    def test_rejects_zero_divisor(self):
        with pytest.raises(ValueError):
            ceil_div(4, 0)

    def test_rejects_negative_dividend(self):
        with pytest.raises(ValueError):
            ceil_div(-1, 4)

    @given(st.integers(0, 10**9), st.integers(1, 10**6))
    def test_matches_definition(self, a, b):
        q = ceil_div(a, b)
        assert q * b >= a
        assert (q - 1) * b < a or q == 0


class TestClamp:
    def test_inside(self):
        assert clamp(5, 1, 10) == 5

    def test_below(self):
        assert clamp(0, 1, 10) == 1

    def test_above(self):
        assert clamp(11, 1, 10) == 10

    def test_empty_range(self):
        with pytest.raises(ValueError):
            clamp(5, 10, 1)


class TestDivisors:
    def test_of_12(self):
        assert divisors(12) == [1, 2, 3, 4, 6, 12]

    def test_of_prime(self):
        assert divisors(13) == [1, 13]

    def test_of_one(self):
        assert divisors(1) == [1]

    def test_perfect_square(self):
        assert divisors(16) == [1, 2, 4, 8, 16]

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            divisors(0)

    @given(st.integers(1, 5000))
    def test_every_divisor_divides(self, n):
        ds = divisors(n)
        assert all(n % d == 0 for d in ds)
        assert ds == sorted(set(ds))
        assert 1 in ds and n in ds


class TestPow2Range:
    def test_basic(self):
        assert pow2_range(1, 16) == [1, 2, 4, 8, 16]

    def test_from_mid(self):
        assert pow2_range(3, 20) == [4, 8, 16]

    def test_empty(self):
        assert pow2_range(17, 16) == []

    def test_low_below_one(self):
        assert pow2_range(0, 4) == [1, 2, 4]


class TestTileCandidates:
    def test_contains_one_and_cap(self):
        cands = tile_candidates(100, 40)
        assert 1 in cands
        assert 40 in cands
        assert max(cands) <= 40

    def test_includes_divisors(self):
        cands = tile_candidates(24, 24)
        for d in (2, 3, 4, 6, 8, 12, 24):
            assert d in cands

    def test_exhaustive(self):
        assert tile_candidates(10, 5, exhaustive=True) == [1, 2, 3, 4, 5]

    def test_quantum_included(self):
        cands = tile_candidates(100, 100, quantum=16)
        assert 16 in cands

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            tile_candidates(0, 4)

    def test_upper_below_one_clamped(self):
        assert tile_candidates(10, 0) == [1]

    @given(
        st.integers(1, 4096),
        st.integers(1, 4096),
        st.sampled_from([1, 8, 16]),
    )
    def test_all_candidates_in_range(self, bound, upper, quantum):
        cands = tile_candidates(bound, upper, quantum=quantum)
        cap = min(bound, max(1, upper))
        assert cands == sorted(set(cands))
        assert all(1 <= t <= cap for t in cands)
        assert 1 in cands and cap in cands
