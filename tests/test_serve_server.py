"""Behavioral tests for the optimization service (``repro.serve``).

Each test runs a real server (own event loop on a daemon thread, real
sockets) through :class:`repro.serve.ServerThread` and drives it with the
blocking :class:`repro.serve.ServeClient` — the same path production
traffic takes, minus only the process boundary (covered by
``tests/test_serve_cli.py``).
"""

import json
import threading
import time

import pytest

from repro.obs import CollectingTracer
from repro.robust import crash_job, parse_serve_fault, slow_job
from repro.serve import (
    ServeClient,
    ServerThread,
    validate_healthz,
    validate_metrics,
)
from repro.util import ServeError, ServeOverloaded

def serialized(result):
    """The byte-identity of a response: its schedules, canonically."""
    return json.dumps(result["schedules"], sort_keys=True)


def make_server(tmp_path, **kwargs):
    kwargs.setdefault("cache_path", str(tmp_path / "cache.jsonl"))
    kwargs.setdefault("queue_limit", 8)
    return ServerThread(**kwargs)


class TestBasicServing:
    def test_search_then_cache(self, tmp_path):
        with make_server(tmp_path) as srv:
            client = ServeClient(port=srv.port)
            assert client.wait_ready(10.0)
            first = client.optimize("matmul", "i7-5930k", fast=True)
            second = client.optimize("matmul", "i7-5930k", fast=True)
        assert first["served_by"] == "search"
        assert second["served_by"] == "cache"
        assert serialized(first) == serialized(second)
        assert first["key"] == second["key"]

    def test_distinct_options_do_not_share(self, tmp_path):
        with make_server(tmp_path) as srv:
            client = ServeClient(port=srv.port)
            with_nti = client.optimize("matmul", "i7-5930k", fast=True)
            without = client.optimize(
                "matmul", "i7-5930k", fast=True, use_nti=False
            )
        assert with_nti["key"] != without["key"]
        assert without["served_by"] == "search"

    def test_healthz_and_unknown_route(self, tmp_path):
        with make_server(tmp_path) as srv:
            client = ServeClient(port=srv.port)
            assert client.healthz()["status"] == "ok"
            status, _headers, body = client._roundtrip("GET", "/nope")
            assert status == 404
            assert body["kind"] == "error"
            status, _headers, _body = client._roundtrip(
                "POST", "/healthz", {"x": 1}
            )
            assert status == 405

    def test_healthz_is_enriched_and_schema_valid(self, tmp_path):
        with make_server(tmp_path) as srv:
            client = ServeClient(port=srv.port)
            body = client.healthz()
            assert validate_healthz(body) == []
            assert body["draining"] is False
            assert body["queue"] == {"depth": 0, "limit": 8}
            assert body["in_flight"] == 0
            assert body["admitted"] == 0
            client.optimize("copy", "i7-5930k", fast=True)
            status, after = client.probe()
            assert status == 200
            assert validate_healthz(after) == []
            assert after["admitted"] == 1
        # With the server gone, probe degrades to the socket error a
        # supervisor counts as a failed probe.
        with pytest.raises(ConnectionError):
            client.probe()

    def test_bad_request_is_400_with_friendly_error(self, tmp_path):
        with make_server(tmp_path) as srv:
            client = ServeClient(port=srv.port)
            with pytest.raises(ServeError, match="unknown benchmark"):
                client.optimize("warp-drive", "i7-5930k")
            with pytest.raises(ServeError, match="unknown platform"):
                client.optimize("matmul", "z80")
        # Neither failure poisoned the server: counters say two errors.

    def test_metrics_contract(self, tmp_path):
        with make_server(tmp_path) as srv:
            client = ServeClient(port=srv.port)
            client.optimize("copy", "i7-5930k", fast=True)
            snapshot = client.metrics()
        assert validate_metrics(snapshot) == []
        assert snapshot["counters"]["requests_total"] == 1
        assert snapshot["counters"]["searches"] >= 1
        assert snapshot["latency_ms"]["count"] == 1
        assert "cache" in snapshot  # cache-backed server exposes stats


class TestCoalescing:
    def test_identical_concurrent_requests_share_one_search(self, tmp_path):
        # Slow the first executed job so the second request provably
        # arrives while the first is in flight; identical fingerprints
        # must then share one computation (coalesced counter == 1) and
        # the serialized schedules must be byte-identical.
        with make_server(
            tmp_path, fault_plan=slow_job(1, seconds=0.8)
        ) as srv:
            client = ServeClient(port=srv.port)
            assert client.wait_ready(10.0)
            results = {}

            def submit(tag, delay):
                time.sleep(delay)
                results[tag] = ServeClient(port=srv.port).optimize(
                    "matmul", "i7-5930k", fast=True
                )

            threads = [
                threading.Thread(target=submit, args=("a", 0.0)),
                threading.Thread(target=submit, args=("b", 0.25)),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            counters = client.metrics()["counters"]
        assert counters["searches"] == 1
        assert counters["coalesced"] == 1
        assert counters["responses_ok"] == 2
        served = sorted(r["served_by"] for r in results.values())
        assert served == ["coalesced", "search"]
        assert serialized(results["a"]) == serialized(results["b"])

    def test_coalesced_window_closes_after_completion(self, tmp_path):
        with make_server(tmp_path) as srv:
            client = ServeClient(port=srv.port)
            client.optimize("mask", "i7-5930k", fast=True)
            again = client.optimize("mask", "i7-5930k", fast=True)
            counters = client.metrics()["counters"]
        # Sequential requests never coalesce; the second hits the cache.
        assert counters["coalesced"] == 0
        assert again["served_by"] == "cache"


class TestWarmRestart:
    def test_cache_survives_restart(self, tmp_path):
        cache_path = str(tmp_path / "cache.jsonl")
        with make_server(tmp_path, cache_path=cache_path) as srv:
            cold = ServeClient(port=srv.port).optimize(
                "gemm", "i7-5930k", fast=True
            )
        assert cold["served_by"] == "search"

        tracer = CollectingTracer()
        with make_server(
            tmp_path, cache_path=cache_path, tracer=tracer
        ) as srv:
            warm = ServeClient(port=srv.port).optimize(
                "gemm", "i7-5930k", fast=True
            )
            counters = ServeClient(port=srv.port).metrics()["counters"]
        assert warm["served_by"] == "cache"
        assert counters["searches"] == 0
        assert counters["cache_hits"] >= 1
        assert serialized(cold) == serialized(warm)
        # The trace records how the request was served, restart-proof.
        requests = [
            e
            for e in tracer.events
            if e.get("kind") == "event" and e.get("name") == "serve.request"
        ]
        assert requests and requests[0]["attrs"]["served_by"] == "cache"


class TestAdmissionControl:
    def test_overload_sheds_with_retry_after(self, tmp_path):
        # One worker blocked for 2s + queue_limit=1: submitting four
        # distinct requests must shed at least one with 429+Retry-After.
        with make_server(
            tmp_path,
            workers=1,
            queue_limit=1,
            batch_window_ms=0.0,
            fault_plan=slow_job(1, seconds=2.0),
            retry_after_s=0.5,
        ) as srv:
            def submit(name):
                ServeClient(port=srv.port, retries=0).optimize(
                    name, "i7-5930k", fast=True
                )

            # Occupy the only worker (slow fault), then saturate the
            # dispatcher hand-off and the one queue slot with waiters.
            waiters = [
                threading.Thread(target=submit, args=(name,))
                for name in ("copy", "mask", "tp")
            ]
            for thread in waiters:
                thread.start()
                time.sleep(0.3)
            with pytest.raises(ServeOverloaded) as excinfo:
                submit("gemm")
            assert excinfo.value.retry_after_s == pytest.approx(0.5)
            for thread in waiters:
                thread.join()
            counters = ServeClient(port=srv.port).metrics()["counters"]
        assert counters["shed"] == 1
        assert counters["responses_ok"] == 3  # the waiters all finished

    def test_shed_then_retry_succeeds(self, tmp_path):
        with make_server(
            tmp_path,
            workers=1,
            queue_limit=1,
            batch_window_ms=0.0,
            fault_plan=slow_job(1, seconds=1.0),
            retry_after_s=0.2,
        ) as srv:
            def submit(name):
                try:
                    ServeClient(port=srv.port, retries=0).optimize(
                        name, "i7-5930k", fast=True
                    )
                except ServeOverloaded:
                    pass  # fillers may themselves be shed; that's fine

            blocker = threading.Thread(target=submit, args=("copy",))
            blocker.start()
            time.sleep(0.3)
            fillers = [
                threading.Thread(target=submit, args=(n,))
                for n in ("mask", "tp")
            ]
            for t in fillers:
                t.start()
            time.sleep(0.1)
            # Retries (honouring Retry-After) ride out the congestion.
            result = ServeClient(port=srv.port, retries=30).optimize(
                "gemm", "i7-5930k", fast=True
            )
            blocker.join()
            for t in fillers:
                t.join()
        assert result["served_by"] == "search"


class TestFaultsAndDeadlines:
    def test_injected_crash_is_a_clean_500(self, tmp_path):
        with make_server(tmp_path, fault_plan=crash_job(1)) as srv:
            client = ServeClient(port=srv.port)
            with pytest.raises(ServeError, match="injected fault"):
                client.optimize("matmul", "i7-5930k", fast=True)
            # The crash consumed the fault; the retry searches normally.
            result = client.optimize("matmul", "i7-5930k", fast=True)
            counters = client.metrics()["counters"]
        assert result["served_by"] == "search"
        assert counters["faults_injected"] == 1
        assert counters["responses_error"] == 1
        assert counters["responses_ok"] == 1

    def test_env_string_arms_the_same_plan(self, tmp_path):
        plan = parse_serve_fault("slow:0.01:2")
        with make_server(tmp_path, fault_plan=plan) as srv:
            client = ServeClient(port=srv.port)
            client.optimize("copy", "i7-5930k", fast=True)
            client.optimize("mask", "i7-5930k", fast=True)
            counters = client.metrics()["counters"]
        assert counters["faults_injected"] == 1  # fired on job 2 only

    def test_deadline_expired_maps_to_504(self, tmp_path):
        # An impossibly small budget dies at a cooperative checkpoint and
        # must come back as a deadline error, not a generic failure.
        with make_server(
            tmp_path, fault_plan=slow_job(1, seconds=0.3)
        ) as srv:
            client = ServeClient(port=srv.port)
            with pytest.raises(ServeError, match="HTTP 504"):
                client.optimize(
                    "matmul", "i7-5930k", fast=True, deadline_ms=50.0
                )
            counters = client.metrics()["counters"]
        assert counters["deadline_expired"] == 1


class TestDrain:
    def test_drain_finishes_inflight_work(self, tmp_path):
        srv = make_server(tmp_path, fault_plan=slow_job(1, seconds=0.6))
        srv.start()
        outcome = {}

        def submit():
            outcome["result"] = ServeClient(port=srv.port).optimize(
                "matmul", "i7-5930k", fast=True
            )

        worker = threading.Thread(target=submit)
        worker.start()
        time.sleep(0.25)  # request is now in flight behind the slow fault
        srv.drain()  # must block until the response went out
        worker.join(timeout=5.0)
        assert not worker.is_alive()
        assert outcome["result"]["served_by"] == "search"

    def test_draining_server_rejects_new_requests(self, tmp_path):
        srv = make_server(tmp_path)
        srv.start()
        client = ServeClient(port=srv.port)
        client.optimize("copy", "i7-5930k", fast=True)
        srv.drain()
        with pytest.raises((ConnectionError, ServeOverloaded)):
            ServeClient(port=srv.port, retries=0).optimize(
                "mask", "i7-5930k", fast=True
            )
