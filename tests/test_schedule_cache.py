"""Tests for the persistent cross-run schedule cache (``repro.cache``)."""

import json

import pytest

from repro.cache import (
    CACHE_FORMAT,
    ScheduleCache,
    cache_key,
    func_fingerprint,
    optimize_options,
    options_fingerprint,
)
from repro.cache.store import _checksum
from repro.core import optimize
from repro.ir.serialize import schedule_to_dict
from repro.robust import (
    FallbackPolicy,
    RUNG_CACHE,
    RUNG_PROPOSED,
    safe_optimize,
)

from tests.helpers import make_matmul, make_transpose_mask


@pytest.fixture
def cache(tmp_path):
    return ScheduleCache(str(tmp_path / "schedules.jsonl"))


class TestFingerprints:
    def test_content_keyed_not_identity_keyed(self):
        # Two independently built, identical programs share a fingerprint.
        assert func_fingerprint(make_matmul(64)[0]) == func_fingerprint(
            make_matmul(64)[0]
        )

    def test_bounds_change_the_fingerprint(self):
        assert func_fingerprint(make_matmul(64)[0]) != func_fingerprint(
            make_matmul(128)[0]
        )

    def test_program_change_the_fingerprint(self):
        assert func_fingerprint(make_matmul(64)[0]) != func_fingerprint(
            make_transpose_mask(64)[0]
        )

    def test_options_exclude_jobs(self):
        # jobs changes how the search runs, never what it returns, so it
        # must not fragment the cache key space.
        assert "jobs" not in optimize_options()
        with pytest.raises(TypeError):
            optimize_options(jobs=4)

    def test_options_fingerprint_is_order_insensitive(self):
        options = optimize_options()
        reordered = dict(reversed(list(options.items())))
        assert options_fingerprint(options) == options_fingerprint(reordered)


class TestRoundTrip:
    def test_cold_get_is_a_miss(self, cache, arch):
        func, _, _ = make_matmul(64)
        assert cache.get(func, arch, optimize_options()) is None
        assert cache.stats.misses == 1

    def test_put_then_get_same_instance(self, cache, arch):
        func, _, _ = make_matmul(64)
        options = optimize_options()
        schedule = optimize(func, arch).schedule
        cache.put(func, arch, options, schedule)
        hit = cache.get(func, arch, options)
        assert hit is not None
        assert schedule_to_dict(hit) == schedule_to_dict(schedule)
        assert cache.stats.stores == 1
        assert cache.stats.hits == 1

    def test_warm_get_across_instances(self, cache, arch):
        """A fresh process (new instance, same file) must see the entry."""
        func, _, _ = make_matmul(64)
        options = optimize_options()
        schedule = optimize(func, arch).schedule
        cache.put(func, arch, options, schedule)

        reopened = ScheduleCache(cache.path)
        replay_target, _, _ = make_matmul(64)
        hit = reopened.get(replay_target, arch, options)
        assert hit is not None
        assert schedule_to_dict(hit) == schedule_to_dict(schedule)

    def test_options_partition_the_key_space(self, cache, arch):
        func, _, _ = make_matmul(64)
        schedule = optimize(func, arch).schedule
        cache.put(func, arch, optimize_options(), schedule)
        assert cache.get(func, arch, optimize_options(use_nti=False)) is None

    def test_arch_partitions_the_key_space(self, cache, arch, arch_6700):
        func, _, _ = make_matmul(64)
        schedule = optimize(func, arch).schedule
        cache.put(func, arch, optimize_options(), schedule)
        assert cache.get(func, arch_6700, optimize_options()) is None

    def test_last_write_wins_and_compact_drops_superseded(self, cache, arch):
        func, _, _ = make_matmul(64)
        options = optimize_options()
        schedule = optimize(func, arch).schedule
        cache.put(func, arch, options, schedule, meta={"gen": 1})
        cache.put(func, arch, options, schedule, meta={"gen": 2})
        with open(cache.path) as handle:
            assert len(handle.readlines()) == 2
        assert len(cache) == 1
        assert cache.compact() == 1
        with open(cache.path) as handle:
            (line,) = handle.readlines()
        assert json.loads(line)["meta"]["gen"] == 2


class TestCorruption:
    def _populate(self, cache, arch):
        func, _, _ = make_matmul(64)
        schedule = optimize(func, arch).schedule
        cache.put(func, arch, optimize_options(), schedule)
        return schedule

    def test_garbage_line_is_skipped_with_diagnostic(self, cache, arch):
        schedule = self._populate(cache, arch)
        with open(cache.path, "a") as handle:
            handle.write("{not json\n")
        reopened = ScheduleCache(cache.path)
        hit = reopened.get(make_matmul(64)[0], arch, optimize_options())
        assert hit is not None
        assert schedule_to_dict(hit) == schedule_to_dict(schedule)
        assert any("unparsable" in note for note in reopened.load_diagnostics)

    def test_bad_checksum_is_skipped(self, cache, arch):
        self._populate(cache, arch)
        with open(cache.path) as handle:
            record = json.loads(handle.readline())
        record["sha256"] = "0" * 64
        with open(cache.path, "w") as handle:
            handle.write(json.dumps(record) + "\n")
        reopened = ScheduleCache(cache.path)
        assert reopened.get(make_matmul(64)[0], arch, optimize_options()) is None
        assert any("checksum" in note for note in reopened.load_diagnostics)

    def test_truncated_tail_costs_one_entry(self, cache, arch):
        self._populate(cache, arch)
        with open(cache.path) as handle:
            intact = handle.read()
        with open(cache.path, "w") as handle:
            handle.write(intact + intact[: len(intact) // 2])
        reopened = ScheduleCache(cache.path)
        assert (
            reopened.get(make_matmul(64)[0], arch, optimize_options())
            is not None
        )

    def test_replay_failure_degrades_to_miss(self, cache, arch):
        """An entry whose directives no longer fit the Func is a miss."""
        self._populate(cache, arch)
        with open(cache.path) as handle:
            record = json.loads(handle.readline())
        # Point a directive at a variable the Func does not have; the
        # checksum is recomputed so only the *replay* can reject it.
        blob = json.dumps(record["schedule"])
        record["schedule"] = json.loads(
            blob.replace('"i"', '"no_such_var"')
        )
        record.pop("sha256")
        record["sha256"] = _checksum(record)
        with open(cache.path, "w") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        reopened = ScheduleCache(cache.path)
        assert reopened.get(make_matmul(64)[0], arch, optimize_options()) is None
        assert reopened.stats.replay_failures == 1
        assert reopened.stats.misses == 1

    def test_missing_file_is_empty_cache(self, tmp_path, arch):
        cache = ScheduleCache(str(tmp_path / "absent.jsonl"))
        assert len(cache) == 0
        assert cache.get(make_matmul(64)[0], arch, optimize_options()) is None


class TestSafeOptimizeIntegration:
    def test_first_run_searches_second_run_hits(self, cache, arch):
        policy = FallbackPolicy.lenient()
        first = safe_optimize(make_matmul(64)[0], arch, policy, cache=cache)
        assert first.rung == RUNG_PROPOSED
        assert not first.fell_back

        second = safe_optimize(make_matmul(64)[0], arch, policy, cache=cache)
        assert second.rung == RUNG_CACHE
        assert not second.fell_back
        assert schedule_to_dict(second.schedule) == schedule_to_dict(
            first.schedule
        )

    def test_policy_switches_partition_the_cache(self, cache, arch):
        safe_optimize(
            make_matmul(64)[0],
            arch,
            FallbackPolicy.lenient(),
            cache=cache,
        )
        # A different optimizer configuration must not reuse the entry.
        other = safe_optimize(
            make_matmul(64)[0],
            arch,
            FallbackPolicy.lenient(allow_nti=False),
            cache=cache,
        )
        assert other.rung == RUNG_PROPOSED

    def test_record_format_tag(self, cache, arch):
        func, _, _ = make_matmul(64)
        key = cache.put(
            func, arch, optimize_options(), optimize(func, arch).schedule
        )
        with open(cache.path) as handle:
            record = json.loads(handle.readline())
        assert record["format"] == CACHE_FORMAT
        assert record["key"] == key
        assert key == cache_key(
            func_fingerprint(func), arch.fingerprint(), optimize_options()
        )
