"""Tests for the cache simulator: caches, prefetchers, hierarchy."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import arm_cortex_a15, intel_i7_5930k
from repro.cachesim import (
    CacheHierarchy,
    NextLinePrefetcher,
    SetAssocCache,
    StridePrefetcher,
)


class TestSetAssocCache:
    def test_miss_then_hit(self):
        c = SetAssocCache("L", 4, 2)
        assert not c.lookup(0)
        c.fill(0)
        assert c.lookup(0)
        assert c.stats.hits == 1 and c.stats.misses == 1

    def test_set_mapping(self):
        c = SetAssocCache("L", 4, 1)
        c.fill(0)
        c.fill(4)  # same set (4 % 4 == 0), 1 way -> evicts 0
        assert not c.contains(0)
        assert c.contains(4)

    def test_lru_eviction_order(self):
        c = SetAssocCache("L", 1, 2)
        c.fill(0)
        c.fill(1)
        c.lookup(0)     # 0 becomes MRU
        c.fill(2)       # evicts 1 (LRU)
        assert c.contains(0) and c.contains(2) and not c.contains(1)

    def test_eviction_returns_victim(self):
        c = SetAssocCache("L", 1, 1)
        c.fill(0)
        assert c.fill(1) == 0

    def test_prefetched_flag_credited_once(self):
        c = SetAssocCache("L", 4, 2)
        c.fill(0, prefetched=True)
        c.lookup(0)
        c.lookup(0)
        assert c.stats.prefetch_hits == 1

    def test_prefetch_fill_never_downgrades_demand_line(self):
        c = SetAssocCache("L", 4, 2)
        c.fill(0, prefetched=False)
        c.fill(0, prefetched=True)
        c.lookup(0)
        assert c.stats.prefetch_hits == 0

    def test_demand_refill_clears_prefetch_flag(self):
        c = SetAssocCache("L", 4, 2)
        c.fill(0, prefetched=True)
        c.fill(0, prefetched=False)
        c.lookup(0)
        assert c.stats.prefetch_hits == 0

    def test_invalidate(self):
        c = SetAssocCache("L", 4, 2)
        c.fill(0)
        assert c.invalidate(0)
        assert not c.contains(0)
        assert not c.invalidate(0)

    def test_occupancy_and_flush(self):
        c = SetAssocCache("L", 4, 2)
        for line in range(6):
            c.fill(line)
        assert c.occupancy() == 6
        c.flush()
        assert c.occupancy() == 0

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            SetAssocCache("L", 0, 2)

    @given(st.lists(st.integers(0, 63), min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_occupancy_never_exceeds_capacity(self, lines):
        c = SetAssocCache("L", 4, 2)
        for line in lines:
            if not c.lookup(line):
                c.fill(line)
        assert c.occupancy() <= 4 * 2
        for s in c._sets:
            assert len(s) <= 2


class TestNextLinePrefetcher:
    def test_requests_next(self):
        assert NextLinePrefetcher(1).requests(10) == [11]

    def test_degree(self):
        assert NextLinePrefetcher(3).requests(10) == [11, 12, 13]

    def test_zero_degree(self):
        assert NextLinePrefetcher(0).requests(10) == []

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            NextLinePrefetcher(-1)


class TestStridePrefetcher:
    def test_needs_training(self):
        p = StridePrefetcher(degree=2, max_distance=20)
        assert p.observe(0, 100) == []
        assert p.observe(0, 101) == []  # first stride observation
        assert p.observe(0, 102) == [103, 104]  # trained

    def test_tracks_nonunit_stride(self):
        p = StridePrefetcher(degree=2, max_distance=20)
        p.observe(0, 0)
        p.observe(0, 8)
        out = p.observe(0, 16)
        assert out == [24, 32]

    def test_stride_change_resets(self):
        p = StridePrefetcher(degree=1, max_distance=20)
        p.observe(0, 0)
        p.observe(0, 1)
        p.observe(0, 2)  # trained at stride 1
        assert p.observe(0, 10) == []  # stride broke
        assert p.observe(0, 18) == [26]  # retrained at 8

    def test_streams_are_independent(self):
        p = StridePrefetcher(degree=1, max_distance=20)
        p.observe(0, 0)
        p.observe(0, 1)
        assert p.observe(1, 500) == []  # fresh stream
        assert p.observe(0, 2) == [3]

    def test_zero_stride_ignored(self):
        p = StridePrefetcher(degree=1, max_distance=20)
        p.observe(0, 0)
        p.observe(0, 1)
        p.observe(0, 2)
        assert p.observe(0, 2) == []   # same line: filtered
        assert p.observe(0, 3) == [4]  # training survived

    def test_distance_limit(self):
        p = StridePrefetcher(degree=4, max_distance=10)
        p.observe(0, 0)
        p.observe(0, 8)
        out = p.observe(0, 16)
        # stride 8: only the first prefetch is within ~distance.
        assert out and all(abs(t - 16) <= 40 for t in out)

    def test_reset(self):
        p = StridePrefetcher(degree=1, max_distance=20)
        p.observe(0, 0)
        p.observe(0, 1)
        p.reset()
        assert p.stream_state(0) == (0, 0)


class TestCacheHierarchy:
    def make(self, prefetch=True):
        return CacheHierarchy(intel_i7_5930k(), enable_prefetch=prefetch)

    def test_cold_miss_goes_to_memory(self):
        h = self.make(prefetch=False)
        result = h.access(100)
        assert result.hit_level == 4
        assert h.stats.memory_lines == 1

    def test_inclusive_fill_then_l1_hit(self):
        h = self.make(prefetch=False)
        h.access(100)
        assert h.access(100).hit_level == 1

    def test_l2_hit_after_l1_eviction(self):
        h = CacheHierarchy(intel_i7_5930k(), enable_prefetch=False)
        h.access(0)
        l1 = h.levels[0]
        # Blow line 0 out of L1 (same set, > ways distinct lines).
        for n in range(1, l1.ways + 2):
            h.access(n * l1.num_sets)
        result = h.access(0)
        assert result.hit_level == 2

    def test_next_line_prefetch_hits(self):
        h = self.make(prefetch=True)
        h.access(100)
        result = h.access(101)
        assert result.hit_level == 1
        assert result.prefetch_credit

    def test_prefetch_disabled_no_lookahead(self):
        h = self.make(prefetch=False)
        h.access(100)
        assert h.access(101).hit_level == 4

    def test_streaming_gets_one_miss_per_stream(self):
        h = self.make(prefetch=True)
        for line in range(100, 164):
            h.access(line)
        # Only the first access should have gone to memory as a demand miss.
        assert h.stats.memory_lines == 1
        assert h.stats.prefetch_memory_lines >= 63

    def test_stride_prefetch_fills_l2(self):
        h = self.make(prefetch=True)
        for n in range(3):
            h.access(n * 8, ref_id=7)
        result = h.access(3 * 8, ref_id=7)
        assert result.hit_level <= 2

    def test_nt_store_bypasses_and_invalidates(self):
        h = self.make(prefetch=False)
        h.access(100)
        h.nt_store(100)
        assert h.stats.nt_store_lines == 1
        assert h.access(100).hit_level == 4

    def test_nt_store_write_combining(self):
        h = self.make(prefetch=False)
        h.nt_store(5)
        h.nt_store(5)
        h.nt_store(6)
        assert h.stats.nt_store_lines == 2

    def test_writeback_counted_once_per_line(self):
        h = self.make(prefetch=False)
        h.access(100, is_write=True)
        h.access(100, is_write=True)
        h.access(101, is_write=True)
        assert h.stats.writeback_lines == 2

    def test_write_hit_on_prefetched_line_still_writes_back(self):
        h = self.make(prefetch=True)
        h.access(100)          # prefetches 101
        h.access(101, is_write=True)
        assert h.stats.writeback_lines == 1

    def test_ways_divisor_shrinks_associativity(self):
        h = CacheHierarchy(intel_i7_5930k(), l1_ways_divisor=2)
        assert h.levels[0].ways == 4

    def test_l3_capacity_divisor(self):
        full = CacheHierarchy(intel_i7_5930k())
        shared = CacheHierarchy(intel_i7_5930k(), l3_capacity_divisor=6)
        assert shared.levels[2].num_sets < full.levels[2].num_sets

    def test_arm_has_two_levels(self):
        h = CacheHierarchy(arm_cortex_a15())
        assert h.num_levels == 2
        assert h.access(0).hit_level == 3  # memory is level 3 there

    def test_flush_keeps_stats(self):
        h = self.make(prefetch=False)
        h.access(0)
        h.flush()
        assert h.stats.memory_lines == 1
        assert h.access(0).hit_level == 4

    def test_rejects_bad_divisors(self):
        with pytest.raises(ValueError):
            CacheHierarchy(intel_i7_5930k(), l1_ways_divisor=0)

    def test_summary_smoke(self):
        h = self.make()
        h.access(0)
        assert "L1" in h.summary()


class TestStats:
    def test_miss_rate(self):
        c = SetAssocCache("L", 4, 2)
        c.lookup(0)
        c.fill(0)
        c.lookup(0)
        assert c.stats.miss_rate == pytest.approx(0.5)

    def test_snapshot_keys(self):
        c = SetAssocCache("L", 4, 2)
        snap = c.stats.snapshot()
        assert set(snap) == {
            "hits", "misses", "prefetch_hits", "prefetches_issued",
            "prefetch_evictions", "evictions",
        }

    def test_hierarchy_dram_total(self):
        h = CacheHierarchy(intel_i7_5930k(), enable_prefetch=False)
        h.access(0)
        h.nt_store(64)
        h.access(1, is_write=True)
        total = h.stats.dram_lines_total
        assert total == h.stats.memory_lines + h.stats.nt_store_lines + h.stats.writeback_lines
