"""End-to-end tests for the ``--trace`` flags and ``repro trace``."""

import json

from repro.__main__ import main
from repro.obs import PRUNE_REASONS, read_trace, validate_trace


class TestTraceFlag:
    def test_optimize_writes_valid_trace(self, tmp_path, capsys):
        path = tmp_path / "out.jsonl"
        assert main(
            ["optimize", "matmul", "--fast", "--trace", str(path)]
        ) == 0
        capsys.readouterr()  # the normal optimize report still prints
        events, problems = read_trace(str(path))
        assert problems == []
        assert validate_trace(events) == []
        pruned = [
            e for e in events
            if e["kind"] == "event" and e["name"] == "candidate.pruned"
        ]
        assert pruned
        assert all(e["attrs"]["reason"] in PRUNE_REASONS for e in pruned)
        # the trace scope closes with the final counter totals
        assert events[-1]["kind"] == "counters"
        assert events[-1]["name"] == "totals"

    def test_compare_writes_trace_with_simulation(self, tmp_path, capsys):
        path = tmp_path / "out.jsonl"
        assert main(
            ["compare", "copy", "--fast", "--budget", "2000",
             "--trace", str(path)]
        ) == 0
        capsys.readouterr()
        events, problems = read_trace(str(path))
        assert problems == []
        names = {e["name"] for e in events}
        assert "sim.nest" in names and "sim.total" in names

    def test_unwritable_trace_path_errors(self, capsys):
        try:
            code = main(
                ["optimize", "matmul", "--fast",
                 "--trace", "/nonexistent-dir/out.jsonl"]
            )
        except SystemExit as exc:
            code = exc.code
        assert code not in (0, None)


class TestTraceCommand:
    def _write_trace(self, tmp_path):
        path = tmp_path / "out.jsonl"
        assert main(
            ["optimize", "matmul", "--fast", "--trace", str(path)]
        ) == 0
        return path

    def test_summary(self, tmp_path, capsys):
        path = self._write_trace(tmp_path)
        capsys.readouterr()
        assert main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("trace:")
        assert "candidates considered" in out
        assert "spans:" in out

    def test_validate_ok(self, tmp_path, capsys):
        path = self._write_trace(tmp_path)
        capsys.readouterr()
        assert main(["trace", str(path), "--validate"]) == 0
        assert "schema OK" in capsys.readouterr().out

    def test_validate_rejects_bad_records(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({
                "format": "repro-trace-v1", "seq": 0, "kind": "event",
                "name": "candidate.pruned",
                "attrs": {"reason": "vibes", "phase": "temporal"},
            }) + "\nnot json\n"
        )
        assert main(["trace", str(path), "--validate"]) == 4
        err = capsys.readouterr().err
        assert "invalid:" in err and "schema violation" in err

    def test_missing_file(self, capsys):
        assert main(["trace", "/nonexistent/trace.jsonl"]) == 4
        assert "no readable trace records" in capsys.readouterr().err
