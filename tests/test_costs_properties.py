"""Property-style relationships of the cost equations."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.costs import (
    extract_patterns,
    level1_misses,
    level2_misses,
    order_cost,
)
from repro.ir.analysis import analyze_func

from tests.helpers import make_matmul

LC = 16
INTRA = ["i", "k", "j"]
INTER = ["i", "k", "j"]


def patterns():
    c, _, _ = make_matmul(64)
    return extract_patterns(analyze_func(c))


def bounds(n=64):
    return {"i": n, "k": n, "j": n}


class TestScalingLaws:
    @given(n=st.sampled_from([32, 64, 128]))
    @settings(max_examples=6, deadline=None)
    def test_misses_scale_cubically_with_problem(self, n):
        # Fixed tiles: total misses must scale with the iteration space.
        pats = patterns()
        tiles = {"i": 8, "k": 4, "j": 16}
        small = level1_misses(pats, tiles, bounds(n), INTRA, LC)
        big = level1_misses(pats, tiles, bounds(2 * n), INTRA, LC)
        assert big == pytest.approx(8 * small)

    def test_l1_misses_decrease_with_wider_column_tile(self):
        # Wider rows amortize per-row misses (prefetch-aware counting).
        pats = patterns()
        narrow = level1_misses(
            pats, {"i": 8, "k": 4, "j": 16}, bounds(), INTRA, LC
        )
        wide = level1_misses(
            pats, {"i": 8, "k": 4, "j": 64}, bounds(), INTRA, LC
        )
        assert wide < narrow

    def test_l2_misses_decrease_with_taller_i_tile(self):
        pats = patterns()
        short = level2_misses(
            pats, {"i": 2, "k": 4, "j": 16}, bounds(), INTRA, INTER, LC
        )
        tall = level2_misses(
            pats, {"i": 16, "k": 4, "j": 16}, bounds(), INTRA, INTER, LC
        )
        assert tall < short


class TestOrderCostStructure:
    def test_pairing_loops_beats_separating_them(self):
        # ii immediately outside i must cost no more than ii far away.
        tiles = {"i": 8, "k": 8, "j": 8}
        b = bounds()
        paired = order_cost(
            [("k", "inter"), ("j", "inter"), ("i", "inter"),
             ("i", "intra"), ("k", "intra"), ("j", "intra")],
            tiles, b,
        )
        separated = order_cost(
            [("i", "inter"), ("k", "inter"), ("j", "inter"),
             ("k", "intra"), ("j", "intra"), ("i", "intra")],
            tiles, b,
        )
        assert paired <= separated

    @given(seed=st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_nonnegative_for_random_orders(self, seed):
        import random as _random

        rng = _random.Random(seed)
        tiles = {"i": 8, "k": 8, "j": 8}
        inter = ["i", "k", "j"]
        intra = ["i", "k", "j"]
        rng.shuffle(inter)
        rng.shuffle(intra)
        full = [(v, "inter") for v in inter] + [(v, "intra") for v in intra]
        assert order_cost(full, tiles, bounds()) >= 0
