"""Tests for the tracer implementations (repro.obs.tracer)."""

import json
import time

import pytest

from repro.arch import intel_i7_5930k
from repro.core import optimize
from repro.obs import (
    NULL_TRACER,
    CollectingTracer,
    JsonlTracer,
    NullTracer,
    activate_tracer,
    current_tracer,
)

from tests.helpers import make_matmul


class TestCollectingTracer:
    def test_event_record_shape(self):
        tracer = CollectingTracer()
        tracer.event("thing.happened", value=3, label="x")
        (record,) = tracer.events
        assert record["format"] == "repro-trace-v1"
        assert record["kind"] == "event"
        assert record["name"] == "thing.happened"
        assert record["attrs"] == {"value": 3, "label": "x"}
        assert record["seq"] == 0
        assert record["ts_ms"] >= 0

    def test_seq_strictly_increases(self):
        tracer = CollectingTracer()
        for index in range(5):
            tracer.event("e", i=index)
        assert [r["seq"] for r in tracer.events] == [0, 1, 2, 3, 4]

    def test_span_brackets_and_counter_delta(self):
        tracer = CollectingTracer()
        tracer.count("outside")
        with tracer.span("work", shard=1):
            tracer.count("inside")
            tracer.count("inside")
        begin, end = tracer.events
        assert begin["kind"] == "span_begin" and begin["name"] == "work"
        assert begin["attrs"] == {"shard": 1}
        assert end["kind"] == "span_end" and end["name"] == "work"
        assert end["elapsed_ms"] >= 0
        # only counters that moved inside the span appear in the delta
        assert end["counters"] == {"inside": 2}

    def test_close_emits_totals(self):
        with CollectingTracer() as tracer:
            tracer.count("a", 2)
            tracer.count("b")
        totals = tracer.events[-1]
        assert totals["kind"] == "counters" and totals["name"] == "totals"
        assert totals["attrs"] == {"a": 2, "b": 1}

    def test_counters_snapshot_is_a_copy(self):
        tracer = CollectingTracer()
        tracer.count("n")
        snap = tracer.counters()
        snap["n"] = 99
        assert tracer.counters() == {"n": 1}


class TestNullTracer:
    def test_disabled_and_inert(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        tracer.event("anything", x=1)
        tracer.count("anything")
        assert tracer.counters() == {}
        with tracer.span("scope", y=2) as inner:
            assert inner is None
        tracer.close()

    def test_span_object_is_shared(self):
        # the no-op span is one reusable object: no allocation per call
        tracer = NullTracer()
        assert tracer.span("a") is tracer.span("b")

    def test_context_manager(self):
        with NullTracer() as tracer:
            assert tracer.enabled is False

    def test_overhead_guard(self):
        """The guarded call-site pattern must stay cheap: ~a million
        ``enabled`` checks plus no-op dispatches in well under a second
        (generous bound; the real cost is tens of milliseconds)."""
        tracer = NULL_TRACER
        started = time.perf_counter()
        for _ in range(200_000):
            if tracer.enabled:
                tracer.event("never", detail="expensive")
            tracer.count("noop")
        elapsed = time.perf_counter() - started
        assert elapsed < 1.0

    def test_optimize_identical_with_explicit_null_tracer(self, arch):
        base = optimize(make_matmul(32)[0], arch)
        nulled = optimize(make_matmul(32)[0], arch, tracer=NullTracer())
        # describe() embeds wall-clock; compare the deterministic parts
        assert base.schedule.describe() == nulled.schedule.describe()
        assert base.temporal.tiles == nulled.temporal.tiles
        assert base.temporal.cost == nulled.temporal.cost
        assert (
            base.temporal.stats.to_dict() == nulled.temporal.stats.to_dict()
        )


class TestAmbientTracer:
    def test_default_is_null(self):
        assert current_tracer() is NULL_TRACER

    def test_activate_and_restore(self):
        tracer = CollectingTracer()
        with activate_tracer(tracer) as active:
            assert active is tracer
            assert current_tracer() is tracer
        assert current_tracer() is NULL_TRACER

    def test_nested_none_mutes_outer(self):
        outer = CollectingTracer()
        with activate_tracer(outer):
            with activate_tracer(None):
                assert current_tracer() is NULL_TRACER
            assert current_tracer() is outer

    def test_ambient_tracer_reaches_optimize(self, arch):
        tracer = CollectingTracer()
        with activate_tracer(tracer):
            optimize(make_matmul(32)[0], arch)
        names = {r["name"] for r in tracer.events}
        assert "optimize" in names and "classify" in names


class TestJsonlTracer:
    def test_writes_parseable_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTracer(str(path)) as tracer:
            tracer.event("e", n=1)
            with tracer.span("s"):
                tracer.count("c")
        lines = path.read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["kind"] for r in records] == [
            "event", "span_begin", "span_end", "counters",
        ]
        assert records[-1]["attrs"] == {"c": 1}

    def test_records_dropped_after_close(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = JsonlTracer(str(path))
        tracer.event("before")
        tracer.close()
        tracer.event("after")  # silently dropped, no error
        tracer.close()  # idempotent
        names = [json.loads(l)["name"] for l in path.read_text().splitlines()]
        assert names == ["before", "totals"]

    def test_unwritable_path_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            JsonlTracer(str(tmp_path / "no" / "such" / "dir" / "t.jsonl"))
