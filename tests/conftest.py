"""Shared fixtures: platforms (Func factories live in tests/helpers.py)."""

from __future__ import annotations

import pytest

from repro.arch import arm_cortex_a15, intel_i7_5930k, intel_i7_6700
from repro.core.emu import clear_emu_cache


@pytest.fixture(autouse=True)
def _fresh_emu_cache():
    """Start every test with a cold emu memo.

    The memo is process-global, so without this the ``stats.emu_cache_*``
    trace counters (and hit-rate assertions) would depend on which tests
    ran earlier in the session.
    """
    clear_emu_cache()
    yield


@pytest.fixture
def arch():
    """Default test platform (the i7-5930K, as in most paper experiments)."""
    return intel_i7_5930k()


@pytest.fixture
def arch_6700():
    return intel_i7_6700()


@pytest.fixture
def arch_arm():
    return arm_cortex_a15()
