"""Shared fixtures: platforms (Func factories live in tests/helpers.py)."""

from __future__ import annotations

import pytest

from repro.arch import arm_cortex_a15, intel_i7_5930k, intel_i7_6700


@pytest.fixture
def arch():
    """Default test platform (the i7-5930K, as in most paper experiments)."""
    return intel_i7_5930k()


@pytest.fixture
def arch_6700():
    return intel_i7_6700()


@pytest.fixture
def arch_arm():
    return arm_cortex_a15()
