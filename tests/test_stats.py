"""Tests for the statistics containers (repro.cachesim.stats)."""

import pytest

from repro.cachesim.stats import HierarchyStats, LevelStats


class TestLevelStats:
    def test_accesses(self):
        s = LevelStats("L1", hits=7, misses=3)
        assert s.accesses == 10

    def test_miss_rate(self):
        s = LevelStats("L1", hits=7, misses=3)
        assert s.miss_rate == pytest.approx(0.3)

    def test_miss_rate_empty(self):
        assert LevelStats("L1").miss_rate == 0.0

    def test_repr(self):
        s = LevelStats("L2", hits=1, misses=2, prefetch_hits=1)
        text = repr(s)
        assert "L2" in text and "1 hits" in text


class TestHierarchyStats:
    def make(self):
        return HierarchyStats(
            levels=[LevelStats("L1"), LevelStats("L2"), LevelStats("L3")],
            memory_lines=10,
            prefetch_memory_lines=20,
            nt_store_lines=5,
            writeback_lines=3,
        )

    def test_level_lookup_is_one_based(self):
        stats = self.make()
        assert stats.level(1).name == "L1"
        assert stats.level(3).name == "L3"

    def test_dram_lines_total(self):
        assert self.make().dram_lines_total == 10 + 20 + 5 + 3

    def test_summary_mentions_everything(self):
        text = self.make().summary()
        assert "L1" in text and "NT-store" in text and "writebacks" in text
