"""Factories for fresh test Funcs (Funcs are mutable; never share)."""

from __future__ import annotations

from repro.ir import Buffer, Func, RVar, Var, float32, int32


def make_matmul(n: int = 64):
    """Fresh matmul Func with its input buffers; returns (func, a, b)."""
    i, j = Var("i"), Var("j")
    k = RVar("k", n)
    a = Buffer("A", (n, n), float32)
    b = Buffer("B", (n, n), float32)
    c = Func("C")
    c[i, j] = 0.0
    c[i, j] = c[i, j] + a[i, k] * b[k, j]
    c.set_bounds({i: n, j: n})
    return c, a, b


def make_transpose_mask(n: int = 64):
    """Fresh transpose-and-mask Func; returns (func, a, b)."""
    x, y = Var("x"), Var("y")
    a = Buffer("A", (n, n), int32)
    b = Buffer("B", (n, n), int32)
    out = Func("Tpm", int32)
    out[y, x] = a[x, y] & b[y, x]
    out.set_bounds({x: n, y: n})
    return out, a, b


def make_copy(n: int = 64):
    """Fresh 2-D copy Func; returns (func, a)."""
    x, y = Var("x"), Var("y")
    a = Buffer("A", (n, n), int32)
    out = Func("Copy", int32)
    out[y, x] = a[y, x]
    out.set_bounds({x: n, y: n})
    return out, a


def make_stencil(n: int = 64):
    """Fresh 5-point stencil Func; returns (func, a)."""
    x, y = Var("x"), Var("y")
    a = Buffer("A", (n + 2, n + 2), float32)
    out = Func("Stencil")
    out[y, x] = (
        a[y, x] + a[y + 1, x] + a[y + 2, x] + a[y + 1, x + 1] + a[y + 1, x + 2]
    )
    out.set_bounds({x: n, y: n})
    return out, a
