"""Self-healing schedule cache: corruption counting, quarantine, repair.

The discipline under test: damaged lines are *counted and healed*,
never silently absorbed.  ``load`` counts each one
(``stats.corrupt_lines_skipped``), ``compact`` preserves the raw bytes
in the ``.quarantine`` sidecar and emits one structured
``cache.corrupt`` trace event, ``heal`` is the detect-quarantine-repair
loop the serve layer runs at startup, and ``check_shard_caches``
cross-checks that keys shared between shard stores (failover writes)
carry bit-identical schedules everywhere.
"""

import json
import os

from repro.cache import ScheduleCache, check_shard_caches, shard_cache_path
from repro.cache.store import _checksum
from repro.core import optimize
from repro.obs import CollectingTracer
from repro.obs.events import EVENT_CACHE_CORRUPT

from tests.helpers import make_matmul, make_transpose_mask

GARBAGE = "@@@ not json @@@"


def _seed_store(path, arch, *, funcs=(make_matmul,)):
    """A store with one good entry per func; returns (cache, options)."""
    from repro.cache import optimize_options

    cache = ScheduleCache(str(path))
    options = optimize_options()
    for make in funcs:
        func, _, _ = make(64)
        cache.put(func, arch, options, optimize(func, arch).schedule)
    return cache, options


def _corrupt(path, *lines):
    with open(path, "a", encoding="utf-8") as handle:
        for line in lines:
            handle.write(line + "\n")


class TestCorruptionCounting:
    def test_load_counts_each_damaged_line(self, tmp_path, arch):
        cache, _ = _seed_store(tmp_path / "c.jsonl", arch)
        _corrupt(
            cache.path,
            GARBAGE,
            json.dumps({"format": "repro-schedule-cache-v1", "key": "k",
                        "schedule": {}, "sha256": "feedface"}),
        )
        fresh = ScheduleCache(cache.path)
        records = fresh.load()
        assert len(records) == 1  # the good entry survives
        assert fresh.stats.corrupt_lines_skipped == 2
        assert len(fresh.load_diagnostics) == 2

    def test_bit_flip_fails_the_checksum(self, tmp_path, arch):
        cache, _ = _seed_store(tmp_path / "c.jsonl", arch)
        with open(cache.path, encoding="utf-8") as handle:
            record = json.loads(handle.readline())
        record["options"] = {"tampered": True}  # checksum now stale
        with open(cache.path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(record) + "\n")
        fresh = ScheduleCache(cache.path)
        assert fresh.load() == {}
        assert fresh.stats.corrupt_lines_skipped == 1


class TestQuarantineAndHeal:
    def test_compact_quarantines_and_traces(self, tmp_path, arch):
        tracer = CollectingTracer()
        cache, _ = _seed_store(tmp_path / "c.jsonl", arch)
        _corrupt(cache.path, GARBAGE)
        traced = ScheduleCache(cache.path, tracer=tracer)
        assert traced.compact() == 1
        sidecar = cache.path + ".quarantine"
        assert os.path.exists(sidecar)
        with open(sidecar, encoding="utf-8") as handle:
            assert GARBAGE in handle.read()
        assert traced.stats.quarantined_lines == 1
        corrupt_events = [
            e for e in tracer.events if e.get("name") == EVENT_CACHE_CORRUPT
        ]
        assert len(corrupt_events) == 1
        assert corrupt_events[0]["attrs"]["lines"] == 1
        assert corrupt_events[0]["attrs"]["quarantine"] == sidecar
        # The store itself is clean after the rewrite.
        verify = ScheduleCache(cache.path)
        verify.load()
        assert verify.stats.corrupt_lines_skipped == 0

    def test_heal_repairs_and_reports(self, tmp_path, arch):
        cache, options = _seed_store(tmp_path / "c.jsonl", arch)
        _corrupt(cache.path, GARBAGE, GARBAGE + " again")
        healer = ScheduleCache(cache.path)
        assert healer.heal() == 2
        assert os.path.exists(cache.path + ".quarantine")
        # Healed store still serves its good entry.
        func, _, _ = make_matmul(64)
        assert healer.get(func, arch, options) is not None

    def test_heal_on_healthy_store_is_a_noop(self, tmp_path, arch):
        cache, _ = _seed_store(tmp_path / "c.jsonl", arch)
        before = os.stat(cache.path).st_mtime_ns
        assert ScheduleCache(cache.path).heal() == 0
        assert os.stat(cache.path).st_mtime_ns == before  # no rewrite churn
        assert not os.path.exists(cache.path + ".quarantine")

    def test_corrupt_line_counted_once_across_heal(self, tmp_path, arch):
        # heal = load (counts) + compact (recounts internally with
        # count_corrupt=False): the line must be counted exactly once.
        cache, _ = _seed_store(tmp_path / "c.jsonl", arch)
        _corrupt(cache.path, GARBAGE)
        healer = ScheduleCache(cache.path)
        healer.heal()
        assert healer.stats.corrupt_lines_skipped == 1
        assert healer.stats.quarantined_lines == 1


class TestShardConsistency:
    def test_consistent_twin_entries(self, tmp_path, arch):
        base = str(tmp_path / "fleet.jsonl")
        # The same key written to two shards (a failover write) with the
        # same deterministic schedule: consistent.
        for shard in (0, 1):
            _seed_store(shard_cache_path(base, shard), arch)
        report = check_shard_caches(base, [0, 1])
        assert report["consistent"] is True
        assert report["shared_keys"] == 1
        assert report["mismatched_keys"] == []
        assert report["shards"]["0"]["entries"] == 1

    def test_divergent_twin_entries_flagged(self, tmp_path, arch):
        base = str(tmp_path / "fleet.jsonl")
        cache0, _ = _seed_store(shard_cache_path(base, 0), arch)
        _seed_store(shard_cache_path(base, 1), arch)
        # Tamper shard 1's entry *with a valid checksum*: same key,
        # different schedule — the determinism contract broken.
        path1 = shard_cache_path(base, 1)
        with open(path1, encoding="utf-8") as handle:
            record = json.loads(handle.readline())
        record["schedule"] = dict(record["schedule"], tampered=1)
        record["sha256"] = _checksum(record)
        with open(path1, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(record) + "\n")
        report = check_shard_caches(base, [0, 1])
        assert report["consistent"] is False
        assert len(report["mismatched_keys"]) == 1

    def test_disjoint_keyspaces_are_trivially_consistent(self, tmp_path, arch):
        base = str(tmp_path / "fleet.jsonl")
        _seed_store(shard_cache_path(base, 0), arch, funcs=(make_matmul,))
        _seed_store(
            shard_cache_path(base, 1), arch, funcs=(make_transpose_mask,)
        )
        report = check_shard_caches(base, [0, 1])
        assert report["consistent"] is True
        assert report["shared_keys"] == 0

    def test_corrupt_lines_surfaced_per_shard(self, tmp_path, arch):
        base = str(tmp_path / "fleet.jsonl")
        cache0, _ = _seed_store(shard_cache_path(base, 0), arch)
        _seed_store(shard_cache_path(base, 1), arch)
        _corrupt(cache0.path, GARBAGE)
        report = check_shard_caches(base, [0, 1])
        assert report["shards"]["0"]["corrupt_lines"] == 1
        assert report["shards"]["1"]["corrupt_lines"] == 0
        # Corruption alone is not inconsistency (checksums caught it).
        assert report["consistent"] is True
