"""Tests for the temporal (Algorithm 2) and spatial (Algorithm 3)
optimizers."""

import pytest

from repro.core import optimize_spatial, optimize_temporal
from repro.core.costs import extract_patterns, working_set_l1, working_set_l2
from repro.ir.analysis import analyze_func
from repro.util import ceil_div

from tests.helpers import make_matmul, make_transpose_mask


class TestTemporalOnMatmul:
    def test_tiles_within_bounds(self, arch):
        c, _, _ = make_matmul(256)
        result = optimize_temporal(c, arch)
        for var, tile in result.tiles.items():
            assert 1 <= tile <= c.bound_of(var)

    def test_all_vars_tiled_assignment(self, arch):
        c, _, _ = make_matmul(256)
        result = optimize_temporal(c, arch)
        assert set(result.tiles) == {"i", "j", "k"}

    def test_column_var_innermost_intra(self, arch):
        c, _, _ = make_matmul(256)
        result = optimize_temporal(c, arch)
        assert result.intra_order[-1] == "j"

    def test_column_vars_not_outermost(self, arch):
        # j and k index contiguous dimensions; only i may be outermost.
        c, _, _ = make_matmul(256)
        result = optimize_temporal(c, arch)
        if result.inter_order:
            assert result.inter_order[0] == "i"

    def test_parallel_constraint_eq13(self, arch):
        c, _, _ = make_matmul(256)
        result = optimize_temporal(c, arch)
        par = result.parallel_var
        assert par is not None
        trips = ceil_div(c.bound_of(par), result.tiles[par])
        assert trips >= arch.total_threads

    def test_working_sets_fit(self, arch):
        c, _, _ = make_matmul(256)
        result = optimize_temporal(c, arch)
        assert result.ws_l1 <= arch.l1.capacity_elements(4)
        assert result.ws_l2 <= arch.l2.capacity_elements(4) // 2

    def test_cost_finite(self, arch):
        c, _, _ = make_matmul(256)
        result = optimize_temporal(c, arch)
        assert result.cost < float("inf")
        assert result.stats.considered > 0

    def test_describe(self, arch):
        c, _, _ = make_matmul(64)
        assert "tiles" in optimize_temporal(c, arch).describe()

    def test_deterministic(self, arch):
        c1, _, _ = make_matmul(128)
        c2, _, _ = make_matmul(128)
        r1 = optimize_temporal(c1, arch)
        r2 = optimize_temporal(c2, arch)
        assert r1.tiles == r2.tiles
        assert r1.inter_order == r2.inter_order

    def test_different_archs_may_differ(self, arch, arch_arm):
        # Not asserting inequality (could coincide), but both must be valid.
        c1, _, _ = make_matmul(128)
        c2, _, _ = make_matmul(128)
        r_intel = optimize_temporal(c1, arch)
        r_arm = optimize_temporal(c2, arch_arm)
        assert r_intel.cost < float("inf")
        assert r_arm.cost < float("inf")

    def test_strided_column_cap_on_syrk(self, arch):
        # syrk's A[j,k] makes large j tiles conflict; the column tile must
        # stay below the strided emu bound.
        from repro.ir import Buffer, Func, RVar, Var

        n = 256
        i, j = Var("i"), Var("j")
        k = RVar("k", n)
        a = Buffer("A", (n, n))
        f = Func("Syrk")
        f[i, j] = 0.0
        f[i, j] = f[i, j] + a[i, k] * a[j, k]
        f.set_bounds({i: n, j: n})
        result = optimize_temporal(f, arch)
        assert result.tiles["j"] <= 64


class TestSpatialOnTranspose:
    def test_identifies_row_col(self, arch):
        f, _, _ = make_transpose_mask(256)
        result = optimize_spatial(f, arch)
        assert result.col_var == "x"
        assert result.row_var == "y"

    def test_tile_width_near_cache_line(self, arch):
        # Eq. 15 is minimized at Tx = lc.
        f, _, _ = make_transpose_mask(1024)
        result = optimize_spatial(f, arch)
        assert result.tile_width == arch.lc(4)

    def test_height_respects_parallel_constraint(self, arch):
        f, _, _ = make_transpose_mask(1024)
        result = optimize_spatial(f, arch)
        trips = ceil_div(1024, result.tile_height)
        assert trips >= arch.total_threads

    def test_cost_finite_and_counted(self, arch):
        f, _, _ = make_transpose_mask(256)
        result = optimize_spatial(f, arch)
        assert result.cost < float("inf")
        assert result.stats.considered > 0

    def test_rejects_1d_output(self, arch):
        from repro.ir import Buffer, Func, Var

        a = Buffer("A", (64,))
        f = Func("F")
        x = Var("x")
        f[x] = a[x]
        f.set_bounds({x: 64})
        with pytest.raises(ValueError):
            optimize_spatial(f, arch)

    def test_describe(self, arch):
        f, _, _ = make_transpose_mask(256)
        assert "tile" in optimize_spatial(f, arch).describe()

    def test_deterministic(self, arch):
        f1, _, _ = make_transpose_mask(512)
        f2, _, _ = make_transpose_mask(512)
        assert optimize_spatial(f1, arch).tiles == optimize_spatial(f2, arch).tiles
