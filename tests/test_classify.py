"""Tests for the Sec. 3.1 classifier across the whole benchmark suite."""

import pytest

from repro.bench import SMALL_SIZES, make_benchmark, size_for
from repro.core import Locality, classify
from repro.ir import Buffer, Func, RVar, Var, float32

from tests.helpers import make_copy, make_matmul, make_stencil, make_transpose_mask


class TestClassifierCore:
    def test_matmul_temporal(self):
        c, _, _ = make_matmul(16)
        decision = classify(c)
        assert decision.locality is Locality.TEMPORAL
        assert not decision.use_nti  # output is accumulated

    def test_transpose_mask_spatial_nti(self):
        f, _, _ = make_transpose_mask(16)
        decision = classify(f)
        assert decision.locality is Locality.SPATIAL
        assert decision.use_nti
        assert [r.name for r in decision.transposed] == ["A"]

    def test_copy_none_nti(self):
        f, _ = make_copy(16)
        decision = classify(f)
        assert decision.locality is Locality.NONE
        assert decision.use_nti

    def test_stencil_none(self):
        f, _ = make_stencil(16)
        decision = classify(f)
        assert decision.locality is Locality.NONE
        assert "stencil" in decision.reason

    def test_reason_strings(self):
        c, _, _ = make_matmul(16)
        assert "temporal" in repr(classify(c))

    def test_temporal_takes_priority_over_transpose(self):
        # A reduction with a transposed input: the extra index wins
        # (first test in Fig. 2's decision tree).
        n = 16
        i, j = Var("i"), Var("j")
        k = RVar("k", n)
        a = Buffer("A", (n, n), float32)
        f = Func("F")
        f[i, j] = 0.0
        f[i, j] = f[i, j] + a[j, k]  # j/i swapped AND reduction k
        f.set_bounds({i: n, j: n})
        assert classify(f).locality is Locality.TEMPORAL


#: Expected (locality, nti) per stage for every Table 4 benchmark.
EXPECTED = {
    "convlayer": [("temporal", False)],
    "doitgen": [("temporal", False), ("none", True)],
    "matmul": [("temporal", False)],
    "3mm": [("temporal", False)] * 3,
    "gemm": [("temporal", False)],
    "trmm": [("temporal", False)],
    "syrk": [("temporal", False)],
    "syr2k": [("temporal", False)],
    "tpm": [("spatial", True)],
    "tp": [("spatial", True)],
    "copy": [("none", True)],
    "mask": [("none", True)],
}


class TestBenchmarkSuiteClassification:
    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_expected_stage_classes(self, name):
        case = make_benchmark(name, **size_for(name, small=True))
        got = []
        for stage in case.pipeline:
            decision = classify(stage)
            got.append((decision.locality.value, decision.use_nti))
        assert got == EXPECTED[name]
