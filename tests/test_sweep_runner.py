"""Tests for the crash-safe sweep runner (repro.sweep.runner).

The worker-subprocess tests use the cheapest real cell there is (copy /
baseline on tiny sizes) so each spawn costs interpreter startup plus a
few milliseconds of simulation.
"""

import json
import math
import os
import subprocess
import sys

import pytest

from repro.experiments import ExperimentConfig, clear_measure_cache, measure_case
from repro.robust import (
    WorkerFaultPlan,
    WorkerFaultSpec,
    corrupt_worker,
    hang_worker,
    kill_worker,
)
from repro.sweep import (
    Journal,
    JournalRecord,
    RetryPolicy,
    STATUS_OK,
    STATUS_QUARANTINED,
    SweepCell,
    SweepRunner,
    plan_cells,
)

CHEAP = SweepCell("copy", "baseline", "i7-5930k", line_budget=2000, fast=True)
CHEAP2 = SweepCell("copy", "proposed", "i7-5930k", line_budget=2000, fast=True)

FAST_RETRY = RetryPolicy(max_attempts=2, backoff_s=0.01)


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_measure_cache()
    yield
    clear_measure_cache()


@pytest.fixture
def journal(tmp_path):
    return Journal(str(tmp_path / "journal.jsonl"))


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_s=-1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)

    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(backoff_s=1.0, multiplier=2.0, jitter=0.0)
        assert policy.delay_before("k", 2) == 1.0
        assert policy.delay_before("k", 3) == 2.0
        assert policy.delay_before("k", 4) == 4.0

    def test_jitter_is_deterministic_per_cell(self):
        policy = RetryPolicy(backoff_s=1.0, jitter=0.5)
        assert policy.delay_before("a", 2) == policy.delay_before("a", 2)
        assert policy.delay_before("a", 2) != policy.delay_before("b", 2)
        assert 1.0 <= policy.delay_before("a", 2) <= 1.5


class TestWorkerFaults:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            WorkerFaultSpec(kind="explode")
        with pytest.raises(ValueError):
            WorkerFaultSpec(kind="kill", on_spawn=0)

    def test_plan_counts_spawns_and_fires_once(self):
        plan = WorkerFaultPlan(kill_worker(2))
        assert plan.env_for_spawn() == {}
        assert plan.env_for_spawn() == {"REPRO_WORKER_FAULT": "kill"}
        assert plan.env_for_spawn() == {}
        assert plan.spawns == 3

    def test_hang_env_encodes_seconds(self):
        plan = WorkerFaultPlan(hang_worker(1, seconds=2.5))
        assert plan.env_for_spawn() == {"REPRO_WORKER_FAULT": "hang:2.5"}


class TestRunner:
    def test_measures_and_journals(self, journal):
        report = SweepRunner(journal, timeout_s=120).run([CHEAP])
        assert report.completed == 1
        assert report.exit_code() == 0
        record = journal.load()[CHEAP.key()]
        assert record.status == STATUS_OK
        assert record.ms > 0
        assert record.schedules  # serialized schedules journaled
        assert record.trail  # diagnostics trail journaled

    def test_journaled_schedule_replays(self, journal):
        from repro.bench import make_benchmark, size_for
        from repro.ir.serialize import schedule_from_dict

        SweepRunner(journal, timeout_s=120).run([CHEAP])
        record = journal.load()[CHEAP.key()]
        case = make_benchmark("copy", **size_for("copy", small=True))
        by_name = {f.name: f for f in case.funcs}
        for payload in record.schedules:
            schedule = schedule_from_dict(by_name[payload["func"]], payload)
            assert schedule.loop_names()

    def test_resume_skips_journaled_cells(self, journal):
        first = SweepRunner(journal, timeout_s=120)
        first.run([CHEAP])
        second = SweepRunner(journal, timeout_s=120)
        report = second.run([CHEAP, CHEAP2])
        assert report.resumed == 1
        assert report.completed == 1
        assert CHEAP.key() not in second.trails  # never re-executed

    def test_duplicate_cells_deduplicated(self, journal):
        report = SweepRunner(journal, timeout_s=120).run([CHEAP, CHEAP])
        assert len(report.outcomes) == 1

    def test_parallel_jobs(self, journal):
        report = SweepRunner(journal, jobs=2, timeout_s=120).run(
            [CHEAP, CHEAP2]
        )
        assert report.completed == 2
        assert len(journal.load()) == 2

    def test_kill_then_retry_succeeds(self, journal):
        plan = WorkerFaultPlan(kill_worker(1))
        report = SweepRunner(
            journal, timeout_s=120, retry=FAST_RETRY, fault_plan=plan
        ).run([CHEAP])
        assert report.completed == 1
        assert report.retried == 1
        assert plan.spawns == 2
        assert journal.load()[CHEAP.key()].attempts == 2

    def test_persistent_corruption_quarantines(self, journal):
        plan = WorkerFaultPlan(corrupt_worker(1, count=None))
        report = SweepRunner(
            journal, timeout_s=120, retry=FAST_RETRY, fault_plan=plan
        ).run([CHEAP])
        assert report.quarantined == 1
        assert report.exit_code() == 5
        record = journal.load()[CHEAP.key()]
        assert record.status == STATUS_QUARANTINED
        assert "corrupt" in record.error

    def test_hung_worker_killed_by_timeout(self, journal):
        plan = WorkerFaultPlan(hang_worker(1, seconds=60))
        report = SweepRunner(
            journal, timeout_s=5, retry=FAST_RETRY, fault_plan=plan
        ).run([CHEAP])
        assert report.completed == 1  # retry after the timeout kill
        assert report.retried == 1

    def test_quarantine_does_not_abort_sweep(self, journal):
        # First cell always corrupt, second clean: the sweep continues.
        plan = WorkerFaultPlan(
            WorkerFaultSpec(kind="corrupt", on_spawn=1, count=2)
        )
        report = SweepRunner(
            journal, timeout_s=120, retry=FAST_RETRY, fault_plan=plan
        ).run([CHEAP, CHEAP2])
        assert report.quarantined == 1
        assert report.completed == 1

    def test_quarantine_is_a_persistent_poison_list(self, journal):
        plan = WorkerFaultPlan(corrupt_worker(1, count=None))
        SweepRunner(
            journal, timeout_s=120, retry=FAST_RETRY, fault_plan=plan
        ).run([CHEAP])
        # A later run resumes the quarantine instead of burning retries
        # on a known-bad cell again (--fresh clears the poison list).
        second = SweepRunner(journal, timeout_s=120)
        report = second.run([CHEAP])
        assert report.quarantined == 1
        assert CHEAP.key() not in second.trails  # not re-executed
        assert journal.load()[CHEAP.key()].status == STATUS_QUARANTINED

    def test_validation(self, journal):
        with pytest.raises(ValueError):
            SweepRunner(journal, jobs=0)
        with pytest.raises(ValueError):
            SweepRunner(journal, timeout_s=0)


class TestInstall:
    def test_journal_seeds_measure_cache(self, journal):
        runner = SweepRunner(journal, timeout_s=120)
        runner.run([CHEAP])
        journaled_ms = journal.load()[CHEAP.key()].ms
        clear_measure_cache()
        ok, bad = runner.install()
        assert (ok, bad) == (1, 0)
        config = ExperimentConfig(line_budget=2000, fast=True)
        # Comes straight from the journal — no simulation in this process.
        assert (
            measure_case("copy", "baseline", "i7-5930k", config=config)
            == journaled_ms
        )

    def test_quarantined_cells_render_nan(self, journal):
        journal.append(
            JournalRecord(cell=CHEAP, status=STATUS_QUARANTINED, error="x")
        )
        SweepRunner(journal).install()
        config = ExperimentConfig(line_budget=2000, fast=True)
        ms = measure_case("copy", "baseline", "i7-5930k", config=config)
        assert math.isnan(ms)


class TestPlanner:
    def test_plan_covers_fig6_and_table5(self):
        from repro.experiments import fig6, table5

        config = ExperimentConfig(
            line_budget=2000, autotune_evals=2, autotune_evals_day=3,
            fast=True,
        )
        cells = plan_cells((fig6, table5), config=config)
        keys = {c.key() for c in cells}
        assert len(keys) == len(cells)  # deduplicated
        assert any(c.kind == "optimize_runtime" for c in cells)
        assert any(
            c.kind == "measure" and c.technique == "proposed_nti"
            for c in cells
        )
        # Planning must not have left anything in the memo.
        import repro.experiments.harness as harness

        assert harness._MEASURE_CACHE == {}

    def test_recording_is_not_reentrant(self):
        from repro.experiments import recording_cells

        with recording_cells(lambda cell: None):
            with pytest.raises(RuntimeError):
                with recording_cells(lambda cell: None):
                    pass


class TestWorkerProtocol:
    def _run_worker(self, stdin_text, env_extra=None):
        repo_src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "src",
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [repo_src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        env.update(env_extra or {})
        return subprocess.run(
            [sys.executable, "-m", "repro.sweep.worker"],
            input=stdin_text,
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )

    def test_worker_happy_path(self):
        proc = self._run_worker(
            json.dumps({"cell": CHEAP.to_dict(), "deadline_s": None})
        )
        assert proc.returncode == 0
        payload = json.loads(proc.stdout.strip())
        assert payload["ok"] and payload["ms"] > 0

    def test_worker_bad_stdin_is_structured(self):
        proc = self._run_worker("this is not json")
        assert proc.returncode == 1
        payload = json.loads(proc.stdout.strip())
        assert payload == {
            "ok": False,
            "error": "ProtocolError",
            "message": payload["message"],
        }

    def test_worker_reports_failure_for_unknown_benchmark(self):
        bad = dict(CHEAP.to_dict(), benchmark="no-such-kernel")
        proc = self._run_worker(json.dumps({"cell": bad}))
        assert proc.returncode == 1
        payload = json.loads(proc.stdout.strip())
        assert payload["ok"] is False
        assert payload["error"]

    def test_worker_runtime_cell(self):
        cell = SweepCell(
            "copy", "", "i7-5930k", 0, kind="optimize_runtime", fast=True
        )
        proc = self._run_worker(json.dumps({"cell": cell.to_dict()}))
        assert proc.returncode == 0
        payload = json.loads(proc.stdout.strip())
        assert payload["ok"] and payload["ms"] >= 0
        assert payload["schedules"] is None
