"""Parallel candidate evaluation must be bit-identical to the serial scan.

The Algorithm 2/3 searches accept ``jobs=N``; the acceptance bar is not
"close" but *equality*: same chosen tiles and orders, same Eq. 11 cost,
and the same ``CandidateStats`` accounting (Table 5's candidate counts),
whether candidates were priced serially or across worker processes.
"""

import pytest

from repro.core import optimize
from repro.core.parallel import (
    GroupOutcome,
    default_jobs,
    merge_outcomes,
    resolve_jobs,
)
from repro.core.spatial import optimize_spatial
from repro.core.temporal import optimize_temporal
from repro.ir.serialize import schedule_to_dict

from tests.helpers import (
    make_copy,
    make_matmul,
    make_stencil,
    make_transpose_mask,
)


class TestResolveJobs:
    def test_zero_means_auto(self):
        assert resolve_jobs(0) == default_jobs()
        assert default_jobs() >= 1

    def test_positive_passes_through(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(7) == 7

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="jobs must be >= 0"):
            resolve_jobs(-1)


class TestMergeOutcomes:
    def test_first_minimum_wins_on_ties(self):
        # Strict < against the running best: the earliest group holding
        # the minimal cost must win, exactly like the serial scan.
        first = GroupOutcome(best=(5.0, "first"), considered=2)
        tied = GroupOutcome(best=(5.0, "tied-later"), considered=3)
        merged = merge_outcomes([first, tied])
        assert merged.best == (5.0, "first")
        assert merged.considered == 5

    def test_later_strict_improvement_wins(self):
        merged = merge_outcomes(
            [GroupOutcome(best=(5.0, "a")), GroupOutcome(best=(4.0, "b"))]
        )
        assert merged.best == (4.0, "b")

    def test_empty_groups_and_pruned_counts_sum(self):
        merged = merge_outcomes(
            [
                GroupOutcome(best=None, considered=0, pruned={"capacity": 2}),
                GroupOutcome(
                    best=(1.0, "x"), considered=4, pruned={"capacity": 1, "parallelism": 3}
                ),
            ]
        )
        assert merged.best == (1.0, "x")
        assert merged.considered == 4
        assert merged.pruned == {"capacity": 3, "parallelism": 3}

    def test_all_rejected(self):
        assert merge_outcomes([GroupOutcome(), GroupOutcome()]).best is None


def _temporal_fields(result):
    return (
        result.tiles,
        result.intra_order,
        result.inter_order,
        result.cost,
        result.stats.to_dict(),
    )


def _spatial_fields(result):
    return (
        result.tiles,
        result.row_var,
        result.col_var,
        result.parallel_var,
        result.cost,
        result.stats.to_dict(),
    )


class TestTemporalEquivalence:
    @pytest.mark.parametrize("factory,size", [(make_matmul, 128), (make_stencil, 96)])
    def test_serial_and_parallel_identical(self, arch, factory, size):
        serial = optimize_temporal(factory(size)[0], arch, jobs=1)
        parallel = optimize_temporal(factory(size)[0], arch, jobs=4)
        assert _temporal_fields(serial) == _temporal_fields(parallel)

    def test_auto_jobs_identical(self, arch):
        serial = optimize_temporal(make_matmul(128)[0], arch, jobs=1)
        auto = optimize_temporal(make_matmul(128)[0], arch, jobs=0)
        assert _temporal_fields(serial) == _temporal_fields(auto)


class TestSpatialEquivalence:
    @pytest.mark.parametrize(
        "factory,size", [(make_transpose_mask, 128), (make_copy, 128)]
    )
    def test_serial_and_parallel_identical(self, arch, factory, size):
        serial = optimize_spatial(factory(size)[0], arch, jobs=1)
        parallel = optimize_spatial(factory(size)[0], arch, jobs=4)
        assert _spatial_fields(serial) == _spatial_fields(parallel)


class TestFullFlowEquivalence:
    def test_optimize_schedule_identical_across_jobs(self, arch):
        serial = optimize(make_matmul(128)[0], arch, jobs=1)
        parallel = optimize(make_matmul(128)[0], arch, jobs=4)
        assert schedule_to_dict(serial.schedule) == schedule_to_dict(
            parallel.schedule
        )
        assert (
            serial.temporal.stats.to_dict()
            == parallel.temporal.stats.to_dict()
        )

    def test_spatial_flow_identical_across_jobs(self, arch):
        serial = optimize(make_transpose_mask(128)[0], arch, jobs=1)
        parallel = optimize(make_transpose_mask(128)[0], arch, jobs=4)
        assert schedule_to_dict(serial.schedule) == schedule_to_dict(
            parallel.schedule
        )
