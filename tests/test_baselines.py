"""Tests for the comparison techniques (repro.baselines)."""

import pytest

from repro.baselines import (
    Autotuner,
    autoschedule,
    baseline_schedule,
    tss_schedule,
    tss_tiles,
    tts_schedule,
    tts_tiles,
)
from repro.ir import LoopKind, lower
from repro.ir.validate import validate_schedule
from repro.sim import Machine

from tests.helpers import make_copy, make_matmul, make_transpose_mask


class TestBaselineSchedule:
    def test_parallel_outer_vector_inner(self, arch):
        c, _, _ = make_matmul(64)
        s = baseline_schedule(c, arch)
        assert s.loops()[0].kind is LoopKind.PARALLEL
        vec = [l for l in s.loops() if l.kind is LoopKind.VECTORIZED]
        assert len(vec) == 1

    def test_contiguous_var_brought_innermost(self, arch):
        # matmul's default order ends with k; baseline reorders j inward.
        c, _, _ = make_matmul(64)
        s = baseline_schedule(c, arch)
        inner_origins = s.loops()[-1].origin
        assert "j" in inner_origins

    def test_no_tiling(self, arch):
        c, _, _ = make_matmul(64)
        s = baseline_schedule(c, arch)
        kinds = [d.kind for d in s.directives]
        assert "split" not in kinds or all(
            d.args[0] in ("j",) for d in s.directives if d.kind == "split"
        )

    def test_validates_and_lowers(self, arch):
        for factory in (make_matmul, make_copy, make_transpose_mask):
            func = factory(64)[0]
            s = baseline_schedule(func, arch)
            validate_schedule(s)
            assert lower(func, s)


class TestAutoScheduler:
    def test_reductions_untiled(self, arch):
        c, _, _ = make_matmul(256)
        result = autoschedule(c, arch)
        assert result.tiles["k"] == 256

    def test_output_tiles_fit_budget(self, arch):
        c, _, _ = make_matmul(256)
        result = autoschedule(c, arch)
        budget = (arch.l3.size // arch.n_cores) // 4  # default LLC share
        assert result.footprint_elements <= budget * 1.01

    def test_explicit_budget_respected(self, arch):
        c, _, _ = make_matmul(256)
        result = autoschedule(c, arch, cache_budget_bytes=64 * 1024)
        assert result.footprint_elements <= (64 * 1024 // 4) * 1.01

    def test_enough_parallelism(self, arch):
        c, _, _ = make_matmul(256)
        result = autoschedule(c, arch)
        from repro.util import ceil_div
        grid = 1
        for v in ("i", "j"):
            grid *= ceil_div(256, result.tiles[v])
        assert grid >= arch.n_cores

    def test_never_nontemporal(self, arch):
        f, _ = make_copy(256)
        assert not autoschedule(f, arch).schedule.nontemporal

    def test_validates_and_lowers(self, arch):
        for factory in (make_matmul, make_copy, make_transpose_mask):
            func = factory(128)[0]
            result = autoschedule(func, arch)
            validate_schedule(result.schedule)
            assert lower(func, result.schedule)

    def test_custom_budget_shrinks_tiles(self, arch):
        c1, _, _ = make_matmul(256)
        big = autoschedule(c1, arch).tiles
        c2, _, _ = make_matmul(256)
        small = autoschedule(c2, arch, cache_budget_bytes=8 * 1024).tiles
        assert small["j"] <= big["j"]


class TestAutotuner:
    def make_machine(self, arch):
        return Machine(arch, line_budget=4000)

    def test_finds_a_schedule(self, arch):
        c, _, _ = make_matmul(64)
        result = Autotuner(self.make_machine(arch), evaluations=6).tune(c)
        assert result.best_ms < float("inf")
        assert result.evaluations == 6
        validate_schedule(result.schedule)

    def test_seed_reproducible(self, arch):
        c1, _, _ = make_matmul(64)
        c2, _, _ = make_matmul(64)
        machine = self.make_machine(arch)
        r1 = Autotuner(machine, evaluations=5, seed=7).tune(c1)
        r2 = Autotuner(machine, evaluations=5, seed=7).tune(c2)
        assert r1.best_tiles == r2.best_tiles
        assert r1.best_ms == pytest.approx(r2.best_ms)

    def test_more_budget_never_worse(self, arch):
        c1, _, _ = make_matmul(64)
        c2, _, _ = make_matmul(64)
        machine = self.make_machine(arch)
        short = Autotuner(machine, evaluations=3, seed=3).tune(c1)
        long = Autotuner(machine, evaluations=10, seed=3).tune(c2)
        assert long.best_ms <= short.best_ms + 1e-9

    def test_improvements_decreasing(self, arch):
        c, _, _ = make_matmul(64)
        result = Autotuner(self.make_machine(arch), evaluations=8).tune(c)
        imps = result.improvements()
        assert imps == sorted(imps, reverse=True)

    def test_reductions_not_tiled_by_default(self, arch):
        c, _, _ = make_matmul(64)
        result = Autotuner(self.make_machine(arch), evaluations=6).tune(c)
        assert result.best_tiles.get("k", 64) == 64

    def test_tile_reductions_flag(self, arch):
        c, _, _ = make_matmul(64)
        tuner = Autotuner(
            self.make_machine(arch), evaluations=12, seed=2,
            tile_reductions=True,
        )
        result = tuner.tune(c)
        assert result.best_ms < float("inf")

    def test_rejects_zero_budget(self, arch):
        with pytest.raises(ValueError):
            Autotuner(self.make_machine(arch), evaluations=0)


class TestTSS:
    def test_tiles_within_bounds(self, arch):
        c, _, _ = make_matmul(256)
        result = tss_tiles(c, arch)
        for var, tile in result.tiles.items():
            assert 1 <= tile <= 256

    def test_differs_from_prefetch_aware(self, arch):
        # TSS is prefetch-blind; on a conflict-prone size its tiles should
        # not coincide with the proposed model's everywhere.
        from repro.core import optimize_temporal

        c1, _, _ = make_matmul(2048)
        c2, _, _ = make_matmul(2048)
        tss = tss_tiles(c1, arch).tiles
        ours = optimize_temporal(c2, arch).tiles
        assert tss != ours

    def test_schedule_with_order(self, arch):
        c, _, _ = make_matmul(128)
        s = tss_schedule(c, arch, loop_order=["k", "i", "j"])
        validate_schedule(s)
        assert lower(c, s)

    def test_cost_recorded(self, arch):
        c, _, _ = make_matmul(128)
        assert tss_tiles(c, arch).cost < float("inf")


class TestTTS:
    def test_tiles_within_bounds(self, arch):
        c, _, _ = make_matmul(256)
        result = tts_tiles(c, arch)
        for var, tile in result.tiles.items():
            assert 1 <= tile <= 256

    def test_tts_tiles_larger_than_tss(self, arch):
        # TurboTiling targets L2+L3, so its tile volume should be at least
        # TSS's (which targets L1+L2).
        c1, _, _ = make_matmul(1024)
        c2, _, _ = make_matmul(1024)
        tss = tss_tiles(c1, arch).tiles
        tts = tts_tiles(c2, arch).tiles
        vol = lambda t: t["i"] * t["j"] * t["k"]
        assert vol(tts) >= vol(tss)

    def test_schedule_lowers(self, arch):
        c, _, _ = make_matmul(128)
        s = tts_schedule(c, arch, loop_order=["i", "k", "j"])
        validate_schedule(s)
        assert lower(c, s)

    def test_works_without_l3(self, arch_arm):
        c, _, _ = make_matmul(128)
        result = tts_tiles(c, arch_arm)
        assert result.cost < float("inf")
