"""Tests for the architecture descriptions (paper Tables 1 and 3)."""

import pytest

from repro.arch import (
    ArchSpec,
    CacheSpec,
    PLATFORMS,
    arm_cortex_a15,
    intel_i7_5930k,
    intel_i7_6700,
    platform_by_name,
)


class TestCacheSpec:
    def test_num_sets(self):
        spec = CacheSpec(size=32 * 1024, line_size=64, ways=8, latency=4)
        assert spec.num_sets == 64

    def test_num_lines(self):
        spec = CacheSpec(size=32 * 1024, line_size=64, ways=8, latency=4)
        assert spec.num_lines == 512

    def test_elements_per_line(self):
        spec = CacheSpec(size=32 * 1024, line_size=64, ways=8, latency=4)
        assert spec.elements_per_line(4) == 16
        assert spec.elements_per_line(8) == 8
        assert spec.elements_per_line(1) == 64

    def test_capacity_elements(self):
        spec = CacheSpec(size=32 * 1024, line_size=64, ways=8, latency=4)
        assert spec.capacity_elements(4) == 8192

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            CacheSpec(size=0, line_size=64, ways=8, latency=4)

    def test_rejects_ragged_geometry(self):
        with pytest.raises(ValueError):
            CacheSpec(size=1000, line_size=64, ways=8, latency=4)

    def test_rejects_bad_dts(self):
        spec = CacheSpec(size=32 * 1024, line_size=64, ways=8, latency=4)
        with pytest.raises(ValueError):
            spec.elements_per_line(0)


class TestPlatformsMatchTable3:
    """Table 3 of the paper, row by row."""

    @pytest.mark.parametrize(
        "factory,l1way,l1cs,l2way,l2cs,cores,threads",
        [
            (intel_i7_5930k, 8, 32, 8, 256, 6, 2),
            (intel_i7_6700, 8, 32, 8, 256, 4, 2),
            (arm_cortex_a15, 2, 32, 16, 512, 4, 1),
        ],
    )
    def test_row(self, factory, l1way, l1cs, l2way, l2cs, cores, threads):
        arch = factory()
        assert arch.l1.line_size == 64
        assert arch.l1.ways == l1way
        assert arch.l1.size == l1cs * 1024
        assert arch.l2.ways == l2way
        assert arch.l2.size == l2cs * 1024
        assert arch.n_cores == cores
        assert arch.threads_per_core == threads

    def test_arm_has_no_l3(self):
        assert arm_cortex_a15().l3 is None

    def test_intel_has_l3(self):
        assert intel_i7_5930k().l3 is not None
        assert intel_i7_6700().l3 is not None

    def test_arm_l2_shared(self):
        assert arm_cortex_a15().l2_shared_across_cores

    def test_arm_no_nt_stores(self):
        assert not arm_cortex_a15().supports_nt_stores

    def test_intel_nt_stores(self):
        assert intel_i7_5930k().supports_nt_stores


class TestArchSpecDerived:
    def test_total_threads(self):
        assert intel_i7_5930k().total_threads == 12
        assert arm_cortex_a15().total_threads == 4

    def test_vector_lanes(self):
        arch = intel_i7_5930k()
        assert arch.vector_lanes(4) == 8   # AVX2 f32
        assert arch.vector_lanes(8) == 4   # AVX2 f64
        assert arm_cortex_a15().vector_lanes(4) == 4  # NEON f32

    def test_lc(self):
        assert intel_i7_5930k().lc(4) == 16
        assert intel_i7_5930k().lc(8) == 8

    def test_cache_level_lookup(self):
        arch = intel_i7_5930k()
        assert arch.cache_level(1) is arch.l1
        assert arch.cache_level(2) is arch.l2
        assert arch.cache_level(3) is arch.l3

    def test_cache_level_errors(self):
        with pytest.raises(ValueError):
            intel_i7_5930k().cache_level(4)
        with pytest.raises(ValueError):
            arm_cortex_a15().cache_level(3)

    def test_levels_tuple(self):
        assert len(intel_i7_5930k().levels) == 3
        assert len(arm_cortex_a15().levels) == 2

    def test_effective_ways_smt(self):
        # Intel: L1/L2 ways halved by 2 SMT threads per core.
        arch = intel_i7_5930k()
        assert arch.effective_ways(1) == 4
        assert arch.effective_ways(2) == 4

    def test_effective_ways_shared_l2_arm(self):
        # ARM: one thread per core, but the L2 is shared by 4 cores —
        # the Sec. 5.1 model change divides by NCores instead.
        arch = arm_cortex_a15()
        assert arch.effective_ways(1) == 2
        assert arch.effective_ways(2) == 16 // 4

    def test_access_cost_levels_increase(self):
        arch = intel_i7_5930k()
        costs = [arch.access_cost(level) for level in (1, 2, 3, 4)]
        assert costs == sorted(costs)
        assert costs[-1] == arch.mem_latency

    def test_access_cost_no_l3_falls_to_memory(self):
        arch = arm_cortex_a15()
        assert arch.access_cost(3) == arch.mem_latency

    def test_with_overrides(self):
        arch = intel_i7_5930k().with_overrides(n_cores=1)
        assert arch.n_cores == 1
        assert arch.l1 == intel_i7_5930k().l1

    def test_describe_mentions_name(self):
        assert "5930K" in intel_i7_5930k().describe()


class TestPlatformRegistry:
    def test_lookup_all(self):
        for key in PLATFORMS:
            assert platform_by_name(key).name

    def test_lookup_case_insensitive(self):
        assert platform_by_name("I7-5930K").name == "Intel i7-5930K"

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            platform_by_name("pentium-iii")
