"""Tests for the stable entry point (``repro.api``)."""

import dataclasses

import pytest

import repro
from repro.api import (
    MODE_AUTO,
    MODE_SAFE,
    MODE_SPATIAL,
    MODE_TEMPORAL,
    OptimizeOptions,
    OptimizeRequest,
    OptimizeResult,
    optimize,
)
from repro.core import optimize as core_optimize
from repro.ir import Pipeline
from repro.ir.serialize import schedule_to_dict
from repro.robust import FallbackPolicy, RUNG_CACHE, RUNG_PROPOSED

from tests.helpers import make_matmul, make_transpose_mask


def _pipeline(n=64):
    func, _, _ = make_matmul(n)
    return Pipeline([func])


class TestRequestValidation:
    def test_needs_exactly_one_target(self, arch):
        func, _, _ = make_matmul(64)
        with pytest.raises(ValueError, match="exactly one"):
            OptimizeRequest(arch=arch)
        with pytest.raises(ValueError, match="exactly one"):
            OptimizeRequest(arch=arch, func=func, pipeline=_pipeline())

    def test_unknown_mode(self, arch):
        with pytest.raises(ValueError, match="unknown mode"):
            OptimizeRequest(
                arch=arch, func=make_matmul(64)[0], mode="turbo"
            )

    def test_pipeline_rejects_search_modes(self, arch):
        for mode in (MODE_TEMPORAL, MODE_SPATIAL):
            with pytest.raises(ValueError, match="single Func"):
                OptimizeRequest(arch=arch, pipeline=_pipeline(), mode=mode)

    def test_negative_jobs(self, arch):
        with pytest.raises(ValueError, match="jobs"):
            OptimizeRequest(
                arch=arch,
                func=make_matmul(64)[0],
                options=OptimizeOptions(jobs=-2),
            )

    def test_non_positive_deadline(self, arch):
        with pytest.raises(ValueError, match="deadline_ms"):
            OptimizeRequest(
                arch=arch, func=make_matmul(64)[0], deadline_ms=0
            )

    def test_policy_requires_safe_mode(self, arch):
        with pytest.raises(ValueError, match="mode='safe'"):
            OptimizeRequest(
                arch=arch,
                func=make_matmul(64)[0],
                policy=FallbackPolicy.lenient(),
            )

    def test_request_is_frozen(self, arch):
        request = OptimizeRequest(arch=arch, func=make_matmul(64)[0])
        with pytest.raises(dataclasses.FrozenInstanceError):
            request.jobs = 4

    def test_with_overrides_revalidates(self, arch):
        request = OptimizeRequest(arch=arch, func=make_matmul(64)[0])
        bumped = request.with_overrides(options=OptimizeOptions(jobs=4))
        assert bumped.options.jobs == 4
        assert bumped.jobs == 4  # mirrored legacy read, warning-free
        with pytest.raises(ValueError):
            request.with_overrides(mode="turbo")

    def test_with_overrides_legacy_kwargs_warn_but_work(self, arch):
        request = OptimizeRequest(arch=arch, func=make_matmul(64)[0])
        with pytest.warns(DeprecationWarning, match="with_overrides"):
            bumped = request.with_overrides(jobs=4)
        assert bumped.options.jobs == 4
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="not both"):
                request.with_overrides(
                    jobs=4, options=OptimizeOptions(jobs=2)
                )


class TestDispatch:
    def test_auto_matches_legacy_optimize(self, arch):
        result = optimize(
            OptimizeRequest(arch=arch, func=make_matmul(64)[0])
        )
        legacy = core_optimize(make_matmul(64)[0], arch)
        assert result.mode == MODE_AUTO
        assert schedule_to_dict(result.schedule) == schedule_to_dict(
            legacy.schedule
        )
        assert result.stats.to_dict() == legacy.temporal.stats.to_dict()
        assert result.cost == legacy.temporal.cost

    def test_temporal_mode_runs_algorithm_2_only(self, arch):
        result = optimize(
            OptimizeRequest(
                arch=arch, func=make_matmul(64)[0], mode=MODE_TEMPORAL
            )
        )
        assert result.schedule is None
        assert result.temporal is not None
        assert result.spatial is None
        assert set(result.temporal.tiles) == {"i", "j", "k"}

    def test_spatial_mode_runs_algorithm_3_only(self, arch):
        result = optimize(
            OptimizeRequest(
                arch=arch,
                func=make_transpose_mask(64)[0],
                mode=MODE_SPATIAL,
            )
        )
        assert result.schedule is None
        assert result.spatial is not None
        assert result.stats is result.spatial.stats

    def test_safe_mode_reports_rung(self, arch):
        result = optimize(
            OptimizeRequest(arch=arch, func=make_matmul(64)[0], mode=MODE_SAFE)
        )
        assert result.rung == RUNG_PROPOSED
        assert not result.fell_back
        assert result.schedule is not None
        assert result.diagnostics is not None

    def test_pipeline_auto_returns_readonly_mapping(self, arch):
        result = optimize(OptimizeRequest(arch=arch, pipeline=_pipeline()))
        assert result.schedules is not None
        assert len(result.schedules) == 1
        with pytest.raises(TypeError):
            result.schedules[make_matmul(64)[0]] = None

    def test_pipeline_safe_mode(self, arch):
        result = optimize(
            OptimizeRequest(arch=arch, pipeline=_pipeline(), mode=MODE_SAFE)
        )
        assert len(result.schedules) == 1
        assert not result.fell_back

    def test_jobs_do_not_change_the_result(self, arch):
        serial = optimize(
            OptimizeRequest(
                arch=arch,
                func=make_matmul(128)[0],
                options=OptimizeOptions(jobs=1),
            )
        )
        parallel = optimize(
            OptimizeRequest(
                arch=arch,
                func=make_matmul(128)[0],
                options=OptimizeOptions(jobs=4),
            )
        )
        assert schedule_to_dict(serial.schedule) == schedule_to_dict(
            parallel.schedule
        )


class TestCachePath:
    def test_auto_mode_round_trip(self, arch, tmp_path):
        path = str(tmp_path / "schedules.jsonl")
        request = OptimizeRequest(
            arch=arch, func=make_matmul(64)[0], cache_path=path
        )
        cold = optimize(request)
        warm = optimize(
            OptimizeRequest(
                arch=arch, func=make_matmul(64)[0], cache_path=path
            )
        )
        assert schedule_to_dict(cold.schedule) == schedule_to_dict(
            warm.schedule
        )
        # The warm run skipped the search entirely.
        assert warm.temporal is None

    def test_safe_mode_uses_the_cache(self, arch, tmp_path):
        path = str(tmp_path / "schedules.jsonl")
        first = optimize(
            OptimizeRequest(
                arch=arch,
                func=make_matmul(64)[0],
                mode=MODE_SAFE,
                cache_path=path,
            )
        )
        second = optimize(
            OptimizeRequest(
                arch=arch,
                func=make_matmul(64)[0],
                mode=MODE_SAFE,
                cache_path=path,
            )
        )
        assert first.rung == RUNG_PROPOSED
        assert second.rung == RUNG_CACHE
        assert not second.fell_back


class TestReExports:
    def test_package_level_names(self):
        assert repro.OptimizeRequest is OptimizeRequest
        assert repro.OptimizeResult is OptimizeResult
        assert repro.api.optimize is optimize

    def test_result_is_frozen(self, arch):
        result = optimize(
            OptimizeRequest(arch=arch, func=make_matmul(64)[0])
        )
        with pytest.raises(dataclasses.FrozenInstanceError):
            result.schedule = None
