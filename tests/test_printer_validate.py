"""Tests for the pseudo-C printer and the schedule validator."""

import pytest

from repro.ir import Schedule, lower, print_expr, print_nest
from repro.ir.expr import Const, VarRef, minimum
from repro.ir.printer import print_index_tree
from repro.ir.schedule import LeafIndex, SplitIndex
from repro.ir.validate import validate_schedule
from repro.util import ScheduleError

from tests.helpers import make_copy, make_matmul


class TestPrintExpr:
    def test_simple(self):
        assert print_expr(VarRef("i") + 1) == "i + 1"

    def test_precedence_parens(self):
        e = (VarRef("i") + 1) * VarRef("j")
        assert print_expr(e) == "(i + 1) * j"

    def test_no_spurious_parens(self):
        e = VarRef("i") * VarRef("j") + 1
        assert print_expr(e) == "i * j + 1"

    def test_min_prints_as_call(self):
        assert print_expr(minimum(VarRef("i"), 3)) == "min(i, 3)"

    def test_const(self):
        assert print_expr(Const(7)) == "7"

    def test_access(self):
        c, a, _ = make_matmul(8)
        assert print_expr(a[VarRef("i"), VarRef("k")]) == "A[i][k]"


class TestPrintNest:
    def test_matmul_default(self):
        c, _, _ = make_matmul(8)
        text = print_nest(lower(c)[1])
        assert "for (i = 0; i < 8; i++)" in text
        assert "C[i][j] = C[i][j] + A[i][k] * B[k][j];" in text

    def test_scheduled_nest_annotations(self):
        c, _, _ = make_matmul(8)
        s = Schedule(c)
        s.split("i", "io", "ii", 4).vectorize("k").parallel("io")
        text = print_nest(lower(c, s)[1])
        assert "// parallel" in text
        assert "// vectorized" in text
        assert "i = (io * 4 + ii);" in text

    def test_guard_printed(self):
        c, _, _ = make_matmul(10)
        s = Schedule(c)
        s.split("i", "io", "ii", 4)
        text = print_nest(lower(c, s)[1])
        assert "if (i >= 10) continue;" in text

    def test_nontemporal_annotation(self):
        f, _ = make_copy(8)
        s = Schedule(f)
        s.store_nontemporal()
        assert "non-temporal" in print_nest(lower(f, s)[0])

    def test_index_tree_printer(self):
        tree = SplitIndex(LeafIndex("io"), LeafIndex("ii"), 4)
        assert print_index_tree(tree) == "(io * 4 + ii)"


class TestValidator:
    def test_valid_schedule_passes(self):
        c, _, _ = make_matmul(16)
        s = Schedule(c)
        s.split("i", "io", "ii", 4).vectorize("k").parallel("io")
        validate_schedule(s)  # should not raise

    def test_two_parallel_loops_rejected(self):
        c, _, _ = make_matmul(16)
        s = Schedule(c)
        s.parallel("i")
        s.parallel("j")
        with pytest.raises(ScheduleError):
            validate_schedule(s)

    def test_two_vectorized_loops_rejected(self):
        c, _, _ = make_matmul(16)
        s = Schedule(c)
        s.vectorize("j")
        s.vectorize("k")
        with pytest.raises(ScheduleError):
            validate_schedule(s)

    def test_huge_vectorized_loop_rejected(self):
        c, _, _ = make_matmul(1024)
        s = Schedule(c)
        s.vectorize("k")
        with pytest.raises(ScheduleError):
            validate_schedule(s)

    def test_guarded_overshoot_accepted(self):
        c, _, _ = make_matmul(10)
        s = Schedule(c)
        s.split("i", "io", "ii", 4)
        validate_schedule(s)

    def test_fused_schedule_passes(self):
        c, _, _ = make_matmul(16)
        s = Schedule(c)
        s.fuse("i", "j", "ij")
        validate_schedule(s)

    def test_lower_validates_by_default(self):
        c, _, _ = make_matmul(16)
        s = Schedule(c)
        s.parallel("i")
        s.parallel("j")
        with pytest.raises(ScheduleError):
            lower(c, s)
