"""Crash-resilience: SIGKILL a sweep mid-run, resume, compare outputs.

This is the acceptance test of the crash-safe runner: killing the driver
partway through must not lose completed cells, the re-run must not
re-execute them, and the final rendered values must be bitwise-identical
to a never-interrupted run (simulated measurements are deterministic, so
any divergence means state leaked through the journal).
"""

import os
import signal
import subprocess
import sys
import time

import pytest

#: A small sweep: six cheap cells, executed sequentially (jobs=1) so the
#: driver is guaranteed to be mid-sweep when the first record lands.
DRIVER = """
import sys
from repro.sweep import Journal, SweepRunner, SweepCell

CELLS = [
    SweepCell(b, t, "i7-5930k", line_budget=2000, fast=True)
    for b, t in [
        ("copy", "baseline"), ("copy", "proposed"),
        ("mask", "baseline"), ("mask", "proposed"),
        ("tp", "baseline"), ("tpm", "baseline"),
    ]
]

journal = Journal(sys.argv[1])
report = SweepRunner(journal, timeout_s=120, progress=sys.stderr).run(CELLS)
print(f"resumed={report.resumed}", file=sys.stderr)
for key in sorted(r.key for r in journal.load().values()):
    record = journal.load()[key]
    print(f"{key} {record.ms!r}")
"""


def _spawn(journal_path, tmp_path):
    repo_src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [repo_src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    driver = tmp_path / "driver.py"
    driver.write_text(DRIVER)
    return subprocess.Popen(
        [sys.executable, str(driver), str(journal_path)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )


def _wait_for_journal(path, min_lines, proc, timeout=120.0):
    """Poll until the journal holds ``min_lines`` records (or give up)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            return  # driver finished before we could interrupt it
        try:
            with open(path) as handle:
                if sum(1 for line in handle if line.strip()) >= min_lines:
                    return
        except FileNotFoundError:
            pass
        time.sleep(0.05)
    pytest.fail("journal never reached the expected size")


@pytest.mark.slow
def test_sigkill_midway_resume_is_lossless_and_identical(tmp_path):
    interrupted = tmp_path / "interrupted.jsonl"
    control = tmp_path / "control.jsonl"

    # Run 1: SIGKILL the driver once the first cells are journaled.
    victim = _spawn(interrupted, tmp_path)
    _wait_for_journal(interrupted, 2, victim)
    if victim.poll() is None:
        os.kill(victim.pid, signal.SIGKILL)
    victim.communicate()

    journaled_before = sum(
        1 for line in open(interrupted) if line.strip()
    )
    assert journaled_before >= 1  # completed cells survived the kill

    # Run 2: resume to completion on the same journal.
    resumed = _spawn(interrupted, tmp_path)
    out_resumed, err_resumed = resumed.communicate(timeout=300)
    assert resumed.returncode == 0, err_resumed

    # The resumed run must have skipped every journaled cell...
    resumed_counts = [
        line for line in err_resumed.splitlines()
        if line.startswith("resumed=")
    ]
    assert resumed_counts and int(resumed_counts[0].split("=")[1]) >= 1

    # Control: one uninterrupted run on a fresh journal.
    clean = _spawn(control, tmp_path)
    out_clean, err_clean = clean.communicate(timeout=300)
    assert clean.returncode == 0, err_clean

    # ...and the final values must be bitwise-identical (repr round-trip).
    assert out_resumed == out_clean
    assert len(out_resumed.splitlines()) == 6


@pytest.mark.slow
def test_torn_final_append_costs_at_most_one_cell(tmp_path):
    """A SIGKILL can tear the very line being appended; the resume must
    skip it with a diagnostic and re-measure only that cell."""
    from repro.sweep import Journal, SweepRunner, SweepCell

    cell = SweepCell("copy", "baseline", "i7-5930k", line_budget=2000, fast=True)
    journal = Journal(str(tmp_path / "torn.jsonl"))
    SweepRunner(journal, timeout_s=120).run([cell])
    # Tear the record in half, as an ill-timed SIGKILL would.
    with open(journal.path) as handle:
        line = handle.read()
    with open(journal.path, "w") as handle:
        handle.write(line[: len(line) // 2])

    runner = SweepRunner(journal, timeout_s=120)
    report = runner.run([cell])
    assert report.completed == 1  # re-measured, not resumed
    assert any("unparsable" in d for d in report.journal_diagnostics)
