"""Tests for the numerical interpreter (repro.sim.interpret).

The headline property: **schedules never change results** — any legal
schedule of a benchmark computes the same output (up to float reduction
re-association) as the unscheduled reference, which itself matches numpy.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import optimize
from repro.ir import Buffer, Func, RVar, Schedule, Var, float32, int32
from repro.sim import BufferStore, execute, execute_pipeline
from repro.sim.interpret import execute_nest
from repro.ir.lower import lower

from tests.helpers import make_copy, make_matmul, make_stencil, make_transpose_mask


def rand(shape, seed, dtype=np.float32, ints=False):
    rng = np.random.default_rng(seed)
    if ints:
        return rng.integers(0, 1 << 20, size=shape, dtype=np.int64)
    return rng.standard_normal(shape).astype(dtype)


class TestAgainstNumpy:
    def test_matmul_default_schedule(self):
        n = 24
        c, a, b = make_matmul(n)
        a_v, b_v = rand((n, n), 1), rand((n, n), 2)
        out = execute(c, None, {a: a_v, b: b_v})
        expected = a_v.astype(np.float64) @ b_v.astype(np.float64)
        np.testing.assert_allclose(out, expected, rtol=1e-4)

    def test_copy(self):
        n = 16
        f, a = make_copy(n)
        a_v = rand((n, n), 3, ints=True)
        out = execute(f, None, {a: a_v})
        np.testing.assert_array_equal(out, a_v)

    def test_transpose_mask(self):
        n = 16
        f, a, b = make_transpose_mask(n)
        a_v, b_v = rand((n, n), 4, ints=True), rand((n, n), 5, ints=True)
        out = execute(f, None, {a: a_v, b: b_v})
        np.testing.assert_array_equal(out, a_v.T & b_v)

    def test_stencil(self):
        n = 12
        f, a = make_stencil(n)
        a_v = rand((n + 2, n + 2), 6)
        out = execute(f, None, {a: a_v})
        expected = (
            a_v[:n, :n] + a_v[1:n + 1, :n] + a_v[2:n + 2, :n]
            + a_v[1:n + 1, 1:n + 1] + a_v[1:n + 1, 2:n + 2]
        )
        np.testing.assert_allclose(out, expected, rtol=1e-5)

    def test_gemm_with_coefficients(self):
        n = 16
        from repro.bench import make_gemm

        case = make_gemm(n=n, alpha=1.5, beta=1.2)
        func = case.funcs[0]
        buffers = {b.name: b for b in func.input_buffers()}
        a_v, b_v, c_v = rand((n, n), 7), rand((n, n), 8), rand((n, n), 9)
        out = execute(
            func, None,
            {buffers["A"]: a_v, buffers["B"]: b_v, buffers["Cin"]: c_v},
        )
        expected = 1.5 * (a_v.astype(np.float64) @ b_v) + 1.2 * c_v
        np.testing.assert_allclose(out, expected, rtol=1e-4)


class TestScheduledEquivalence:
    def test_tiled_matmul_matches_reference(self):
        n = 32
        c1, a1, b1 = make_matmul(n)
        a_v, b_v = rand((n, n), 10), rand((n, n), 11)
        reference = execute(c1, None, {a1: a_v, b1: b_v})

        c2, a2, b2 = make_matmul(n)
        s = Schedule(c2)
        s.split("i", "io", "ii", 8).split("j", "jo", "ji", 8)
        s.split("k", "ko", "ki", 4)
        s.reorder("ji", "ki", "ii", "jo", "ko", "io")
        out = execute(c2, s, {a2: a_v, b2: b_v})
        # Tiling re-associates the float32 reduction; tolerate rounding.
        np.testing.assert_allclose(out, reference, rtol=1e-4, atol=1e-5)

    def test_imperfect_tiles_match(self):
        n = 30  # not divisible by 8
        c1, a1, b1 = make_matmul(n)
        a_v, b_v = rand((n, n), 12), rand((n, n), 13)
        reference = execute(c1, None, {a1: a_v, b1: b_v})

        c2, a2, b2 = make_matmul(n)
        s = Schedule(c2)
        s.split("i", "io", "ii", 8).split("j", "jo", "ji", 7)
        s.reorder("ji", "ii", "k", "jo", "io")
        out = execute(c2, s, {a2: a_v, b2: b_v})
        np.testing.assert_allclose(out, reference, rtol=1e-4, atol=1e-5)

    def test_fused_schedule_matches(self):
        n = 16
        c1, a1, b1 = make_matmul(n)
        a_v, b_v = rand((n, n), 14), rand((n, n), 15)
        reference = execute(c1, None, {a1: a_v, b1: b_v})

        c2, a2, b2 = make_matmul(n)
        s = Schedule(c2)
        s.fuse("i", "j", "ij")
        out = execute(c2, s, {a2: a_v, b2: b_v})
        np.testing.assert_allclose(out, reference, rtol=1e-5)

    def test_optimizer_schedule_matches(self, arch):
        n = 64
        c1, a1, b1 = make_matmul(n)
        a_v, b_v = rand((n, n), 16), rand((n, n), 17)
        reference = execute(c1, None, {a1: a_v, b1: b_v})

        c2, a2, b2 = make_matmul(n)
        schedule = optimize(c2, arch).schedule
        out = execute(c2, schedule, {a2: a_v, b2: b_v})
        np.testing.assert_allclose(out, reference, rtol=1e-4, atol=1e-4)

    def test_spatial_optimizer_schedule_matches(self, arch):
        n = 64
        f1, a1, b1 = make_transpose_mask(n)
        a_v, b_v = rand((n, n), 18, ints=True), rand((n, n), 19, ints=True)
        reference = execute(f1, None, {a1: a_v, b1: b_v})

        f2, a2, b2 = make_transpose_mask(n)
        schedule = optimize(f2, arch).schedule
        out = execute(f2, schedule, {a2: a_v, b2: b_v})
        np.testing.assert_array_equal(out, reference)


class TestPipelines:
    def test_3mm_matches_numpy(self):
        n = 16
        from repro.bench import make_3mm

        case = make_3mm(n=n)
        bufs = {}
        for stage in case.funcs:
            for b in stage.input_buffers():
                if isinstance(b, Buffer):
                    bufs[b.name] = b
        vals = {name: rand((n, n), 20 + idx) for idx, name in enumerate(sorted(bufs))}
        out = execute_pipeline(
            case.pipeline, None, {bufs[k]: v for k, v in vals.items()}
        )
        e = vals["A"].astype(np.float64) @ vals["B"]
        f = vals["Cm"].astype(np.float64) @ vals["D"]
        np.testing.assert_allclose(out, e @ f, rtol=1e-3)

    def test_doitgen_matches_numpy(self):
        n = 12
        from repro.bench import make_doitgen

        case = make_doitgen(n=n)
        bufs = {b.name: b for b in case.funcs[0].input_buffers()}
        a_v = rand((n, n, n), 30)
        c4_v = rand((n, n), 31)
        out = execute_pipeline(
            case.pipeline, None, {bufs["A"]: a_v, bufs["C4"]: c4_v}
        )
        expected = np.einsum("rqs,sp->rqp", a_v.astype(np.float64), c4_v)
        np.testing.assert_allclose(out, expected, rtol=1e-4)


class TestBufferStore:
    def test_bind_shape_check(self):
        from repro.util import SimulationError

        store = BufferStore()
        b = Buffer("A", (4, 4), float32)
        with pytest.raises(SimulationError):
            store.bind(b, np.zeros((3, 3)))

    def test_materialize_zero_fills(self):
        store = BufferStore()
        b = Buffer("A", (4, 4), float32)
        arr = store.materialize(b)
        assert arr.shape == (4, 4)
        assert not arr.any()

    def test_array_of_unbound_raises(self):
        store = BufferStore()
        with pytest.raises(KeyError):
            store.array_of(Buffer("A", (4,), float32))


class TestRandomScheduleEquivalence:
    """Hypothesis: arbitrary split/reorder chains preserve the result."""

    @given(
        t_i=st.sampled_from([1, 2, 3, 5, 8]),
        t_j=st.sampled_from([1, 2, 4, 7]),
        t_k=st.sampled_from([1, 3, 4, 8]),
        perm_seed=st.integers(0, 1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_matmul_any_tiling(self, t_i, t_j, t_k, perm_seed):
        import random as _random

        n = 16
        c1, a1, b1 = make_matmul(n)
        a_v, b_v = rand((n, n), 40), rand((n, n), 41)
        reference = execute(c1, None, {a1: a_v, b1: b_v})

        c2, a2, b2 = make_matmul(n)
        s = Schedule(c2)
        for var, tile in (("i", t_i), ("j", t_j), ("k", t_k)):
            if tile > 1:
                s.split(var, f"{var}_o", f"{var}_i", tile)
        names = s.loop_names()
        _random.Random(perm_seed).shuffle(names)
        s.reorder(*names)
        out = execute(c2, s, {a2: a_v, b2: b_v})
        np.testing.assert_allclose(out, reference, rtol=1e-4, atol=1e-5)
