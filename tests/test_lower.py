"""Tests for lowering and the lowered loop-nest IR."""

import pytest

from repro.ir import Pipeline, Schedule, lower, lower_pipeline
from repro.ir.schedule import LoopKind
from repro.util import ScheduleError

from tests.helpers import make_copy, make_matmul


class TestLowerBasics:
    def test_one_nest_per_definition(self):
        c, _, _ = make_matmul(8)
        nests = lower(c)
        assert len(nests) == 2
        assert nests[0].name == "C"
        assert nests[1].name == "C.update0"

    def test_default_loops(self):
        c, _, _ = make_matmul(8)
        nests = lower(c)
        assert nests[0].loop_names() == ["i", "j"]
        assert nests[1].loop_names() == ["i", "j", "k"]

    def test_schedule_applies_to_its_definition_only(self):
        c, _, _ = make_matmul(8)
        s = Schedule(c)
        s.split("i", "io", "ii", 4)
        nests = lower(c, s)
        assert nests[0].loop_names() == ["i", "j"]  # pure def untouched
        assert "io" in nests[1].loop_names()

    def test_schedule_func_mismatch(self):
        c1, _, _ = make_matmul(8)
        c2, _, _ = make_matmul(8)
        with pytest.raises(ScheduleError):
            lower(c1, Schedule(c2))

    def test_stmt_store_targets_func(self):
        c, _, _ = make_matmul(8)
        nest = lower(c)[1]
        assert nest.stmt.store.buffer is c

    def test_stmt_reads_include_self(self):
        c, _, _ = make_matmul(8)
        nest = lower(c)[1]
        names = [a.buffer.name for a in nest.stmt.reads]
        assert names == ["C", "A", "B"]

    def test_nontemporal_flag_propagates(self):
        f, _ = make_copy(8)
        s = Schedule(f)
        s.store_nontemporal()
        nest = lower(f, s)[0]
        assert nest.stmt.nontemporal

    def test_guards_propagate(self):
        c, _, _ = make_matmul(10)
        s = Schedule(c)
        s.split("i", "io", "ii", 4)
        nest = lower(c, s)[1]
        assert nest.stmt.guards == {"i": 10}


class TestLoopNestAccessors:
    def test_total_iterations(self):
        c, _, _ = make_matmul(8)
        nest = lower(c)[1]
        assert nest.total_iterations() == 8 * 8 * 8

    def test_depth_and_innermost(self):
        c, _, _ = make_matmul(8)
        nest = lower(c)[1]
        assert nest.depth == 3
        assert nest.innermost().name == "k"

    def test_loop_lookup(self):
        c, _, _ = make_matmul(8)
        nest = lower(c)[1]
        assert nest.loop("j").extent == 8
        with pytest.raises(KeyError):
            nest.loop("zz")

    def test_kind_queries(self):
        c, _, _ = make_matmul(8)
        s = Schedule(c)
        s.vectorize("k").parallel("i")
        nest = lower(c, s)[1]
        assert [l.name for l in nest.parallel_loops()] == ["i"]
        assert [l.name for l in nest.vectorized_loops()] == ["k"]

    def test_stmt_ops(self):
        c, _, _ = make_matmul(8)
        assert lower(c)[1].stmt.ops == 2


class TestLowerPipeline:
    def test_stage_order(self):
        c1, _, _ = make_matmul(8)
        c2, _, _ = make_matmul(8)
        nests = lower_pipeline(Pipeline([c1, c2]))
        assert len(nests) == 4
        assert nests[0].func is c1 and nests[2].func is c2

    def test_per_stage_schedules(self):
        c1, _, _ = make_matmul(8)
        c2, _, _ = make_matmul(8)
        s2 = Schedule(c2)
        s2.parallel("i")
        nests = lower_pipeline(Pipeline([c1, c2]), {c2: s2})
        assert nests[1].parallel_loops() == []
        assert [l.name for l in nests[3].parallel_loops()] == ["i"]


class TestGuardedIterations:
    def test_equals_original_space(self):
        c, _, _ = make_matmul(10)
        s = Schedule(c)
        s.split("i", "io", "ii", 4)  # overshoots: 3*4 = 12 > 10
        nest = lower(c, s)[1]
        assert nest.total_iterations() == 12 * 10 * 10
        assert nest.guarded_iterations() == 10 * 10 * 10

    def test_matches_total_when_perfect(self):
        c, _, _ = make_matmul(8)
        nest = lower(c)[1]
        assert nest.guarded_iterations() == nest.total_iterations()
