"""Tests for the two-window (phase-offset) sampling machinery."""

import numpy as np
import pytest

from repro.arch import intel_i7_5930k
from repro.cachesim import CacheHierarchy
from repro.ir import lower
from repro.sim import run_nests
from repro.sim.executor import _adaptive_budget
from repro.sim.trace import MemoryLayout, TraceGenerator

from tests.helpers import make_copy, make_matmul


class TestPhaseOffset:
    def test_phase_zero_is_prefix(self):
        f, _ = make_copy(16)
        nest = lower(f)[0]
        gen = TraceGenerator(nest, MemoryLayout(), 64, phase=0.0)
        list(gen.chunks())
        assert gen.record.simulated_stmts == 16 * 16
        assert not gen.record.truncated

    def test_phase_half_covers_tail(self):
        f, _ = make_copy(16)
        nest = lower(f)[0]
        gen = TraceGenerator(nest, MemoryLayout(), 64, phase=0.5)
        list(gen.chunks())
        # Starts at y=8; the innermost (vectorized) loop always runs in
        # full, so exactly the tail half of the rows is covered.
        assert gen.record.simulated_stmts == 8 * 16
        assert gen.record.truncated  # partial coverage is flagged

    def test_phase_rejects_out_of_range(self):
        f, _ = make_copy(8)
        nest = lower(f)[0]
        with pytest.raises(ValueError):
            TraceGenerator(nest, MemoryLayout(), 64, phase=1.0)

    def test_phase_window_touches_tail_lines(self):
        f, a = make_copy(32)
        nest = lower(f)[0]
        layout = MemoryLayout()
        gen = TraceGenerator(nest, layout, 64, phase=0.5)
        lines = set()
        for ch in gen.chunks():
            lines.update(ch.lines.tolist())
        base = layout.base_of(a) // 64
        lines_per_array = 32 * 32 * 4 // 64
        # Every touched input line belongs to the second half of A.
        a_lines = {l for l in lines if base <= l < base + lines_per_array}
        assert a_lines and min(a_lines) >= base + lines_per_array // 2 - 1


class TestTwoWindowExecutor:
    def test_untruncated_nest_uses_one_window(self, arch):
        c, _, _ = make_matmul(8)
        hierarchy = CacheHierarchy(arch)
        sim = run_nests(lower(c), hierarchy, line_budget=10**8)
        update = sim.nest_named("C.update0")
        assert not update.truncated
        assert update.simulated_stmts == 8**3

    def test_truncated_nest_gets_second_window(self, arch):
        c, _, _ = make_matmul(64)
        hierarchy = CacheHierarchy(arch)
        sim = run_nests(
            lower(c), hierarchy, line_budget=2000, adaptive_budget=False
        )
        update = sim.nest_named("C.update0")
        assert update.truncated
        # Both windows contribute statements; scale stays consistent.
        assert 0 < update.simulated_stmts < update.total_stmts
        assert update.scale == pytest.approx(
            update.total_stmts / update.simulated_stmts
        )


class TestAdaptiveBudget:
    def test_tiled_nest_grows(self, arch):
        from repro.ir import Schedule

        c, _, _ = make_matmul(512)
        s = Schedule(c)
        s.split("i", "io", "ii", 32).split("k", "ko", "ki", 32)
        s.reorder("j", "ki", "ii", "ko", "io")
        nest = lower(c, s)[1]
        base = 10_000
        grown = _adaptive_budget(nest, base)
        assert grown > base
        assert grown <= 8 * base

    def test_untiled_giant_nest_stays_at_base(self, arch):
        c, _, _ = make_matmul(2048)
        nest = lower(c)[1]
        assert _adaptive_budget(nest, 10_000) == 10_000

    def test_small_nest_stays_at_base(self, arch):
        c, _, _ = make_matmul(8)
        nest = lower(c)[1]
        # needed = 2 * 512 = 1024 < base.
        assert _adaptive_budget(nest, 10_000) == 10_000
