"""Golden-file and validator tests for the ``repro-trace-v1`` schema.

The golden file pins the *machine-readable contract*: the exact event
stream (minus wall-clock fields) a traced ``optimize(matmul-32)`` run
emits.  Any change to event names, pruning reasons, attribute keys or
emission order shows up as a diff here — bump :data:`TRACE_FORMAT` and
regenerate deliberately::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/test_obs_schema.py -q
"""

import json
import os
import pathlib

from repro.arch import intel_i7_5930k
from repro.core import optimize
from repro.obs import (
    PRUNE_REASONS,
    TRACE_FORMAT,
    CollectingTracer,
    read_trace,
    validate_event,
    validate_trace,
)

from tests.helpers import make_matmul

GOLDEN = pathlib.Path(__file__).parent / "data" / "trace_matmul32.jsonl"

#: Wall-clock fields differ run to run; everything else is deterministic.
_VOLATILE = ("ts_ms", "elapsed_ms")


def _normalize(events):
    out = []
    for payload in events:
        payload = dict(payload)
        for key in _VOLATILE:
            payload.pop(key, None)
        out.append(payload)
    return out


def _traced_matmul_events():
    func, _, _ = make_matmul(32)
    with CollectingTracer() as tracer:
        optimize(func, intel_i7_5930k(), tracer=tracer)
    return _normalize(tracer.events)


class TestGoldenTrace:
    def test_matches_golden_file(self):
        events = _traced_matmul_events()
        if os.environ.get("REPRO_REGEN_GOLDEN"):
            GOLDEN.parent.mkdir(parents=True, exist_ok=True)
            GOLDEN.write_text(
                "".join(
                    json.dumps(e, sort_keys=True, separators=(",", ":"))
                    + "\n"
                    for e in events
                )
            )
        golden = [
            json.loads(line)
            for line in GOLDEN.read_text().splitlines()
            if line.strip()
        ]
        assert events == golden, (
            "traced optimize(matmul-32) no longer matches the golden "
            "event stream; if the change is intentional, regenerate with "
            "REPRO_REGEN_GOLDEN=1 (and bump TRACE_FORMAT if the layout "
            "changed incompatibly)"
        )

    def test_golden_file_is_schema_valid(self):
        golden, problems = read_trace(str(GOLDEN))
        assert problems == []
        # golden records drop ts_ms/elapsed_ms, so validate them
        # per-record rather than via the span_end elapsed check
        for payload in golden:
            if payload["kind"] == "span_end":
                payload = dict(payload, elapsed_ms=0.0)
            assert validate_event(payload) is None

    def test_live_trace_is_schema_valid(self):
        func, _, _ = make_matmul(32)
        with CollectingTracer() as tracer:
            optimize(func, intel_i7_5930k(), tracer=tracer)
        assert validate_trace(tracer.events) == []

    def test_pruned_events_carry_machine_readable_reasons(self):
        # n=256: large enough for Algorithm 1 to cap the tile lattice
        func, _, _ = make_matmul(256)
        with CollectingTracer() as tracer:
            optimize(func, intel_i7_5930k(), tracer=tracer)
        pruned = [
            e for e in tracer.events
            if e["kind"] == "event" and e["name"] == "candidate.pruned"
        ]
        assert pruned, "a matmul search must prune candidates"
        for payload in pruned:
            assert payload["attrs"]["reason"] in PRUNE_REASONS
            assert isinstance(payload["attrs"]["phase"], str)
        # the emu-driven lattice exclusion appears with its own reason
        assert any(
            e["attrs"]["reason"] == "emu_bound" for e in pruned
        )


class TestValidateEvent:
    def _ok(self, **over):
        payload = {
            "format": TRACE_FORMAT,
            "seq": 0,
            "ts_ms": 1.0,
            "kind": "event",
            "name": "e",
            "attrs": {},
        }
        payload.update(over)
        return payload

    def test_accepts_minimal_record(self):
        assert validate_event(self._ok()) is None

    def test_rejects_non_object(self):
        assert "not an object" in validate_event([1, 2])

    def test_rejects_missing_key(self):
        payload = self._ok()
        del payload["attrs"]
        assert "missing required key" in validate_event(payload)

    def test_rejects_wrong_format(self):
        assert "format" in validate_event(self._ok(format="repro-trace-v0"))

    def test_rejects_bad_seq(self):
        assert validate_event(self._ok(seq=-1)) is not None
        assert validate_event(self._ok(seq="3")) is not None
        assert validate_event(self._ok(seq=True)) is not None

    def test_rejects_non_increasing_seq(self):
        assert "does not increase" in validate_event(
            self._ok(seq=3), prev_seq=3
        )
        assert validate_event(self._ok(seq=4), prev_seq=3) is None

    def test_rejects_unknown_kind(self):
        assert "unknown kind" in validate_event(self._ok(kind="metric"))

    def test_rejects_empty_name(self):
        assert validate_event(self._ok(name="")) is not None

    def test_rejects_bad_attrs(self):
        assert validate_event(self._ok(attrs=[])) is not None
        assert validate_event(self._ok(attrs={1: "x"})) is not None

    def test_rejects_negative_ts(self):
        assert validate_event(self._ok(ts_ms=-0.5)) is not None

    def test_span_end_needs_elapsed_and_counters(self):
        assert "elapsed_ms" in validate_event(self._ok(kind="span_end"))
        assert validate_event(
            self._ok(kind="span_end", elapsed_ms=1.0, counters={"c": 1})
        ) is None
        assert "counters" in validate_event(
            self._ok(kind="span_end", elapsed_ms=1.0, counters={"c": "x"})
        )

    def test_pruned_event_needs_known_reason_and_phase(self):
        bad = self._ok(
            name="candidate.pruned",
            attrs={"reason": "vibes", "phase": "temporal"},
        )
        assert "not machine-readable" in validate_event(bad)
        missing_phase = self._ok(
            name="candidate.pruned", attrs={"reason": "capacity"}
        )
        assert "phase" in validate_event(missing_phase)
        good = self._ok(
            name="candidate.pruned",
            attrs={"reason": "capacity", "phase": "temporal"},
        )
        assert validate_event(good) is None


class TestReadTrace:
    def test_tolerates_corrupt_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"format": "repro-trace-v1"}\nnot json\n\n')
        events, problems = read_trace(str(path))
        assert len(events) == 1
        assert len(problems) == 1 and "unparsable" in problems[0]

    def test_missing_file_is_a_problem_not_an_exception(self, tmp_path):
        events, problems = read_trace(str(tmp_path / "absent.jsonl"))
        assert events == []
        assert len(problems) == 1 and "cannot read" in problems[0]
