"""Tests for the end-to-end optimization flow (repro.core.optimizer) and
the schedule construction helpers (repro.core.standard)."""

import pytest

from repro.bench import make_benchmark, size_for
from repro.core import Locality, optimize
from repro.core.optimizer import optimize_pipeline
from repro.core.standard import build_schedule, untransformed_schedule
from repro.ir import LoopKind, lower
from repro.ir.validate import validate_schedule

from tests.helpers import make_copy, make_matmul, make_stencil, make_transpose_mask


class TestBuildSchedule:
    def test_splits_strict_tiles_only(self, arch):
        c, _, _ = make_matmul(64)
        schedule = build_schedule(
            c, arch,
            tiles={"i": 8, "j": 64, "k": 1},
            inter_order=["i", "k"],
            intra_order=["i", "j"],
            parallelize=False,  # keep the split structure visible (no fuse)
            vectorize=False,    # ... and no vector split of j
        )
        names = schedule.loop_names()
        assert "i_o" in names and "i_i" in names   # split
        assert "j" in names and "j_o" not in names  # tile == bound
        assert "k" in names and "k_i" not in names  # tile == 1

    def test_validates(self, arch):
        c, _, _ = make_matmul(64)
        schedule = build_schedule(
            c, arch,
            tiles={"i": 8, "j": 16, "k": 8},
            inter_order=["i", "k", "j"],
            intra_order=["i", "k", "j"],
        )
        validate_schedule(schedule)

    def test_vectorizes_innermost(self, arch):
        c, _, _ = make_matmul(64)
        schedule = build_schedule(
            c, arch,
            tiles={"i": 8, "j": 16, "k": 8},
            inter_order=["i", "k", "j"],
            intra_order=["i", "k", "j"],
        )
        vec = [l for l in schedule.loops() if l.kind is LoopKind.VECTORIZED]
        assert len(vec) == 1
        assert vec[0].extent <= arch.vector_lanes(4)

    def test_parallelizes_outer(self, arch):
        c, _, _ = make_matmul(64)
        schedule = build_schedule(
            c, arch,
            tiles={"i": 8, "j": 16, "k": 8},
            inter_order=["i", "k", "j"],
            intra_order=["i", "k", "j"],
        )
        par = [l for l in schedule.loops() if l.kind is LoopKind.PARALLEL]
        assert len(par) == 1
        assert schedule.loops()[0].kind is LoopKind.PARALLEL

    def test_fuses_when_outer_trips_too_small(self, arch):
        # 64/32 = 2 trips < 12 threads: must fuse with the next inter loop.
        c, _, _ = make_matmul(64)
        schedule = build_schedule(
            c, arch,
            tiles={"i": 32, "j": 8, "k": 8},
            inter_order=["i", "k", "j"],
            intra_order=["i", "k", "j"],
        )
        par = [l for l in schedule.loops() if l.kind is LoopKind.PARALLEL]
        assert par and "_f" in par[0].name

    def test_nontemporal_only_if_supported(self, arch, arch_arm):
        f1, _ = make_copy(64)
        s = build_schedule(
            f1, arch, tiles={"x": 64, "y": 1}, inter_order=["y"],
            intra_order=["x"], nontemporal=True,
        )
        assert s.nontemporal
        f2, _ = make_copy(64)
        s_arm = build_schedule(
            f2, arch_arm, tiles={"x": 64, "y": 1}, inter_order=["y"],
            intra_order=["x"], nontemporal=True,
        )
        assert not s_arm.nontemporal


class TestUntransformedSchedule:
    def test_keeps_loop_order(self, arch):
        f, _ = make_copy(64)
        s = untransformed_schedule(f, arch)
        origins = [l.origin for l in s.loops()]
        assert origins[0] == "y"

    def test_vectorizes_and_parallelizes(self, arch):
        f, _ = make_copy(64)
        s = untransformed_schedule(f, arch)
        kinds = {l.kind for l in s.loops()}
        assert LoopKind.VECTORIZED in kinds
        assert LoopKind.PARALLEL in kinds


class TestOptimizeFlow:
    def test_matmul_temporal_path(self, arch):
        c, _, _ = make_matmul(256)
        result = optimize(c, arch)
        assert result.locality is Locality.TEMPORAL
        assert result.temporal is not None
        assert result.spatial is None
        assert not result.uses_nti
        validate_schedule(result.schedule)

    def test_transpose_spatial_path(self, arch):
        f, _, _ = make_transpose_mask(256)
        result = optimize(f, arch)
        assert result.locality is Locality.SPATIAL
        assert result.spatial is not None
        assert result.uses_nti
        validate_schedule(result.schedule)

    def test_copy_untransformed_path(self, arch):
        f, _ = make_copy(256)
        result = optimize(f, arch)
        assert result.locality is Locality.NONE
        assert result.temporal is None and result.spatial is None
        assert result.uses_nti

    def test_stencil_untransformed(self, arch):
        f, _ = make_stencil(64)
        result = optimize(f, arch)
        assert result.locality is Locality.NONE

    def test_use_nti_false(self, arch):
        f, _ = make_copy(256)
        result = optimize(f, arch, use_nti=False)
        assert not result.uses_nti

    def test_arm_never_nti(self, arch_arm):
        f, _ = make_copy(256)
        result = optimize(f, arch_arm)
        assert not result.uses_nti

    def test_runtime_recorded(self, arch):
        c, _, _ = make_matmul(64)
        result = optimize(c, arch)
        assert 0 < result.runtime_seconds < 60

    def test_schedules_lower_cleanly(self, arch):
        for factory in (make_matmul, make_transpose_mask):
            func = factory(64)[0]
            result = optimize(func, arch)
            nests = lower(func, result.schedule)
            assert nests

    def test_describe(self, arch):
        c, _, _ = make_matmul(64)
        assert "runtime" in optimize(c, arch).describe()

    def test_parallelize_vectorize_switches(self, arch):
        c, _, _ = make_matmul(64)
        result = optimize(c, arch, parallelize=False, vectorize=False)
        kinds = {l.kind for l in result.schedule.loops()}
        assert LoopKind.PARALLEL not in kinds
        assert LoopKind.VECTORIZED not in kinds


class TestOptimizePipeline:
    def test_all_stages_scheduled(self, arch):
        case = make_benchmark("3mm", **size_for("3mm", small=True))
        schedules = optimize_pipeline(case.pipeline, arch)
        assert set(schedules) == set(case.funcs)

    def test_doitgen_stage_classes(self, arch):
        case = make_benchmark("doitgen", n=32)
        schedules = optimize_pipeline(case.pipeline, arch)
        sum_stage, copy_stage = case.funcs
        assert not schedules[sum_stage].nontemporal  # accumulation
        assert schedules[copy_stage].nontemporal     # copy-back

    @pytest.mark.parametrize(
        "name", ["matmul", "gemm", "trmm", "syrk", "syr2k", "tpm", "tp",
                 "copy", "mask", "doitgen"]
    )
    def test_every_benchmark_schedules_and_lowers(self, arch, name):
        case = make_benchmark(name, **size_for(name, small=True))
        schedules = optimize_pipeline(case.pipeline, arch)
        for func, schedule in schedules.items():
            assert lower(func, schedule)
