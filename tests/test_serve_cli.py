"""CLI tests for ``python -m repro serve`` / ``python -m repro submit``.

The in-process behavior lives in ``tests/test_serve_server.py``; these
tests cover the process boundary — argument parsing, startup and submit
error messages, the 0/4/5 exit-code contract, and SIGTERM draining a
real subprocess server.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import time

import pytest

from repro.__main__ import build_parser, main

_ENV = dict(os.environ, PYTHONPATH="src")


def free_port() -> int:
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


def run_cli(*argv, env=None, timeout=180):
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        env=env or _ENV,
        capture_output=True,
        text=True,
        timeout=timeout,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    )


class TestParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 8377
        assert args.queue_limit == 16
        assert args.workers == 1

    def test_jobs_auto_spelling(self):
        args = build_parser().parse_args(
            ["optimize", "matmul", "--jobs", "auto"]
        )
        assert args.jobs == "auto"
        args = build_parser().parse_args(["serve", "--workers", "auto"])
        assert args.workers == "auto"
        args = build_parser().parse_args(["sweep", "--jobs", "auto"])
        assert args.jobs == "auto"

    def test_jobs_rejects_nonsense(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["optimize", "matmul", "--jobs", "many"])
        assert excinfo.value.code == 2  # argparse usage error
        assert "integer or 'auto'" in capsys.readouterr().err

    def test_submit_defaults(self):
        args = build_parser().parse_args(["submit", "matmul"])
        assert args.port == 8377
        assert args.retries == 3
        assert not args.json


class TestSubmitErrors:
    def test_no_server_exits_5_with_hint(self, capsys):
        rc = main(
            ["submit", "matmul", "--port", str(free_port()), "--fast"]
        )
        err = capsys.readouterr().err
        assert rc == 5
        assert "cannot reach server" in err
        assert "repro serve" in err  # actionable hint

    def test_serve_invalid_options_are_friendly(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--queue-limit", "0", "--port", str(free_port())])
        assert "queue_limit" in str(excinfo.value)

    def test_serve_bad_fault_env_fails_startup(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_FAULT", "explode:what")
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--port", str(free_port())])
        assert "invalid options" in str(excinfo.value)


@pytest.mark.slow
class TestServeSubprocess:
    def test_serve_submit_drain_cycle(self, tmp_path):
        port = free_port()
        cache = str(tmp_path / "cache.jsonl")
        trace = str(tmp_path / "trace.jsonl")
        server = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--port",
                str(port),
                "--schedule-cache",
                cache,
                "--trace",
                trace,
            ],
            env=_ENV,
            stderr=subprocess.PIPE,
            text=True,
            cwd=os.path.dirname(
                os.path.dirname(os.path.abspath(__file__))
            ),
        )
        try:
            deadline = time.perf_counter() + 20.0
            first = None
            while time.perf_counter() < deadline:
                first = run_cli(
                    "submit", "matmul", "--port", str(port), "--fast"
                )
                if first.returncode != 5:
                    break
                time.sleep(0.2)
            assert first is not None and first.returncode == 0, first.stderr
            assert "served_by=search" in first.stdout

            second = run_cli(
                "submit", "matmul", "--port", str(port), "--fast", "--json"
            )
            assert second.returncode == 0, second.stderr
            payload = json.loads(second.stdout)
            assert payload["served_by"] == "cache"
            assert payload["format"] == "repro-serve-v1"

            bad = run_cli("submit", "warp-drive", "--port", str(port))
            assert bad.returncode == 4
            assert "unknown benchmark" in bad.stderr
        finally:
            server.send_signal(signal.SIGTERM)
            stderr = server.communicate(timeout=30)[1]
        assert server.returncode == 0, stderr
        assert "drained" in stderr
        # The trace survives the drain and records the serving lifecycle.
        names = [
            json.loads(line).get("name")
            for line in open(trace, encoding="utf-8")
        ]
        assert "serve.request" in names
        assert "serve.drain" in names
