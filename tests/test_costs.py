"""Tests for the analytical cost equations (repro.core.costs).

The key tests here evaluate the generalized model on the paper's own
worked example (tiled matmul, Listing 1) and check the *exact closed
forms* of Eqs. 1, 5, 6, 10 and 12.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.costs import (
    RefPattern,
    extract_patterns,
    level1_misses,
    level2_misses,
    order_cost,
    spatial_partial_cost,
    spatial_working_sets,
    total_cost,
    working_set_l1,
    working_set_l2,
)
from repro.ir.analysis import analyze_func

from tests.helpers import make_matmul, make_transpose_mask

LC = 16  # f32 elements per 64B line

# The paper's example: B_i = B_j = B_k = N, tiles T_i, T_j, T_k,
# intra order (i, k, j), inter order (ii, kk, jj).
INTRA = ["i", "k", "j"]
INTER = ["i", "k", "j"]


def matmul_patterns():
    c, _, _ = make_matmul(64)
    return extract_patterns(analyze_func(c))


def tiles(ti, tk, tj):
    return {"i": ti, "k": tk, "j": tj}


def bounds(n):
    return {"i": n, "k": n, "j": n}


class TestPatternExtraction:
    def test_three_patterns_c_deduped(self):
        pats = matmul_patterns()
        names = sorted(p.name for p in pats)
        assert names == ["A", "B", "C"]  # C read+write counted once

    def test_leading_vars(self):
        pats = {p.name: p for p in matmul_patterns()}
        assert pats["C"].leading_var == "j"
        assert pats["A"].leading_var == "k"
        assert pats["B"].leading_var == "j"

    def test_strides_recorded(self):
        pats = {p.name: p for p in matmul_patterns()}
        assert pats["A"].stride_of("i") == 64
        assert pats["A"].stride_of("k") == 1
        assert pats["A"].stride_of("j") == 0


class TestEq1WorkingSetL1:
    def test_exact_form(self):
        # Eq. 1: wsL1 = Tj + Tk + Tj*Tk.
        ws = working_set_l1(matmul_patterns(), tiles(8, 4, 32), INTRA, LC)
        assert ws == 32 + 4 + 32 * 4

    def test_grows_with_tiles(self):
        small = working_set_l1(matmul_patterns(), tiles(8, 4, 32), INTRA, LC)
        big = working_set_l1(matmul_patterns(), tiles(8, 8, 64), INTRA, LC)
        assert big > small


class TestEq6WorkingSetL2:
    def test_exact_form(self):
        # Eq. 6: wsL2 = Tj*Ti + Tk*Ti + Tj*Tk.
        ws = working_set_l2(matmul_patterns(), tiles(8, 4, 32), INTRA, LC)
        assert ws == 32 * 8 + 4 * 8 + 32 * 4


class TestEq5LevelOneMisses:
    def test_exact_form(self):
        # Eq. 5: CL1 = (Ti + Ti + Tk) * (Bi*Bj*Bk) / (Ti*Tj*Tk).
        n, ti, tk, tj = 64, 8, 4, 32
        got = level1_misses(
            matmul_patterns(), tiles(ti, tk, tj), bounds(n), INTRA, LC
        )
        trips = (n // ti) * (n // tk) * (n // tj)
        assert got == (ti + ti + tk) * trips

    def test_prefetch_blind_variant_larger(self):
        n, ti, tk, tj = 64, 8, 4, 32
        aware = level1_misses(
            matmul_patterns(), tiles(ti, tk, tj), bounds(n), INTRA, LC
        )
        blind = level1_misses(
            matmul_patterns(), tiles(ti, tk, tj), bounds(n), INTRA, LC,
            prefetch_aware=False,
        )
        assert blind > aware

    def test_prefetch_blind_exact(self):
        # Eq. 2 per row: a row of Tj elements costs ceil(Tj/lc) misses.
        n, ti, tk, tj = 64, 8, 4, 32
        blind = level1_misses(
            matmul_patterns(), tiles(ti, tk, tj), bounds(n), INTRA, LC,
            prefetch_aware=False,
        )
        trips = (n // ti) * (n // tk) * (n // tj)
        per_tile = (
            ti * (tj // LC)          # C rows
            + ti * 1                 # A rows (Tk=4 < lc -> 1 line)
            + tk * (tj // LC)        # B rows
        )
        assert blind == per_tile * trips


class TestEq10LevelTwoMisses:
    def test_exact_form(self):
        # Eq. 10: CL2 = (Ti*Bj/Tj + Ti + Tk*Bj/Tj) * (Bi/Ti) * (Bk/Tk).
        n, ti, tk, tj = 64, 8, 4, 32
        got = level2_misses(
            matmul_patterns(), tiles(ti, tk, tj), bounds(n), INTRA, INTER, LC
        )
        expected = (ti * (n // tj) + ti + tk * (n // tj)) * (n // ti) * (n // tk)
        assert got == expected


class TestEq11TotalCost:
    def test_weighted_sum(self, arch):
        n, ti, tk, tj = 64, 8, 4, 32
        pats = matmul_patterns()
        c1 = level1_misses(pats, tiles(ti, tk, tj), bounds(n), INTRA, LC)
        c2 = level2_misses(pats, tiles(ti, tk, tj), bounds(n), INTRA, INTER, LC)
        total = total_cost(
            arch, pats, tiles(ti, tk, tj), bounds(n), INTRA, INTER, dts=4
        )
        assert total == pytest.approx(
            arch.access_cost(2) * c1 + arch.access_cost(3) * c2
        )


class TestEq12OrderCost:
    def test_listing1_order(self):
        # Paper: Corder = Bj*Bk/(Tj*Tk) + Bj*Ti/Tj + Ti*Tk.
        n, ti, tk, tj = 64, 8, 4, 32
        full = [(v, "inter") for v in INTER] + [(v, "intra") for v in INTRA]
        got = order_cost(full, tiles(ti, tk, tj), bounds(n))
        expected = (n // tj) * (n // tk) + (n // tj) * ti + ti * tk
        assert got == expected

    def test_adjacent_pairs_cost_nothing(self):
        # ii immediately outside i: distance product over empty range = ...
        full = [("i", "inter"), ("i", "intra")]
        assert order_cost(full, {"i": 4}, {"i": 16}) == 1.0

    def test_rejects_bad_kind(self):
        with pytest.raises(ValueError):
            order_cost([("i", "banana")], {"i": 4}, {"i": 16})

    def test_vars_without_both_levels_free(self):
        full = [("i", "inter"), ("j", "intra")]
        assert order_cost(full, {"i": 1, "j": 8}, {"i": 8, "j": 8}) == 0.0


class TestStridedFootprints:
    def test_strided_ref_charged_lines(self):
        # syrk-like A[j,k] with j varying, k fixed: lc elements per entry.
        pat = RefPattern("A", ("j", "k"))
        ws = working_set_l1([pat], {"j": 8, "k": 4}, ["x", "j"], LC)
        assert ws == 8 * LC

    def test_contiguous_ref_charged_elements(self):
        pat = RefPattern("A", ("j", "k"))
        ws = working_set_l1([pat], {"j": 8, "k": 4}, ["x", "j", "k"], LC)
        assert ws == 8 * 4


class TestSpatialEquations:
    def test_transposed_cost_eq15(self):
        # Eq. 15: (Bx*By / Ty) * (Tx / lc) for the transposed array.
        pat = RefPattern("A", ("x", "y"))  # out is (y, x): A transposed
        got = spatial_partial_cost(
            pat, output_leading="x", tile_width=LC, tile_height=32,
            bounds={"x": 256, "y": 256}, lc=LC,
        )
        assert got == (256 * 256 / 32) * (LC / LC)

    def test_contiguous_cost_eq17_constant(self):
        pat = RefPattern("B", ("y", "x"))
        for width in (LC, 2 * LC, 8 * LC):
            got = spatial_partial_cost(
                pat, output_leading="x", tile_width=width, tile_height=16,
                bounds={"x": 256, "y": 256}, lc=LC,
            )
            assert got == 256 * 256 / LC

    def test_transposed_prefers_narrow_tall(self):
        pat = RefPattern("A", ("x", "y"))
        narrow_tall = spatial_partial_cost(
            pat, "x", LC, 64, {"x": 256, "y": 256}, LC
        )
        wide_short = spatial_partial_cost(
            pat, "x", 4 * LC, 16, {"x": 256, "y": 256}, LC
        )
        assert narrow_tall < wide_short

    def test_working_sets_eq18_19(self):
        ws1, ws2 = spatial_working_sets(2, LC, 32, LC)
        assert ws1 == LC * LC + LC      # lc*Tx + Tx
        assert ws2 == 2 * LC * 32       # 2*Tx*Ty


class TestCostProperties:
    @given(
        ti=st.sampled_from([1, 2, 4, 8]),
        tk=st.sampled_from([1, 2, 4, 8]),
        tj=st.sampled_from([16, 32, 64]),
    )
    @settings(max_examples=30, deadline=None)
    def test_misses_positive_and_finite(self, ti, tk, tj):
        pats = matmul_patterns()
        c1 = level1_misses(pats, tiles(ti, tk, tj), bounds(64), INTRA, LC)
        c2 = level2_misses(pats, tiles(ti, tk, tj), bounds(64), INTRA, INTER, LC)
        assert 0 < c1 < float("inf")
        assert 0 < c2 < float("inf")

    @given(tj=st.sampled_from([16, 32, 64]))
    @settings(max_examples=10, deadline=None)
    def test_prefetch_awareness_never_hurts(self, tj):
        pats = matmul_patterns()
        t = tiles(8, 4, tj)
        aware = level1_misses(pats, t, bounds(64), INTRA, LC)
        blind = level1_misses(pats, t, bounds(64), INTRA, LC, prefetch_aware=False)
        assert aware <= blind
