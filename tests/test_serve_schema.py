"""Unit tests for the ``repro-serve-v1`` wire schema and metrics contract."""

import pytest

from repro.cache import optimize_options
from repro.serve import (
    METRICS_FORMAT,
    METRIC_COUNTERS,
    OPTION_KEYS,
    SERVE_FORMAT,
    ServeMetrics,
    build_request,
    coalesce_key,
    parse_request,
    validate_metrics,
)
from repro.serve.metrics import LATENCY_BOUNDS_MS, LatencyHistogram
from repro.util import ServeError


class TestRequestRoundTrip:
    def test_build_then_parse(self):
        wire = build_request("matmul", "i7-5930k", fast=True, use_nti=False)
        parsed = parse_request(wire)
        assert parsed.benchmark == "matmul"
        assert parsed.platform == "i7-5930k"
        assert parsed.fast is True
        assert parsed.options["use_nti"] is False
        assert parsed.options["parallelize"] is True  # default filled in

    def test_options_always_canonical(self):
        # A request with no options parses to the full defaults dict, so
        # fingerprints computed from it match the persistent cache's.
        parsed = parse_request(build_request("gemm", "i7-6700"))
        assert parsed.options == optimize_options()

    def test_build_rejects_unknown_option(self):
        with pytest.raises(ServeError, match="unknown option"):
            build_request("matmul", "i7-5930k", use_warp_drive=True)

    def test_option_keys_are_the_cache_key_switches(self):
        # The wire surface is the six boolean cache-key switches plus the
        # optional multistride strategy (whose "off" default normalizes
        # out of the canonical dict, keeping old bodies byte-identical).
        assert set(OPTION_KEYS) == set(optimize_options()) | {"multistride"}


class TestParseRejections:
    def base(self, **overrides):
        wire = build_request("matmul", "i7-5930k")
        wire.update(overrides)
        return wire

    def test_wrong_format(self):
        with pytest.raises(ServeError, match="unsupported request format"):
            parse_request(self.base(format="repro-serve-v0"))

    def test_non_object(self):
        with pytest.raises(ServeError, match="JSON object"):
            parse_request([1, 2, 3])

    def test_unknown_field(self):
        with pytest.raises(ServeError, match="unknown request field"):
            parse_request(self.base(priority="high"))

    def test_non_bool_option(self):
        with pytest.raises(ServeError, match="must be a boolean"):
            parse_request(self.base(options={"use_nti": "yes"}))

    def test_bad_jobs(self):
        with pytest.raises(ServeError, match="jobs"):
            parse_request(self.base(jobs=-2))
        with pytest.raises(ServeError, match="jobs"):
            parse_request(self.base(jobs="many"))

    def test_jobs_auto_accepted(self):
        assert parse_request(self.base(jobs="auto")).jobs == "auto"

    def test_bad_deadline(self):
        with pytest.raises(ServeError, match="deadline_ms"):
            parse_request(self.base(deadline_ms=-5))
        with pytest.raises(ServeError, match="deadline_ms"):
            parse_request(self.base(deadline_ms=True))


class TestCoalesceKey:
    def test_jobs_and_deadline_do_not_split_the_key(self):
        # The key covers only what determines the schedules.
        options = optimize_options()
        key = coalesce_key(["fp1", "fp2"], "arch", options)
        assert key == coalesce_key(["fp1", "fp2"], "arch", dict(options))

    def test_each_component_matters(self):
        options = optimize_options()
        base = coalesce_key(["fp1"], "arch", options)
        assert base != coalesce_key(["fp2"], "arch", options)
        assert base != coalesce_key(["fp1"], "other-arch", options)
        assert base != coalesce_key(
            ["fp1"], "arch", optimize_options(use_nti=False)
        )
        assert base != coalesce_key(["fp1", "fp1"], "arch", options)


class TestLatencyHistogram:
    def test_bucketing(self):
        hist = LatencyHistogram(bounds_ms=(1.0, 10.0))
        for ms in (0.5, 5.0, 5.0, 100.0):
            hist.observe(ms)
        snap = hist.snapshot()
        assert snap["counts"] == [1, 2, 1]
        assert snap["count"] == 4
        assert snap["max_ms"] == 100.0

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            LatencyHistogram(bounds_ms=(5.0, 5.0))
        with pytest.raises(ValueError):
            LatencyHistogram(bounds_ms=(10.0, 1.0))

    def test_default_bounds_are_strictly_increasing(self):
        assert list(LATENCY_BOUNDS_MS) == sorted(set(LATENCY_BOUNDS_MS))


class TestServeMetrics:
    def test_unknown_counter_is_loud(self):
        metrics = ServeMetrics()
        with pytest.raises(KeyError, match="unknown serve counter"):
            metrics.bump("requets_total")  # typo must not silently count

    def test_snapshot_passes_own_validator(self):
        metrics = ServeMetrics()
        metrics.bump("requests_total")
        metrics.observe_latency(3.0)
        snap = metrics.snapshot(
            queue_depth=0, queue_limit=8, in_flight=1, draining=False
        )
        assert snap["format"] == METRICS_FORMAT
        assert validate_metrics(snap) == []

    def test_validator_catches_drift(self):
        metrics = ServeMetrics()
        snap = metrics.snapshot(
            queue_depth=0, queue_limit=8, in_flight=0, draining=False
        )
        del snap["counters"][METRIC_COUNTERS[0]]
        snap["latency_ms"]["counts"] = snap["latency_ms"]["counts"][:-1]
        snap["draining"] = "no"
        problems = validate_metrics(snap)
        assert len(problems) == 3

    def test_validator_rejects_non_object(self):
        assert validate_metrics(None)
        assert validate_metrics([{"format": METRICS_FORMAT}])

    def test_wire_format_tags(self):
        assert SERVE_FORMAT == "repro-serve-v1"
        assert METRICS_FORMAT == "repro-serve-metrics-v1"
