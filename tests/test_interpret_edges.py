"""Edge-case tests for the interpreter's store semantics."""

import numpy as np
import pytest

from repro.ir import Buffer, Func, RVar, Schedule, Var, float32
from repro.sim import execute


class TestReductionStoreSemantics:
    def test_overwrite_semantics_last_iteration_wins(self):
        # f[x] = a[x, r] with no self-reference: each r overwrites, so the
        # final value is the last reduction iteration's.
        n, m = 8, 5
        x = Var("x")
        r = RVar("r", m)
        a = Buffer("A", (n, m), float32)
        f = Func("F")
        f[x] = 0.0
        f[x] = a[x, r]
        f.set_bounds({x: n})
        a_v = np.arange(n * m, dtype=np.float32).reshape(n, m)
        out = execute(f, None, {a: a_v})
        np.testing.assert_array_equal(out, a_v[:, -1])

    def test_accumulation_with_coefficient(self):
        n, m = 6, 7
        x = Var("x")
        r = RVar("r", m)
        a = Buffer("A", (n, m), float32)
        f = Func("F")
        f[x] = 0.0
        f[x] = f[x] + 2.0 * a[x, r]
        f.set_bounds({x: n})
        a_v = np.ones((n, m), dtype=np.float32)
        out = execute(f, None, {a: a_v})
        np.testing.assert_allclose(out, np.full(n, 2.0 * m))

    def test_guarded_reduction(self):
        # Imperfectly split reduction: guards must clip the extra lanes.
        n, m = 4, 10
        x = Var("x")
        r = RVar("r", m)
        a = Buffer("A", (n, m), float32)
        f = Func("F")
        f[x] = 0.0
        f[x] = f[x] + a[x, r]
        f.set_bounds({x: n})
        s = Schedule(f)
        s.split("r", "ro", "ri", 4)  # 3*4 = 12 > 10: guard on r
        a_v = np.random.default_rng(0).standard_normal((n, m)).astype(np.float32)
        out = execute(f, s, {a: a_v})
        np.testing.assert_allclose(out, a_v.sum(axis=1), rtol=1e-5)

    def test_reduction_innermost_after_reorder(self):
        # Put the reduction var innermost explicitly: exercises the
        # scalar-store/vector-rhs fold path.
        n = 8
        i, j = Var("i"), Var("j")
        k = RVar("k", n)
        a = Buffer("A", (n, n), float32)
        b = Buffer("B", (n, n), float32)
        c = Func("C")
        c[i, j] = 0.0
        c[i, j] = c[i, j] + a[i, k] * b[k, j]
        c.set_bounds({i: n, j: n})
        s = Schedule(c)
        s.reorder("k", "j", "i")  # k innermost
        rng = np.random.default_rng(1)
        a_v = rng.standard_normal((n, n)).astype(np.float32)
        b_v = rng.standard_normal((n, n)).astype(np.float32)
        out = execute(c, s, {a: a_v, b: b_v})
        np.testing.assert_allclose(
            out, a_v.astype(np.float64) @ b_v, rtol=1e-4
        )

    def test_zero_dim_reduction_constant(self):
        # Pure definition only: constant fill.
        n = 6
        x = Var("x")
        f = Func("F")
        f[x] = 3.5
        f.set_bounds({x: n})
        out = execute(f)
        np.testing.assert_array_equal(out, np.full(n, 3.5, dtype=np.float32))


class TestDtypeHandling:
    def test_integer_ops_stay_exact(self):
        from repro.ir import int32

        n = 8
        x, y = Var("x"), Var("y")
        a = Buffer("A", (n, n), int32)
        b = Buffer("B", (n, n), int32)
        f = Func("F", int32)
        f[y, x] = a[y, x] | b[y, x]
        f.set_bounds({x: n, y: n})
        rng = np.random.default_rng(2)
        a_v = rng.integers(0, 1 << 30, size=(n, n))
        b_v = rng.integers(0, 1 << 30, size=(n, n))
        out = execute(f, None, {a: a_v, b: b_v})
        np.testing.assert_array_equal(out, a_v | b_v)

    def test_float64_func(self):
        from repro.ir import float64

        n = 4
        x = Var("x")
        a = Buffer("A", (n,), float64)
        f = Func("F", float64)
        f[x] = a[x] * 0.5
        f.set_bounds({x: n})
        a_v = np.arange(n, dtype=np.float64)
        out = execute(f, None, {a: a_v})
        assert out.dtype == np.float64
        np.testing.assert_array_equal(out, a_v * 0.5)
