"""Property-based tests of the deepest invariants.

The central one: **scheduling is semantics-preserving** — any legal
composition of splits, reorders and fusions must make the statement visit
exactly the same set of original index tuples as the untransformed nest.
The trace generator's index-reconstruction machinery is the code under
test; hypothesis drives random schedules.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ir import Buffer, Func, Schedule, Var, RVar, float32, lower
from repro.ir.schedule import LoopKind
from repro.ir.validate import validate_schedule
from repro.sim.trace import MemoryLayout, TraceGenerator, _eval_index_tree
from repro.util import ScheduleError


def tiny_matmul(ni, nj, nk):
    i, j = Var("i"), Var("j")
    k = RVar("k", nk)
    a = Buffer("A", (ni, nk), float32)
    b = Buffer("B", (nk, nj), float32)
    c = Func("C")
    c[i, j] = c_init = 0.0
    c[i, j] = c[i, j] + a[i, k] * b[k, j]
    c.set_bounds({i: ni, j: nj})
    return c


def visited_tuples(nest):
    """Enumerate all (i, j, k) tuples the lowered nest executes."""
    out = set()
    loops = nest.loops
    trees = nest.stmt.index_trees
    guards = nest.stmt.guards
    bounds = {v: nest.func.bound_of(v) for v in trees}

    def rec(depth, env):
        if depth == len(loops):
            values = {v: int(_eval_index_tree(t, env)) for v, t in trees.items()}
            for var, bound in guards.items():
                if values[var] >= bound:
                    return
            for var, bound in bounds.items():
                assert 0 <= values[var] < bound + max(
                    0, 0 if var in guards else 0
                )
            out.add(tuple(sorted(values.items())))
            return
        loop = loops[depth]
        for v in range(loop.extent):
            env[loop.name] = v
            rec(depth + 1, env)

    rec(0, {})
    return out


# Strategy: a random sequence of schedule operations on a 3-var nest.
@st.composite
def random_schedule_ops(draw):
    ops = []
    n_ops = draw(st.integers(0, 4))
    for _ in range(n_ops):
        ops.append(
            draw(
                st.sampled_from(["split_i", "split_j", "split_k", "reorder", "fuse"])
            )
        )
    factors = [draw(st.sampled_from([2, 3, 4])) for _ in ops]
    seed = draw(st.integers(0, 2**31 - 1))
    return list(zip(ops, factors)), seed


class TestSchedulingPreservesIterationSpace:
    @given(random_schedule_ops(), st.sampled_from([(4, 4, 4), (5, 3, 4), (6, 6, 2)]))
    @settings(max_examples=40, deadline=None)
    def test_same_tuples_visited(self, ops_seed, sizes):
        import random as _random

        ops, seed = ops_seed
        rng = _random.Random(seed)
        ni, nj, nk = sizes

        reference = tiny_matmul(ni, nj, nk)
        ref_tuples = visited_tuples(lower(reference)[1])

        func = tiny_matmul(ni, nj, nk)
        schedule = Schedule(func)
        fresh = 0
        for op, factor in ops:
            try:
                if op.startswith("split_"):
                    var = op[-1]
                    candidates = [
                        l.name
                        for l in schedule.loops()
                        if l.origin == var and l.kind is LoopKind.SERIAL
                    ]
                    if not candidates:
                        continue
                    target = rng.choice(candidates)
                    fresh += 1
                    schedule.split(target, f"{target}_o{fresh}",
                                   f"{target}_i{fresh}", factor)
                elif op == "reorder":
                    names = schedule.loop_names()
                    rng.shuffle(names)
                    schedule.reorder(*names)
                elif op == "fuse":
                    loops = schedule.loops()
                    serial_adjacent = [
                        (loops[p].name, loops[p + 1].name)
                        for p in range(len(loops) - 1)
                        if loops[p].kind is LoopKind.SERIAL
                        and loops[p + 1].kind is LoopKind.SERIAL
                    ]
                    if not serial_adjacent:
                        continue
                    a, b = rng.choice(serial_adjacent)
                    fresh += 1
                    schedule.fuse(a, b, f"f{fresh}")
            except ScheduleError:
                continue

        validate_schedule(schedule)
        got = visited_tuples(lower(func, schedule)[1])
        assert got == ref_tuples


class TestTraceFootprintInvariance:
    @given(
        ti=st.sampled_from([1, 2, 3, 4, 8]),
        tj=st.sampled_from([1, 2, 5, 8]),
        tk=st.sampled_from([2, 4, 8]),
    )
    @settings(max_examples=20, deadline=None)
    def test_tiling_preserves_touched_lines(self, ti, tj, tk):
        def lines_by_ref(func, schedule):
            nest = lower(func, schedule)[1]
            gen = TraceGenerator(nest, MemoryLayout(), 64, line_budget=10**9)
            out = {}
            for ch in gen.chunks():
                out.setdefault((ch.ref_id, ch.is_store), set()).update(
                    ch.lines.tolist()
                )
            return out

        ref = tiny_matmul(8, 8, 8)
        baseline = lines_by_ref(ref, None)

        func = tiny_matmul(8, 8, 8)
        schedule = Schedule(func)
        for var, tile in (("i", ti), ("j", tj), ("k", tk)):
            if tile > 1:
                schedule.split(var, f"{var}_o", f"{var}_i", tile)
        assert lines_by_ref(func, schedule) == baseline


class TestGuardProperties:
    @given(
        n=st.integers(3, 17),
        factor=st.integers(2, 8),
    )
    @settings(max_examples=30, deadline=None)
    def test_imperfect_splits_cover_exactly_n(self, n, factor):
        x, y = Var("x"), Var("y")
        a = Buffer("A", (n, n), float32)
        f = Func("F")
        f[y, x] = a[y, x]
        f.set_bounds({x: n, y: n})
        schedule = Schedule(f)
        schedule.split("x", "xo", "xi", factor)
        nest = lower(f, schedule)[0]
        gen = TraceGenerator(nest, MemoryLayout(), 64, line_budget=10**9)
        list(gen.chunks())
        assert gen.record.simulated_stmts == n * n


class TestCacheNeverOvercommits:
    @given(st.lists(st.integers(0, 255), min_size=1, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_hierarchy_respects_capacity(self, lines):
        from repro.arch import intel_i7_5930k
        from repro.cachesim import CacheHierarchy

        h = CacheHierarchy(intel_i7_5930k())
        for line in lines:
            h.access(line, ref_id=line % 3)
        for cache in h.levels:
            for s in cache._sets:
                assert len(s) <= cache.ways
