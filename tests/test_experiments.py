"""Smoke and structure tests for the experiment regenerators.

These run on scaled-down sizes with tiny trace budgets: the goal is to
check the plumbing (keys, normalization, caching, table formatting) — the
full-shape assertions live in tests/test_integration.py and the bench
harness regenerates the real tables.
"""

import pytest

from repro.experiments import (
    ExperimentConfig,
    TECHNIQUES,
    measure_case,
    schedules_for,
)
from repro.experiments.harness import clear_measure_cache, format_table
from repro.bench import make_benchmark


@pytest.fixture
def config():
    clear_measure_cache()
    return ExperimentConfig(
        line_budget=2000, autotune_evals=2, autotune_evals_day=3, fast=True
    )


class TestHarness:
    def test_schedules_for_all_techniques(self, arch, config):
        case = make_benchmark("matmul", n=64)
        for technique in TECHNIQUES:
            schedules = schedules_for(case, technique, arch, config=config)
            assert set(schedules) == set(case.funcs)

    def test_unknown_technique(self, arch, config):
        case = make_benchmark("matmul", n=64)
        with pytest.raises(KeyError):
            schedules_for(case, "magic", arch, config=config)

    def test_measure_positive(self, config):
        ms = measure_case("copy", "baseline", "i7-5930k", config=config)
        assert ms > 0

    def test_measure_cached(self, config):
        first = measure_case("copy", "baseline", "i7-5930k", config=config)
        second = measure_case("copy", "baseline", "i7-5930k", config=config)
        assert first == second

    def test_size_overrides_separate_cache_keys(self, config):
        a = measure_case("matmul", "baseline", "i7-5930k", config=config,
                         size_overrides={"n": 64})
        b = measure_case("matmul", "baseline", "i7-5930k", config=config,
                         size_overrides={"n": 128})
        assert a != b

    def test_format_table(self):
        text = format_table(("a", "b"), [("x", 1.5), ("yy", 2.0)])
        assert "1.50" in text and "yy" in text


class TestRegenerators:
    def test_platforms_table(self, capsys):
        from repro.experiments import platforms

        specs = platforms.run()
        out = capsys.readouterr().out
        assert "L1-CS" in out
        assert set(specs) == {"i7-5930k", "i7-6700", "arm-a15"}

    def test_table5_structure(self, config):
        from repro.experiments import table5

        out = table5.run(config=config, echo=False)
        assert set(out) == set(
            ["convlayer", "doitgen", "matmul", "3mm", "gemm", "trmm",
             "syrk", "syr2k", "tpm", "tp", "copy", "mask"]
        )
        assert all(seconds > 0 for seconds in out.values())

    def test_fig6_structure(self, config):
        from repro.experiments import fig6

        out = fig6.run(benchmarks=("copy",), config=config, echo=False)
        assert set(out) == {"copy"}
        assert out["copy"]["proposed"] == pytest.approx(1.0)
        assert set(out["copy"]) == {"proposed", "proposed_nti", "autoscheduler"}

    def test_fig4_relative_normalization(self, config):
        from repro.experiments import fig4

        out = fig4.run(
            platforms=("i7-5930k",), benchmarks=("copy",), config=config,
            echo=False,
        )
        rel = out["i7-5930k"]["copy"]
        assert max(rel.values()) == pytest.approx(1.0)
        assert all(0 < v <= 1.0 for v in rel.values())

    def test_fig4_excludes_autotuner_on_syrk(self, config):
        from repro.experiments import fig4

        out = fig4.run(
            platforms=("i7-5930k",), benchmarks=("syrk",), config=config,
            echo=False,
        )
        assert "autotuner" not in out["i7-5930k"]["syrk"]

    def test_fig5_structure(self, config):
        from repro.experiments import fig5

        out = fig5.run(benchmarks=("tpm",), config=config, echo=False)
        assert set(out["tpm"]) == {"proposed_nti", "autotuner_day"}
        assert max(out["tpm"].values()) == pytest.approx(1.0)

    def test_fig7_structure(self, config):
        from repro.experiments import fig7

        out = fig7.run(benchmarks=("tp",), config=config, echo=False)
        assert set(out["tp"]) == {"proposed", "autoscheduler", "baseline"}

    def test_table6_structure(self, config):
        from repro.experiments import table6

        out = table6.run(
            benchmarks=("matmul",), sizes=(64,), config=config, echo=False
        )
        cell = out["matmul"][64]
        assert set(cell) == {"tts", "tss", "proposed"}
        assert all(v > 0 for v in cell.values())

    def test_table4_structure(self, config):
        from repro.experiments import table4

        # Restrict by monkey-measuring only a cheap benchmark via the
        # public API: run on copy only through the full function would
        # measure everything, so this test accepts the cost of the small
        # sizes instead.
        out = table4.run(config=config, echo=False)
        assert "copy" in out
        assert "arm-a15" not in out["copy"]  # excluded on ARM
        assert "arm-a15" in out["matmul"]


class TestMemoKey:
    def test_autotuner_seed_in_cache_key(self, config):
        """Different seeds must not share a memoized autotuner result."""
        from repro.experiments.harness import _MEASURE_CACHE

        import dataclasses

        cfg_a = dataclasses.replace(config, seed=0)
        cfg_b = dataclasses.replace(config, seed=1)
        measure_case("copy", "autotuner", "i7-5930k", config=cfg_a)
        measure_case("copy", "autotuner", "i7-5930k", config=cfg_b)
        autotuner_keys = [
            k for k in _MEASURE_CACHE if k[1] == "autotuner"
        ]
        assert len(autotuner_keys) == 2  # one entry per seed

    def test_seed_normalized_for_deterministic_techniques(self, config):
        from repro.experiments import measure_key

        key_a = measure_key(
            "copy", "baseline", "i7-5930k",
            line_budget=2000, autotune_evals=None, fast=True, seed=0,
        )
        key_b = measure_key(
            "copy", "baseline", "i7-5930k",
            line_budget=2000, autotune_evals=None, fast=True, seed=7,
        )
        assert key_a == key_b

    def test_env_int_warns_on_malformed_override(self, monkeypatch):
        from repro.experiments.harness import _env_int

        monkeypatch.setenv("REPRO_AT_EVALS", "abc")
        with pytest.warns(UserWarning, match="REPRO_AT_EVALS.*12"):
            assert _env_int("REPRO_AT_EVALS", 12) == 12

    def test_env_int_silent_on_valid_or_absent(self, monkeypatch):
        import warnings as warnings_mod

        from repro.experiments.harness import _env_int

        monkeypatch.delenv("REPRO_TEST_KNOB", raising=False)
        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            assert _env_int("REPRO_TEST_KNOB", 3) == 3
            monkeypatch.setenv("REPRO_TEST_KNOB", "17")
            assert _env_int("REPRO_TEST_KNOB", 3) == 17


class TestMissingCells:
    def test_quarantined_cell_is_nan_and_renders_dash(self, config):
        import math

        from repro.experiments import mark_quarantined, measure_key
        from repro.experiments.harness import MISSING

        key = measure_key(
            "copy", "baseline", "i7-5930k",
            line_budget=config.line_budget, autotune_evals=None,
            fast=True, seed=0,
        )
        mark_quarantined([key])
        ms = measure_case("copy", "baseline", "i7-5930k", config=config)
        assert math.isnan(ms)
        assert MISSING in format_table(("a",), [(ms,)])

    def test_nanmin_skips_missing(self):
        import math

        from repro.experiments.harness import nanmin

        assert nanmin([3.0, float("nan"), 1.0]) == 1.0
        assert math.isnan(nanmin([float("nan")]))
        assert math.isnan(nanmin([]))

    def test_relative_propagates_nan(self):
        import math

        from repro.experiments.harness import relative

        assert relative(1.0, 2.0) == 0.5
        assert math.isnan(relative(1.0, float("nan")))
        assert math.isnan(relative(float("nan"), 2.0))
        assert relative(1.0, 0.0) == 0.0

    def test_completion_note(self):
        from repro.experiments.harness import completion_note

        assert completion_note([1.0, 2.0]) is None
        note = completion_note([1.0, float("nan"), 2.0])
        assert "2/3" in note and "1 unavailable" in note

    def test_fig4_partial_row_keeps_measured_cells(self, config):
        """A quarantined technique must not zero out the whole row."""
        from repro.experiments import fig4, mark_quarantined, measure_key

        key = measure_key(
            "copy", "autoscheduler", "i7-5930k",
            line_budget=config.line_budget, autotune_evals=None,
            fast=True, seed=0,
        )
        mark_quarantined([key])
        out = fig4.run(
            platforms=("i7-5930k",), benchmarks=("copy",), config=config,
            echo=False,
        )
        import math

        rel = out["i7-5930k"]["copy"]
        assert math.isnan(rel["autoscheduler"])
        assert rel["proposed"] > 0  # still normalized over measured cells
        assert max(
            v for v in rel.values() if not math.isnan(v)
        ) == pytest.approx(1.0)

    def test_table5_renders_runtime_from_cache(self, config):
        from repro.experiments import optimize_runtime, table5
        from repro.experiments.harness import (
            _MEASURE_CACHE,
            optimize_runtime_key,
        )

        seconds = optimize_runtime("copy", "i7-5930k", config=config)
        assert seconds >= 0
        key = optimize_runtime_key("copy", "i7-5930k", True)
        assert _MEASURE_CACHE[key] == seconds
        # A second call replays the memo (no re-timing).
        assert optimize_runtime("copy", "i7-5930k", config=config) == seconds


class TestAsciiBar:
    def test_full_bar(self):
        from repro.experiments.harness import ascii_bar

        assert ascii_bar(1.0, width=10) == "#" * 10

    def test_half_bar(self):
        from repro.experiments.harness import ascii_bar

        assert ascii_bar(0.5, width=10) == "#" * 5

    def test_clamps(self):
        from repro.experiments.harness import ascii_bar

        assert ascii_bar(2.0, width=10) == "#" * 10
        assert ascii_bar(-1.0, width=10) == ""
