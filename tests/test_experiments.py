"""Smoke and structure tests for the experiment regenerators.

These run on scaled-down sizes with tiny trace budgets: the goal is to
check the plumbing (keys, normalization, caching, table formatting) — the
full-shape assertions live in tests/test_integration.py and the bench
harness regenerates the real tables.
"""

import pytest

from repro.experiments import (
    ExperimentConfig,
    TECHNIQUES,
    measure_case,
    schedules_for,
)
from repro.experiments.harness import clear_measure_cache, format_table
from repro.bench import make_benchmark


@pytest.fixture
def config():
    clear_measure_cache()
    return ExperimentConfig(
        line_budget=2000, autotune_evals=2, autotune_evals_day=3, fast=True
    )


class TestHarness:
    def test_schedules_for_all_techniques(self, arch, config):
        case = make_benchmark("matmul", n=64)
        for technique in TECHNIQUES:
            schedules = schedules_for(case, technique, arch, config=config)
            assert set(schedules) == set(case.funcs)

    def test_unknown_technique(self, arch, config):
        case = make_benchmark("matmul", n=64)
        with pytest.raises(KeyError):
            schedules_for(case, "magic", arch, config=config)

    def test_measure_positive(self, config):
        ms = measure_case("copy", "baseline", "i7-5930k", config=config)
        assert ms > 0

    def test_measure_cached(self, config):
        first = measure_case("copy", "baseline", "i7-5930k", config=config)
        second = measure_case("copy", "baseline", "i7-5930k", config=config)
        assert first == second

    def test_size_overrides_separate_cache_keys(self, config):
        a = measure_case("matmul", "baseline", "i7-5930k", config=config,
                         size_overrides={"n": 64})
        b = measure_case("matmul", "baseline", "i7-5930k", config=config,
                         size_overrides={"n": 128})
        assert a != b

    def test_format_table(self):
        text = format_table(("a", "b"), [("x", 1.5), ("yy", 2.0)])
        assert "1.50" in text and "yy" in text


class TestRegenerators:
    def test_platforms_table(self, capsys):
        from repro.experiments import platforms

        specs = platforms.run()
        out = capsys.readouterr().out
        assert "L1-CS" in out
        assert set(specs) == {"i7-5930k", "i7-6700", "arm-a15"}

    def test_table5_structure(self, config):
        from repro.experiments import table5

        out = table5.run(config=config, echo=False)
        assert set(out) == set(
            ["convlayer", "doitgen", "matmul", "3mm", "gemm", "trmm",
             "syrk", "syr2k", "tpm", "tp", "copy", "mask"]
        )
        assert all(seconds > 0 for seconds in out.values())

    def test_fig6_structure(self, config):
        from repro.experiments import fig6

        out = fig6.run(benchmarks=("copy",), config=config, echo=False)
        assert set(out) == {"copy"}
        assert out["copy"]["proposed"] == pytest.approx(1.0)
        assert set(out["copy"]) == {"proposed", "proposed_nti", "autoscheduler"}

    def test_fig4_relative_normalization(self, config):
        from repro.experiments import fig4

        out = fig4.run(
            platforms=("i7-5930k",), benchmarks=("copy",), config=config,
            echo=False,
        )
        rel = out["i7-5930k"]["copy"]
        assert max(rel.values()) == pytest.approx(1.0)
        assert all(0 < v <= 1.0 for v in rel.values())

    def test_fig4_excludes_autotuner_on_syrk(self, config):
        from repro.experiments import fig4

        out = fig4.run(
            platforms=("i7-5930k",), benchmarks=("syrk",), config=config,
            echo=False,
        )
        assert "autotuner" not in out["i7-5930k"]["syrk"]

    def test_fig5_structure(self, config):
        from repro.experiments import fig5

        out = fig5.run(benchmarks=("tpm",), config=config, echo=False)
        assert set(out["tpm"]) == {"proposed_nti", "autotuner_day"}
        assert max(out["tpm"].values()) == pytest.approx(1.0)

    def test_fig7_structure(self, config):
        from repro.experiments import fig7

        out = fig7.run(benchmarks=("tp",), config=config, echo=False)
        assert set(out["tp"]) == {"proposed", "autoscheduler", "baseline"}

    def test_table6_structure(self, config):
        from repro.experiments import table6

        out = table6.run(
            benchmarks=("matmul",), sizes=(64,), config=config, echo=False
        )
        cell = out["matmul"][64]
        assert set(cell) == {"tts", "tss", "proposed"}
        assert all(v > 0 for v in cell.values())

    def test_table4_structure(self, config):
        from repro.experiments import table4

        # Restrict by monkey-measuring only a cheap benchmark via the
        # public API: run on copy only through the full function would
        # measure everything, so this test accepts the cost of the small
        # sizes instead.
        out = table4.run(config=config, echo=False)
        assert "copy" in out
        assert "arm-a15" not in out["copy"]  # excluded on ARM
        assert "arm-a15" in out["matmul"]


class TestAsciiBar:
    def test_full_bar(self):
        from repro.experiments.harness import ascii_bar

        assert ascii_bar(1.0, width=10) == "#" * 10

    def test_half_bar(self):
        from repro.experiments.harness import ascii_bar

        assert ascii_bar(0.5, width=10) == "#" * 5

    def test_clamps(self):
        from repro.experiments.harness import ascii_bar

        assert ascii_bar(2.0, width=10) == "#" * 10
        assert ascii_bar(-1.0, width=10) == ""
