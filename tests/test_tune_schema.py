"""The repro-tune-v1 wire formats: golden pins + validator coverage.

These are the documents `POST /v1/tune` and `repro tune` exchange; the
goldens pin the exact layout (field names, folding rules, the
deterministic ``tune_id``) so an accidental wire change fails loudly
here before it breaks a deployed client.
"""

import pytest

from repro.options import CACHE_KEYS
from repro.serve.http import ChunkDecoder
from repro.tune import (
    CELL_OK,
    CELL_QUARANTINED,
    CELL_RESUMED,
    TUNE_FORMAT,
    TUNE_REPORT_FORMAT,
    build_tune_request,
    cell_record,
    tune_id,
    tune_report,
    validate_tune_record,
    validate_tune_report,
    validate_tune_request,
)
from repro.util import ServeError


def options_dict(**overrides):
    base = {
        "use_nti": True,
        "parallelize": True,
        "vectorize": True,
        "exhaustive": False,
        "use_emu": True,
        "order_step": True,
    }
    base.update(overrides)
    return base


class TestRequest:
    def test_build_golden(self):
        request = build_tune_request(
            kernels=["matmul", "mxv"],
            grid=[{}, {"use_nti": False}],
            fast=True,
        )
        assert request == {
            "format": TUNE_FORMAT,
            "platforms": ["i7-5930k"],
            "grid": [{}, {"use_nti": False}],
            "fast": True,
            "deadline_ms": None,
            "kernels": ["matmul", "mxv"],
        }
        assert validate_tune_request(request) == []

    def test_tune_id_pinned(self):
        # The id is the journal/resume key; it must never drift for an
        # unchanged request.
        request = build_tune_request(
            kernels=["matmul", "mxv"],
            grid=[{}, {"use_nti": False}],
            fast=True,
        )
        assert tune_id(request) == "d4cd58516221d078"
        by_family = build_tune_request(
            families=["micro"], platforms=["i7-5930k", "arm-a15"]
        )
        assert tune_id(by_family) == "10e302d96bca66fe"

    def test_tune_id_ignores_kernel_order_and_deadline(self):
        a = build_tune_request(kernels=["matmul", "mxv"])
        b = build_tune_request(kernels=["mxv", "matmul"], deadline_ms=50.0)
        assert tune_id(a) == tune_id(b)

    def test_kernels_xor_families(self):
        with pytest.raises(ValueError, match="exactly one"):
            build_tune_request(kernels=["matmul"], families=["micro"])
        with pytest.raises(ValueError, match="exactly one"):
            build_tune_request()

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown families"):
            build_tune_request(families=["nope"])

    def test_grid_rejects_unknown_and_non_bool_options(self):
        with pytest.raises(ValueError, match="unknown option"):
            build_tune_request(kernels=["matmul"], grid=[{"turbo": True}])
        with pytest.raises(ValueError, match="must be boolean"):
            build_tune_request(kernels=["matmul"], grid=[{"use_nti": 1}])

    def test_validator_catches_extra_field_and_bad_deadline(self):
        request = build_tune_request(kernels=["matmul"])
        request["surprise"] = 1
        assert any(
            "surprise" in problem
            for problem in validate_tune_request(request)
        )
        bad = build_tune_request(kernels=["matmul"])
        bad["deadline_ms"] = -1
        assert validate_tune_request(bad) != []

    def test_empty_platforms_rejected(self):
        with pytest.raises(ValueError, match="platforms"):
            build_tune_request(kernels=["matmul"], platforms=[])


class TestCellRecord:
    def test_golden_ok_record(self):
        record = cell_record(
            key="tune:matmul:i7-5930k:optabc:fast",
            status=CELL_OK,
            kernel="matmul",
            platform="i7-5930k",
            options=options_dict(),
            ms=2.0,
            baseline_ms=6.0,
        )
        assert record == {
            "format": TUNE_FORMAT,
            "kind": "cell",
            "key": "tune:matmul:i7-5930k:optabc:fast",
            "status": CELL_OK,
            "kernel": "matmul",
            "platform": "i7-5930k",
            "options": options_dict(),
            "ms": 2.0,
            "baseline_ms": 6.0,
            "speedup": 3.0,
            "error": None,
        }
        assert validate_tune_record(record) == []

    def test_quarantined_needs_error_and_null_ms(self):
        record = cell_record(
            key="k", status=CELL_QUARANTINED, kernel="matmul",
            platform="i7-5930k", options=options_dict(), ms=None,
            baseline_ms=None, error="ConnectionError: boom",
        )
        assert validate_tune_record(record) == []
        record["error"] = None
        assert any(
            "error" in problem for problem in validate_tune_record(record)
        )
        record["error"] = "x"
        record["ms"] = 1.0
        assert any(
            "ms=null" in problem for problem in validate_tune_record(record)
        )

    def test_ok_needs_positive_ms_and_full_option_set(self):
        record = cell_record(
            key="k", status=CELL_OK, kernel="m", platform="p",
            options=options_dict(), ms=1.5, baseline_ms=None,
        )
        assert validate_tune_record(record) == []
        record["ms"] = 0
        assert validate_tune_record(record) != []
        record["ms"] = 1.5
        del record["options"]["use_nti"]
        assert any(
            str(list(CACHE_KEYS)) in problem
            for problem in validate_tune_record(record)
        )


class TestReport:
    def outcomes(self):
        slow = cell_record(
            key="tune:matmul:i7-5930k:opta", status=CELL_OK,
            kernel="matmul", platform="i7-5930k",
            options=options_dict(), ms=4.0, baseline_ms=8.0,
        )
        # Resumed cells fold into ok — the resume-bit-identity contract.
        fastest = cell_record(
            key="tune:matmul:i7-5930k:optb", status=CELL_RESUMED,
            kernel="matmul", platform="i7-5930k",
            options=options_dict(use_nti=False), ms=2.0, baseline_ms=8.0,
        )
        dead = cell_record(
            key="tune:mxv:i7-5930k:opta", status=CELL_QUARANTINED,
            kernel="mxv", platform="i7-5930k",
            options=options_dict(), ms=None, baseline_ms=None,
            error="ConnectionError: gone",
        )
        return [slow, fastest, dead]

    def test_golden_report(self):
        report = tune_report(
            tune_id_value="d4cd58516221d078",
            platforms=["i7-5930k"],
            outcomes=self.outcomes(),
        )
        assert report["format"] == TUNE_REPORT_FORMAT
        assert report["tune_id"] == "d4cd58516221d078"
        assert (report["cells"], report["ok"], report["quarantined"]) == (
            3, 2, 1
        )
        # The winner is the fastest ok/resumed cell for the slot.
        assert report["winners"] == {
            "matmul@i7-5930k": {
                "options": options_dict(use_nti=False),
                "ms": 2.0,
                "baseline_ms": 8.0,
                "speedup": 4.0,
            }
        }
        # Table rows sort by (kernel, platform, canonical options JSON):
        # use_nti=false sorts before use_nti=true.
        assert [row["ms"] for row in report["table"]] == [2.0, 4.0]
        assert report["quarantined_cells"] == ["tune:mxv:i7-5930k:opta"]
        assert validate_tune_report(report) == []

    def test_validator_catches_count_mismatch_and_bad_slot(self):
        report = tune_report(
            tune_id_value="d4cd58516221d078",
            platforms=["i7-5930k"],
            outcomes=self.outcomes(),
        )
        report["cells"] = 7
        assert any(
            "cells" in problem for problem in validate_tune_report(report)
        )
        report["cells"] = 3
        report["winners"]["broken"] = {"ms": 1.0, "options": {}}
        assert any(
            "kernel@platform" in problem
            for problem in validate_tune_report(report)
        )

    def test_validator_rejects_short_tune_id(self):
        report = tune_report(
            tune_id_value="short", platforms=[], outcomes=[]
        )
        assert any(
            "tune_id" in problem
            for problem in validate_tune_report(report)
        )


class TestChunkDecoder:
    """The chunked-transfer grammar the tune stream client rides on."""

    def test_single_feed(self):
        decoder = ChunkDecoder()
        out = decoder.feed(b"5\r\nhello\r\n3\r\nabc\r\n0\r\n\r\n")
        assert out == [b"hello", b"abc"]
        assert decoder.done

    def test_byte_at_a_time(self):
        decoder = ChunkDecoder()
        wire = b"b\r\nhello world\r\n0\r\n\r\n"
        out = []
        for index in range(len(wire)):
            out.extend(decoder.feed(wire[index:index + 1]))
        assert out == [b"hello world"]
        assert decoder.done

    def test_nothing_after_terminator(self):
        decoder = ChunkDecoder()
        decoder.feed(b"0\r\n\r\n")
        assert decoder.done
        assert decoder.feed(b"ignored") == []

    def test_malformed_size_raises(self):
        decoder = ChunkDecoder()
        with pytest.raises(ServeError, match="malformed chunk size"):
            decoder.feed(b"zz\r\nboom\r\n")
