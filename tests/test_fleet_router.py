"""Behavioral tests for the fleet router (real workers, real sockets).

Each test boots a real fleet through
:class:`repro.fleet.testing.FleetThread` — worker subprocesses under the
supervisor, the router on a daemon thread — and drives it with the same
:class:`repro.serve.ServeClient` production traffic uses.  Subprocess
boots are expensive on a small machine, so each test packs several
assertions into one fleet lifetime.
"""

import json
import threading

import pytest

from repro.fleet import FLEET_FORMAT, validate_fleet_metrics
from repro.fleet.testing import FleetThread
from repro.serve import ServeClient

pytestmark = pytest.mark.slow


def serialized(result):
    return json.dumps(result["schedules"], sort_keys=True)


def make_fleet(tmp_path, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("cache_path", str(tmp_path / "cache.jsonl"))
    kwargs.setdefault("queue_limit", 8)
    return FleetThread(**kwargs)


class TestRoutingAndOperability:
    def test_stickiness_warm_cache_and_surfaces(self, tmp_path):
        with make_fleet(tmp_path) as fleet:
            client = ServeClient(port=fleet.port)

            # Same identity -> same shard, and the second hit is warm.
            first = client.optimize("matmul", "i7-5930k", fast=True)
            second = client.optimize("matmul", "i7-5930k", fast=True)
            assert first["served_by"] == "search"
            assert second["served_by"] == "cache"
            assert first["shard"] == second["shard"]
            assert serialized(first) == serialized(second)

            # Router healthz: all shards up.
            health = client.healthz()
            assert health["format"] == FLEET_FORMAT
            assert health["status"] == "ok"
            assert health["workers_up"] == 2

            # /fleet/status: topology + per-shard state.
            status, body = client.get("/fleet/status")
            assert status == 200
            assert body["format"] == FLEET_FORMAT
            assert body["ring"]["shards"] == [0, 1]
            assert [w["state"] for w in body["workers"]] == ["up", "up"]

            # /metrics: the fleet schema holds and counted our traffic.
            snapshot = client.metrics()
            assert validate_fleet_metrics(snapshot) == []
            assert snapshot["counters"]["requests_total"] == 2
            assert snapshot["counters"]["responses_ok"] == 2
            assert snapshot["counters"]["failover"] == 0

            # Unknown path and wrong method answer politely.
            assert client.get("/nope")[0] == 404
            assert client.post("/healthz")[0] == 405

            # Bad requests come back 400 with the worker's friendly
            # message relayed verbatim through the proxy leg.
            status, body = client.post(
                "/v1/optimize",
                {"format": "repro-serve-v1", "benchmark": 7, "platform": "x"},
            )
            assert status == 400
            assert "benchmark" in body["error"]

    def test_spec_and_ir_submissions_interoperate(self, tmp_path):
        # A v1.1 spec submission and a v1 benchmark submission of the
        # same kernel must compute the same identity: same shard, shared
        # cache entry, bit-identical schedules.
        spec = "C[i,j] += A[i,k] * B[k,j]"
        dims = {"i": 256, "j": 256, "k": 256}  # == fast-size matmul
        with make_fleet(tmp_path) as fleet:
            client = ServeClient(port=fleet.port)
            by_ir = client.optimize("matmul", "i7-5930k", fast=True)
            by_spec = client.optimize(
                spec=spec, dims=dims, platform="i7-5930k", fast=True
            )
            assert by_ir["served_by"] == "search"
            assert by_spec["served_by"] == "cache"
            assert by_spec["shard"] == by_ir["shard"]
            assert by_spec["key"] == by_ir["key"]
            assert serialized(by_spec) == serialized(by_ir)
            assert by_spec["schema_version"] == "1.1"
            assert "schema_version" not in by_ir

            # A malformed spec dies at the router: 400 + invalid_spec,
            # no forward leg, never a 500.
            status, body = client.post(
                "/v1/optimize",
                {
                    "format": "repro-serve-v1.1",
                    "spec": "C[i,j] += A[i*i,j]",
                    "dims": {"i": 8, "j": 8},
                    "platform": "i7-5930k",
                    "fast": True,
                    "options": {},
                    "jobs": 1,
                },
            )
            assert status == 400
            assert body["reason"] == "invalid_spec"
            assert "affine" in body["error"]

    def test_per_shard_caches_do_not_collide(self, tmp_path):
        # Distinct identities spread over shards; each shard's cache file
        # carries only its own keyspace.
        with make_fleet(tmp_path) as fleet:
            client = ServeClient(port=fleet.port)
            shards = {
                client.optimize("matmul", "i7-5930k", fast=True)["shard"],
                client.optimize("syrk", "i7-5930k", fast=True)["shard"],
                client.optimize("copy", "i7-5930k", fast=True)["shard"],
                client.optimize(
                    "matmul", "i7-5930k", fast=True, use_nti=False
                )["shard"],
            }
        caches = list(tmp_path.glob("cache-shard*.jsonl"))
        assert caches, "no per-shard cache files were written"
        assert len(caches) == len(shards)


class TestRollingRestart:
    def test_zero_loss_roll_under_traffic(self, tmp_path):
        with make_fleet(tmp_path) as fleet:
            client = ServeClient(port=fleet.port)
            # Warm both the hot identity and a second one first.
            warm = client.optimize("matmul", "i7-5930k", fast=True)
            client.optimize("copy", "i7-5930k", fast=True)

            results = []
            errors = []

            def pound():
                c = ServeClient(port=fleet.port, retries=6, backoff_seed=1)
                for _ in range(4):
                    try:
                        results.append(
                            c.optimize("matmul", "i7-5930k", fast=True)
                        )
                    except Exception as exc:  # noqa: BLE001 - recorded
                        errors.append(exc)

            pounder = threading.Thread(target=pound)
            pounder.start()
            status, body = ServeClient(port=fleet.port, timeout_s=120.0).post(
                "/fleet/restart"
            )
            pounder.join(timeout=120.0)

            assert status == 200
            assert body["rolled"] == 2
            assert errors == []
            assert len(results) == 4
            # Every response, including any that crossed shards mid-roll,
            # is bit-identical to the pre-roll answer.
            for result in results:
                assert serialized(result) == serialized(warm)

            # The roll is visible in metrics, every shard is back up, and
            # the per-shard cache survived the restart (a fresh request
            # on the home shard is served warm, not re-searched).
            snapshot = client.metrics()
            assert snapshot["counters"]["rolls"] == 1
            # A roll is planned maintenance: it bumps each worker's own
            # restart count but NOT the unplanned-healing counter that
            # operators alert on.
            assert snapshot["counters"]["worker_restarts"] == 0
            assert all(w["restarts"] == 1 for w in snapshot["workers"])
            assert all(w["state"] == "up" for w in snapshot["workers"])
            again = client.optimize("matmul", "i7-5930k", fast=True)
            assert again["served_by"] == "cache"
            assert serialized(again) == serialized(warm)
