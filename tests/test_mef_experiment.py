"""Tests for the mef three-strategy regenerator (:mod:`repro.experiments.mef`).

The committed table's full-size facts are pinned by CI (two full runs
compared byte for byte); here we keep the cheap invariants: smoke-size
determinism, the ``--only`` contract, and the idempotent marked-section
rewrite of ``CORPUS.md``.
"""

from __future__ import annotations

import pytest

from repro.experiments import mef
from repro.experiments.harness import ExperimentConfig
from repro.frontend.corpus import CORPUS


SMOKE = ["mef-mxv", "mef-doitgen"]


def _fast_run(only=SMOKE):
    return mef.run(
        config=ExperimentConfig(fast=True), echo=False, only=only
    )


class TestRun:
    def test_two_runs_are_identical(self):
        assert _fast_run() == _fast_run()

    def test_rows_cover_every_stage_of_the_selection(self):
        results = _fast_run(["mef-bicg"])
        rows = {k: v for k, v in results.items() if k != "strategies"}
        assert set(rows) == {"mef-bicg/s", "mef-bicg/q"}
        for row in rows.values():
            assert row["strategy"] in ("tile", "multistride", "combined")
            assert "tile" in row["costs"]

    def test_strategy_aggregate_accounts_for_every_row(self):
        results = _fast_run()
        rows = {k: v for k, v in results.items() if k != "strategies"}
        total = sum(
            agg["stages"] for agg in results["strategies"].values()
        )
        assert total == len(rows)

    def test_unknown_kernel_rejected(self):
        with pytest.raises(SystemExit, match="mef-nope"):
            _fast_run(["mef-nope"])

    def test_non_mef_kernels_are_not_selectable(self):
        # matmul is a corpus kernel, but not of this family.
        with pytest.raises(SystemExit, match="matmul"):
            _fast_run(["matmul"])

    def test_family_exists_and_is_sized_for_all_three_verdicts(self):
        names = [k.name for k in CORPUS if k.family == mef.FAMILY]
        assert len(names) >= 6
        assert all(name.startswith("mef-") for name in names)


class TestSectionRewrite:
    def test_append_then_replace_is_idempotent(self, tmp_path):
        path = tmp_path / "CORPUS.md"
        path.write_text("# Corpus win/loss\n\nbody\n", encoding="utf-8")
        mef._write_section("table one\n", str(path))
        first = path.read_text(encoding="utf-8")
        assert "table one" in first
        assert first.startswith("# Corpus win/loss")
        mef._write_section("table one\n", str(path))
        assert path.read_text(encoding="utf-8") == first

    def test_replaces_only_the_marked_section(self, tmp_path):
        path = tmp_path / "CORPUS.md"
        path.write_text("prefix\n", encoding="utf-8")
        mef._write_section("old table\n", str(path))
        mef._write_section("new table\n", str(path))
        text = path.read_text(encoding="utf-8")
        assert "old table" not in text
        assert "new table" in text
        assert text.startswith("prefix\n")
        assert text.count(mef.SECTION_BEGIN) == 1

    def test_missing_file_gets_created(self, tmp_path):
        path = tmp_path / "fresh.md"
        mef._write_section("table\n", str(path))
        text = path.read_text(encoding="utf-8")
        assert text.startswith(mef.SECTION_BEGIN)
        assert text.endswith(f"{mef.SECTION_END}\n")
