"""Tests for the simulation diagnostics (repro.sim.report)."""

import pytest

from repro.core import optimize
from repro.sim import Machine
from repro.sim.report import explain, explain_nest

from tests.helpers import make_copy, make_matmul


class TestExplain:
    def _report(self, arch, factory=make_matmul, n=64):
        func = factory(n)[0]
        machine = Machine(arch, line_budget=10_000)
        schedule = optimize(func, arch).schedule
        return machine.run_funcs([(func, schedule)])

    def test_mentions_every_nest(self, arch):
        report = self._report(arch)
        text = explain(report)
        assert "C:" in text
        assert "C.update0:" in text

    def test_hit_pyramid_present(self, arch):
        text = explain(self._report(arch))
        assert "L1" in text and "DRAM" in text

    def test_bottleneck_named(self, arch):
        text = explain(self._report(arch))
        assert "bottleneck:" in text
        assert ("core" in text) or ("DRAM bandwidth" in text)

    def test_traffic_decomposition(self, arch):
        text = explain(self._report(arch, make_copy, 256))
        assert "write-backs" in text
        assert "MB" in text

    def test_sampling_note_when_truncated(self, arch):
        func = make_matmul(256)[0]
        machine = Machine(arch, line_budget=1_000)
        report = machine.run_funcs([(func, None)])
        text = explain(report)
        assert "sampled:" in text

    def test_total_first_line(self, arch):
        text = explain(self._report(arch))
        assert text.splitlines()[0].startswith("total:")

    def test_explain_nest_standalone(self, arch):
        report = self._report(arch)
        block = explain_nest(
            report.sim.counters[0], report.nest_times[0],
            report.sim.hierarchy.line_size,
        )
        assert "demand hits" in block
