"""The consolidated ``SweepCell.options`` field and its deprecation
shim for the historical loose option keywords."""

import warnings

import pytest

from repro.options import OptimizeOptions
from repro.sweep import KIND_TUNE, SweepCell


def measure_cell(**kwargs):
    defaults = dict(
        benchmark="matmul",
        technique="proposed",
        platform="i7-5930k",
        line_budget=0,
        fast=True,
    )
    defaults.update(kwargs)
    return SweepCell(**defaults)


class TestOptionsField:
    def test_no_options_stays_silent_and_none(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            cell = measure_cell()
        assert cell.options is None
        assert cell.options_dict() is None
        # The loose names read as None too — nothing was decided.
        assert cell.use_nti is None

    def test_options_object_is_the_identity(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            cell = measure_cell(
                options=OptimizeOptions().replace(use_nti=False)
            )
        assert cell.options.use_nti is False
        # The loose names mirror the resolved switches read-side.
        assert cell.use_nti is False
        assert cell.parallelize is True
        assert f"opt{cell.options.fingerprint()[:12]}" in cell.key()

    def test_legacy_keywords_warn_and_fold(self):
        with pytest.warns(DeprecationWarning, match="Migration notes"):
            legacy = measure_cell(use_nti=False)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            modern = measure_cell(
                options=OptimizeOptions().replace(use_nti=False)
            )
        # Both spellings denote the same cell: equal value, same key,
        # same memo slot.
        assert legacy == modern
        assert legacy.key() == modern.key()
        assert legacy.memo_key() == modern.memo_key()
        assert legacy.options == modern.options

    def test_legacy_plus_options_is_an_error(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="not both"):
                measure_cell(options=OptimizeOptions(), use_nti=False)


class TestTuneCells:
    def tune_cell(self, **overrides):
        return SweepCell(
            benchmark="matmul",
            technique="proposed",
            platform="i7-5930k",
            line_budget=0,
            fast=True,
            kind=KIND_TUNE,
            options=OptimizeOptions().replace(**overrides),
        )

    def test_tune_cells_require_options(self):
        with pytest.raises(ValueError, match="require options"):
            measure_cell(kind=KIND_TUNE)

    def test_key_and_memo_key_carry_the_fingerprint(self):
        defaults = self.tune_cell()
        variant = self.tune_cell(use_nti=False)
        assert defaults.key() != variant.key()
        assert defaults.key().startswith("tune:matmul:i7-5930k:opt")
        assert defaults.key().endswith(":fast")
        assert defaults.memo_key()[0] == "tune"
        assert defaults.memo_key() != variant.memo_key()

    def test_roundtrip_preserves_identity(self):
        cell = self.tune_cell(use_nti=False, exhaustive=True)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            back = SweepCell.from_dict(cell.to_dict())
        assert back == cell
        assert back.key() == cell.key()
        assert back.options == cell.options

    def test_roundtrip_of_optionless_measure_cell(self):
        cell = measure_cell()
        back = SweepCell.from_dict(cell.to_dict())
        assert back == cell
        assert back.options is None
