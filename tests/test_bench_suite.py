"""Tests for the benchmark suite definitions (repro.bench)."""

import pytest

from repro.bench import (
    PAPER_SIZES,
    SMALL_SIZES,
    SUITE,
    benchmark_names,
    make_benchmark,
    size_for,
)
from repro.ir import lower_pipeline


class TestRegistry:
    def test_all_twelve_present(self):
        assert len(SUITE) == 12
        assert benchmark_names() == [
            "convlayer", "doitgen", "matmul", "3mm", "gemm", "trmm",
            "syrk", "syr2k", "tpm", "tp", "copy", "mask",
        ]

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            make_benchmark("fizzbuzz")

    def test_sizes_cover_every_benchmark(self):
        assert set(PAPER_SIZES) == set(SUITE)
        assert set(SMALL_SIZES) == set(SUITE)

    def test_size_for_unknown(self):
        with pytest.raises(KeyError):
            size_for("fizzbuzz")


class TestPaperSizes:
    def test_table4_sizes(self):
        assert PAPER_SIZES["matmul"] == {"n": 2048}
        assert PAPER_SIZES["doitgen"] == {"n": 256}
        assert PAPER_SIZES["tp"] == {"n": 4096}
        assert PAPER_SIZES["convlayer"]["batch"] == 16
        assert PAPER_SIZES["convlayer"]["ksize"] == 3


class TestCaseConstruction:
    @pytest.mark.parametrize("name", sorted(SUITE))
    def test_builds_and_lowers(self, name):
        case = make_benchmark(name, **size_for(name, small=True))
        nests = lower_pipeline(case.pipeline)
        assert nests
        for nest in nests:
            assert nest.total_iterations() > 0

    def test_fresh_instances(self):
        a = make_benchmark("matmul", n=32)
        b = make_benchmark("matmul", n=32)
        assert a.funcs[0] is not b.funcs[0]

    def test_3mm_three_stages(self):
        case = make_benchmark("3mm", n=32)
        assert len(case.funcs) == 3
        # G reads E and F outputs.
        g = case.funcs[-1]
        input_names = {b.name for b in g.input_buffers()}
        assert input_names == {"E", "F"}

    def test_doitgen_two_stages(self):
        case = make_benchmark("doitgen", n=16)
        assert [f.name for f in case.funcs] == ["Sum", "Aout"]

    def test_convlayer_shapes(self):
        case = make_benchmark("convlayer", width=16, height=16, channels=4,
                              filters=4, batch=2, ksize=3)
        conv = case.funcs[0]
        assert conv.shape == (2, 4, 16, 16)
        image = [b for b in conv.input_buffers() if b.name == "In"][0]
        assert image.shape == (2, 4, 18, 18)  # padded by ksize-1

    def test_syrk_single_input_array(self):
        case = make_benchmark("syrk", n=32)
        names = {b.name for b in case.funcs[0].input_buffers()}
        assert names == {"A", "Cin"}

    def test_repr(self):
        case = make_benchmark("matmul", n=32)
        assert "matmul" in repr(case)
        assert case.output.name == "C"
