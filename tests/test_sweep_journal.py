"""Tests for the sweep journal (repro.sweep.journal)."""

import json
import os

import pytest

from repro.sweep import (
    JOURNAL_FORMAT,
    Journal,
    JournalRecord,
    STATUS_OK,
    STATUS_QUARANTINED,
    SweepCell,
)


def cell(benchmark="copy", technique="baseline", **kwargs):
    kwargs.setdefault("platform", "i7-5930k")
    kwargs.setdefault("line_budget", 2000)
    kwargs.setdefault("fast", True)
    return SweepCell(benchmark, technique, **kwargs)


@pytest.fixture
def journal(tmp_path):
    return Journal(str(tmp_path / "journal.jsonl"))


class TestRecord:
    def test_roundtrip(self):
        rec = JournalRecord(
            cell=cell(),
            status=STATUS_OK,
            ms=1.25,
            attempts=2,
            trail=["[info] worker: measured"],
            schedules=[{"format": "repro-schedule-v1"}],
        )
        back = JournalRecord.from_dict(rec.to_dict())
        assert back.cell == rec.cell
        assert back.ms == rec.ms
        assert back.attempts == 2
        assert back.trail == rec.trail
        assert back.schedules == rec.schedules

    def test_ok_requires_measurement(self):
        with pytest.raises(ValueError):
            JournalRecord(cell=cell(), status=STATUS_OK, ms=None)

    def test_unknown_status(self):
        with pytest.raises(ValueError):
            JournalRecord(cell=cell(), status="maybe", ms=1.0)

    def test_checksum_present_and_stable(self):
        payload = JournalRecord(cell=cell(), status=STATUS_OK, ms=1.0).to_dict()
        assert payload["format"] == JOURNAL_FORMAT
        assert len(payload["sha256"]) == 64


class TestAppendLoad:
    def test_append_then_load(self, journal):
        journal.append(JournalRecord(cell=cell(), status=STATUS_OK, ms=3.0))
        journal.append(
            JournalRecord(
                cell=cell(technique="proposed"),
                status=STATUS_QUARANTINED,
                error="boom",
            )
        )
        records = journal.load()
        assert len(records) == 2
        assert records[cell().key()].ms == 3.0
        assert (
            records[cell(technique="proposed").key()].status
            == STATUS_QUARANTINED
        )
        assert journal.load_diagnostics == []

    def test_float_roundtrip_is_exact(self, journal):
        ms = 0.1 + 0.2  # not representable exactly in decimal
        journal.append(JournalRecord(cell=cell(), status=STATUS_OK, ms=ms))
        assert journal.load()[cell().key()].ms == ms

    def test_last_record_per_key_wins(self, journal):
        journal.append(
            JournalRecord(cell=cell(), status=STATUS_QUARANTINED, error="x")
        )
        journal.append(JournalRecord(cell=cell(), status=STATUS_OK, ms=7.0))
        records = journal.load()
        assert len(records) == 1
        assert records[cell().key()].status == STATUS_OK

    def test_missing_file_loads_empty(self, journal):
        assert journal.load() == {}

    def test_truncated_line_skipped_with_diagnostic(self, journal):
        journal.append(JournalRecord(cell=cell(), status=STATUS_OK, ms=1.0))
        good = JournalRecord(
            cell=cell(technique="proposed"), status=STATUS_OK, ms=2.0
        )
        line = json.dumps(good.to_dict())
        with open(journal.path, "a") as handle:
            handle.write(line[: len(line) // 2])  # torn append
        records = journal.load()
        assert len(records) == 1  # the torn record is dropped
        assert any("unparsable" in d for d in journal.load_diagnostics)

    def test_bit_flip_caught_by_checksum(self, journal):
        journal.append(JournalRecord(cell=cell(), status=STATUS_OK, ms=1.0))
        with open(journal.path) as handle:
            payload = json.loads(handle.read())
        payload["ms"] = 999.0  # corrupt without updating the checksum
        with open(journal.path, "w") as handle:
            handle.write(json.dumps(payload) + "\n")
        assert journal.load() == {}
        assert any("checksum" in d for d in journal.load_diagnostics)

    def test_foreign_format_skipped(self, journal):
        with open(journal.path, "w") as handle:
            handle.write(json.dumps({"format": "other-v9"}) + "\n")
        assert journal.load() == {}
        assert any("format" in d for d in journal.load_diagnostics)

    def test_blank_lines_ignored(self, journal):
        journal.append(JournalRecord(cell=cell(), status=STATUS_OK, ms=1.0))
        with open(journal.path, "a") as handle:
            handle.write("\n\n")
        assert len(journal.load()) == 1
        assert journal.load_diagnostics == []


class TestRewrite:
    def test_compact_drops_superseded_and_corrupt(self, journal):
        journal.append(
            JournalRecord(cell=cell(), status=STATUS_QUARANTINED, error="x")
        )
        journal.append(JournalRecord(cell=cell(), status=STATUS_OK, ms=5.0))
        with open(journal.path, "a") as handle:
            handle.write("garbage{{{\n")
        records = journal.compact()
        assert len(records) == 1
        with open(journal.path) as handle:
            lines = [l for l in handle if l.strip()]
        assert len(lines) == 1
        assert journal.load()[cell().key()].ms == 5.0

    def test_rewrite_is_atomic_no_temp_left_behind(self, journal, tmp_path):
        journal.append(JournalRecord(cell=cell(), status=STATUS_OK, ms=1.0))
        journal.rewrite(list(journal.load().values()))
        leftovers = [
            p for p in os.listdir(tmp_path) if p.endswith(".tmp")
        ]
        assert leftovers == []

    def test_clear(self, journal):
        journal.append(JournalRecord(cell=cell(), status=STATUS_OK, ms=1.0))
        journal.clear()
        assert not os.path.exists(journal.path)
        journal.clear()  # idempotent


class TestCellIdentity:
    def test_key_distinguishes_autotuner_seed_and_evals(self):
        a = cell(technique="autotuner", autotune_evals=2, seed=0)
        b = cell(technique="autotuner", autotune_evals=2, seed=1)
        c = cell(technique="autotuner", autotune_evals=4, seed=0)
        assert len({a.key(), b.key(), c.key()}) == 3

    def test_key_normalizes_seed_for_deterministic_techniques(self):
        assert cell(seed=0).key() == cell(seed=5).key()
        assert cell(seed=0).memo_key() == cell(seed=5).memo_key()

    def test_size_overrides_normalized(self):
        a = SweepCell(
            "matmul", "baseline", "i7-5930k", 2000,
            size_overrides={"n": 64},
        )
        b = SweepCell(
            "matmul", "baseline", "i7-5930k", 2000,
            size_overrides=(("n", 64),),
        )
        assert a == b and a.key() == b.key()

    def test_runtime_cell_key_and_memo_key(self):
        r = SweepCell(
            "matmul", "", "i7-5930k", 0, kind="optimize_runtime", fast=True
        )
        assert r.key().startswith("optimize_runtime:")
        assert r.memo_key()[0] == "__optimize_runtime__"
        back = SweepCell.from_dict(r.to_dict())
        assert back == r

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            SweepCell("matmul", "baseline", "i7-5930k", 2000, kind="weird")
