"""Tests for :mod:`repro.multistride` — model, planner, and classifier.

The expensive empirical facts (which strategy wins on which mef kernel)
live in the committed three-strategy table; here we pin the mechanics:
the feasibility arithmetic, the planner's innermost-serial-only rule,
schedule immutability, and the classifier's decision/trace contract.
One measurement-size decision (mef-mxv) is exercised end to end because
it is the family's canonical multistride win.
"""

from __future__ import annotations

import pytest

from repro.arch import intel_i7_5930k
from repro.cachesim.prefetch import StreamModelParams
from repro.core import optimize
from repro.core.standard import untransformed_schedule
from repro.frontend.corpus import corpus_kernel
from repro.ir.serialize import schedule_to_dict
from repro.multistride import (
    STRATEGY_MULTISTRIDE,
    STRATEGY_TILE,
    STREAM_CANDIDATES,
    TIE_MARGIN,
    choose_streams,
    covers_latency,
    decide_strategy,
    optimize_multistride,
    plan_multistride,
)
from repro.multistride.model import estimate
from repro.obs.events import EVENT_MULTISTRIDE

from tests.helpers import make_matmul


def _mef_func(name):
    return corpus_kernel(name).lower().funcs[-1]


class TestModel:
    def test_covers_latency_is_the_run_ahead_inequality(self):
        params = StreamModelParams()  # max_distance 20, latency 160
        assert not covers_latency(4.0, params)   # 20 * 4 = 80 < 160
        assert covers_latency(8.0, params)       # 20 * 8 = 160

    def test_estimate_arithmetic(self):
        est = estimate(
            4,
            extent=16384,
            strided_groups=1,
            constant_groups=1,
            min_stride_elems=1,
            dtype_size=4,
            line_size=64,
            params=StreamModelParams(),
        )
        assert est.chunk_iters == 4096
        assert est.active_engines == 1 * 4 + 1
        assert est.separation_lines == 4096 * 4 // 64
        assert est.fits_engines and est.fits_pages and est.feasible

    def test_choose_streams_takes_the_widest_feasible(self):
        # One strided group: K=8 fits the 8-engine pool only without a
        # constant group; with one, K=4 is the widest.
        best = choose_streams(
            extent=16384, strided_groups=1, constant_groups=1,
            min_stride_elems=1, dtype_size=4, line_size=64,
        )
        assert best.streams == 4
        # Two strided groups + a constant one: only K=2 fits (2*4+1 > 8).
        best = choose_streams(
            extent=8192, strided_groups=2, constant_groups=1,
            min_stride_elems=1, dtype_size=4, line_size=64,
        )
        assert best.streams == 2

    def test_choose_streams_infeasible_returns_none(self):
        # Chunks shorter than a page: sub-streams share prefetch pages.
        assert choose_streams(
            extent=96, strided_groups=1, constant_groups=0,
            min_stride_elems=1, dtype_size=4, line_size=64,
        ) is None
        # Engine pool overflow at every candidate width.
        assert choose_streams(
            extent=65536, strided_groups=9, constant_groups=0,
            min_stride_elems=1, dtype_size=4, line_size=64,
        ) is None

    def test_candidates_are_powers_of_two(self):
        assert STREAM_CANDIDATES == (2, 4, 8)


class TestPlanner:
    def test_plans_the_innermost_serial_loop(self, arch):
        func = _mef_func("mef-mxv")
        schedule = untransformed_schedule(func, arch)
        plan = plan_multistride(schedule, arch)
        assert plan is not None
        assert plan.streams == 2          # A-row + x strided, y constant
        assert plan.loop.startswith("k")  # the reduction stream
        assert plan.estimate.feasible
        assert "multistride" in plan.describe()

    def test_short_extents_are_infeasible(self, arch):
        func = corpus_kernel("mef-mxv").lower(fast=True).funcs[-1]
        schedule = untransformed_schedule(func, arch)
        assert plan_multistride(schedule, arch) is None

    def test_fixed_stream_count_still_checks_feasibility(self, arch):
        func = _mef_func("mef-mxv")
        schedule = untransformed_schedule(func, arch)
        assert plan_multistride(schedule, arch, streams=2) is not None
        # K=8 overflows the engine pool for this nest; forcing it must
        # not produce a thrashing rewrite.
        assert plan_multistride(schedule, arch, streams=8) is None

    def test_apply_never_mutates_the_input_schedule(self, arch):
        func = _mef_func("mef-mxv")
        schedule = untransformed_schedule(func, arch)
        before = schedule_to_dict(schedule)
        result = optimize_multistride(func, arch, schedule)
        assert result is not None
        rewritten, plan = result
        assert schedule_to_dict(schedule) == before
        assert rewritten is not schedule
        assert rewritten.stream_loops()   # the clone carries the rewrite

    def test_rowsum_gets_the_wide_count(self, arch):
        func = _mef_func("mef-rowsum")
        plan = plan_multistride(
            untransformed_schedule(func, arch), arch
        )
        assert plan is not None and plan.streams == 4


class _CapturingTracer:
    enabled = True

    def __init__(self):
        self.events = []

    def event(self, name, **attrs):
        self.events.append((name, attrs))


class TestClassifier:
    def test_tile_wins_by_identity_when_no_plan_exists(self, arch):
        func, _, _ = make_matmul(48)
        tile = optimize(func, arch).schedule
        decision = decide_strategy(func, arch, tile)
        assert decision.strategy == STRATEGY_TILE
        assert decision.schedule is tile          # the caller's object
        assert decision.streams is None
        assert set(decision.costs) == {STRATEGY_TILE}

    def test_costs_mapping_is_read_only(self, arch):
        func, _, _ = make_matmul(48)
        tile = optimize(func, arch).schedule
        decision = decide_strategy(func, arch, tile)
        with pytest.raises(TypeError):
            decision.costs["tile"] = 0.0

    def test_mxv_is_the_canonical_multistride_win(self, arch):
        func = _mef_func("mef-mxv")
        tile = optimize(func, arch).schedule
        tracer = _CapturingTracer()
        decision = decide_strategy(func, arch, tile, tracer=tracer)
        assert decision.strategy == STRATEGY_MULTISTRIDE
        assert decision.streams == 2
        assert decision.costs[STRATEGY_MULTISTRIDE] < (
            decision.costs[STRATEGY_TILE] * (1.0 - TIE_MARGIN)
        )
        assert decision.schedule is not tile
        assert decision.schedule.stream_loops()
        names = [name for name, _ in tracer.events]
        assert EVENT_MULTISTRIDE in names
        attrs = dict(tracer.events[names.index(EVENT_MULTISTRIDE)][1])
        assert attrs["strategy"] == STRATEGY_MULTISTRIDE
        assert attrs["func"] == func.name
        assert "cost_tile" in attrs

    def test_optimize_hook_routes_through_the_classifier(self, arch):
        func = _mef_func("mef-mxv")
        off = optimize(func, arch)
        assert off.multistride is None            # default stays legacy
        on = optimize(func, arch, multistride="auto")
        assert on.multistride is not None
        assert on.schedule is on.multistride.schedule
        assert on.multistride.strategy == STRATEGY_MULTISTRIDE
