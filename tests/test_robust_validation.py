"""Error-path coverage: exact exception types and messages.

Satellite of the graceful-degradation issue: classification of indirect
accesses, Schedule misuse, and the new input-validation rejects
(zero/negative bounds, degenerate ArchSpec geometries).
"""

import pytest

from repro.arch import ArchSpec, CacheSpec, intel_i7_5930k
from repro.core import classify
from repro.ir import Buffer, Func, RVar, Schedule, Var, float32
from repro.ir.validate import validate_func
from repro.util import (
    ClassificationError,
    Deadline,
    DeadlineExceeded,
    ReproError,
    ScheduleError,
    ValidationError,
    active_deadline,
    checkpoint,
)
from tests.helpers import make_matmul


class TestClassificationErrors:
    def test_indirect_access_raises(self):
        i = Var("i")
        idx = Buffer("Idx", (64,), float32)
        data = Buffer("Data", (64,), float32)
        f = Func("Gather")
        f[i] = data[idx[i]]          # A[B[i]]: outside the affine subset
        f.set_bounds({i: 64})
        with pytest.raises(
            ClassificationError, match="unsupported index expression"
        ):
            classify(f)

    def test_variable_product_index_raises(self):
        i, j = Var("i"), Var("j")
        a = Buffer("A", (4096,), float32)
        f = Func("F")
        f[i, j] = a[i * j]
        f.set_bounds({i: 64, j: 64})
        with pytest.raises(
            ClassificationError, match="product of two variables"
        ):
            classify(f)

    def test_classification_error_is_repro_error(self):
        assert issubclass(ClassificationError, ReproError)


class TestScheduleMisuse:
    def make_schedule(self):
        func, *_ = make_matmul()
        return Schedule(func)

    def test_split_unknown_loop(self):
        schedule = self.make_schedule()
        with pytest.raises(ScheduleError, match="no loop named 'z'"):
            schedule.split("z", "z_o", "z_i", 8)

    def test_split_nonpositive_factor(self):
        schedule = self.make_schedule()
        with pytest.raises(
            ScheduleError, match="split factor must be positive"
        ):
            schedule.split("i", "i_o", "i_i", 0)

    def test_reorder_duplicate_loops(self):
        schedule = self.make_schedule()
        with pytest.raises(ScheduleError, match="duplicate loops"):
            schedule.reorder_outer_to_inner("i", "i", "j")

    def test_update_with_different_vars(self):
        i, j, x = Var("i"), Var("j"), Var("x")
        f = Func("F")
        f[i, j] = 0.0
        with pytest.raises(ScheduleError, match="must use the pure variables"):
            f[x, j] = 1.0

    def test_rvar_on_lhs(self):
        k = RVar("k", 8)
        f = Func("F")
        with pytest.raises(ScheduleError, match="pure Vars"):
            f[k] = 0.0


class TestFuncValidation:
    def test_zero_bound_rejected(self):
        i = Var("i")
        f = Func("F")
        f[i] = 0.0
        with pytest.raises(
            ValidationError, match="extent for 'i' must be positive, got 0"
        ):
            f.set_bounds({i: 0})

    def test_negative_bound_rejected(self):
        i = Var("i")
        f = Func("F")
        f[i] = 0.0
        with pytest.raises(ValidationError, match="got -4"):
            f.set_bounds({i: -4})

    def test_zero_rvar_extent_rejected(self):
        with pytest.raises(ValidationError, match="positive extent"):
            RVar("k", 0)

    def test_buffer_nonpositive_extent_rejected(self):
        with pytest.raises(ValidationError, match="non-positive extent"):
            Buffer("A", (16, 0))

    def test_validation_error_is_both_valueerror_and_reproerror(self):
        assert issubclass(ValidationError, ValueError)
        assert issubclass(ValidationError, ReproError)

    def test_validate_func_missing_bounds(self):
        i = Var("i")
        f = Func("F")
        f[i] = 0.0
        with pytest.raises(ValidationError, match="no bound set for pure var"):
            validate_func(f)

    def test_validate_func_no_definition(self):
        with pytest.raises(ValidationError, match="no definition"):
            validate_func(Func("Empty"))

    def test_validate_func_accepts_complete_func(self):
        func, *_ = make_matmul()
        validate_func(func)  # no raise


class TestArchValidation:
    def good_cache(self, **kw):
        base = dict(size=32 * 1024, line_size=64, ways=8, latency=4)
        base.update(kw)
        return CacheSpec(**base)

    def test_non_power_of_two_line_size(self):
        with pytest.raises(ValidationError, match="power of two"):
            self.good_cache(size=24 * 1024, line_size=48)

    def test_absurd_line_size(self):
        with pytest.raises(ValidationError, match="8B..4096B"):
            self.good_cache(size=32 * 8192, line_size=8192)

    def test_nonpositive_latency(self):
        with pytest.raises(ValidationError, match="latency"):
            self.good_cache(latency=0)

    def test_l1_bigger_than_l2(self):
        arch = intel_i7_5930k()
        with pytest.raises(ValidationError, match="L1 .* larger than L2"):
            arch.with_overrides(
                l1=self.good_cache(size=1024 * 1024),
            )

    def test_mismatched_line_sizes(self):
        arch = intel_i7_5930k()
        with pytest.raises(ValidationError, match="one line size"):
            arch.with_overrides(l1=self.good_cache(line_size=32))

    def test_nonpositive_mem_latency(self):
        with pytest.raises(ValidationError, match="memory latency"):
            intel_i7_5930k().with_overrides(mem_latency=0)

    def test_negative_prefetch_degree(self):
        with pytest.raises(ValidationError, match="prefetcher"):
            intel_i7_5930k().with_overrides(l2_prefetches_per_access=-1)

    def test_platforms_pass_their_own_validation(self):
        from repro.arch import arm_cortex_a15, intel_i7_6700

        for factory in (intel_i7_5930k, intel_i7_6700, arm_cortex_a15):
            assert isinstance(factory(), ArchSpec)


class TestDeadlinePrimitive:
    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            Deadline(-1.0)

    def test_unbounded_never_expires(self):
        d = Deadline(None)
        assert not d.expired()
        assert d.remaining() is None
        d.check("anything")  # no raise

    def test_zero_budget_expires_immediately(self):
        d = Deadline(0.0, label="now")
        assert d.expired()
        with pytest.raises(DeadlineExceeded, match="'now'"):
            d.check("stage-x")

    def test_message_names_the_stage(self):
        d = Deadline(0.0, label="rung")
        with pytest.raises(DeadlineExceeded, match="during stage-x"):
            d.check("stage-x")

    def test_checkpoint_noop_without_deadline(self):
        checkpoint("free-running")  # no ambient deadline: no raise

    def test_checkpoint_uses_ambient_deadline(self):
        with active_deadline(Deadline(0.0, label="ambient")):
            with pytest.raises(DeadlineExceeded):
                checkpoint("loop")
        checkpoint("loop")  # restored on exit

    def test_force_expire(self):
        d = Deadline(3600.0)
        assert not d.expired()
        d.force_expire()
        assert d.expired()

    def test_deadline_exceeded_is_timeout_and_repro_error(self):
        assert issubclass(DeadlineExceeded, TimeoutError)
        assert issubclass(DeadlineExceeded, ReproError)
