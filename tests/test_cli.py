"""Tests for the command-line interface (python -m repro ...)."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_optimize_defaults(self):
        args = build_parser().parse_args(["optimize", "matmul"])
        assert args.platform == "i7-5930k"
        assert not args.fast

    def test_compare_budget(self):
        args = build_parser().parse_args(
            ["compare", "gemm", "--budget", "123", "--autotune", "5"]
        )
        assert args.budget == 123
        assert args.autotune == 5


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "matmul" in out and "arm-a15" in out

    def test_optimize_fast(self, capsys):
        assert main(["optimize", "matmul", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "temporal" in out
        assert "schedule:" in out

    def test_optimize_show_nest(self, capsys):
        assert main(["optimize", "copy", "--fast", "--show-nest"]) == 0
        out = capsys.readouterr().out
        assert "for (" in out

    def test_optimize_extra_kernel(self, capsys):
        assert main(["optimize", "jacobi2d", "--fast"]) == 0
        assert "stencil" in capsys.readouterr().out

    def test_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            main(["optimize", "nonsense"])

    def test_compare_fast(self, capsys):
        assert main(
            ["compare", "copy", "--fast", "--budget", "3000"]
        ) == 0
        out = capsys.readouterr().out
        assert "proposed+NTI" in out and "baseline" in out

    def test_codegen_to_stdout(self, capsys):
        assert main(["codegen", "copy", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "void copy(" in out

    def test_codegen_to_file(self, tmp_path, capsys):
        target = tmp_path / "k.c"
        assert main(["codegen", "copy", "--fast", "-o", str(target)]) == 0
        assert "void copy(" in target.read_text()

    def test_optimize_halide_output(self, capsys):
        assert main(["optimize", "matmul", "--fast", "--halide"]) == 0
        out = capsys.readouterr().out
        assert ".split(" in out and "C.update()" in out
