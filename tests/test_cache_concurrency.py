"""Multiprocess stress tests for the ScheduleCache's concurrent-writer
safety: O_APPEND line-atomic appends plus the advisory lock that keeps
``compact()`` from dropping records appended mid-rewrite."""

import json
import multiprocessing
import os
import time

import pytest

from repro.arch import intel_i7_5930k
from repro.cache import ScheduleCache
from repro.ir.schedule import Schedule

from tests.helpers import make_matmul


def _distinct_func(worker: int, index: int):
    # Distinct bounds -> distinct fingerprint -> distinct cache key.
    return make_matmul(8 + worker * 64 + index)[0]


def _writer(path: str, worker: int, writes: int, barrier) -> None:
    """One stress process: append ``writes`` records as fast as possible."""
    arch = intel_i7_5930k()
    cache = ScheduleCache(path)
    barrier.wait()  # maximize overlap between processes
    for index in range(writes):
        func = _distinct_func(worker, index)
        schedule = Schedule(func)
        schedule.reorder(*reversed(schedule.loop_names()))
        cache.put(
            func,
            arch,
            {"use_nti": True},
            schedule,
            meta={"worker": worker, "index": index},
        )


def _compacter(path: str, rounds: int, barrier) -> None:
    """One stress process: compact repeatedly while writers append."""
    cache = ScheduleCache(path)
    barrier.wait()
    for _ in range(rounds):
        cache.compact()
        time.sleep(0.005)


@pytest.mark.parametrize("writers,writes", [(4, 12)])
def test_parallel_writers_lose_nothing(tmp_path, writers, writes):
    path = str(tmp_path / "shared.jsonl")
    barrier = multiprocessing.Barrier(writers)
    procs = [
        multiprocessing.Process(
            target=_writer, args=(path, w, writes, barrier)
        )
        for w in range(writers)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=60)
        assert p.exitcode == 0
    # Every line must be whole (no interleaved bytes) and every record
    # must survive: O_APPEND single-write appends cannot shuffle.
    cache = ScheduleCache(path)
    records = cache.load()
    assert cache.load_diagnostics == []
    assert len(records) == writers * writes
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            json.loads(line)  # every line parses on its own


def test_compact_races_no_lost_appends(tmp_path):
    path = str(tmp_path / "shared.jsonl")
    writers, writes = 3, 10
    barrier = multiprocessing.Barrier(writers + 1)
    procs = [
        multiprocessing.Process(
            target=_writer, args=(path, w, writes, barrier)
        )
        for w in range(writers)
    ]
    procs.append(
        multiprocessing.Process(target=_compacter, args=(path, 8, barrier))
    )
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=60)
        assert p.exitcode == 0
    # The exclusive lock around compact()'s read-then-replace means a
    # rewrite can never discard a record another process appended while
    # the rewrite was in progress.
    cache = ScheduleCache(path)
    records = cache.load()
    assert cache.load_diagnostics == []
    assert len(records) == writers * writes
    # A final compact is idempotent and keeps every key.
    assert cache.compact() == writers * writes


def test_lock_sidecar_is_cleaned_by_clear(tmp_path):
    path = str(tmp_path / "cache.jsonl")
    cache = ScheduleCache(path)
    func = _distinct_func(0, 0)
    cache.put(func, intel_i7_5930k(), {"use_nti": True}, Schedule(func))
    cache.compact()
    assert os.path.exists(path + ".lock")
    cache.clear()
    assert not os.path.exists(path)
    assert not os.path.exists(path + ".lock")
