"""Tests for safe_optimize: the fallback chain, deadlines, diagnostics.

The acceptance bar for the graceful-degradation layer: with faults
injected into classification, tile-bound emulation, and cost evaluation,
``safe_optimize`` still returns a schedule that lowers and simulates
correctly, and the diagnostics record the stage, cause, and rung used for
each degradation.
"""

import math

import pytest

from repro.core import Locality, optimize
from repro.ir import Buffer, Func, Var, lower
from repro.ir.validate import validate_schedule
from repro.robust import (
    RUNG_AUTOSCHEDULER,
    RUNG_BASELINE,
    RUNG_PROPOSED,
    RUNG_UNTRANSFORMED,
    FallbackPolicy,
    exhaust_deadline,
    inject,
    poison,
    raise_on,
    safe_optimize,
    safe_optimize_pipeline,
)
from repro.sim import Machine
from repro.util import (
    ClassificationError,
    DeadlineExceeded,
    ReproError,
    ValidationError,
)
from tests.helpers import make_matmul, make_transpose_mask


def assert_legal_and_simulable(func, schedule, arch):
    """The degradation contract: the schedule validates, lowers, and runs."""
    validate_schedule(schedule)
    nests = lower(func, schedule)
    assert nests
    ms = Machine(arch, line_budget=2_000).time_funcs([(func, schedule)])
    assert ms > 0


class TestCleanRun:
    def test_proposed_rung_used(self, arch):
        func, *_ = make_matmul()
        result = safe_optimize(func, arch)
        assert result.rung == RUNG_PROPOSED
        assert not result.fell_back
        assert result.result is not None
        assert result.result.locality is Locality.TEMPORAL
        assert len(result.attempts) == 1 and result.attempts[0].ok
        assert not result.diagnostics.has_errors()
        assert_legal_and_simulable(func, result.schedule, arch)

    def test_matches_plain_optimize(self, arch):
        func, *_ = make_matmul()
        plain = optimize(make_matmul()[0], arch)
        safe = safe_optimize(func, arch)
        assert safe.result.schedule.describe() == plain.schedule.describe()

    def test_elapsed_recorded(self, arch):
        func, *_ = make_matmul()
        result = safe_optimize(func, arch)
        assert result.elapsed_ms > 0
        assert result.attempts[0].elapsed_ms > 0


class TestFallbackRungs:
    """Each injected fault lands one rung further down — and every rung
    still yields a legal, simulable schedule."""

    def test_classification_fault_lands_on_autoscheduler(self, arch):
        func, *_ = make_matmul()
        with inject(raise_on("classify")):
            result = safe_optimize(func, arch)
        assert result.rung == RUNG_AUTOSCHEDULER
        assert result.fell_back
        assert result.result is None
        [record] = result.diagnostics.errors
        assert record.stage == RUNG_PROPOSED
        assert record.error_type == "ClassificationError"
        assert record.fallback_to == RUNG_AUTOSCHEDULER
        assert_legal_and_simulable(func, result.schedule, arch)

    def test_emulation_fault_lands_on_autoscheduler(self, arch):
        func, *_ = make_matmul()
        with inject(raise_on("emu")):
            result = safe_optimize(func, arch)
        assert result.rung == RUNG_AUTOSCHEDULER
        assert result.diagnostics.errors[0].error_type == "ReproError"
        assert_legal_and_simulable(func, result.schedule, arch)

    def test_emulation_fault_spatial_flow(self, arch):
        func, *_ = make_transpose_mask()
        with inject(raise_on("emu")):
            result = safe_optimize(func, arch)
        assert result.rung == RUNG_AUTOSCHEDULER
        assert_legal_and_simulable(func, result.schedule, arch)

    def test_nan_cost_poisoning_descends(self, arch):
        func, *_ = make_matmul()
        with inject(poison("cost", value=float("nan"))):
            result = safe_optimize(func, arch)
        assert result.rung == RUNG_AUTOSCHEDULER
        [record] = result.diagnostics.errors
        assert record.error_type == "ValidationError"
        assert "non-finite" in record.message
        assert_legal_and_simulable(func, result.schedule, arch)

    def test_inf_cost_poisoning_descends(self, arch):
        func, *_ = make_matmul()
        with inject(poison("cost", value=float("inf"))):
            result = safe_optimize(func, arch)
        assert result.rung == RUNG_AUTOSCHEDULER
        assert_legal_and_simulable(func, result.schedule, arch)

    def test_schedule_fault_lands_on_baseline(self, arch):
        func, *_ = make_matmul()
        with inject(raise_on("schedule")):
            result = safe_optimize(func, arch)
        assert result.rung == RUNG_BASELINE
        assert [a.rung for a in result.attempts] == [
            RUNG_PROPOSED, RUNG_AUTOSCHEDULER, RUNG_BASELINE,
        ]
        # Two descents -> two error records, each naming the next rung.
        fallbacks = [r.fallback_to for r in result.diagnostics.errors]
        assert fallbacks == [RUNG_AUTOSCHEDULER, RUNG_BASELINE]
        assert_legal_and_simulable(func, result.schedule, arch)

    def test_analysis_fault_lands_on_untransformed(self, arch):
        func, *_ = make_matmul()
        with inject(raise_on("analyze")):
            result = safe_optimize(func, arch)
        assert result.rung == RUNG_UNTRANSFORMED
        assert [a.rung for a in result.attempts] == [
            RUNG_PROPOSED,
            RUNG_AUTOSCHEDULER,
            RUNG_BASELINE,
            RUNG_UNTRANSFORMED,
        ]
        assert len(result.diagnostics.errors) == 3
        assert_legal_and_simulable(func, result.schedule, arch)

    def test_describe_names_the_degradation(self, arch):
        func, *_ = make_matmul()
        with inject(raise_on("classify")):
            result = safe_optimize(func, arch)
        text = result.describe()
        assert "degraded" in text
        assert "auto-scheduler" in text
        assert "ClassificationError" in text


class TestDeadlines:
    def test_tiny_deadline_degrades(self, arch):
        func, *_ = make_matmul(256)
        policy = FallbackPolicy(deadline_ms=0.01)
        result = safe_optimize(func, arch, policy)
        assert result.fell_back
        assert result.attempts[0].error_type == "DeadlineExceeded"
        assert_legal_and_simulable(func, result.schedule, arch)

    def test_deadline_fault_during_search(self, arch):
        func, *_ = make_matmul()
        policy = FallbackPolicy(deadline_ms=60_000.0)
        with inject(exhaust_deadline("emu")):
            result = safe_optimize(func, arch, policy)
        assert result.attempts[0].error_type == "DeadlineExceeded"
        assert result.rung == RUNG_AUTOSCHEDULER
        assert_legal_and_simulable(func, result.schedule, arch)

    def test_total_deadline_still_returns_schedule(self, arch):
        func, *_ = make_matmul(256)
        policy = FallbackPolicy(deadline_ms=0.01, total_deadline_ms=0.02)
        result = safe_optimize(func, arch, policy)
        # Even with the whole budget exhausted, the untransformed rung is
        # deadline-exempt and must deliver.
        assert result.rung != RUNG_PROPOSED
        assert_legal_and_simulable(func, result.schedule, arch)

    def test_generous_deadline_keeps_proposed(self, arch):
        func, *_ = make_matmul()
        policy = FallbackPolicy(deadline_ms=60_000.0)
        result = safe_optimize(func, arch, policy)
        assert result.rung == RUNG_PROPOSED


class TestPolicies:
    def test_strict_reraises_first_failure(self, arch):
        func, *_ = make_matmul()
        policy = FallbackPolicy.strict_policy()
        with inject(raise_on("classify")):
            with pytest.raises(ClassificationError, match="injected fault"):
                safe_optimize(func, arch, policy)

    def test_strict_deadline_raises(self, arch):
        func, *_ = make_matmul(256)
        policy = FallbackPolicy.strict_policy(deadline_ms=0.01)
        with pytest.raises(DeadlineExceeded):
            safe_optimize(func, arch, policy)

    def test_lenient_policy_must_end_untransformed(self):
        with pytest.raises(ValueError, match="untransformed"):
            FallbackPolicy(rungs=(RUNG_PROPOSED, RUNG_BASELINE))

    def test_rungs_must_be_ordered(self):
        with pytest.raises(ValueError, match="ordered"):
            FallbackPolicy(
                rungs=(RUNG_BASELINE, RUNG_PROPOSED, RUNG_UNTRANSFORMED)
            )

    def test_unknown_rung_rejected(self):
        with pytest.raises(ValueError, match="unknown fallback rung"):
            FallbackPolicy(rungs=("prayer", RUNG_UNTRANSFORMED))

    def test_shortened_chain(self, arch):
        func, *_ = make_matmul()
        policy = FallbackPolicy(
            rungs=(RUNG_PROPOSED, RUNG_UNTRANSFORMED)
        )
        with inject(raise_on("classify")):
            result = safe_optimize(func, arch, policy)
        assert result.rung == RUNG_UNTRANSFORMED
        assert_legal_and_simulable(func, result.schedule, arch)

    def test_invalid_input_is_hard_failure(self, arch):
        i, j = Var("i"), Var("j")
        a = Buffer("A", (8, 8))
        f = Func("F")
        f[i, j] = a[i, j]
        # No bounds set: no rung can schedule this; lenient still raises.
        with pytest.raises(ValidationError, match="no bound set"):
            safe_optimize(f, arch)

    def test_validation_can_be_disabled(self, arch):
        func, *_ = make_matmul()
        policy = FallbackPolicy(validate_inputs=False)
        assert safe_optimize(func, arch, policy).rung == RUNG_PROPOSED


class TestPipeline:
    def test_all_stages_optimized(self, arch):
        from repro.bench import make_benchmark

        case = make_benchmark("3mm", n=64)
        results = safe_optimize_pipeline(case.pipeline, arch)
        assert set(results) == set(case.funcs)
        assert all(r.rung == RUNG_PROPOSED for r in results.values())

    def test_stage_degradation_is_independent(self, arch):
        from repro.bench import make_benchmark

        case = make_benchmark("3mm", n=64)
        with inject(raise_on("classify", n=2, count=1)):
            results = safe_optimize_pipeline(case.pipeline, arch)
        rungs = [results[f].rung for f in case.funcs]
        assert rungs.count(RUNG_AUTOSCHEDULER) == 1
        assert rungs.count(RUNG_PROPOSED) == len(rungs) - 1
        for f, r in results.items():
            assert_legal_and_simulable(f, r.schedule, arch)


class TestNeverWorseThanLegal:
    """Sweep every fault site: whatever breaks, the schedule is legal."""

    @pytest.mark.parametrize(
        "site", ["classify", "emu", "cost", "schedule", "analyze"]
    )
    def test_any_site_any_func(self, arch, site):
        for maker in (make_matmul, make_transpose_mask):
            func, *_ = maker()
            with inject(raise_on(site)):
                result = safe_optimize(func, arch)
            assert result.fell_back
            assert_legal_and_simulable(func, result.schedule, arch)
