"""Focused unit tests for the timing model internals (repro.sim.timing)."""

import pytest

from repro.arch import arm_cortex_a15, intel_i7_5930k
from repro.ir import Schedule, lower
from repro.sim.executor import NestCounters
from repro.sim.timing import TimingModel, _threads_used, _vector_lanes, time_nest

from tests.helpers import make_copy, make_matmul, make_transpose_mask


def counters_for(nest, **kw):
    c = NestCounters(nest=nest)
    c.total_stmts = nest.total_iterations()
    c.simulated_stmts = c.total_stmts
    for key, value in kw.items():
        setattr(c, key, value)
    return c


class TestTimingModelConfig:
    def test_bandwidth_defaults_to_platform(self):
        model = TimingModel()
        assert model.bandwidth(intel_i7_5930k()) == 16.0
        assert model.bandwidth(arm_cortex_a15()) == 3.0

    def test_bandwidth_override(self):
        model = TimingModel(bw_bytes_per_cycle=5.0)
        assert model.bandwidth(intel_i7_5930k()) == 5.0

    def test_frozen(self):
        with pytest.raises(Exception):
            TimingModel().mlp = 2.0


class TestVectorLanes:
    def test_no_vectorized_loop(self, arch):
        c, _, _ = make_matmul(16)
        nest = lower(c)[1]
        assert _vector_lanes(nest, arch) == 1.0

    def test_contiguous_vector_full_lanes(self, arch):
        f, _ = make_copy(64)
        s = Schedule(f)
        s.vectorize("x", 8)
        nest = lower(f, s)[0]
        lanes = _vector_lanes(nest, arch)
        assert lanes > 4  # both refs contiguous along x

    def test_gather_discounts_lanes(self, arch):
        # tpm vectorized over x: A[x][y] is strided along x -> discount.
        f, _, _ = make_transpose_mask(64)
        s = Schedule(f)
        s.vectorize("x", 8)
        nest = lower(f, s)[0]
        f2, _ = make_copy(64)
        s2 = Schedule(f2)
        s2.vectorize("x", 8)
        nest2 = lower(f2, s2)[0]
        assert _vector_lanes(nest, arch) < _vector_lanes(nest2, arch)

    def test_arm_fewer_lanes(self, arch_arm):
        f, _ = make_copy(64)
        s = Schedule(f)
        s.vectorize("x", 4)
        nest = lower(f, s)[0]
        assert _vector_lanes(nest, arch_arm) <= 4


class TestThreadsUsed:
    def test_serial_nest(self, arch):
        c, _, _ = make_matmul(16)
        nest = lower(c)[1]
        assert _threads_used(nest, arch, TimingModel()) == 1.0

    def test_parallel_capped_by_cores_plus_smt(self, arch):
        c, _, _ = make_matmul(64)
        s = Schedule(c)
        s.parallel("i")
        nest = lower(c, s)[1]
        threads = _threads_used(nest, arch, TimingModel())
        assert arch.n_cores <= threads <= arch.total_threads

    def test_short_parallel_loop(self, arch):
        c, _, _ = make_matmul(64)
        s = Schedule(c)
        s.split("i", "io", "ii", 32)
        s.parallel("io")
        nest = lower(c, s)[1]
        assert _threads_used(nest, arch, TimingModel()) == 2.0

    def test_arm_no_smt_bonus(self, arch_arm):
        c, _, _ = make_matmul(64)
        s = Schedule(c)
        s.parallel("i")
        nest = lower(c, s)[1]
        assert _threads_used(nest, arch_arm, TimingModel()) == 4.0


class TestTimeNest:
    def test_dram_floor_binds_for_heavy_traffic(self, arch):
        # Prefetched DRAM lines cost bandwidth but no exposed latency, so
        # a prefetch-heavy stream is exactly the roofline-bound case.
        c, _, _ = make_matmul(16)
        nest = lower(c)[1]
        counters = counters_for(nest, prefetch_mem_lines=10**6, l1_hits=10**4)
        t = time_nest(counters, arch)
        assert t.total_cycles == t.dram_cycles

    def test_core_binds_for_cache_resident(self, arch):
        c, _, _ = make_matmul(16)
        nest = lower(c)[1]
        counters = counters_for(nest, l1_hits=10**4)
        t = time_nest(counters, arch)
        assert t.total_cycles == t.core_cycles

    def test_latency_scales_with_level(self, arch):
        c, _, _ = make_matmul(16)
        nest = lower(c)[1]
        l2_heavy = counters_for(nest, l2_hits=1000)
        l3_heavy = counters_for(nest, l3_hits=1000)
        assert (
            time_nest(l3_heavy, arch).latency_cycles
            > time_nest(l2_heavy, arch).latency_cycles
        )

    def test_scale_multiplies_memory_terms(self, arch):
        c, _, _ = make_matmul(16)
        nest = lower(c)[1]
        small = counters_for(nest, mem_lines=100)
        scaled = counters_for(nest, mem_lines=100)
        scaled.simulated_stmts = scaled.total_stmts // 4
        t_small = time_nest(small, arch)
        t_scaled = time_nest(scaled, arch)
        assert t_scaled.dram_cycles == pytest.approx(4 * t_small.dram_cycles)

    def test_nt_lines_cheaper_than_demand_misses(self, arch):
        c, _, _ = make_matmul(16)
        nest = lower(c)[1]
        nt = counters_for(nest, nt_lines=1000)
        demand = counters_for(nest, mem_lines=1000)
        assert (
            time_nest(nt, arch).latency_cycles
            < time_nest(demand, arch).latency_cycles
        )
