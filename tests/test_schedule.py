"""Tests for the scheduling language (repro.ir.schedule)."""

import pytest

from repro.ir import Schedule, LoopKind
from repro.ir.schedule import (
    FusedInner,
    FusedOuter,
    LeafIndex,
    SplitIndex,
)
from repro.util import ScheduleError

from tests.helpers import make_matmul


def fresh_schedule(n=16):
    c, _, _ = make_matmul(n)
    return Schedule(c), c


class TestConstruction:
    def test_default_loops_pure_then_rvars(self):
        s, _ = fresh_schedule()
        assert s.loop_names() == ["i", "j", "k"]

    def test_default_extents(self):
        s, _ = fresh_schedule(32)
        assert [l.extent for l in s.loops()] == [32, 32, 32]

    def test_targets_main_definition(self):
        s, c = fresh_schedule()
        assert s.definition_index == 1

    def test_explicit_definition_index(self):
        c, _, _ = make_matmul(8)
        s = Schedule(c, definition_index=0)
        assert s.loop_names() == ["i", "j"]

    def test_bad_definition_index(self):
        c, _, _ = make_matmul(8)
        with pytest.raises(ScheduleError):
            Schedule(c, definition_index=5)

    def test_identity_index_trees(self):
        s, _ = fresh_schedule()
        assert s.index_tree("i") == LeafIndex("i")


class TestSplit:
    def test_replaces_loop_in_place(self):
        s, _ = fresh_schedule(16)
        s.split("i", "io", "ii", 4)
        assert s.loop_names() == ["io", "ii", "j", "k"]
        assert s.loops()[0].extent == 4
        assert s.loops()[1].extent == 4

    def test_index_tree(self):
        s, _ = fresh_schedule(16)
        s.split("i", "io", "ii", 4)
        assert s.index_tree("i") == SplitIndex(
            LeafIndex("io"), LeafIndex("ii"), 4
        )

    def test_nested_split_tree_is_correct(self):
        # Regression: (io*4 + (im*2 + ii)), NOT ((io*4+im)*2 + ii).
        s, _ = fresh_schedule(16)
        s.split("i", "io", "im", 4)
        s.split("im", "imo", "imi", 2)
        tree = s.index_tree("i")
        assert tree == SplitIndex(
            LeafIndex("io"),
            SplitIndex(LeafIndex("imo"), LeafIndex("imi"), 2),
            4,
        )

    def test_imperfect_split_guards(self):
        s, _ = fresh_schedule(10)
        s.split("i", "io", "ii", 4)
        assert s.guards() == {"i": 10}
        assert s.loops()[0].extent == 3  # ceil(10/4)

    def test_perfect_split_no_guard(self):
        s, _ = fresh_schedule(16)
        s.split("i", "io", "ii", 4)
        assert s.guards() == {}

    def test_factor_clamped_to_extent(self):
        s, _ = fresh_schedule(8)
        s.split("i", "io", "ii", 100)
        assert s.loops()[1].extent == 8
        assert s.loops()[0].extent == 1

    def test_rejects_duplicate_names(self):
        s, _ = fresh_schedule()
        with pytest.raises(ScheduleError):
            s.split("i", "j", "ii", 4)  # "j" exists

    def test_rejects_bad_factor(self):
        s, _ = fresh_schedule()
        with pytest.raises(ScheduleError):
            s.split("i", "io", "ii", 0)

    def test_rejects_unknown_loop(self):
        s, _ = fresh_schedule()
        with pytest.raises(ScheduleError):
            s.split("zz", "a", "b", 4)

    def test_rejects_same_outer_inner(self):
        s, _ = fresh_schedule()
        with pytest.raises(ScheduleError):
            s.split("i", "x", "x", 4)

    def test_cannot_split_vectorized(self):
        s, _ = fresh_schedule()
        s.vectorize("k")
        with pytest.raises(ScheduleError):
            s.split("k", "ko", "ki", 4)


class TestReorder:
    def test_halide_convention_innermost_first(self):
        s, _ = fresh_schedule()
        s.reorder("i", "j", "k")  # i innermost
        assert s.loop_names() == ["k", "j", "i"]

    def test_outer_to_inner_helper(self):
        s, _ = fresh_schedule()
        s.reorder_outer_to_inner("k", "j", "i")
        assert s.loop_names() == ["k", "j", "i"]

    def test_partial_reorder_keeps_unlisted(self):
        s, _ = fresh_schedule()
        s.split("i", "io", "ii", 4)  # io ii j k
        s.reorder("j", "k")  # swap j and k among their slots
        assert s.loop_names() == ["io", "ii", "k", "j"]

    def test_rejects_duplicates(self):
        s, _ = fresh_schedule()
        with pytest.raises(ScheduleError):
            s.reorder("i", "i")

    def test_rejects_unknown(self):
        s, _ = fresh_schedule()
        with pytest.raises(ScheduleError):
            s.reorder("i", "zz")


class TestFuse:
    def test_fuse_adjacent(self):
        s, _ = fresh_schedule(16)
        s.fuse("i", "j", "ij")
        assert s.loop_names() == ["ij", "k"]
        assert s.loops()[0].extent == 256

    def test_fused_index_trees(self):
        s, _ = fresh_schedule(16)
        s.fuse("i", "j", "ij")
        assert s.index_tree("i") == FusedOuter(LeafIndex("ij"), 16)
        assert s.index_tree("j") == FusedInner(LeafIndex("ij"), 16)

    def test_fuse_requires_adjacency(self):
        s, _ = fresh_schedule()
        with pytest.raises(ScheduleError):
            s.fuse("i", "k", "ik")  # j in between

    def test_fuse_requires_order(self):
        s, _ = fresh_schedule()
        with pytest.raises(ScheduleError):
            s.fuse("j", "i", "ji")  # j is inside i

    def test_fuse_rejects_nonserial(self):
        s, _ = fresh_schedule()
        s.parallel("i")
        with pytest.raises(ScheduleError):
            s.fuse("i", "j", "ij")

    def test_fuse_of_split_outers(self):
        s, _ = fresh_schedule(16)
        s.split("i", "io", "ii", 4)
        s.split("j", "jo", "ji", 4)
        s.reorder("ji", "ii", "jo", "io")  # io jo ii ji ... k trails
        s.fuse("io", "jo", "iojo")
        assert s.loop_names()[0] == "iojo"
        assert s.loops()[0].extent == 16


class TestVectorizeParallelUnroll:
    def test_vectorize_marks_kind(self):
        s, _ = fresh_schedule()
        s.vectorize("k")
        assert s.loops()[2].kind is LoopKind.VECTORIZED

    def test_vectorize_with_width_splits(self):
        s, _ = fresh_schedule(64)
        s.vectorize("k", width=8)
        names = s.loop_names()
        assert "k_vo" in names and "k_vi" in names
        inner = [l for l in s.loops() if l.name == "k_vi"][0]
        assert inner.extent == 8
        assert inner.kind is LoopKind.VECTORIZED

    def test_vectorize_short_loop_no_split(self):
        s, _ = fresh_schedule(8)
        s.vectorize("k", width=8)
        assert s.loop_names() == ["i", "j", "k"]

    def test_parallel(self):
        s, _ = fresh_schedule()
        s.parallel("i")
        assert s.loops()[0].kind is LoopKind.PARALLEL

    def test_unroll(self):
        s, _ = fresh_schedule()
        s.unroll("j")
        assert s.loops()[1].kind is LoopKind.UNROLLED

    def test_store_nontemporal_flag(self):
        s, _ = fresh_schedule()
        assert not s.nontemporal
        s.store_nontemporal()
        assert s.nontemporal


class TestTileHelper:
    def test_tile_structure(self):
        s, _ = fresh_schedule(16)
        s.tile("i", "j", "io", "jo", "ii", "ji", 4, 8)
        assert s.loop_names() == ["io", "jo", "ii", "ji", "k"]
        extents = {l.name: l.extent for l in s.loops()}
        assert extents == {"io": 4, "jo": 2, "ii": 4, "ji": 8, "k": 16}


class TestDescribe:
    def test_describe_mentions_directives(self):
        s, _ = fresh_schedule()
        s.split("i", "io", "ii", 4).parallel("io")
        text = s.describe()
        assert "split" in text and "parallel" in text

    def test_directives_recorded_in_order(self):
        s, _ = fresh_schedule()
        s.split("i", "io", "ii", 4)
        s.vectorize("k")
        kinds = [d.kind for d in s.directives]
        assert kinds == ["split", "vectorize"]
