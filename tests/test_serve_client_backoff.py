"""The client's deterministic retry backoff (cap, jitter, Retry-After).

The schedule contract: retry *k* sleeps ``min(cap, base * 2**(k-1))``
scaled by a jitter factor in ``[1, 1.5]`` derived only from
``backoff_seed`` and ``k`` — bit-reproducible per client, uncorrelated
across seeds — and a server-provided ``Retry-After`` acts as a floor,
never ignored.  The integration half runs a one-socket fake server that
sheds once with ``Retry-After: 2`` and then answers, asserting the
client actually slept at least the floor.
"""

import json
import socket
import threading
import time

import pytest

from repro.serve import ServeClient
from repro.serve.schema import REASON_DEADLINE_EXHAUSTED
from repro.util import ServeError, ServeOverloaded


class TestBackoffSchedule:
    def test_deterministic_per_seed(self):
        a = ServeClient(port=1, backoff_seed=7)
        b = ServeClient(port=2, backoff_seed=7)
        assert [a.backoff_s(k) for k in range(1, 6)] == [
            b.backoff_s(k) for k in range(1, 6)
        ]

    def test_distinct_seeds_decorrelate(self):
        a = ServeClient(port=1, backoff_seed=1)
        b = ServeClient(port=1, backoff_seed=2)
        schedule_a = [a.backoff_s(k) for k in range(1, 6)]
        schedule_b = [b.backoff_s(k) for k in range(1, 6)]
        assert schedule_a != schedule_b

    def test_exponential_growth_capped(self):
        client = ServeClient(
            port=1, backoff_base_s=0.1, backoff_cap_s=1.0, backoff_seed=0
        )
        for attempt in range(1, 20):
            delay = client.backoff_s(attempt)
            base = min(1.0, 0.1 * 2.0 ** (attempt - 1))
            assert base <= delay <= base * 1.5
        # Far down the schedule the cap (times max jitter) bounds it.
        assert client.backoff_s(50) <= 1.5

    def test_retry_after_is_a_floor_not_a_suggestion(self):
        client = ServeClient(port=1, backoff_base_s=0.01, backoff_cap_s=0.1)
        assert client.backoff_s(1, floor=10.0) == 10.0
        # ...but a small floor never *shortens* the computed delay.
        assert client.backoff_s(4, floor=0.0) == client.backoff_s(4)

    def test_validation(self):
        with pytest.raises(ValueError, match="1-based"):
            ServeClient(port=1).backoff_s(0)
        with pytest.raises(ValueError, match="backoff"):
            ServeClient(port=1, backoff_base_s=-1.0)


def _fake_server(responses):
    """A one-thread server answering each connection with the next canned
    response; returns (port, thread, served_list)."""
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(4)
    port = listener.getsockname()[1]
    served = []

    def run():
        for raw in responses:
            conn, _ = listener.accept()
            conn.settimeout(5.0)
            try:
                chunk = conn.recv(65536)  # one small request: one read
                served.append(chunk)
                conn.sendall(raw)
            finally:
                conn.close()
        listener.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return port, thread, served


def _http(status, reason, body, extra_headers=""):
    payload = json.dumps(body).encode()
    return (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"{extra_headers}"
        f"Connection: close\r\n\r\n"
    ).encode() + payload


class TestRetryAfterIntegration:
    def test_shed_then_success_sleeps_at_least_the_floor(self, monkeypatch):
        shed = _http(
            503,
            "Service Unavailable",
            {
                "format": "repro-serve-v1",
                "kind": "error",
                "status": 503,
                "error": "draining",
                "retry_after_s": 2.0,
            },
            extra_headers="Retry-After: 2\r\n",
        )
        ok = _http(200, "OK", {"format": "repro-serve-v1", "served_by": "cache"})
        port, thread, served = _fake_server([shed, ok])

        slept = []
        monkeypatch.setattr(time, "sleep", lambda s: slept.append(s))
        client = ServeClient(
            port=port, retries=2, backoff_base_s=0.01, backoff_seed=3
        )
        result = client.optimize("matmul", "i7-5930k", fast=True)
        thread.join(timeout=5.0)

        assert result["served_by"] == "cache"
        assert len(served) == 2  # one shed, one retry
        assert slept == [client.backoff_s(1, floor=2.0)]
        assert slept[0] >= 2.0


def _request_body(raw):
    """The JSON payload of one captured HTTP request."""
    return json.loads(raw.split(b"\r\n\r\n", 1)[1])


class TestDeadlineAwareRetries:
    """The client stops retrying the moment its own budget forbids it."""

    def test_stops_instead_of_sleeping_past_the_budget(self, monkeypatch):
        # One shed with Retry-After: 2 against a 500 ms budget: the
        # 2-second floor cannot fit, so the client must raise NOW with
        # the deadline_exhausted hint — not sleep into a sure timeout.
        shed = _http(
            429,
            "Too Many Requests",
            {
                "format": "repro-serve-v1",
                "kind": "error",
                "status": 429,
                "error": "admission queue is full",
                "retry_after_s": 2.0,
            },
            extra_headers="Retry-After: 2\r\n",
        )
        port, thread, served = _fake_server([shed])
        slept = []
        monkeypatch.setattr(time, "sleep", lambda s: slept.append(s))
        client = ServeClient(port=port, retries=5, backoff_base_s=0.01)
        with pytest.raises(ServeOverloaded) as excinfo:
            client.optimize(
                "matmul", "i7-5930k", fast=True, deadline_ms=500.0
            )
        thread.join(timeout=5.0)
        assert excinfo.value.reason == REASON_DEADLINE_EXHAUSTED
        assert excinfo.value.last_status == 429
        assert "deadline_exhausted" in str(excinfo.value)
        assert "admission queue is full" in str(excinfo.value)
        assert len(served) == 1  # no second submission
        assert slept == []  # and no sleep it could not afford

    def test_resubmission_carries_the_shrunken_budget(self):
        shed = _http(
            429,
            "Too Many Requests",
            {
                "format": "repro-serve-v1",
                "kind": "error",
                "status": 429,
                "error": "busy",
                "retry_after_s": 0.05,
            },
        )
        ok = _http(200, "OK", {"format": "repro-serve-v1",
                               "served_by": "cache"})
        port, thread, served = _fake_server([shed, ok])
        client = ServeClient(port=port, retries=2, backoff_base_s=0.01)
        client.optimize(
            "matmul", "i7-5930k", fast=True, deadline_ms=10000.0
        )
        thread.join(timeout=5.0)
        first = _request_body(served[0])["deadline_ms"]
        second = _request_body(served[1])["deadline_ms"]
        # Both legs spend from ONE budget charged at the original call:
        # each submission carries strictly less than the caller granted.
        assert 0 < first <= 10000.0
        assert 0 < second < first

    def test_already_exhausted_budget_never_touches_the_network(self):
        client = ServeClient(port=1, retries=3)  # nothing listens on :1
        with pytest.raises(ServeOverloaded) as excinfo:
            client.optimize(
                "matmul", "i7-5930k", fast=True, deadline_ms=0.0001
            )
        assert excinfo.value.reason == REASON_DEADLINE_EXHAUSTED


class TestHedging:
    """Bounded hedging: at most one backup, first answer wins."""

    OK = _http(200, "OK", {"format": "repro-serve-v1", "served_by": "cache"})
    ERR = _http(
        500,
        "Internal Server Error",
        {"format": "repro-serve-v1", "kind": "error", "status": 500,
         "error": "boom"},
    )

    def test_fast_primary_never_hedges(self):
        port, thread, served = _fake_server([self.OK])
        client = ServeClient(port=port, retries=0)
        result = client.optimize(
            "matmul", "i7-5930k", fast=True, hedge_after_s=5.0
        )
        thread.join(timeout=5.0)
        assert result["served_by"] == "cache"
        assert len(served) == 1  # no backup was launched

    def test_slow_primary_launches_exactly_one_backup(self):
        port, thread, served = _fake_server([self.OK, self.OK])
        client = ServeClient(port=port, retries=0)
        result = client.optimize(
            "matmul", "i7-5930k", fast=True, hedge_after_s=0.0
        )
        thread.join(timeout=5.0)
        assert result["served_by"] == "cache"
        assert len(served) == 2  # primary + one backup, never more

    def test_backup_absorbs_a_failing_leg(self):
        # One of the two legs gets a 500; whichever it is, the other's
        # answer wins and the caller never sees the failure.
        port, thread, served = _fake_server([self.ERR, self.OK])
        client = ServeClient(port=port, retries=0)
        result = client.optimize(
            "matmul", "i7-5930k", fast=True, hedge_after_s=0.0
        )
        thread.join(timeout=5.0)
        assert result["served_by"] == "cache"
        assert len(served) == 2

    def test_both_legs_failing_surfaces_the_error(self):
        port, thread, served = _fake_server([self.ERR, self.ERR])
        client = ServeClient(port=port, retries=0)
        with pytest.raises(ServeError, match="boom"):
            client.optimize(
                "matmul", "i7-5930k", fast=True, hedge_after_s=0.0
            )
        thread.join(timeout=5.0)

    def test_negative_hedge_delay_is_rejected(self):
        with pytest.raises(ValueError, match="hedge_after_s"):
            ServeClient(port=1).optimize(
                "matmul", "i7-5930k", fast=True, hedge_after_s=-1.0
            )
