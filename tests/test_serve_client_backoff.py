"""The client's deterministic retry backoff (cap, jitter, Retry-After).

The schedule contract: retry *k* sleeps ``min(cap, base * 2**(k-1))``
scaled by a jitter factor in ``[1, 1.5]`` derived only from
``backoff_seed`` and ``k`` — bit-reproducible per client, uncorrelated
across seeds — and a server-provided ``Retry-After`` acts as a floor,
never ignored.  The integration half runs a one-socket fake server that
sheds once with ``Retry-After: 2`` and then answers, asserting the
client actually slept at least the floor.
"""

import json
import socket
import threading
import time

import pytest

from repro.serve import ServeClient


class TestBackoffSchedule:
    def test_deterministic_per_seed(self):
        a = ServeClient(port=1, backoff_seed=7)
        b = ServeClient(port=2, backoff_seed=7)
        assert [a.backoff_s(k) for k in range(1, 6)] == [
            b.backoff_s(k) for k in range(1, 6)
        ]

    def test_distinct_seeds_decorrelate(self):
        a = ServeClient(port=1, backoff_seed=1)
        b = ServeClient(port=1, backoff_seed=2)
        schedule_a = [a.backoff_s(k) for k in range(1, 6)]
        schedule_b = [b.backoff_s(k) for k in range(1, 6)]
        assert schedule_a != schedule_b

    def test_exponential_growth_capped(self):
        client = ServeClient(
            port=1, backoff_base_s=0.1, backoff_cap_s=1.0, backoff_seed=0
        )
        for attempt in range(1, 20):
            delay = client.backoff_s(attempt)
            base = min(1.0, 0.1 * 2.0 ** (attempt - 1))
            assert base <= delay <= base * 1.5
        # Far down the schedule the cap (times max jitter) bounds it.
        assert client.backoff_s(50) <= 1.5

    def test_retry_after_is_a_floor_not_a_suggestion(self):
        client = ServeClient(port=1, backoff_base_s=0.01, backoff_cap_s=0.1)
        assert client.backoff_s(1, floor=10.0) == 10.0
        # ...but a small floor never *shortens* the computed delay.
        assert client.backoff_s(4, floor=0.0) == client.backoff_s(4)

    def test_validation(self):
        with pytest.raises(ValueError, match="1-based"):
            ServeClient(port=1).backoff_s(0)
        with pytest.raises(ValueError, match="backoff"):
            ServeClient(port=1, backoff_base_s=-1.0)


def _fake_server(responses):
    """A one-thread server answering each connection with the next canned
    response; returns (port, thread, served_list)."""
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(4)
    port = listener.getsockname()[1]
    served = []

    def run():
        for raw in responses:
            conn, _ = listener.accept()
            conn.settimeout(5.0)
            try:
                chunk = conn.recv(65536)  # one small request: one read
                served.append(chunk)
                conn.sendall(raw)
            finally:
                conn.close()
        listener.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return port, thread, served


def _http(status, reason, body, extra_headers=""):
    payload = json.dumps(body).encode()
    return (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"{extra_headers}"
        f"Connection: close\r\n\r\n"
    ).encode() + payload


class TestRetryAfterIntegration:
    def test_shed_then_success_sleeps_at_least_the_floor(self, monkeypatch):
        shed = _http(
            503,
            "Service Unavailable",
            {
                "format": "repro-serve-v1",
                "kind": "error",
                "status": 503,
                "error": "draining",
                "retry_after_s": 2.0,
            },
            extra_headers="Retry-After: 2\r\n",
        )
        ok = _http(200, "OK", {"format": "repro-serve-v1", "served_by": "cache"})
        port, thread, served = _fake_server([shed, ok])

        slept = []
        monkeypatch.setattr(time, "sleep", lambda s: slept.append(s))
        client = ServeClient(
            port=port, retries=2, backoff_base_s=0.01, backoff_seed=3
        )
        result = client.optimize("matmul", "i7-5930k", fast=True)
        thread.join(timeout=5.0)

        assert result["served_by"] == "cache"
        assert len(served) == 2  # one shed, one retry
        assert slept == [client.backoff_s(1, floor=2.0)]
        assert slept[0] >= 2.0
