"""Classifier edge cases beyond the benchmark suite."""

import pytest

from repro.core import Locality, classify
from repro.ir import Buffer, Func, RVar, Var, float32
from repro.util import ClassificationError


def _bound(f, **kw):
    f.set_bounds({Var(k): v for k, v in kw.items()})
    return f


class TestEdgeStatements:
    def test_1d_reduction_is_temporal(self):
        n = 32
        x = Var("x")
        r = RVar("r", n)
        a = Buffer("A", (n, n), float32)
        f = Func("F")
        f[x] = 0.0
        f[x] = f[x] + a[x, r]
        f.set_bounds({x: n})
        assert classify(f).locality is Locality.TEMPORAL

    def test_constant_index_input(self):
        # Broadcasting a row: A[0, x] — no temporal reuse, no transpose.
        n = 16
        x, y = Var("x"), Var("y")
        a = Buffer("A", (n, n), float32)
        f = Func("F")
        f[y, x] = a[0, x]
        f.set_bounds({x: n, y: n})
        decision = classify(f)
        assert decision.locality is Locality.NONE
        assert decision.use_nti

    def test_reversed_1d_not_transposed(self):
        # out[x] = a[x] + b[x]: 1-D can't be transposed.
        n = 16
        x = Var("x")
        a = Buffer("A", (n,), float32)
        b = Buffer("B", (n,), float32)
        f = Func("F")
        f[x] = a[x] + b[x]
        f.set_bounds({x: n})
        assert classify(f).locality is Locality.NONE

    def test_3d_transposed_pair(self):
        # out[z, y, x] = a[z, x, y]: x/y swapped in the last two dims.
        n = 8
        x, y, z = Var("x"), Var("y"), Var("z")
        a = Buffer("A", (n, n, n), float32)
        f = Func("F")
        f[z, y, x] = a[z, x, y]
        f.set_bounds({x: n, y: n, z: n})
        decision = classify(f)
        assert decision.locality is Locality.SPATIAL
        assert [r.name for r in decision.transposed] == ["A"]

    def test_scaled_index_not_stencil(self):
        # Strided access a[2*x]: same variable set, no constant offsets —
        # classified as contiguous/none (no transformation).
        n = 16
        x = Var("x")
        a = Buffer("A", (2 * n,), float32)
        f = Func("F")
        f[x] = a[2 * x]
        f.set_bounds({x: n})
        assert classify(f).locality is Locality.NONE

    def test_nonaffine_index_raises(self):
        n = 8
        x, y = Var("x"), Var("y")
        a = Buffer("A", (n * n,), float32)
        f = Func("F")
        f[y, x] = a[x * y]
        f.set_bounds({x: n, y: n})
        with pytest.raises(ClassificationError):
            classify(f)

    def test_accumulating_transpose_is_temporal_no_nti(self):
        # out[y,x] += A[x,y]: output reused -> temporal? No extra input
        # vars, transposed input... but self-read forbids NTI; the Fig. 2
        # tree sends it to the spatial optimizer (no extra indices).
        n = 16
        x, y = Var("x"), Var("y")
        a = Buffer("A", (n, n), float32)
        f = Func("F")
        f[y, x] = 0.0
        f[y, x] = f[y, x] + a[x, y]
        f.set_bounds({x: n, y: n})
        decision = classify(f)
        assert decision.locality is Locality.SPATIAL
        assert not decision.use_nti
