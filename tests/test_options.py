"""Tests for :class:`repro.options.OptimizeOptions` and the shim.

The suite (and CI) runs these under ``-W error::DeprecationWarning``:
every legacy spelling must be *caught* by ``pytest.warns`` here, and
every canonical spelling must be warning-free.
"""

from __future__ import annotations

import warnings

import pytest

from repro import OptimizeOptions
from repro.api import OptimizeRequest
from repro.cache.fingerprint import optimize_options, options_fingerprint

from tests.helpers import make_matmul


class TestOptimizeOptions:
    def test_defaults_match_legacy_surface(self):
        options = OptimizeOptions()
        assert options.cache_dict() == {
            "use_nti": True,
            "parallelize": True,
            "vectorize": True,
            "exhaustive": False,
            "use_emu": True,
            "order_step": True,
        }
        assert options.jobs == 1
        assert options.tracer is None

    def test_jobs_and_tracer_do_not_change_the_fingerprint(self):
        base = OptimizeOptions()
        assert base.fingerprint() == OptimizeOptions(jobs=8).fingerprint()
        assert (
            base.fingerprint()
            == OptimizeOptions(tracer=object()).fingerprint()
        )
        assert (
            base.fingerprint()
            != OptimizeOptions(use_nti=False).fingerprint()
        )

    def test_is_the_single_fingerprint_source(self):
        # cache/fingerprint.optimize_options delegates here, so the
        # cache key, coalesce key and shard key all agree by identity.
        assert optimize_options(use_nti=False) == OptimizeOptions(
            use_nti=False
        ).cache_dict()
        assert OptimizeOptions().fingerprint() == options_fingerprint(
            optimize_options()
        )

    def test_replace_validates(self):
        assert OptimizeOptions().replace(jobs=4).jobs == 4
        with pytest.raises(TypeError, match="unknown option"):
            OptimizeOptions().replace(speed="ludicrous")
        with pytest.raises(ValueError, match="jobs"):
            OptimizeOptions().replace(jobs=-1)

    def test_frozen(self):
        with pytest.raises(Exception):
            OptimizeOptions().jobs = 9


class TestFingerprintNeutrality:
    """Golden gate: the multistride option must be invisible when off.

    Every deployed ScheduleCache entry, coalescing key, shard ring slot
    and tune_id hashes the options fingerprint; the pinned value below
    is the pre-multistride one, so a change here is a fleet-wide cache
    invalidation and must be deliberate.
    """

    GOLDEN_DEFAULT = (
        "367e4fa135788a064bf1d4f386358904a7a664295b475975221d41841f4a51bd"
    )

    def test_default_fingerprint_is_byte_identical_to_pre_multistride(self):
        assert OptimizeOptions().fingerprint() == self.GOLDEN_DEFAULT
        assert (
            OptimizeOptions(multistride="off").fingerprint()
            == self.GOLDEN_DEFAULT
        )

    def test_disabled_multistride_never_enters_the_cache_dict(self):
        assert "multistride" not in OptimizeOptions().cache_dict()
        assert "multistride" not in OptimizeOptions(
            multistride="off"
        ).cache_dict()

    def test_enabled_multistride_forks_the_fingerprint(self):
        enabled = OptimizeOptions(multistride="auto")
        assert enabled.cache_dict()["multistride"] == "auto"
        assert enabled.fingerprint() != self.GOLDEN_DEFAULT
        assert (
            OptimizeOptions(multistride=4).fingerprint()
            != enabled.fingerprint()
        )


class TestDeprecationShim:
    def test_canonical_spelling_is_warning_free(self, arch):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            request = OptimizeRequest(
                arch=arch,
                func=make_matmul(48)[0],
                options=OptimizeOptions(use_nti=False, jobs=2),
            )
            assert request.options.use_nti is False
            # mirrored legacy reads stay warning-free too
            assert request.use_nti is False
            assert request.jobs == 2

    @pytest.mark.parametrize(
        "legacy",
        [
            {"use_nti": False},
            {"use_emu": False},
            {"order_step": False},
            {"jobs": 2},
            {"parallelize": False},
            {"vectorize": False},
            {"exhaustive": True},
        ],
    )
    def test_legacy_kwargs_warn_and_resolve(self, arch, legacy):
        with pytest.warns(DeprecationWarning, match="deprecated"):
            request = OptimizeRequest(
                arch=arch, func=make_matmul(48)[0], **legacy
            )
        for name, value in legacy.items():
            assert getattr(request.options, name) == value
            assert getattr(request, name) == value

    def test_both_spellings_rejected(self, arch):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="not both"):
                OptimizeRequest(
                    arch=arch,
                    func=make_matmul(48)[0],
                    use_nti=False,
                    options=OptimizeOptions(),
                )

    def test_options_survive_with_overrides(self, arch):
        request = OptimizeRequest(
            arch=arch,
            func=make_matmul(48)[0],
            options=OptimizeOptions(use_nti=False),
        )
        copied = request.with_overrides(deadline_ms=100.0)
        assert copied.options.use_nti is False
        assert copied.deadline_ms == 100.0
