"""Round-trip guarantees of the spec frontend.

Two properties carry the whole serve/cache interop story:

1. **Spec == hand-written IR.**  A spec lowered at the same sizes as a
   hand-written benchmark Func produces the *same content fingerprint*
   — so spec submissions coalesce, cache-hit, and shard exactly like ir
   submissions.
2. **The corpus is pinned.**  Every corpus kernel lowers, classifies,
   and fingerprints exactly as the committed golden manifest says; any
   drift is an API break for deployed caches and shard rings.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.bench.polybench import make_jacobi2d
from repro.cache.fingerprint import func_fingerprint
from repro.frontend import lower_spec
from repro.frontend.corpus import CORPUS, corpus_manifest

from tests.helpers import make_matmul

GOLDEN = os.path.join(
    os.path.dirname(__file__), "..", "benchmarks", "corpus_manifest.json"
)


class TestSpecMatchesHandWrittenIR:
    def test_matmul_fingerprint_equality(self):
        n = 64
        lowered = lower_spec(
            "C[i,j] += A[i,k] * B[k,j]", {"i": n, "j": n, "k": n}
        )
        hand, _, _ = make_matmul(n)
        assert lowered.fingerprints[0] == func_fingerprint(hand)

    def test_jacobi2d_fingerprint_equality(self):
        n = 96
        lowered = lower_spec(
            "Jac[y,x] = 0.2 * (Ain[y,x] + Ain[y,x-1] + Ain[y,x+1] "
            "+ Ain[y-1,x] + Ain[y+1,x])",
            {"y": n, "x": n},
        )
        hand = list(make_jacobi2d(n=n).pipeline)[0]
        assert lowered.fingerprints[0] == func_fingerprint(hand)


class TestCorpus:
    def test_every_kernel_lowers(self):
        for kernel in CORPUS:
            lowered = kernel.lower()
            assert lowered.funcs, kernel.name
            fast = kernel.lower(fast=True)
            assert len(fast.funcs) == len(lowered.funcs), kernel.name

    def test_lowering_twice_is_identical(self):
        for kernel in CORPUS:
            assert (
                kernel.lower().fingerprints == kernel.lower().fingerprints
            ), kernel.name

    def test_corpus_is_large_and_diverse(self):
        assert len(CORPUS) >= 30
        families = {kernel.family for kernel in CORPUS}
        assert {"polybench", "dl", "micro"} <= families

    def test_manifest_matches_committed_golden(self):
        with open(GOLDEN) as handle:
            golden = json.load(handle)
        regenerated = corpus_manifest()
        assert regenerated == golden, (
            "corpus manifest drift — lowering, fingerprints, or "
            "classification changed; regenerate with `python -m "
            "repro.frontend manifest > benchmarks/corpus_manifest.json` "
            "if intentional"
        )

    @pytest.mark.parametrize(
        "kernel", CORPUS, ids=[kernel.name for kernel in CORPUS]
    )
    def test_case_metadata(self, kernel):
        case = kernel.case(fast=True)
        assert case.name == kernel.name
        assert case.pipeline.output is not None
