"""Tests for the unified keyword surface and its deprecation shims."""

import warnings

import pytest

from repro.baselines.tss import tss_tiles
from repro.baselines.tts import tts_tiles
from repro.core import optimize
from repro.core.spatial import optimize_spatial
from repro.core.temporal import optimize_temporal
from repro.obs import CollectingTracer, activate_tracer

from tests.helpers import make_copy, make_matmul


class TestUseNtiRename:
    def test_allow_nti_warns_and_forwards(self, arch):
        with pytest.warns(DeprecationWarning, match="allow_nti"):
            old = optimize(make_matmul(32)[0], arch, allow_nti=False)
        new = optimize(make_matmul(32)[0], arch, use_nti=False)
        assert old.temporal.tiles == new.temporal.tiles
        assert old.temporal.cost == new.temporal.cost
        assert old.temporal.stats.to_dict() == new.temporal.stats.to_dict()

    def test_use_nti_does_not_warn(self, arch):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            optimize(make_matmul(32)[0], arch, use_nti=True)

    def test_conflicting_spellings_use_legacy_value(self, arch):
        # explicit allow_nti wins (it is the caller's deliberate choice)
        with pytest.warns(DeprecationWarning):
            result = optimize(
                make_matmul(32)[0], arch, use_nti=True, allow_nti=False
            )
        plain = optimize(make_matmul(32)[0], arch, use_nti=False)
        assert result.temporal.tiles == plain.temporal.tiles
        assert result.temporal.stats.to_dict() == (
            plain.temporal.stats.to_dict()
        )


class TestCandidatesEvaluatedShims:
    def test_temporal_result_property_warns(self, arch):
        func, _, _ = make_matmul(32)
        result = optimize(func, arch).temporal
        with pytest.warns(DeprecationWarning, match="candidates_evaluated"):
            legacy = result.candidates_evaluated
        assert legacy == result.stats.considered > 0

    def test_spatial_result_property_warns(self, arch):
        func, _ = make_copy(64)
        result = optimize_spatial(func, arch)
        with pytest.warns(DeprecationWarning, match="candidates_evaluated"):
            legacy = result.candidates_evaluated
        assert legacy == result.stats.considered > 0

    def test_tile_model_result_property_warns(self, arch):
        func, _, _ = make_matmul(32)
        for model in (tss_tiles, tts_tiles):
            result = model(func, arch)
            with pytest.warns(
                DeprecationWarning, match="candidates_evaluated"
            ):
                legacy = result.candidates_evaluated
            assert legacy == result.stats.considered > 0


class TestUnifiedSwitches:
    def test_optimize_accepts_and_forwards_use_emu(self, arch):
        func, _, _ = make_matmul(32)
        with CollectingTracer() as tracer:
            optimize(func, arch, use_emu=False, tracer=tracer)
        names = {r["name"] for r in tracer.events}
        assert "emu" not in names  # the ablation never invokes Algorithm 1

    def test_optimize_accepts_order_step(self, arch):
        func, _, _ = make_matmul(32)
        with_order = optimize(func, arch, order_step=True)
        without = optimize(make_matmul(32)[0], arch, order_step=False)
        assert with_order.schedule is not None
        assert without.schedule is not None

    def test_spatial_accepts_new_switches(self, arch):
        func, _ = make_copy(64)
        emu_on = optimize_spatial(func, arch, use_emu=True)
        emu_off = optimize_spatial(
            func, arch, use_emu=False, order_step=False
        )
        assert emu_on.tiles and emu_off.tiles

    def test_temporal_accepts_tracer_kwarg(self, arch):
        func, _, _ = make_matmul(32)
        tracer = CollectingTracer()
        result = optimize_temporal(func, arch, tracer=tracer)
        assert result.stats.considered > 0
        assert any(
            r["name"] == "candidate.pruned" for r in tracer.events
        )


class TestAmbientBaselineTracing:
    def test_tile_models_pick_up_ambient_tracer(self, arch):
        func, _, _ = make_matmul(32)
        tracer = CollectingTracer()
        with activate_tracer(tracer):
            tss_tiles(func, arch)
            tts_tiles(make_matmul(32)[0], arch)
        counters = tracer.counters()
        assert counters.get("tss.candidates", 0) > 0
        assert counters.get("tts.candidates", 0) > 0
