"""End-to-end shape assertions on the simulator (scaled-down sizes).

These encode the paper's *qualitative* claims — who wins and why — at
sizes small enough for CI.  The full-size numbers live in the bench
harness and EXPERIMENTS.md.
"""

import pytest

from repro.arch import intel_i7_5930k
from repro.baselines import autoschedule, baseline_schedule
from repro.bench import make_benchmark
from repro.core import optimize
from repro.core.optimizer import optimize_pipeline
from repro.sim import Machine


@pytest.fixture(scope="module")
def machine():
    return Machine(intel_i7_5930k(), line_budget=25_000)


def run_with(machine, case, technique):
    arch = machine.arch
    schedules = {}
    for stage in case.pipeline:
        if technique == "proposed":
            schedules[stage] = optimize(stage, arch, use_nti=False).schedule
        elif technique == "proposed_nti":
            schedules[stage] = optimize(stage, arch, use_nti=True).schedule
        elif technique == "autoscheduler":
            schedules[stage] = autoschedule(stage, arch).schedule
        elif technique == "baseline":
            schedules[stage] = baseline_schedule(stage, arch)
        else:
            raise KeyError(technique)
    return machine.time_pipeline(case.pipeline, schedules)


class TestTemporalBenchmarksShape:
    """Proposed must beat the untiled baseline on reuse-rich kernels at
    sizes that exceed the caches."""

    @pytest.mark.parametrize("name,size", [
        ("matmul", 512),
        ("gemm", 512),
    ])
    def test_proposed_beats_baseline(self, machine, name, size):
        proposed = run_with(machine, make_benchmark(name, n=size), "proposed")
        baseline = run_with(machine, make_benchmark(name, n=size), "baseline")
        assert proposed < baseline

    def test_proposed_at_least_ties_autoscheduler_on_matmul(self, machine):
        proposed = run_with(machine, make_benchmark("matmul", n=512), "proposed")
        auto = run_with(machine, make_benchmark("matmul", n=512), "autoscheduler")
        assert proposed <= auto * 1.05


class TestSpatialBenchmarksShape:
    def test_tiling_beats_baseline_on_transpose(self, machine):
        proposed = run_with(machine, make_benchmark("tp", n=1024), "proposed")
        baseline = run_with(machine, make_benchmark("tp", n=1024), "baseline")
        assert proposed < baseline

    def test_nti_helps_on_every_write_once_kernel(self, machine):
        for name in ("tpm", "tp", "copy", "mask"):
            plain = run_with(machine, make_benchmark(name, n=1024), "proposed")
            nti = run_with(machine, make_benchmark(name, n=1024), "proposed_nti")
            assert nti < plain, name

    def test_copy_untransformed_matches_autoscheduler(self, machine):
        # With NTI off, the classifier leaves copy alone; so does the
        # Auto-Scheduler: both should land in the same place.
        ours = run_with(machine, make_benchmark("copy", n=1024), "proposed")
        auto = run_with(machine, make_benchmark("copy", n=1024), "autoscheduler")
        assert ours == pytest.approx(auto, rel=0.1)


class TestSyrkFamilyShape:
    def test_syrk_close_to_baseline_at_paper_scale(self, machine):
        # Paper Sec. 5.1: syrk performs similar to the baseline schedule.
        proposed = run_with(machine, make_benchmark("syrk", n=512), "proposed")
        baseline = run_with(machine, make_benchmark("syrk", n=512), "baseline")
        assert proposed <= baseline * 1.2


class TestPipelines:
    def test_3mm_proposed_beats_baseline(self, machine):
        proposed = run_with(machine, make_benchmark("3mm", n=256), "proposed")
        baseline = run_with(machine, make_benchmark("3mm", n=256), "baseline")
        assert proposed < baseline * 1.1

    def test_doitgen_runs_all_stages(self, machine):
        case = make_benchmark("doitgen", n=64)
        schedules = optimize_pipeline(case.pipeline, machine.arch)
        report = machine.run_pipeline(case.pipeline, schedules)
        assert len(report.nest_times) == 3  # init, update, copy-back
        assert report.total_ms > 0


class TestOptimizerRuntime:
    """Table 5's claim: milliseconds for shallow nests."""

    def test_matmul_under_a_second(self):
        import time

        case = make_benchmark("matmul", n=2048)
        start = time.perf_counter()
        optimize(case.funcs[0], intel_i7_5930k())
        assert time.perf_counter() - start < 1.0

    def test_spatial_under_a_second(self):
        import time

        case = make_benchmark("tpm", n=4096)
        start = time.perf_counter()
        optimize(case.funcs[0], intel_i7_5930k())
        assert time.perf_counter() - start < 1.0
