"""Tests for schedule serialization (repro.ir.serialize)."""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.core import optimize
from repro.ir import Schedule
from repro.ir.serialize import (
    schedule_from_dict,
    schedule_from_json,
    schedule_to_dict,
    schedule_to_json,
)
from repro.sim import execute
from repro.util import ScheduleError

from tests.helpers import make_copy, make_matmul


def roundtrip(schedule, fresh_func):
    return schedule_from_json(fresh_func, schedule_to_json(schedule))


class TestRoundTrip:
    def test_loops_identical(self):
        c1, _, _ = make_matmul(64)
        s1 = Schedule(c1)
        s1.split("i", "io", "ii", 8).split("j", "jo", "ji", 16)
        s1.reorder("ji", "ii", "k", "jo", "io")
        s1.vectorize("ji").parallel("io")

        c2, _, _ = make_matmul(64)
        s2 = roundtrip(s1, c2)
        assert s2.loop_names() == s1.loop_names()
        assert [l.extent for l in s2.loops()] == [l.extent for l in s1.loops()]
        assert [l.kind for l in s2.loops()] == [l.kind for l in s1.loops()]

    def test_nontemporal_preserved(self):
        f1, _ = make_copy(64)
        s1 = Schedule(f1)
        s1.store_nontemporal()
        f2, _ = make_copy(64)
        assert roundtrip(s1, f2).nontemporal

    def test_optimizer_schedule_roundtrips_numerically(self, arch):
        n = 32
        c1, a1, b1 = make_matmul(n)
        schedule = optimize(c1, arch).schedule
        rng = np.random.default_rng(0)
        a_v = rng.standard_normal((n, n)).astype(np.float32)
        b_v = rng.standard_normal((n, n)).astype(np.float32)
        expected = execute(c1, schedule, {a1: a_v, b1: b_v})

        c2, a2, b2 = make_matmul(n)
        replayed = roundtrip(schedule, c2)
        out = execute(c2, replayed, {a2: a_v, b2: b_v})
        np.testing.assert_allclose(out, expected, rtol=1e-6)

    def test_fuse_roundtrip(self):
        c1, _, _ = make_matmul(16)
        s1 = Schedule(c1)
        s1.fuse("i", "j", "ij")
        c2, _, _ = make_matmul(16)
        s2 = roundtrip(s1, c2)
        assert s2.loop_names() == ["ij", "k"]

    def test_definition_index_preserved(self):
        c1, _, _ = make_matmul(16)
        s1 = Schedule(c1, definition_index=0)
        c2, _, _ = make_matmul(16)
        assert roundtrip(s1, c2).definition_index == 0


class TestErrors:
    def test_bad_format(self):
        c, _, _ = make_matmul(16)
        with pytest.raises(ScheduleError):
            schedule_from_dict(c, {"format": "nope"})

    def test_bad_json(self):
        c, _, _ = make_matmul(16)
        with pytest.raises(ScheduleError):
            schedule_from_json(c, "{not json")

    def test_unknown_directive(self):
        c, _, _ = make_matmul(16)
        payload = schedule_to_dict(Schedule(c))
        payload["directives"] = [{"kind": "teleport", "args": []}]
        with pytest.raises(ScheduleError):
            schedule_from_dict(c, payload)

    def test_incompatible_func_fails_loudly(self):
        c1, _, _ = make_matmul(16)
        s1 = Schedule(c1)
        s1.split("k", "ko", "ki", 4)
        f2, _ = make_copy(16)  # has no loop named k
        with pytest.raises(ScheduleError):
            schedule_from_dict(f2, schedule_to_dict(s1))

    def test_dict_is_json_compatible(self):
        c, _, _ = make_matmul(16)
        s = Schedule(c)
        s.split("i", "io", "ii", 4)
        json.dumps(schedule_to_dict(s))  # must not raise


def _run_in_subprocess(code: str) -> str:
    """Run a snippet in a fresh interpreter with repo+src on the path."""
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [repo_root, os.path.join(repo_root, "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    proc = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestCrossProcess:
    """The journal's contract: schedules serialized in a worker process
    must replay in a different process onto a freshly built Func."""

    def test_roundtrip_across_processes(self):
        stdout = _run_in_subprocess(
            "import json\n"
            "from repro.ir import Schedule\n"
            "from repro.ir.serialize import schedule_to_json\n"
            "from tests.helpers import make_matmul\n"
            "c, _, _ = make_matmul(64)\n"
            "s = Schedule(c)\n"
            "s.split('i', 'io', 'ii', 8).reorder('ii', 'k', 'j', 'io')\n"
            "s.vectorize('ii').parallel('io')\n"
            "print(schedule_to_json(s, indent=None))\n"
        )
        c2, _, _ = make_matmul(64)
        replayed = schedule_from_json(c2, stdout.strip())
        # reorder() lists innermost-first; loop_names() outermost-first.
        assert replayed.loop_names() == ["io", "j", "k", "ii"]
        kinds = {l.name: l.kind.value for l in replayed.loops()}
        assert kinds["ii"] == "vectorized"
        assert kinds["io"] == "parallel"

    def test_worker_found_schedule_replays_here(self, arch):
        """An optimizer result found in another process replays and runs."""
        stdout = _run_in_subprocess(
            "from repro.arch import intel_i7_5930k\n"
            "from repro.core import optimize\n"
            "from repro.ir.serialize import schedule_to_json\n"
            "from tests.helpers import make_matmul\n"
            "c, _, _ = make_matmul(32)\n"
            "res = optimize(c, intel_i7_5930k())\n"
            "print(schedule_to_json(res.schedule, indent=None))\n"
        )
        c2, a2, b2 = make_matmul(32)
        replayed = schedule_from_json(c2, stdout.strip())
        rng = np.random.default_rng(1)
        a_v = rng.standard_normal((32, 32)).astype(np.float32)
        b_v = rng.standard_normal((32, 32)).astype(np.float32)
        out = execute(c2, replayed, {a2: a_v, b2: b_v})
        # fp32 with a tiled accumulation order vs NumPy's: loose rtol.
        np.testing.assert_allclose(out, a_v @ b_v, rtol=1e-3, atol=1e-4)

    def test_incompatible_func_across_processes(self):
        """A schedule journaled for one algorithm fails loudly when
        replayed onto a different one in a fresh process."""
        stdout = _run_in_subprocess(
            "from repro.ir import Schedule\n"
            "from repro.ir.serialize import schedule_to_json\n"
            "from tests.helpers import make_matmul\n"
            "c, _, _ = make_matmul(16)\n"
            "s = Schedule(c)\n"
            "s.split('k', 'ko', 'ki', 4)\n"
            "print(schedule_to_json(s, indent=None))\n"
        )
        f2, _ = make_copy(16)  # has no loop named k
        with pytest.raises(ScheduleError):
            schedule_from_json(f2, stdout.strip())
