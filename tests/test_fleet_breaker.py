"""The per-shard circuit breaker: a deterministic three-state machine.

Time is injected (``clock``) so every transition is driven by hand; the
probe slot is counter-gated, not sampled, so there is no randomness to
average over.  The router-integration half checks the one semantic
decision that lives outside the state machine: only transport-level
failures trip the breaker — an HTTP error from a live worker is an
answer, not an outage.
"""

import pytest

from repro.fleet import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    FleetMetrics,
)
from repro.obs import CollectingTracer
from repro.obs.events import EVENT_FLEET_BREAKER


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def breaker(clock):
    return CircuitBreaker(
        [0, 1], failure_threshold=3, open_for_s=5.0, clock=clock
    )


class TestStateMachine:
    def test_starts_closed_and_admits(self, breaker):
        assert breaker.state_of(0) == BREAKER_CLOSED
        assert breaker.allow(0)

    def test_threshold_consecutive_failures_trip_open(self, breaker):
        for _ in range(2):
            breaker.record_failure(0)
        assert breaker.state_of(0) == BREAKER_CLOSED  # one short
        breaker.record_failure(0)
        assert breaker.state_of(0) == BREAKER_OPEN
        assert not breaker.allow(0)

    def test_success_resets_the_failure_count(self, breaker):
        breaker.record_failure(0)
        breaker.record_failure(0)
        breaker.record_success(0)
        breaker.record_failure(0)
        breaker.record_failure(0)
        assert breaker.state_of(0) == BREAKER_CLOSED

    def test_shards_are_independent(self, breaker):
        for _ in range(3):
            breaker.record_failure(0)
        assert breaker.state_of(0) == BREAKER_OPEN
        assert breaker.state_of(1) == BREAKER_CLOSED
        assert breaker.allow(1)

    def test_cooloff_admits_exactly_one_probe(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure(0)
        clock.advance(4.9)
        assert not breaker.allow(0)  # still cooling off
        clock.advance(0.2)
        assert breaker.allow(0)  # the probe slot
        assert breaker.state_of(0) == BREAKER_HALF_OPEN
        assert not breaker.allow(0)  # probe in flight: everyone else waits
        assert not breaker.allow(0)

    def test_probe_success_closes(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure(0)
        clock.advance(5.0)
        assert breaker.allow(0)
        breaker.record_success(0)
        assert breaker.state_of(0) == BREAKER_CLOSED
        assert breaker.allow(0)

    def test_probe_failure_reopens_with_fresh_cooloff(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure(0)
        clock.advance(5.0)
        assert breaker.allow(0)
        breaker.record_failure(0)
        assert breaker.state_of(0) == BREAKER_OPEN
        clock.advance(4.9)
        assert not breaker.allow(0)  # the cool-off restarted at re-open
        clock.advance(0.2)
        assert breaker.allow(0)

    def test_states_snapshot(self, breaker):
        for _ in range(3):
            breaker.record_failure(1)
        assert breaker.states() == {0: BREAKER_CLOSED, 1: BREAKER_OPEN}

    def test_unknown_shard_is_loud(self, breaker):
        with pytest.raises(KeyError, match="unknown shard 9"):
            breaker.allow(9)

    def test_validation(self, clock):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker([0], failure_threshold=0)
        with pytest.raises(ValueError, match="open_for_s"):
            CircuitBreaker([0], open_for_s=0.0)


class TestPlumbing:
    def test_metrics_counters(self, clock):
        metrics = FleetMetrics()
        breaker = CircuitBreaker(
            [0], failure_threshold=2, open_for_s=1.0, clock=clock,
            metrics=metrics,
        )
        breaker.record_failure(0)
        breaker.record_failure(0)
        assert metrics.get("breaker_opened") == 1
        clock.advance(1.0)
        breaker.allow(0)
        assert metrics.get("breaker_probes") == 1
        breaker.record_failure(0)  # probe failed: re-open counts again
        assert metrics.get("breaker_opened") == 2

    def test_transition_events(self, clock):
        tracer = CollectingTracer()
        breaker = CircuitBreaker(
            [0], failure_threshold=1, open_for_s=1.0, clock=clock,
            tracer=tracer,
        )
        breaker.record_failure(0)
        clock.advance(1.0)
        breaker.allow(0)
        breaker.record_success(0)
        states = [
            event["attrs"]["state"]
            for event in tracer.events
            if event["name"] == EVENT_FLEET_BREAKER
        ]
        assert states == [BREAKER_OPEN, BREAKER_HALF_OPEN, BREAKER_CLOSED]
