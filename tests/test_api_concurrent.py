"""Concurrency contract of the ``repro.api`` facade.

The facade documents itself as safe for concurrent callers: schedules
are pure functions of (func, arch, options), deadlines and tracers are
contextvar-scoped, and the emu memo is lock-guarded.  These tests hold
it to that — N threads running mixed temporal/spatial optimizations must
produce bit-identical serialized schedules to a sequential run.
"""

import json
import os
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import api
from repro.core.parallel import default_jobs, resolve_jobs
from repro.ir.serialize import schedule_to_dict

from tests.helpers import make_matmul, make_transpose_mask


def _workload(arch):
    """(tag, request-factory) pairs; factories build fresh Funcs because
    Funcs are mutable and must never be shared across threads."""
    return [
        (
            "matmul-temporal",
            lambda: api.OptimizeRequest(
                arch=arch, func=make_matmul(48)[0], mode=api.MODE_TEMPORAL
            ),
        ),
        (
            "matmul-auto",
            lambda: api.OptimizeRequest(
                arch=arch, func=make_matmul(64)[0], mode=api.MODE_AUTO
            ),
        ),
        (
            "tpm-spatial",
            lambda: api.OptimizeRequest(
                arch=arch,
                func=make_transpose_mask(64)[0],
                mode=api.MODE_SPATIAL,
            ),
        ),
        (
            "tpm-auto",
            lambda: api.OptimizeRequest(
                arch=arch, func=make_transpose_mask(48)[0], mode=api.MODE_AUTO
            ),
        ),
    ]


def _serialize(result):
    """Canonical bytes for whatever the mode produced (schedule or the
    search decision), so bit-identity is comparable across runs."""
    if result.schedule is not None:
        return json.dumps(schedule_to_dict(result.schedule), sort_keys=True)
    search = result.temporal or result.spatial
    return json.dumps(
        {
            "tiles": search.tiles,
            "cost": search.cost,
            "inter": getattr(search, "inter_order", None),
            "intra": getattr(search, "intra_order", None),
            "parallel": search.parallel_var,
        },
        sort_keys=True,
    )


class TestConcurrentCallers:
    def test_threaded_matches_sequential_bit_for_bit(self, arch):
        workload = _workload(arch)
        sequential = {
            tag: _serialize(api.optimize(build())) for tag, build in workload
        }
        # Each workload item runs twice concurrently, interleaving
        # temporal and spatial searches across threads.
        tasks = [(tag, build) for tag, build in workload] * 2
        with ThreadPoolExecutor(max_workers=4) as pool:
            futures = [
                (tag, pool.submit(lambda b=build: api.optimize(b())))
                for tag, build in tasks
            ]
            for tag, future in futures:
                assert _serialize(future.result(timeout=120)) == sequential[tag]

    def test_concurrent_callers_with_distinct_deadlines(self, arch):
        # Deadlines travel in contextvars: one caller's generous budget
        # must not leak into another thread (and vice versa).
        def run(deadline_ms):
            return api.optimize(
                api.OptimizeRequest(
                    arch=arch,
                    func=make_matmul(48)[0],
                    mode=api.MODE_AUTO,
                    deadline_ms=deadline_ms,
                )
            )

        with ThreadPoolExecutor(max_workers=2) as pool:
            generous = pool.submit(run, 60_000.0)
            unbounded = pool.submit(run, None)
            assert _serialize(generous.result(timeout=120)) == _serialize(
                unbounded.result(timeout=120)
            )


class TestJobsAuto:
    def test_resolve_jobs_auto_spelling(self):
        assert resolve_jobs("auto") == default_jobs()
        assert resolve_jobs(0) == default_jobs()
        assert resolve_jobs(3) == 3
        with pytest.raises(ValueError):
            resolve_jobs("many")
        with pytest.raises(ValueError):
            resolve_jobs(-1)
        with pytest.raises(ValueError):
            resolve_jobs(1.5)

    def test_default_jobs_tracks_cpu_count(self):
        cores = os.cpu_count() or 1
        assert default_jobs() == max(1, min(8, cores))

    def test_api_accepts_auto_and_matches_serial(self, arch):
        serial = api.optimize(
            api.OptimizeRequest(
                arch=arch,
                func=make_matmul(48)[0],
                mode=api.MODE_AUTO,
                options=api.OptimizeOptions(jobs=1),
            )
        )
        auto = api.optimize(
            api.OptimizeRequest(
                arch=arch,
                func=make_matmul(48)[0],
                mode=api.MODE_AUTO,
                options=api.OptimizeOptions(jobs="auto"),
            )
        )
        assert _serialize(serial) == _serialize(auto)

    def test_api_rejects_bad_jobs_spellings(self, arch):
        with pytest.raises(ValueError, match="jobs"):
            api.OptimizeOptions(jobs="fast")
        with pytest.raises(ValueError, match="jobs"):
            api.OptimizeOptions(jobs=-2)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="jobs"):
                api.OptimizeRequest(
                    arch=arch, func=make_matmul(48)[0], jobs="fast"
                )
