"""Tests for the trace summary renderer (repro.obs.summary)."""

from repro.arch import intel_i7_5930k
from repro.core import optimize
from repro.obs import CollectingTracer, render_summary, summarize

from tests.helpers import make_matmul


def _synthetic_events():
    """A hand-built trace exercising every summary section."""
    with CollectingTracer() as tracer:
        tracer.event("classify", func="C", locality="medium", use_nti=True)
        with tracer.span("optimize", func="C"):
            tracer.count("temporal.candidates", 10)
            tracer.event(
                "candidate.pruned", phase="temporal", reason="capacity"
            )
            tracer.event(
                "candidate.pruned", phase="temporal", reason="parallelism"
            )
            tracer.event(
                "candidate.pruned", phase="temporal", reason="parallelism"
            )
            tracer.event("search.bound", var="k", bound=16)
        tracer.event(
            "sim.nest", nest="C", l1_hits=90, l2_hits=5, l3_hits=3,
            mem_lines=2, coverage=0.5,
        )
        tracer.event("rung", rung="proposed", ok=False, error_type="Boom")
        tracer.event("rung", rung="baseline", ok=True)
        tracer.event("sweep.cell.ok", cell="a")
        tracer.event("sweep.cell.resumed", cell="b")
        tracer.event("sweep.cell.retry", cell="c", attempt=1)
        tracer.event("sweep.cell.quarantined", cell="c", attempts=3)
    return tracer.events


class TestSummarize:
    def test_aggregates_every_section(self):
        summary = summarize(_synthetic_events())
        assert summary["pruned"] == {
            "temporal": {"capacity": 1, "parallelism": 2}
        }
        assert summary["counters"]["temporal.candidates"] == 10
        assert summary["spans"]["optimize"]["count"] == 1
        assert len(summary["bounds"]) == 1
        assert len(summary["nests"]) == 1
        assert len(summary["classifications"]) == 1
        assert len(summary["rungs"]) == 2
        assert summary["cells"] == {
            "ok": 1, "resumed": 1, "quarantined": 1, "retries": 1,
        }

    def test_counter_totals_fall_back_to_span_deltas(self):
        # a crash-truncated trace has no terminal totals record
        tracer = CollectingTracer()
        with tracer.span("s"):
            tracer.count("c", 4)
        summary = summarize(tracer.events)  # close() never called
        assert summary["counters"] == {"c": 4}

    def test_ignores_non_dict_records(self):
        assert summarize(["garbage", 3, None])["events"] == 0


class TestRenderSummary:
    def test_sections_and_content(self):
        text = render_summary(_synthetic_events())
        assert text.startswith("trace:")
        assert "C: medium (+NTI)" in text
        assert "temporal: 10 candidates considered" in text
        assert "capacity 1" in text and "parallelism 2" in text
        assert "emu bounds applied: 1" in text
        assert "fallback rungs: 2 attempted, 1 failed" in text
        assert "proposed: Boom" in text
        assert "L1 90.0%" in text and "coverage 50%" in text
        assert "1 measured, 1 resumed, 1 quarantined (1 retries)" in text

    def test_empty_trace(self):
        assert render_summary([]) == "trace: 0 records"

    def test_real_optimize_trace_renders(self, arch):
        func, _, _ = make_matmul(32)
        with CollectingTracer() as tracer:
            optimize(func, intel_i7_5930k(), tracer=tracer)
        text = render_summary(tracer.events)
        assert "temporal:" in text and "candidates considered" in text
        assert "spans:" in text and "optimize" in text
