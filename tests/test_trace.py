"""Tests for the trace generator and memory layout (repro.sim.trace)."""

import numpy as np
import pytest

from repro.ir import Buffer, Func, Schedule, Var, int32, lower
from repro.sim.trace import MemoryLayout, TraceGenerator

from tests.helpers import make_copy, make_matmul


LINE = 64


def all_chunks(nest, layout=None, budget=10**9):
    layout = layout or MemoryLayout()
    gen = TraceGenerator(nest, layout, LINE, line_budget=budget)
    return list(gen.chunks()), gen.record, layout


class TestMemoryLayout:
    def test_page_aligned(self):
        layout = MemoryLayout()
        c, a, b = make_matmul(8)
        assert layout.register(a) % 4096 == 0
        assert layout.register(b) % 4096 == 0

    def test_no_overlap(self):
        layout = MemoryLayout()
        a = Buffer("A", (100, 100), int32)
        b = Buffer("B", (100, 100), int32)
        base_a = layout.register(a)
        base_b = layout.register(b)
        assert base_b >= base_a + a.size_bytes

    def test_register_idempotent(self):
        layout = MemoryLayout()
        a = Buffer("A", (8, 8), int32)
        assert layout.register(a) == layout.register(a)

    def test_base_of_unregistered_raises(self):
        layout = MemoryLayout()
        with pytest.raises(KeyError):
            layout.base_of(Buffer("A", (8,), int32))

    def test_describe(self):
        layout = MemoryLayout()
        layout.register(Buffer("Zed", (8,), int32))
        assert "Zed" in layout.describe()


class TestTraceCorrectness:
    def test_copy_touches_every_line_once_per_ref(self):
        f, a = make_copy(32)  # int32 32x32 = 4KB per array
        nest = lower(f)[0]
        chunks, record, layout = all_chunks(nest)
        lines_per_array = 32 * 32 * 4 // LINE
        read_lines = set()
        store_lines = set()
        for ch in chunks:
            target = store_lines if ch.is_store else read_lines
            target.update(ch.lines.tolist())
        assert len(read_lines) == lines_per_array
        assert len(store_lines) == lines_per_array
        assert read_lines.isdisjoint(store_lines)

    def test_simulated_stmts_counts_iterations(self):
        f, _ = make_copy(16)
        nest = lower(f)[0]
        _, record, _ = all_chunks(nest)
        assert record.simulated_stmts == 16 * 16
        assert record.total_stmts == 16 * 16
        assert record.scale == 1.0
        assert not record.truncated

    def test_consecutive_dedupe(self):
        # A row of 16 int32 = 64B = exactly one line: the innermost loop
        # emits one line access, not 16.
        f, _ = make_copy(16)
        nest = lower(f)[0]
        chunks, record, _ = all_chunks(nest)
        for ch in chunks:
            diffs = np.diff(ch.lines)
            assert np.all(diffs != 0)

    def test_matmul_b_column_walk_is_strided(self):
        c, a, b = make_matmul(16)
        nest = lower(c)[1]
        chunks, _, layout = all_chunks(nest)
        b_base = layout.base_of(b) // LINE
        b_chunks = [ch for ch in chunks if not ch.is_store and ch.ref_id == 2]
        assert b_chunks
        assert all(np.all(ch.lines >= b_base) for ch in b_chunks)

    def test_ref_ids_stable(self):
        c, _, _ = make_matmul(8)
        nest = lower(c)[1]
        chunks, _, _ = all_chunks(nest)
        ids = {(ch.ref_id, ch.is_store) for ch in chunks}
        # reads C, A, B = 0, 1, 2; store C = 3.
        assert ids == {(0, False), (1, False), (2, False), (3, True)}

    def test_nontemporal_marks_store_chunks(self):
        f, _ = make_copy(16)
        s = Schedule(f)
        s.store_nontemporal()
        nest = lower(f, s)[0]
        chunks, _, _ = all_chunks(nest)
        for ch in chunks:
            assert ch.nontemporal == ch.is_store

    def test_guard_skips_out_of_bounds(self):
        f, _ = make_copy(10)  # 10 not divisible by 4
        s = Schedule(f)
        s.split("x", "xo", "xi", 4)
        nest = lower(f, s)[0]
        _, record, _ = all_chunks(nest)
        assert record.simulated_stmts == 10 * 10

    def test_scheduled_trace_same_footprint(self):
        # Tiling must not change WHICH lines are touched, only the order.
        def footprint(nest):
            chunks, _, _ = all_chunks(nest)
            out = set()
            for ch in chunks:
                out.update((ch.ref_id, int(l)) for l in ch.lines.tolist())
            return out

        c1, _, _ = make_matmul(16)
        plain = footprint(lower(c1)[1])
        c2, _, _ = make_matmul(16)
        s = Schedule(c2)
        s.split("i", "io", "ii", 4).split("j", "jo", "ji", 4)
        s.reorder("ji", "ii", "k", "jo", "io")
        tiled = footprint(lower(c2, s)[1])
        # Same per-ref structure: compare line sets per ref id.
        def by_ref(fp):
            out = {}
            for rid, line in fp:
                out.setdefault(rid, set()).add(line)
            return out
        assert by_ref(plain) == by_ref(tiled)


class TestSampling:
    def test_budget_truncates(self):
        c, _, _ = make_matmul(64)
        nest = lower(c)[1]
        _, record, _ = all_chunks(nest, budget=500)
        assert record.truncated
        assert record.emitted_lines >= 500
        assert record.simulated_stmts < record.total_stmts

    def test_scale_extrapolates(self):
        c, _, _ = make_matmul(64)
        nest = lower(c)[1]
        _, record, _ = all_chunks(nest, budget=500)
        assert record.scale > 1.0
        assert record.scale == pytest.approx(
            record.total_stmts / record.simulated_stmts
        )

    def test_small_nest_untruncated(self):
        c, _, _ = make_matmul(8)
        nest = lower(c)[1]
        _, record, _ = all_chunks(nest, budget=10**9)
        assert not record.truncated
        assert record.scale == 1.0
