"""Tests for the expression AST (repro.ir.expr)."""

import pytest

from repro.ir.expr import (
    Access,
    BinOp,
    Cast,
    Const,
    VarRef,
    maximum,
    minimum,
    wrap,
)
from repro.ir.func import Buffer, float32


class TestWrap:
    def test_int(self):
        assert wrap(3) == Const(3)

    def test_float(self):
        assert wrap(2.5) == Const(2.5)

    def test_bool_becomes_int(self):
        assert wrap(True) == Const(1)

    def test_expr_passthrough(self):
        e = VarRef("i")
        assert wrap(e) is e

    def test_rejects_junk(self):
        with pytest.raises(TypeError):
            wrap("not an expr")


class TestOperators:
    def test_add(self):
        e = VarRef("i") + 1
        assert isinstance(e, BinOp) and e.op == "+"
        assert e.rhs == Const(1)

    def test_radd(self):
        e = 1 + VarRef("i")
        assert e.lhs == Const(1)

    def test_sub_and_rsub(self):
        assert (VarRef("i") - 1).op == "-"
        assert (1 - VarRef("i")).lhs == Const(1)

    def test_mul_div(self):
        assert (VarRef("i") * 2).op == "*"
        assert (VarRef("i") / 2).op == "/"

    def test_and_or(self):
        assert (VarRef("i") & 1).op == "&"
        assert (VarRef("i") | 1).op == "|"

    def test_neg(self):
        e = -VarRef("i")
        assert e.op == "-" and e.lhs == Const(0)

    def test_min_max_helpers(self):
        assert minimum(VarRef("i"), 3).op == "min"
        assert maximum(VarRef("i"), 3).op == "max"

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            BinOp("^", Const(1), Const(2))


class TestEqualityAndHash:
    def test_const_equality(self):
        assert Const(1) == Const(1)
        assert Const(1) != Const(2)

    def test_varref_equality(self):
        assert VarRef("i") == VarRef("i")
        assert VarRef("i") != VarRef("j")

    def test_binop_structural(self):
        a = VarRef("i") + 1
        b = VarRef("i") + 1
        assert a == b
        assert hash(a) == hash(b)

    def test_cast_equality(self):
        assert Cast("f32", Const(1)) == Cast("f32", Const(1))
        assert Cast("f32", Const(1)) != Cast("f64", Const(1))

    def test_varref_rejects_empty_name(self):
        with pytest.raises(ValueError):
            VarRef("")


class TestTraversal:
    def test_walk_preorder(self):
        e = (VarRef("i") + 1) * VarRef("j")
        kinds = [type(n).__name__ for n in e.walk()]
        assert kinds[0] == "BinOp"
        assert kinds.count("VarRef") == 2
        assert kinds.count("Const") == 1

    def test_count_ops(self):
        e = (VarRef("i") + 1) * VarRef("j") - 2
        assert e.count_ops() == 3

    def test_count_ops_leaf(self):
        assert VarRef("i").count_ops() == 0

    def test_accesses_in_order(self):
        buf = Buffer("A", (4, 4), float32)
        e = buf[VarRef("i"), VarRef("j")] + buf[VarRef("j"), VarRef("i")]
        accs = list(e.accesses())
        assert len(accs) == 2
        assert all(isinstance(a, Access) for a in accs)

    def test_cast_children(self):
        inner = VarRef("i") + 1
        assert Cast("f32", inner).children() == (inner,)


class TestAccess:
    def test_requires_matching_rank(self):
        buf = Buffer("A", (4, 4), float32)
        with pytest.raises(ValueError):
            Access(buf, [VarRef("i")])

    def test_requires_some_index(self):
        buf = Buffer("A", (4,), float32)
        with pytest.raises(ValueError):
            Access(buf, [])

    def test_indices_wrapped(self):
        buf = Buffer("A", (4,), float32)
        acc = Access(buf, [2])
        assert acc.indices == (Const(2),)

    def test_identity_on_buffer(self):
        a1 = Buffer("A", (4,), float32)
        a2 = Buffer("A", (4,), float32)
        assert Access(a1, [0]) != Access(a2, [0])  # different objects
        assert Access(a1, [0]) == Access(a1, [0])
