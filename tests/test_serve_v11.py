"""The ``repro-serve-v1.1`` wire schema: specs on the wire.

Three promises under test:

1. **v1 is bit-identical.**  Every pre-v1.1 request body and every
   response to one is byte-for-byte what it was — pinned against golden
   dicts, not regenerated expectations.
2. **Spec and ir submissions are the same request.**  A v1.1 spec body
   lowers to the same fingerprints as the equivalent benchmark body, so
   they coalesce, share cache entries, and return bit-identical
   schedules.
3. **Malformed specs are a 400 with ``reason="invalid_spec"``** — at
   the worker and at the fleet router, never a 500.
"""

import json
import threading
import time

import pytest

from repro.robust import slow_job
from repro.serve import ServeClient, ServerThread
from repro.serve.identify import identify_request
from repro.serve.schema import (
    REASON_INVALID_SPEC,
    SCHEMA_VERSION_V11,
    SERVE_FORMAT,
    SERVE_FORMAT_V11,
    SERVE_FORMATS,
    build_request,
    parse_request,
    render_for,
    result_payload,
)
from repro.util import ServeError, ValidationError

MATMUL_SPEC = "C[i,j] += A[i,k] * B[k,j]"
MATMUL_DIMS = {"i": 256, "j": 256, "k": 256}  # == fast-size matmul


def serialized(result):
    return json.dumps(result["schedules"], sort_keys=True)


def make_server(tmp_path, **kwargs):
    kwargs.setdefault("cache_path", str(tmp_path / "cache.jsonl"))
    kwargs.setdefault("queue_limit", 8)
    return ServerThread(**kwargs)


#: The exact v1 body a pre-v1.1 client sends — golden, not regenerated.
GOLDEN_V1_BODY = {
    "format": "repro-serve-v1",
    "benchmark": "matmul",
    "platform": "i7-5930k",
    "fast": True,
    "options": {
        "use_nti": True,
        "parallelize": True,
        "vectorize": True,
        "exhaustive": False,
        "use_emu": True,
        "order_step": True,
    },
    "jobs": 1,
}


class TestSchemaVersioning:
    def test_format_constants(self):
        assert SERVE_FORMAT == "repro-serve-v1"
        assert SERVE_FORMAT_V11 == "repro-serve-v1.1"
        assert SERVE_FORMATS == (SERVE_FORMAT, SERVE_FORMAT_V11)
        assert SCHEMA_VERSION_V11 == "1.1"

    def test_v1_body_is_bit_identical(self):
        body = build_request("matmul", "i7-5930k", fast=True)
        assert json.dumps(body, sort_keys=True) == json.dumps(
            GOLDEN_V1_BODY, sort_keys=True
        )

    def test_v11_body_shape(self):
        body = build_request(
            spec=MATMUL_SPEC, dims=MATMUL_DIMS, platform="i7-5930k"
        )
        assert body["format"] == SERVE_FORMAT_V11
        assert body["spec"] == MATMUL_SPEC
        assert body["dims"] == MATMUL_DIMS
        assert "benchmark" not in body

    def test_build_request_exactly_one_target(self):
        with pytest.raises(ServeError, match="exactly one"):
            build_request()
        with pytest.raises(ServeError, match="exactly one"):
            build_request("matmul", spec=MATMUL_SPEC, dims=MATMUL_DIMS)
        with pytest.raises(ServeError, match="only meaningful"):
            build_request("matmul", dims=MATMUL_DIMS)
        with pytest.raises(ServeError, match="needs dims"):
            build_request(spec=MATMUL_SPEC)

    def test_parse_round_trips_both_formats(self):
        v1 = parse_request(GOLDEN_V1_BODY)
        assert v1.benchmark == "matmul" and v1.spec is None
        assert v1.label == "matmul"
        body = build_request(
            spec=MATMUL_SPEC,
            dims=MATMUL_DIMS,
            platform="i7-5930k",
            params=None,
        )
        v11 = parse_request(body)
        assert v11.spec == MATMUL_SPEC and v11.benchmark is None
        assert v11.dims == MATMUL_DIMS
        assert v11.label == "spec:C"
        assert parse_request(v11.to_dict()).to_dict() == v11.to_dict()

    def test_parse_rejects_v11_shape_mistakes(self):
        base = build_request(
            spec=MATMUL_SPEC, dims=MATMUL_DIMS, platform="i7-5930k"
        )
        both = dict(base, benchmark="matmul")
        with pytest.raises(ServeError, match="exactly one"):
            parse_request(both)
        neither = {k: v for k, v in base.items() if k not in ("spec", "dims")}
        with pytest.raises(ServeError, match="exactly one"):
            parse_request(neither)
        with pytest.raises(ServeError, match="dims"):
            parse_request(dict(base, dims={"i": "many"}))
        with pytest.raises(ServeError, match="dims"):
            parse_request(dict(base, dims={"i": 0}))
        with pytest.raises(ServeError, match="spec"):
            parse_request(dict(base, spec=42))
        v1_with_spec = dict(GOLDEN_V1_BODY, spec=MATMUL_SPEC)
        with pytest.raises(ServeError, match="unknown"):
            parse_request(v1_with_spec)

    def test_unknown_format_message_is_unchanged(self):
        with pytest.raises(
            ServeError, match=r"this server speaks 'repro-serve-v1'"
        ):
            parse_request(dict(GOLDEN_V1_BODY, format="repro-serve-v9"))

    def test_render_for_is_identity_on_v1(self):
        request = parse_request(GOLDEN_V1_BODY)
        payload = {"kind": "result", "benchmark": "matmul"}
        assert render_for(request, payload) == payload
        assert render_for(None, payload) == payload

    def test_render_for_stamps_v11(self):
        request = parse_request(
            build_request(
                spec=MATMUL_SPEC, dims=MATMUL_DIMS, platform="i7-5930k"
            )
        )
        payload = render_for(request, {"kind": "result"})
        assert payload["format"] == SERVE_FORMAT_V11
        assert payload["schema_version"] == SCHEMA_VERSION_V11
        assert payload["spec"] == MATMUL_SPEC
        assert payload["dims"] == MATMUL_DIMS


class TestIdentity:
    def test_spec_and_ir_share_the_coalesce_key(self):
        r_spec = parse_request(
            build_request(
                spec=MATMUL_SPEC,
                dims=MATMUL_DIMS,
                platform="i7-5930k",
                fast=True,
            )
        )
        r_ir = parse_request(GOLDEN_V1_BODY)
        _, _, key_spec = identify_request(r_spec)
        _, _, key_ir = identify_request(r_ir)
        assert key_spec == key_ir

    def test_bad_spec_raises_validation_error(self):
        request = parse_request(
            build_request(
                spec="C[i,j] += A[i*i,j]",
                dims={"i": 8, "j": 8},
                platform="i7-5930k",
            )
        )
        with pytest.raises(ValidationError, match="affine"):
            identify_request(request)

    def test_result_payload_uses_the_label(self):
        request = parse_request(
            build_request(
                spec=MATMUL_SPEC, dims=MATMUL_DIMS, platform="i7-5930k"
            )
        )
        payload = result_payload(
            request, "k", [], served_by="search", elapsed_ms=1.0
        )
        assert payload["benchmark"] == "spec:C"


class TestLiveServer:
    def test_spec_submission_round_trip(self, tmp_path):
        with make_server(tmp_path) as srv:
            client = ServeClient(port=srv.port)
            assert client.wait_ready(10.0)
            result = client.optimize(
                spec=MATMUL_SPEC,
                dims=MATMUL_DIMS,
                platform="i7-5930k",
                fast=True,
            )
        assert result["schema_version"] == SCHEMA_VERSION_V11
        assert result["format"] == SERVE_FORMAT_V11
        assert result["spec"] == MATMUL_SPEC
        assert result["dims"] == MATMUL_DIMS
        assert result["benchmark"] == "spec:C"
        assert result["served_by"] == "search"

    def test_spec_hits_the_ir_warmed_cache_bit_identically(self, tmp_path):
        with make_server(tmp_path) as srv:
            client = ServeClient(port=srv.port)
            by_ir = client.optimize("matmul", "i7-5930k", fast=True)
            by_spec = client.optimize(
                spec=MATMUL_SPEC,
                dims=MATMUL_DIMS,
                platform="i7-5930k",
                fast=True,
            )
        assert by_ir["served_by"] == "search"
        assert by_spec["served_by"] == "cache"
        assert by_spec["key"] == by_ir["key"]
        assert serialized(by_spec) == serialized(by_ir)
        # ...and the v1 response carries no v1.1 fields
        assert "schema_version" not in by_ir
        assert "spec" not in by_ir

    def test_spec_and_ir_coalesce_in_flight(self, tmp_path):
        # The ir submission is slowed so the spec submission provably
        # arrives while it is in flight; identical fingerprints must
        # share one search across the two wire formats.
        with make_server(
            tmp_path, fault_plan=slow_job(1, seconds=0.8)
        ) as srv:
            client = ServeClient(port=srv.port)
            assert client.wait_ready(10.0)
            results = {}

            def by_ir():
                results["ir"] = ServeClient(port=srv.port).optimize(
                    "matmul", "i7-5930k", fast=True
                )

            def by_spec():
                time.sleep(0.25)
                results["spec"] = ServeClient(port=srv.port).optimize(
                    spec=MATMUL_SPEC,
                    dims=MATMUL_DIMS,
                    platform="i7-5930k",
                    fast=True,
                )

            threads = [
                threading.Thread(target=by_ir),
                threading.Thread(target=by_spec),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            counters = client.metrics()["counters"]
        assert counters["searches"] == 1
        assert counters["coalesced"] == 1
        assert results["ir"]["served_by"] == "search"
        assert results["spec"]["served_by"] == "coalesced"
        assert serialized(results["ir"]) == serialized(results["spec"])
        # Each rider still gets its own format: the coalesced spec
        # response is stamped v1.1, the ir response stays v1.
        assert results["spec"]["schema_version"] == SCHEMA_VERSION_V11
        assert "schema_version" not in results["ir"]

    def test_malformed_spec_is_a_400_invalid_spec(self, tmp_path):
        with make_server(tmp_path) as srv:
            client = ServeClient(port=srv.port, retries=0)
            client.wait_ready(10.0)
            with pytest.raises(ServeError, match="affine") as err:
                client.optimize(
                    spec="C[i,j] += A[i*i,j]",
                    dims={"i": 8, "j": 8},
                    platform="i7-5930k",
                )
            assert "HTTP 400" in str(err.value)
