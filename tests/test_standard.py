"""Tests for repro.core.standard's naming helpers and edge cases."""

import pytest

from repro.core.standard import (
    build_schedule,
    inter_loop_name,
    intra_loop_name,
    untransformed_schedule,
)
from repro.ir.schedule import LoopKind

from tests.helpers import make_copy, make_matmul


BOUNDS = {"i": 64, "j": 64, "k": 64}


class TestLoopNames:
    def test_split_var_names(self):
        tiles = {"i": 8, "j": 64, "k": 64}
        assert inter_loop_name("i", tiles, BOUNDS) == "i_o"
        assert intra_loop_name("i", tiles, BOUNDS) == "i_i"

    def test_untiled_var_is_intra_only(self):
        tiles = {"j": 64}
        assert intra_loop_name("j", tiles, BOUNDS) == "j"
        with pytest.raises(ValueError):
            inter_loop_name("j", tiles, BOUNDS)

    def test_tile_one_is_inter_only(self):
        tiles = {"k": 1}
        assert inter_loop_name("k", tiles, BOUNDS) == "k"
        with pytest.raises(ValueError):
            intra_loop_name("k", tiles, BOUNDS)


class TestBuildScheduleEdges:
    def test_multi_fuse_until_enough_threads(self, arch):
        # Both outer trip counts are tiny: i (2 trips) and k (2 trips)
        # fuse to 4, still < 12 threads, then j joins for 16.
        c, _, _ = make_matmul(64)
        schedule = build_schedule(
            c, arch,
            tiles={"i": 32, "j": 16, "k": 32},
            inter_order=["i", "k", "j"],
            intra_order=["i", "k", "j"],
        )
        par = [l for l in schedule.loops() if l.kind is LoopKind.PARALLEL]
        assert par
        assert par[0].extent >= arch.total_threads

    def test_no_parallel_when_no_inter_loops(self, arch):
        c, _, _ = make_matmul(64)
        schedule = build_schedule(
            c, arch,
            tiles={"i": 64, "j": 64, "k": 64},
            inter_order=[],
            intra_order=["i", "k", "j"],
        )
        assert not [l for l in schedule.loops() if l.kind is LoopKind.PARALLEL]

    def test_vectorize_targets_last_intra_var(self, arch):
        # With j fully inter-tile, the innermost intra variable is k; its
        # intra loop is the one vectorized.
        c, _, _ = make_matmul(64)
        schedule = build_schedule(
            c, arch,
            tiles={"i": 8, "j": 1, "k": 8},
            inter_order=["i", "k", "j"],
            intra_order=["i", "k"],
        )
        vec = [l for l in schedule.loops() if l.kind is LoopKind.VECTORIZED]
        assert len(vec) == 1 and vec[0].origin == "k"

    def test_arm_vector_width(self, arch_arm):
        c, _, _ = make_matmul(64)
        schedule = build_schedule(
            c, arch_arm,
            tiles={"i": 8, "j": 16, "k": 8},
            inter_order=["i", "k", "j"],
            intra_order=["i", "k", "j"],
        )
        vec = [l for l in schedule.loops() if l.kind is LoopKind.VECTORIZED]
        assert vec[0].extent <= arch_arm.vector_lanes(4)


class TestUntransformed:
    def test_single_loop_func(self, arch):
        from repro.ir import Buffer, Func, Var

        a = Buffer("A", (64,))
        f = Func("F")
        x = Var("x")
        f[x] = a[x]
        f.set_bounds({x: 64})
        schedule = untransformed_schedule(f, arch)
        # The vector split introduces an outer loop which then gets
        # parallelized; the vectorized lane loop stays innermost.
        loops = schedule.loops()
        assert loops[-1].kind is LoopKind.VECTORIZED
        assert all(l.origin == "x" for l in loops)

    def test_nti_flag(self, arch):
        f, _ = make_copy(64)
        s = untransformed_schedule(f, arch, nontemporal=True)
        assert s.nontemporal
