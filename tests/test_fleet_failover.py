"""Failover and self-healing: the fleet's promises under real faults.

The headline test is satellite 4 of the fleet issue: SIGKILL a worker
*while it is serving a request* and assert the caller still gets an
answer — attributed ``served_by="failover"`` — that is bit-identical to
what a single standalone server produces for the same request.  The
quarantine test drives the supervisor's restart policy directly against
a worker command that exits immediately (a crash loop no amount of
respawning can fix).
"""

import json
import sys
import threading
import time

import pytest

from repro.fleet import (
    STATE_QUARANTINED,
    STATE_UP,
    FleetSupervisor,
    HashRing,
)
from repro.fleet.testing import FleetThread
from repro.serve import ServeClient, ServerThread
from repro.serve.identify import identify_request
from repro.serve.schema import build_request, parse_request


def serialized(result):
    return json.dumps(result["schedules"], sort_keys=True)


def home_shard_for(benchmark, platform, shards, **kwargs):
    """The shard the router will pick — computed the way the router does."""
    request = parse_request(build_request(benchmark, platform, **kwargs))
    _case, _arch, key = identify_request(request)
    ring = HashRing(shards)
    return ring.route(key), ring.sibling(key)


@pytest.mark.slow
class TestSigkillMidRequest:
    def test_failover_is_bit_identical_and_accounted(self, tmp_path):
        # Reference answer from a plain standalone server.
        with ServerThread(
            cache_path=str(tmp_path / "ref-cache.jsonl")
        ) as srv:
            reference = ServeClient(port=srv.port).optimize(
                "matmul", "i7-5930k", fast=True
            )

        home, sibling = home_shard_for(
            "matmul", "i7-5930k", [0, 1], fast=True
        )
        assert home != sibling

        # The home shard's *first job* stalls 2.5s — long enough to
        # SIGKILL the worker while the request is provably in flight.
        with FleetThread(
            workers=2,
            cache_path=str(tmp_path / "cache.jsonl"),
            worker_env={home: {"REPRO_SERVE_FAULT": "slow:2.5:1"}},
        ) as fleet:
            outcome = {}

            def submit():
                outcome["result"] = ServeClient(
                    port=fleet.port, timeout_s=60.0
                ).optimize("matmul", "i7-5930k", fast=True)

            caller = threading.Thread(target=submit)
            caller.start()
            time.sleep(0.8)  # request is now stalled inside the home shard
            fleet.supervisor.kill_worker(home)
            caller.join(timeout=60.0)
            assert not caller.is_alive()

            # The caller never saw the crash: one answer, attributed to
            # the deterministic sibling, bit-identical to standalone.
            result = outcome["result"]
            assert result["served_by"] == "failover"
            assert result["failover_from"] == home
            assert result["shard"] == sibling
            assert serialized(result) == serialized(reference)

            # Metrics account for the hop.
            counters = ServeClient(port=fleet.port).metrics()["counters"]
            assert counters["failover"] == 1
            assert counters["forward_retries"] >= 1
            assert counters["responses_ok"] == 1

            # And the supervisor heals the dead shard: respawned on the
            # same port, back to "up" without operator intervention.
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if fleet.supervisor.state_of(home) == STATE_UP:
                    break
                time.sleep(0.2)
            assert fleet.supervisor.state_of(home) == STATE_UP
            assert counters["worker_restarts"] >= 0  # snapshot was earlier
            final = ServeClient(port=fleet.port).metrics()
            assert final["counters"]["worker_restarts"] >= 1


class TestFlapQuarantine:
    def test_crash_loop_is_quarantined_not_respawned_forever(self):
        # A worker whose process exits immediately can never pass the
        # health gate, so this test drives the supervisor's restart
        # policy directly rather than through start()'s readiness wait.
        supervisor = FleetSupervisor(
            workers=1,
            worker_cmd=lambda shard, port: [
                sys.executable,
                "-c",
                "import sys; sys.exit(1)",
            ],
            restart_backoff_base_s=0.0,
            restart_backoff_cap_s=0.0,
            flap_window_s=30.0,
            flap_threshold=2,
        )
        worker = supervisor._workers[0]
        supervisor._spawn(worker)
        worker.proc.wait()

        # Two restarts are within policy; the third strike quarantines.
        for _ in range(3):
            supervisor._note_down(worker, "exited")
            supervisor._maybe_restart(worker)
            if worker.proc is not None and worker.proc.poll() is None:
                worker.proc.wait()

        assert worker.state == STATE_QUARANTINED
        assert worker.restarts == 2
        counters = supervisor.metrics.counters()
        assert counters["worker_restarts"] == 2
        assert counters["workers_quarantined"] == 1

        # Once quarantined, the supervisor never touches the shard again.
        supervisor._maybe_restart(worker)
        assert worker.state == STATE_QUARANTINED
        assert supervisor.metrics.counters()["worker_restarts"] == 2

    def test_restart_backoff_is_exponential_and_capped(self):
        supervisor = FleetSupervisor(
            workers=1,
            worker_cmd=lambda shard, port: [
                sys.executable,
                "-c",
                "import sys; sys.exit(1)",
            ],
            restart_backoff_base_s=0.25,
            restart_backoff_cap_s=1.0,
            flap_window_s=3600.0,  # every restart stays "recent"
            flap_threshold=10,  # ...but none of them quarantines
        )
        worker = supervisor._workers[0]
        delays = []
        for _ in range(4):
            supervisor._note_down(worker, "test")
            worker.next_restart_at = 0.0  # skip the wait, keep the math
            before = time.monotonic()
            supervisor._maybe_restart(worker)
            delays.append(worker.next_restart_at - before)
            worker.proc.wait()
        # min(cap, base * 2**(n-1)): 0.25, 0.5, then pinned at the cap.
        for delay, expected in zip(delays, (0.25, 0.5, 1.0, 1.0)):
            assert delay == pytest.approx(expected, abs=0.1)
