"""Tests for the extra PolyBench-style kernels (beyond Table 4)."""

import numpy as np
import pytest

from repro.bench import EXTRAS, make_extra
from repro.core import Locality, classify, optimize
from repro.ir import Buffer, lower
from repro.sim import Machine, execute_pipeline


EXPECTED_CLASSES = {
    "2mm": ["temporal", "temporal"],
    "atax": ["temporal", "temporal"],
    "bicg": ["temporal", "temporal"],
    "mvt": ["temporal", "temporal"],
    "jacobi2d": ["none"],
    "seidel": ["none"],
}


class TestExtrasClassification:
    @pytest.mark.parametrize("name", sorted(EXTRAS))
    def test_expected_locality(self, name):
        case = make_extra(name, n=64)
        got = [classify(stage).locality.value for stage in case.pipeline]
        assert got == EXPECTED_CLASSES[name]

    def test_stencils_marked_stencil_like(self):
        for name in ("jacobi2d", "seidel"):
            case = make_extra(name, n=32)
            decision = classify(case.funcs[0])
            assert "stencil" in decision.reason

    def test_unknown_extra(self):
        with pytest.raises(KeyError):
            make_extra("lu")


class TestExtrasOptimizeAndLower:
    @pytest.mark.parametrize("name", sorted(EXTRAS))
    def test_every_stage_schedules_and_lowers(self, arch, name):
        case = make_extra(name, n=64)
        for stage in case.pipeline:
            result = optimize(stage, arch)
            assert lower(stage, result.schedule)

    def test_mvt_transposed_stage_still_temporal(self, arch):
        # x2 += A^T y2 reads A with swapped indices AND a reduction var:
        # the first test of Fig. 2 wins.
        case = make_extra("mvt", n=64)
        decision = classify(case.funcs[1])
        assert decision.locality is Locality.TEMPORAL


class TestExtrasNumerics:
    def _inputs(self, case):
        out = {}
        for stage in case.funcs:
            for b in stage.input_buffers():
                if isinstance(b, Buffer):
                    out[b.name] = b
        return out

    def test_atax_matches_numpy(self):
        n = 24
        case = make_extra("atax", n=n)
        bufs = self._inputs(case)
        rng = np.random.default_rng(0)
        a_v = rng.standard_normal((n, n)).astype(np.float32)
        x_v = rng.standard_normal(n).astype(np.float32)
        out = execute_pipeline(
            case.pipeline, None, {bufs["A"]: a_v, bufs["x"]: x_v}
        )
        expected = a_v.T.astype(np.float64) @ (a_v @ x_v)
        np.testing.assert_allclose(out, expected, rtol=1e-3)

    def test_mvt_matches_numpy(self):
        n = 24
        case = make_extra("mvt", n=n)
        bufs = self._inputs(case)
        rng = np.random.default_rng(1)
        vals = {
            "A": rng.standard_normal((n, n)).astype(np.float32),
            "x1in": rng.standard_normal(n).astype(np.float32),
            "x2in": rng.standard_normal(n).astype(np.float32),
            "y1": rng.standard_normal(n).astype(np.float32),
            "y2": rng.standard_normal(n).astype(np.float32),
        }
        out = execute_pipeline(
            case.pipeline, None, {bufs[k]: v for k, v in vals.items()}
        )
        expected = vals["x2in"] + vals["A"].T.astype(np.float64) @ vals["y2"]
        np.testing.assert_allclose(out, expected, rtol=1e-3)

    def test_jacobi_matches_numpy(self):
        n = 20
        case = make_extra("jacobi2d", n=n)
        bufs = self._inputs(case)
        rng = np.random.default_rng(2)
        a_v = rng.standard_normal((n + 2, n + 2)).astype(np.float32)
        out = execute_pipeline(case.pipeline, None, {bufs["Ain"]: a_v})
        expected = 0.2 * (
            a_v[1:n + 1, 1:n + 1] + a_v[1:n + 1, :n] + a_v[1:n + 1, 2:n + 2]
            + a_v[:n, 1:n + 1] + a_v[2:n + 2, 1:n + 1]
        )
        np.testing.assert_allclose(out, expected, rtol=1e-4)


class TestExtrasOnSimulator:
    def test_2mm_proposed_beats_baseline(self, arch):
        from repro.baselines import baseline_schedule
        from repro.core.optimizer import optimize_pipeline

        machine = Machine(arch, line_budget=20_000)
        case = make_extra("2mm", n=256)
        schedules = optimize_pipeline(case.pipeline, arch)
        t_prop = machine.time_pipeline(case.pipeline, schedules)

        case2 = make_extra("2mm", n=256)
        base = {f: baseline_schedule(f, arch) for f in case2.funcs}
        t_base = machine.time_pipeline(case2.pipeline, base)
        assert t_prop <= t_base * 1.05

    def test_stencils_left_untiled_run(self, arch):
        machine = Machine(arch, line_budget=10_000)
        case = make_extra("jacobi2d", n=256)
        result = optimize(case.funcs[0], arch)
        assert result.locality is Locality.NONE
        assert machine.time_pipeline(case.pipeline, {case.funcs[0]: result.schedule}) > 0
