"""Tests for the C back end — including compile-and-run equivalence
against the numerical interpreter when a C compiler is available."""

import ctypes
import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np
import pytest

from repro.core import optimize
from repro.ir import Schedule, lower
from repro.ir.codegen_c import c_type, codegen, codegen_nest
from repro.sim import execute

from tests.helpers import make_copy, make_matmul, make_transpose_mask

HAVE_CC = shutil.which("cc") is not None


class TestTextualOutput:
    def test_c_type_mapping(self):
        assert c_type("float32") == "float"
        assert c_type("int32") == "int32_t"
        with pytest.raises(KeyError):
            c_type("complex128")

    def test_function_signature(self):
        c, a, b = make_matmul(8)
        src = codegen(lower(c), function_name="mm")
        assert "void mm(" in src
        assert "const float *restrict A" in src
        assert "float *restrict C" in src

    def test_loops_and_statement(self):
        c, _, _ = make_matmul(8)
        src = codegen(lower(c))
        assert "for (int64_t k = 0; k < 8; k++)" in src
        assert "C[(i) * 8 + (j)]" in src

    def test_pragmas(self):
        c, _, _ = make_matmul(16)
        s = Schedule(c)
        s.reorder("j", "k", "i")
        s.vectorize("j", 8).parallel("i")
        src = codegen(lower(c, s))
        assert "#pragma omp parallel for" in src
        assert "#pragma omp simd" in src

    def test_guard_emitted(self):
        c, _, _ = make_matmul(10)
        s = Schedule(c)
        s.split("i", "io", "ii", 4)
        src = codegen(lower(c, s))
        assert "if (i >= 10) continue;" in src

    def test_nontemporal_macro(self):
        f, _ = make_copy(8)
        s = Schedule(f)
        s.store_nontemporal()
        src = codegen(lower(f, s))
        assert "REPRO_STREAM_STORE(&Copy[" in src

    def test_index_reconstruction(self):
        c, _, _ = make_matmul(16)
        s = Schedule(c)
        s.split("i", "io", "ii", 4)
        src = codegen(lower(c, s))
        assert "const int64_t i = (io * 4 + ii);" in src

    def test_needs_nests(self):
        with pytest.raises(ValueError):
            codegen([])


@pytest.mark.skipif(not HAVE_CC, reason="no C compiler on PATH")
class TestCompileAndRun:
    def _build(self, src: str, tmpdir: str) -> ctypes.CDLL:
        c_path = Path(tmpdir) / "kernel.c"
        so_path = Path(tmpdir) / "kernel.so"
        c_path.write_text(src)
        subprocess.run(
            ["cc", "-O2", "-shared", "-fPIC", "-o", str(so_path), str(c_path)],
            check=True,
            capture_output=True,
        )
        return ctypes.CDLL(str(so_path))

    def test_matmul_matches_interpreter(self):
        n = 16
        c, a, b = make_matmul(n)
        s = Schedule(c)
        s.split("i", "io", "ii", 4).split("j", "jo", "ji", 4)
        s.reorder("ji", "ii", "k", "jo", "io")
        src = codegen(lower(c, s), function_name="mm")
        rng = np.random.default_rng(0)
        a_v = rng.standard_normal((n, n)).astype(np.float32)
        b_v = rng.standard_normal((n, n)).astype(np.float32)
        expected = execute(c, s, {a: a_v, b: b_v})

        with tempfile.TemporaryDirectory() as tmpdir:
            lib = self._build(src, tmpdir)
            out = np.zeros((n, n), dtype=np.float32)
            fptr = ctypes.POINTER(ctypes.c_float)
            lib.mm(
                a_v.ctypes.data_as(fptr),
                b_v.ctypes.data_as(fptr),
                out.ctypes.data_as(fptr),
            )
        np.testing.assert_allclose(out, expected, rtol=1e-4, atol=1e-5)

    def test_transpose_mask_matches_numpy(self):
        n = 32
        f, a, b = make_transpose_mask(n)
        schedule = None
        src = codegen(lower(f), function_name="tpm")
        rng = np.random.default_rng(1)
        a_v = rng.integers(0, 1 << 20, size=(n, n)).astype(np.int32)
        b_v = rng.integers(0, 1 << 20, size=(n, n)).astype(np.int32)

        with tempfile.TemporaryDirectory() as tmpdir:
            lib = self._build(src, tmpdir)
            out = np.zeros((n, n), dtype=np.int32)
            iptr = ctypes.POINTER(ctypes.c_int32)
            lib.tpm(
                a_v.ctypes.data_as(iptr),
                b_v.ctypes.data_as(iptr),
                out.ctypes.data_as(iptr),
            )
        np.testing.assert_array_equal(out, a_v.T & b_v)

    def test_optimizer_schedule_compiles(self, arch):
        n = 64
        c, a, b = make_matmul(n)
        schedule = optimize(c, arch).schedule
        src = codegen(lower(c, schedule), function_name="opt_mm")
        rng = np.random.default_rng(2)
        a_v = rng.standard_normal((n, n)).astype(np.float32)
        b_v = rng.standard_normal((n, n)).astype(np.float32)
        with tempfile.TemporaryDirectory() as tmpdir:
            lib = self._build(src, tmpdir)
            out = np.zeros((n, n), dtype=np.float32)
            fptr = ctypes.POINTER(ctypes.c_float)
            lib.opt_mm(
                a_v.ctypes.data_as(fptr),
                b_v.ctypes.data_as(fptr),
                out.ctypes.data_as(fptr),
            )
        expected = a_v.astype(np.float64) @ b_v
        np.testing.assert_allclose(out, expected, rtol=1e-3, atol=1e-4)

    def test_nontemporal_copy_compiles_and_runs(self):
        n = 32
        f, a = make_copy(n)
        s = Schedule(f)
        s.store_nontemporal()
        src = codegen(lower(f, s), function_name="ntcopy")
        rng = np.random.default_rng(3)
        a_v = rng.integers(0, 1 << 20, size=(n, n)).astype(np.int32)
        with tempfile.TemporaryDirectory() as tmpdir:
            lib = self._build(src, tmpdir)
            out = np.zeros((n, n), dtype=np.int32)
            iptr = ctypes.POINTER(ctypes.c_int32)
            lib.ntcopy(a_v.ctypes.data_as(iptr), out.ctypes.data_as(iptr))
        np.testing.assert_array_equal(out, a_v)


class TestSignatureBuffers:
    def test_order_matches_parameters(self):
        from repro.ir.codegen_c import signature_buffers
        from repro.bench import make_gemm

        case = make_gemm(n=8)
        func = case.funcs[0]
        nests = lower(func)
        inputs, outputs = signature_buffers(nests)
        src = codegen(nests, function_name="g")
        sig = src.split("void g(")[1].split(")")[0]
        names = [p.split()[-1].lstrip("*") for p in sig.split(",")]
        assert names == [b.name for b in inputs] + [f.name for f in outputs]

    def test_gemm_first_use_order(self):
        from repro.ir.codegen_c import signature_buffers
        from repro.bench import make_gemm

        case = make_gemm(n=8)
        nests = lower(case.funcs[0])
        inputs, outputs = signature_buffers(nests)
        assert [b.name for b in inputs] == ["Cin", "A", "B"]
        assert [f.name for f in outputs] == ["C"]
