"""Tests for the access-pattern analysis (repro.ir.analysis)."""

import pytest
from hypothesis import given, strategies as st

from repro.ir import Buffer, Func, RVar, Var, float32
from repro.ir.analysis import (
    AffineIndex,
    analyze_definition,
    analyze_func,
)
from repro.ir.expr import Const, VarRef
from repro.util import ClassificationError

from tests.helpers import make_copy, make_matmul, make_stencil, make_transpose_mask


class TestAffineIndex:
    def test_single_var(self):
        ix = AffineIndex.from_expr(VarRef("i"))
        assert ix.coeff_map() == {"i": 1}
        assert ix.offset == 0
        assert ix.is_simple

    def test_var_plus_const(self):
        ix = AffineIndex.from_expr(VarRef("i") + 2)
        assert ix.coeff_map() == {"i": 1}
        assert ix.offset == 2

    def test_scaled_var(self):
        ix = AffineIndex.from_expr(2 * VarRef("i") - 1)
        assert ix.coeff_map() == {"i": 2}
        assert ix.offset == -1
        assert not ix.is_simple

    def test_two_vars(self):
        ix = AffineIndex.from_expr(VarRef("y") + VarRef("ky"))
        assert ix.coeff_map() == {"y": 1, "ky": 1}

    def test_subtraction_flips_sign(self):
        ix = AffineIndex.from_expr(VarRef("i") - VarRef("j"))
        assert ix.coeff_map() == {"i": 1, "j": -1}

    def test_cancellation_drops_var(self):
        ix = AffineIndex.from_expr(VarRef("i") - VarRef("i"))
        assert ix.coeff_map() == {}
        assert ix.is_constant

    def test_constant(self):
        ix = AffineIndex.from_expr(Const(5))
        assert ix.is_constant and ix.offset == 5
        assert ix.primary_var is None

    def test_rejects_var_product(self):
        with pytest.raises(ClassificationError):
            AffineIndex.from_expr(VarRef("i") * VarRef("j"))

    def test_rejects_division(self):
        with pytest.raises(ClassificationError):
            AffineIndex.from_expr(VarRef("i") / 2)

    def test_rejects_float_const(self):
        with pytest.raises(ClassificationError):
            AffineIndex.from_expr(Const(1.5))

    def test_str(self):
        assert str(AffineIndex.from_expr(2 * VarRef("i") + 1)) == "2*i+1"

    @given(
        st.integers(-4, 4),
        st.integers(-4, 4),
        st.integers(-8, 8),
    )
    def test_roundtrip_two_var_affine(self, a, b, c):
        expr = a * VarRef("i") + b * VarRef("j") + c
        ix = AffineIndex.from_expr(expr)
        coeffs = ix.coeff_map()
        assert coeffs.get("i", 0) == a
        assert coeffs.get("j", 0) == b
        assert ix.offset == c


class TestRefInfo:
    def test_matmul_refs(self):
        c, a, b = make_matmul(16)
        info = analyze_func(c)
        names = [r.name for r in info.inputs]
        assert names == ["C", "A", "B"]

    def test_leading_vars(self):
        c, _, _ = make_matmul(16)
        info = analyze_func(c)
        leading = {r.name: r.leading_var for r in info.inputs}
        assert leading == {"C": "j", "A": "k", "B": "j"}

    def test_strides(self):
        c, a, b = make_matmul(16)
        info = analyze_func(c)
        a_ref = [r for r in info.inputs if r.name == "A"][0]
        assert a_ref.stride_of("i") == 16
        assert a_ref.stride_of("k") == 1
        assert a_ref.stride_of("j") == 0

    def test_offsets(self):
        f, _ = make_stencil(8)
        info = analyze_func(f)
        assert any(r.has_offsets() for r in info.inputs)

    def test_dim_vars(self):
        c, _, _ = make_matmul(16)
        info = analyze_func(c)
        assert info.output.dim_vars == ("i", "j")

    def test_index_vars(self):
        c, _, _ = make_matmul(16)
        info = analyze_func(c)
        assert info.output.index_vars == {"i", "j"}


class TestStatementInfo:
    def test_matmul_extra_vars(self):
        c, _, _ = make_matmul(16)
        info = analyze_func(c)
        assert info.extra_input_vars == {"k"}
        assert info.output_is_reused
        assert info.transposed_inputs() == []
        assert not info.is_stencil_like()

    def test_transpose_mask(self):
        f, _, _ = make_transpose_mask(16)
        info = analyze_func(f)
        assert info.extra_input_vars == set()
        assert [r.name for r in info.transposed_inputs()] == ["A"]
        assert not info.output_is_reused

    def test_copy(self):
        f, _ = make_copy(16)
        info = analyze_func(f)
        assert info.extra_input_vars == set()
        assert info.transposed_inputs() == []
        assert not info.output_is_reused
        assert not info.is_stencil_like()

    def test_stencil(self):
        f, _ = make_stencil(16)
        info = analyze_func(f)
        assert info.extra_input_vars == set()
        assert info.is_stencil_like()

    def test_reduction_vars(self):
        c, _, _ = make_matmul(16)
        info = analyze_func(c)
        assert info.reduction_vars == ("k",)

    def test_ops_count(self):
        c, _, _ = make_matmul(16)
        info = analyze_func(c)
        assert info.ops == 2  # one add, one multiply

    def test_pure_definition_analysis(self):
        c, _, _ = make_matmul(16)
        info = analyze_definition(c, c.pure_definition)
        assert info.inputs == []
        assert info.reduction_vars == ()

    def test_non_self_inputs(self):
        c, a, b = make_matmul(16)
        info = analyze_func(c)
        assert {r.name for r in info.non_self_inputs()} == {"A", "B"}

    def test_syrk_shared_array_both_patterns(self):
        n = 16
        i, j = Var("i"), Var("j")
        k = RVar("k", n)
        a = Buffer("A", (n, n), float32)
        f = Func("Syrk")
        f[i, j] = 0.0
        f[i, j] = f[i, j] + a[i, k] * a[j, k]
        info = analyze_func(f)
        a_refs = [r for r in info.inputs if r.name == "A"]
        assert len(a_refs) == 2
        assert {r.dim_vars for r in a_refs} == {("i", "k"), ("j", "k")}

    def test_dtype_size(self):
        c, _, _ = make_matmul(16)
        assert analyze_func(c).dtype_size == 4
