"""Tests for the kernel spec frontend: parser and lowering."""

from __future__ import annotations

import pytest

from repro.frontend import DTYPES, lower_spec, parse_spec
from repro.frontend.parser import Bin, Name, Num, Ref
from repro.ir import float64, int32
from repro.util import ValidationError


class TestParser:
    def test_matmul_shape(self):
        stmts = parse_spec("C[i,j] += A[i,k] * B[k,j]")
        assert len(stmts) == 1
        stmt = stmts[0]
        assert stmt.lhs_name == "C"
        assert stmt.op == "+="
        assert isinstance(stmt.rhs, Bin) and stmt.rhs.op == "*"
        assert isinstance(stmt.rhs.lhs, Ref) and stmt.rhs.lhs.name == "A"

    def test_multi_statement_and_trailing_semicolon(self):
        stmts = parse_spec("T[i] += A[i,j] * x[j]; y[i2] = T[i2];")
        assert [s.lhs_name for s in stmts] == ["T", "y"]

    def test_numbers_keep_their_kind(self):
        stmts = parse_spec("B[i] = 2 * A[i] + 0.5 * A[i]")
        two = stmts[0].rhs.lhs.lhs
        half = stmts[0].rhs.rhs.lhs
        assert isinstance(two, Num) and two.value == 2
        assert isinstance(two.value, int)
        assert isinstance(half, Num) and half.value == 0.5

    def test_named_scalars(self):
        stmts = parse_spec("B[i] = a * A[i]")
        assert isinstance(stmts[0].rhs.lhs, Name)

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "C[i,j]",
            "C[i,j] = ",
            "C[i,j] =+ A[i,j]",
            "C[i,j] += A[i,j",
            "C += A[i]",
            "[i] = A[i]",
            "C[i] = A[i] ** 2",
            42,
        ],
    )
    def test_malformed_specs_raise_validation_error(self, bad):
        with pytest.raises(ValidationError):
            parse_spec(bad)

    def test_error_carries_position(self):
        with pytest.raises(ValidationError, match="position"):
            parse_spec("C[i] = A[i] @ B[i]")


class TestLowering:
    def test_matmul_lowers_to_init_plus_update(self):
        lowered = lower_spec(
            "C[i,j] += A[i,k] * B[k,j]", {"i": 32, "j": 32, "k": 32}
        )
        func = lowered.output
        assert func.name == "C"
        assert len(func.definitions) == 2  # pure init + reduction update
        assert repr(func.definitions[0].rhs) == "Const(0.0)"

    def test_stencil_offsets_shift_to_padded_buffer(self):
        lowered = lower_spec(
            "B[i,j] = A[i-1,j] + A[i+1,j] + A[i,j-1] + A[i,j+1]",
            {"i": 16, "j": 16},
        )
        buffers = {
            buf.name: buf for buf in lowered.output.input_buffers()
        }
        # offsets -1..+1 over extent 16 need an 18-wide padded plane
        assert buffers["A"].shape == (18, 18)

    def test_dtypes_apply(self):
        lowered = lower_spec(
            "C[i] = A[i]",
            {"i": 8},
            dtypes={"C": "float64", "A": "float64"},
        )
        assert lowered.output.dtype == float64

    def test_int_accumulator_initializes_with_int_zero(self):
        lowered = lower_spec(
            "C[i] += A[i]", {"i": 8}, dtypes={"C": "int32", "A": "int32"}
        )
        assert lowered.output.dtype == int32
        assert repr(lowered.output.definitions[0].rhs) == "Const(0)"

    def test_params_substitute_as_constants(self):
        lowered = lower_spec(
            "B[i] = a * A[i]", {"i": 8}, params={"a": 0.25}
        )
        assert "Const(0.25)" in repr(lowered.output.definitions[0].rhs)

    def test_multi_stage_becomes_pipeline(self):
        lowered = lower_spec(
            "T[i,j] += A[i,k] * B[k,j]; D[i2,j2] += T[i2,k2] * Cc[k2,j2]",
            {"i": 16, "j": 16, "k": 16, "i2": 16, "j2": 16, "k2": 16},
        )
        assert [f.name for f in lowered.funcs] == ["T", "D"]
        assert lowered.output.name == "D"

    def test_known_dtypes_table(self):
        assert "float32" in DTYPES and "int32" in DTYPES

    @pytest.mark.parametrize(
        ("spec", "dims", "kwargs", "match"),
        [
            ("C[i] = A[i]", {}, {}, "non-empty"),
            ("C[i] = A[i]", {"i": 0}, {}, "positive"),
            ("C[i] = A[i]", {"i": 8, "zz": 4}, {}, "never appear"),
            ("C[i] = A[i*i]", {"i": 8}, {}, "affine"),
            ("C[i] = A[i/2]", {"i": 8}, {}, "affine|division"),
            ("C[i] = A[j]", {"i": 8}, {}, "no extent"),
            ("C[i] = A[i]", {"i": 8}, {"dtypes": {"C": "f8"}}, "dtype"),
            ("C[i] = A[i]", {"i": 8}, {"dtypes": {"X": "float32"}},
             "never appear"),
            ("C[i] = a * A[i]", {"i": 8}, {}, "param"),
            (
                "C[i] = a * A[i]",
                {"i": 8},
                {"params": {"a": 1.0, "b": 2.0}},
                "never appear",
            ),
            ("C[i] = C[i+1]", {"i": 8}, {}, "plain loop variable"),
            ("A[i] = A2[i]; A[j] = A2[j]", {"i": 8, "j": 8}, {},
             "pure variables"),
        ],
    )
    def test_bad_inputs_raise_validation_error(
        self, spec, dims, kwargs, match
    ):
        with pytest.raises(ValidationError, match=match):
            lower_spec(spec, dims, **kwargs)

    def test_lowering_is_deterministic_in_process(self):
        spec = "B[i,j] = a*A[i,j] + b*(A[i-1,j]+A[i+1,j]+A[i,j-1]+A[i,j+1])"
        dims = {"i": 64, "j": 64}
        params = {"a": 0.5, "b": 0.125}
        first = lower_spec(spec, dims, params=params)
        second = lower_spec(spec, dims, params=params)
        assert first.fingerprints == second.fingerprints
