"""Tests for the content-keyed ``emu`` memoization (Algorithm 1 cache)."""

import importlib

import pytest

# `repro.core` re-exports the `emu` *function* under the same name, so
# attribute-style module access would resolve to the function.
emu_mod = importlib.import_module("repro.core.emu")

from repro.core.emu import (  # noqa: E402
    EmuParams,
    clear_emu_cache,
    configure_emu_cache,
    emu,
    emu_cache_stats,
)
from repro.obs import CollectingTracer, activate_tracer


def _params(**overrides):
    base = dict(
        level=1,
        row_width_elems=32,
        row_stride_elems=2048,
        max_rows=2048,
        dts=4,
    )
    base.update(overrides)
    return EmuParams(**base)


class TestMemoization:
    def test_second_call_hits(self, arch):
        first = emu(arch, _params())
        second = emu(arch, _params())
        assert first == second
        stats = emu_cache_stats()
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.size == 1
        assert stats.calls == 2
        assert stats.hit_rate == pytest.approx(0.5)

    def test_distinct_params_are_distinct_entries(self, arch):
        emu(arch, _params())
        emu(arch, _params(row_width_elems=64))
        emu(arch, _params(level=2))
        stats = emu_cache_stats()
        assert stats.hits == 0
        assert stats.misses == 3
        assert stats.size == 3

    def test_arch_fingerprint_is_part_of_the_key(self, arch, arch_6700):
        emu(arch, _params())
        emu(arch_6700, _params())
        stats = emu_cache_stats()
        # Same EmuParams on a different platform must not collide.
        assert stats.hits == 0
        assert stats.misses == 2

    def test_hit_returns_identical_value_to_uncached(self, arch):
        for params in (
            _params(),
            _params(level=2),
            _params(row_width_elems=128, row_stride_elems=1024),
        ):
            cached_cold = emu(arch, params)
            cached_hot = emu(arch, params)
            previous = configure_emu_cache(False)
            try:
                uncached = emu(arch, params)
            finally:
                configure_emu_cache(previous)
            assert cached_cold == cached_hot == uncached

    def test_clear_resets_counters_and_entries(self, arch):
        emu(arch, _params())
        emu(arch, _params())
        clear_emu_cache()
        stats = emu_cache_stats()
        assert (stats.hits, stats.misses, stats.size) == (0, 0, 0)

    def test_disabled_cache_records_nothing(self, arch):
        previous = configure_emu_cache(False)
        try:
            emu(arch, _params())
            emu(arch, _params())
        finally:
            configure_emu_cache(previous)
        stats = emu_cache_stats()
        assert stats.calls == 0
        assert stats.size == 0

    def test_configure_returns_previous_setting(self):
        previous = configure_emu_cache(False)
        try:
            assert configure_emu_cache(True) is False
            assert configure_emu_cache(previous) is True
        finally:
            configure_emu_cache(previous)

    def test_lru_eviction_respects_cap(self, arch, monkeypatch):
        monkeypatch.setattr(emu_mod, "_EMU_CACHE_CAP", 2)
        emu(arch, _params(row_width_elems=8))
        emu(arch, _params(row_width_elems=16))
        emu(arch, _params(row_width_elems=24))  # evicts the oldest (8)
        assert emu_cache_stats().size == 2
        emu(arch, _params(row_width_elems=8))  # re-miss: was evicted
        stats = emu_cache_stats()
        assert stats.hits == 0
        assert stats.misses == 4


class TestTraceTransparency:
    def test_hit_and_miss_counters_on_tracer(self, arch):
        tracer = CollectingTracer()
        with activate_tracer(tracer):
            emu(arch, _params())
            emu(arch, _params())
        counters = tracer.counters()
        assert counters.get("stats.emu_cache_miss") == 1
        assert counters.get("stats.emu_cache_hit") == 1

    def test_emu_events_identical_hot_and_cold(self, arch):
        """A cache hit must emit the same emu event stream as a miss."""

        def traced_events():
            tracer = CollectingTracer()
            with activate_tracer(tracer):
                emu(arch, _params())
            return [
                {k: v for k, v in e.items() if k != "ts_ms"}
                for e in tracer.events
                if e.get("kind") == "event" and e.get("name") == "emu"
            ]

        cold = traced_events()  # miss
        hot = traced_events()  # hit
        previous = configure_emu_cache(False)
        try:
            disabled = traced_events()
        finally:
            configure_emu_cache(previous)
        assert cold == hot == disabled
        assert len(cold) == 1


class TestValidation:
    @pytest.mark.parametrize("stride", [0, -1, -2048])
    def test_non_positive_row_stride_rejected(self, arch, stride):
        with pytest.raises(ValueError, match="row stride must be positive"):
            emu(arch, _params(row_stride_elems=stride))

    def test_rejection_happens_before_caching(self, arch):
        with pytest.raises(ValueError):
            emu(arch, _params(row_stride_elems=0))
        assert emu_cache_stats().calls == 0
