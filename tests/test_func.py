"""Tests for Var/RVar/Buffer/Func/Pipeline (repro.ir.func)."""

import pytest

from repro.ir import Buffer, Func, Pipeline, RVar, Var, float32, float64, int32
from repro.util import ReproError, ScheduleError

from tests.helpers import make_matmul


class TestDTypes:
    def test_sizes(self):
        assert float32.size == 4
        assert float64.size == 8
        assert int32.size == 4

    def test_str(self):
        assert str(float32) == "float32"


class TestVars:
    def test_var_is_expr(self):
        i = Var("i")
        assert (i + 1).lhs is i

    def test_rvar_carries_extent(self):
        k = RVar("k", 64)
        assert k.extent == 64
        assert k.min == 0

    def test_rvar_rejects_bad_extent(self):
        with pytest.raises(ValueError):
            RVar("k", 0)

    def test_repr(self):
        assert "i" in repr(Var("i"))
        assert "64" in repr(RVar("k", 64))


class TestBuffer:
    def test_shape_and_elements(self):
        b = Buffer("A", (4, 8), float32)
        assert b.num_elements == 32
        assert b.size_bytes == 128

    def test_strides_row_major(self):
        b = Buffer("A", (4, 8, 2), float32)
        assert b.strides_elements() == (16, 2, 1)

    def test_1d_stride(self):
        assert Buffer("A", (10,), float32).strides_elements() == (1,)

    def test_indexing_builds_access(self):
        b = Buffer("A", (4, 4), float32)
        acc = b[Var("i"), Var("j")]
        assert acc.buffer is b

    def test_single_index_no_tuple(self):
        b = Buffer("A", (4,), float32)
        assert b[Var("i")].indices[0] == Var("i")

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            Buffer("A", (0, 4))

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Buffer("", (4,))


class TestFuncDefinitions:
    def test_pure_then_update(self):
        c, _, _ = make_matmul(16)
        assert len(c.definitions) == 2
        assert not c.pure_definition.is_update
        assert c.updates[0].is_update

    def test_main_definition_is_last(self):
        c, _, _ = make_matmul(16)
        assert c.main_definition() is c.definitions[-1]

    def test_rvars_collected(self):
        c, _, _ = make_matmul(16)
        assert [rv.name for rv in c.main_definition().rvars] == ["k"]

    def test_pure_def_has_no_rvars(self):
        c, _, _ = make_matmul(16)
        assert c.pure_definition.rvars == ()

    def test_all_vars_order(self):
        c, _, _ = make_matmul(16)
        assert c.main_definition().var_names() == ("i", "j", "k")

    def test_lhs_must_be_pure_vars(self):
        f = Func("F")
        with pytest.raises(ScheduleError):
            f[RVar("r", 4)] = 0.0

    def test_lhs_rejects_duplicates(self):
        f = Func("F")
        i = Var("i")
        with pytest.raises(ScheduleError):
            f[i, i] = 0.0

    def test_update_must_reuse_pure_vars(self):
        f = Func("F")
        i, j = Var("i"), Var("j")
        f[i, j] = 0.0
        with pytest.raises(ScheduleError):
            f[j, i] = 1.0

    def test_var_cannot_be_both_pure_and_reduction(self):
        f = Func("F")
        i = Var("i")
        a = Buffer("A", (8, 8))
        f[i] = 0.0
        with pytest.raises(ScheduleError):
            f[i] = f[i] + a[i, RVar("i", 8)]

    def test_read_before_definition_raises(self):
        f = Func("F")
        with pytest.raises(ReproError):
            f[Var("i")]

    def test_dims(self):
        c, _, _ = make_matmul(16)
        assert c.dims == 2


class TestFuncBounds:
    def test_shape_after_bounds(self):
        c, _, _ = make_matmul(16)
        assert c.shape == (16, 16)
        assert c.num_elements == 256

    def test_bound_of_pure_and_rvar(self):
        c, _, _ = make_matmul(16)
        assert c.bound_of("i") == 16
        assert c.bound_of("k") == 16

    def test_bound_of_unknown(self):
        c, _, _ = make_matmul(16)
        with pytest.raises(KeyError):
            c.bound_of("zz")

    def test_shape_without_bounds_raises(self):
        f = Func("F")
        f[Var("i")] = 0.0
        with pytest.raises(ReproError):
            _ = f.shape

    def test_set_bounds_rejects_nonpositive(self):
        f = Func("F")
        i = Var("i")
        f[i] = 0.0
        with pytest.raises(ValueError):
            f.set_bounds({i: 0})

    def test_strides(self):
        c, _, _ = make_matmul(16)
        assert c.strides_elements() == (16, 1)


class TestFuncInputs:
    def test_input_buffers_excludes_self(self):
        c, a, b = make_matmul(16)
        inputs = c.input_buffers()
        assert a in inputs and b in inputs
        assert c not in inputs

    def test_input_buffers_dedupe(self):
        n = 8
        i, j = Var("i"), Var("j")
        k = RVar("k", n)
        a = Buffer("A", (n, n))
        f = Func("Syrk")
        f[i, j] = 0.0
        f[i, j] = f[i, j] + a[i, k] * a[j, k]
        assert f.input_buffers() == [a]


class TestPipeline:
    def test_output_is_last(self):
        c, _, _ = make_matmul(8)
        p = Pipeline([c])
        assert p.output is c

    def test_iteration_order(self):
        c1, _, _ = make_matmul(8)
        c2, _, _ = make_matmul(8)
        p = Pipeline([c1, c2], name="two")
        assert list(p) == [c1, c2]
        assert len(p) == 2
        assert p.name == "two"

    def test_default_name(self):
        c, _, _ = make_matmul(8)
        assert Pipeline([c]).name == "C"

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Pipeline([])
