"""Tests for the search-performance harness (``python -m repro.bench``)."""

import copy
import json

import pytest

import repro.bench.__main__ as bench_cli
from repro.bench.perf import (
    BENCH_FORMAT,
    GATED_RATIOS,
    check_regression,
    run_bench,
    write_payload,
)


def _payload(**overrides):
    base = {
        "format": BENCH_FORMAT,
        "mode": "fast",
        "arch": "i7-5930k",
        "jobs": 2,
        "benchmarks": ["matmul"],
        "phases": {"classify_ms": 1.0},
        "end_to_end": {
            "stages": 1,
            "serial_uncached_ms": 100.0,
            "cold_parallel_ms": 60.0,
            "warm_ms": 2.0,
            "speedup_cold_parallel": 1.667,
            "speedup_warm": 50.0,
            "schedules_identical": True,
        },
        "emu_cache": {"hits": 10, "misses": 2, "hit_rate": 0.833},
        "schedule_cache": {"hits": 1, "misses": 1, "stores": 1,
                           "replay_failures": 0},
    }
    base.update(overrides)
    return base


class TestCheckRegression:
    def test_identical_payload_passes(self):
        assert check_regression(_payload(), _payload()) == []

    def test_improvement_passes(self):
        current = _payload()
        current["end_to_end"]["speedup_warm"] = 500.0
        assert check_regression(current, _payload()) == []

    def test_regression_beyond_tolerance_fails(self):
        current = _payload()
        current["end_to_end"]["speedup_warm"] = 30.0  # 40% below 50x
        failures = check_regression(current, _payload(), tolerance=0.2)
        assert len(failures) == 1
        assert "speedup_warm" in failures[0]

    def test_regression_within_tolerance_passes(self):
        current = _payload()
        current["end_to_end"]["speedup_warm"] = 45.0  # 10% below 50x
        assert check_regression(current, _payload(), tolerance=0.2) == []

    def test_schedule_divergence_fails(self):
        current = _payload()
        current["end_to_end"]["schedules_identical"] = False
        failures = check_regression(current, _payload())
        assert any("determinism" in f for f in failures)

    def test_format_mismatch_fails_early(self):
        failures = check_regression(_payload(format="other-v9"), _payload())
        assert len(failures) == 1
        assert "format mismatch" in failures[0]

    def test_mode_mismatch_fails(self):
        failures = check_regression(_payload(mode="full"), _payload())
        assert any("mode mismatch" in f for f in failures)

    def test_missing_ratio_fails(self):
        current = _payload()
        del current["end_to_end"]["speedup_warm"]
        failures = check_regression(current, _payload())
        assert any("speedup_warm" in f for f in failures)

    def test_every_gated_ratio_is_present_in_payloads(self):
        for key in GATED_RATIOS:
            assert key in _payload()["end_to_end"]


class TestCli:
    @pytest.fixture
    def fake_bench(self, monkeypatch):
        payload = _payload()
        monkeypatch.setattr(
            bench_cli, "run_bench", lambda **kwargs: copy.deepcopy(payload)
        )
        return payload

    def test_out_writes_payload(self, fake_bench, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert bench_cli.main(["--fast", "--out", str(out)]) == 0
        written = json.loads(out.read_text())
        assert written == fake_bench
        assert "bench[fast]" in capsys.readouterr().out

    def test_check_against_matching_baseline_passes(
        self, fake_bench, tmp_path
    ):
        baseline = tmp_path / "baseline.json"
        write_payload(fake_bench, str(baseline))
        assert (
            bench_cli.main(["--fast", "--check", "--baseline", str(baseline)])
            == 0
        )

    def test_check_detects_regression(self, fake_bench, tmp_path, capsys):
        better = copy.deepcopy(fake_bench)
        better["end_to_end"]["speedup_warm"] = 500.0
        baseline = tmp_path / "baseline.json"
        write_payload(better, str(baseline))
        assert (
            bench_cli.main(["--fast", "--check", "--baseline", str(baseline)])
            == 1
        )
        assert "speedup_warm" in capsys.readouterr().err

    def test_check_missing_baseline_errors(self, fake_bench, tmp_path, capsys):
        assert (
            bench_cli.main(
                ["--fast", "--check", "--baseline", str(tmp_path / "nope")]
            )
            == 1
        )
        assert "cannot read baseline" in capsys.readouterr().err


class TestRealRun:
    def test_fast_bench_end_to_end(self):
        """One real --fast measurement: structure, determinism, caching."""
        payload = run_bench(fast=True, jobs=2)
        assert payload["format"] == BENCH_FORMAT
        assert payload["mode"] == "fast"
        e2e = payload["end_to_end"]
        assert e2e["schedules_identical"] is True
        assert e2e["stages"] >= 4
        # Warm runs are served from the schedule cache + emu memo; even
        # on a single-core machine this must be a large win.
        assert e2e["speedup_warm"] > 3.0
        assert payload["emu_cache"]["hits"] > 0
        assert payload["schedule_cache"]["hits"] == e2e["stages"]
        # A payload must always gate cleanly against itself.
        assert check_regression(payload, payload) == []
