"""Tests for the fault-injection framework itself (repro.robust.faults)."""

import importlib
import math

import pytest

# ``repro.core``'s __init__ rebinds ``classify``/``emu`` to the functions,
# so attribute-style module imports would resolve to those instead.
classify_mod = importlib.import_module("repro.core.classify")
costs_mod = importlib.import_module("repro.core.costs")
emu_mod = importlib.import_module("repro.core.emu")
from repro.robust.faults import (
    FaultInjector,
    FaultSpec,
    exhaust_deadline,
    inject,
    poison,
    raise_on,
)
from repro.util import (
    ClassificationError,
    Deadline,
    DeadlineExceeded,
    ReproError,
    active_deadline,
)
from tests.helpers import make_matmul


class TestFaultSpec:
    def test_rejects_unknown_site(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec(site="nonsense")

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(site="classify", kind="explode")

    def test_rejects_zero_on_call(self):
        with pytest.raises(ValueError, match="1-based"):
            FaultSpec(site="classify", on_call=0)

    def test_fires_window(self):
        spec = FaultSpec(site="classify", on_call=2, count=2)
        assert [spec.fires(n) for n in (1, 2, 3, 4)] == [
            False, True, True, False,
        ]

    def test_fires_forever_without_count(self):
        spec = FaultSpec(site="classify", on_call=3)
        assert not spec.fires(2)
        assert spec.fires(3) and spec.fires(100)


class TestInjection:
    def test_raise_on_first_call(self):
        func, *_ = make_matmul()
        with inject(raise_on("classify")):
            with pytest.raises(ClassificationError, match="injected fault"):
                classify_mod.classify(func)

    def test_raise_on_nth_call_only(self):
        func, *_ = make_matmul()
        with inject(raise_on("classify", n=2, count=1)) as inj:
            classify_mod.classify(func)          # 1st: passes through
            with pytest.raises(ClassificationError):
                classify_mod.classify(func)      # 2nd: fires
            classify_mod.classify(func)          # 3rd: passes again
        assert inj.calls("classify") == 3

    def test_custom_exception_instance(self):
        func, *_ = make_matmul()
        boom = ReproError("custom boom")
        with inject(raise_on("classify", exc=boom)):
            with pytest.raises(ReproError, match="custom boom"):
                classify_mod.classify(func)

    def test_poison_returns_nan(self):
        with inject(poison("cost")):
            value = costs_mod.total_cost(
                None, [], {}, {}, [], [], 4
            )
        assert math.isnan(value)

    def test_poison_returns_inf(self):
        with inject(poison("cost", value=float("inf"))):
            assert costs_mod.total_cost(None, [], {}, {}, [], [], 4) == float(
                "inf"
            )

    def test_emu_raise(self, arch):
        with inject(raise_on("emu")):
            with pytest.raises(ReproError, match="cache emulation"):
                emu_mod.emu_l1(
                    arch,
                    row_width_elems=16,
                    row_stride_elems=2048,
                    max_rows=2048,
                    dts=4,
                )

    def test_deadline_fault_expires_active_deadline(self):
        func, *_ = make_matmul()
        deadline = Deadline(60.0, label="test")
        with inject(exhaust_deadline("classify")):
            with active_deadline(deadline):
                # The fault expires the budget; classify's own cooperative
                # checkpoint then fires, exactly like a too-slow search.
                with pytest.raises(DeadlineExceeded, match="'test'"):
                    classify_mod.classify(func)
                assert deadline.expired()

    def test_deadline_fault_without_deadline_raises_directly(self):
        func, *_ = make_matmul()
        with inject(exhaust_deadline("classify")):
            with pytest.raises(DeadlineExceeded, match="no deadline"):
                classify_mod.classify(func)


class TestInstallation:
    def test_restores_originals_on_exit(self):
        before = classify_mod.classify
        with inject(raise_on("classify")):
            assert classify_mod.classify is not before
        assert classify_mod.classify is before

    def test_restores_on_body_exception(self):
        before = costs_mod.total_cost
        with pytest.raises(RuntimeError):
            with inject(poison("cost")):
                raise RuntimeError("body error")
        assert costs_mod.total_cost is before

    def test_not_reentrant(self):
        injector = FaultInjector(raise_on("classify"))
        with injector:
            with pytest.raises(RuntimeError, match="not re-entrant"):
                injector.__enter__()

    def test_reusable_after_exit_with_fresh_counters(self):
        func, *_ = make_matmul()
        injector = FaultInjector(raise_on("classify", n=1, count=1))
        for _ in range(2):
            with injector:
                with pytest.raises(ClassificationError):
                    classify_mod.classify(func)
            assert injector.calls("classify") == 1

    def test_decorator_form(self):
        func, *_ = make_matmul()

        @inject(raise_on("classify"))
        def run():
            classify_mod.classify(func)

        with pytest.raises(ClassificationError):
            run()
        # And the patch does not leak out of the call.
        classify_mod.classify(make_matmul()[0])

    def test_needs_at_least_one_spec(self):
        with pytest.raises(ValueError, match="at least one"):
            FaultInjector()
