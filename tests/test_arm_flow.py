"""End-to-end tests on the ARM Cortex-A15 platform (paper Sec. 5.1 / Fig. 7).

The ARM platform exercises three model variations at once: no L3 (the
weighted cost degenerates to memory latency), a shared L2 (effective
associativity divided by cores, not threads), and no NT stores.
"""

import pytest

from repro.baselines import autoschedule, baseline_schedule
from repro.bench import make_benchmark
from repro.core import Locality, optimize
from repro.sim import Machine

from tests.helpers import make_copy, make_matmul, make_transpose_mask


class TestArmOptimization:
    def test_matmul_flow(self, arch_arm):
        c, _, _ = make_matmul(256)
        result = optimize(c, arch_arm)
        assert result.locality is Locality.TEMPORAL
        assert result.temporal.cost < float("inf")

    def test_no_nti_anywhere(self, arch_arm):
        for factory in (make_copy, make_transpose_mask):
            func = factory(256)[0]
            result = optimize(func, arch_arm)
            assert not result.uses_nti

    def test_parallel_constraint_uses_four_threads(self, arch_arm):
        c, _, _ = make_matmul(256)
        result = optimize(c, arch_arm)
        par = result.temporal.parallel_var
        from repro.util import ceil_div

        trips = ceil_div(256, result.temporal.tiles[par])
        assert trips >= arch_arm.total_threads == 4

    def test_proposed_beats_baseline_on_matmul(self, arch_arm):
        machine = Machine(arch_arm, line_budget=25_000)
        c1, _, _ = make_matmul(512)
        proposed = optimize(c1, arch_arm).schedule
        t_prop = machine.time_funcs([(c1, proposed)])
        c2, _, _ = make_matmul(512)
        t_base = machine.time_funcs([(c2, baseline_schedule(c2, arch_arm))])
        assert t_prop < t_base

    def test_arm_slower_than_intel(self, arch, arch_arm):
        intel = Machine(arch, line_budget=20_000)
        arm = Machine(arch_arm, line_budget=20_000)
        c1, _, _ = make_matmul(256)
        t_intel = intel.time_funcs([(c1, optimize(c1, arch).schedule)])
        c2, _, _ = make_matmul(256)
        t_arm = arm.time_funcs([(c2, optimize(c2, arch_arm).schedule)])
        assert t_arm > t_intel

    def test_autoscheduler_uses_l2_budget(self, arch_arm):
        c, _, _ = make_matmul(512)
        result = autoschedule(c, arch_arm)
        # Budget = shared L2 (512 KB) -> footprint fits it.
        assert result.footprint_elements <= 512 * 1024 // 4 * 1.01
