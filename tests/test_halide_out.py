"""Tests for the Halide schedule emitter (repro.ir.halide_out)."""

import pytest

from repro.core import optimize
from repro.ir import Schedule
from repro.ir.halide_out import emit_halide

from tests.helpers import make_copy, make_matmul, make_transpose_mask


class TestEmitHalide:
    def test_listing3_shape(self):
        # Reproduce the paper's Listing 3 structure.
        c, _, _ = make_matmul(2048)
        s = Schedule(c)
        s.split("j", "j_o", "j_i", 512)
        s.split("i", "i_o", "i_i", 32)
        s.reorder("j_i", "i_i", "j_o", "i_o")
        s.vectorize("j_i_partial" if False else "j_i")
        s.parallel("i_o")
        text = emit_halide(s)
        assert "C.update()" in text
        assert ".split(j, j_o, j_i, 512)" in text
        assert ".reorder(j_i, i_i, j_o, i_o)" in text
        assert ".vectorize(j_i)" in text
        assert text.rstrip().endswith(".parallel(i_o);")

    def test_var_declarations(self):
        c, _, _ = make_matmul(64)
        s = Schedule(c)
        s.split("i", "io", "ii", 8)
        text = emit_halide(s)
        assert text.startswith("Var io, ii;")

    def test_no_declarations_flag(self):
        c, _, _ = make_matmul(64)
        s = Schedule(c)
        s.split("i", "io", "ii", 8)
        assert "Var " not in emit_halide(s, declare_vars=False)

    def test_pure_definition_stage(self):
        c, _, _ = make_matmul(64)
        s = Schedule(c, definition_index=0)
        s.parallel("i")
        text = emit_halide(s)
        assert text.splitlines()[0].startswith("C")
        assert ".update" not in text

    def test_nontemporal_rendered(self, arch):
        f, _ = make_copy(256)
        result = optimize(f, arch)
        text = emit_halide(result.schedule)
        assert ".store_nontemporal()" in text

    def test_fuse_rendered(self):
        c, _, _ = make_matmul(16)
        s = Schedule(c)
        s.fuse("i", "j", "ij")
        assert ".fuse(i, j, ij)" in emit_halide(s)

    def test_default_schedule_comment(self):
        c, _, _ = make_matmul(16)
        s = Schedule(c)
        assert "default schedule" in emit_halide(s)

    def test_optimizer_output_emits(self, arch):
        for factory in (make_matmul, make_transpose_mask):
            func = factory(256)[0]
            result = optimize(func, arch)
            text = emit_halide(result.schedule)
            assert ".split(" in text
            assert ";" in text
