"""The chaos harness's deterministic core: plans, invariants, reports.

Everything here runs without booting a fleet — the point is that the
*decisions* (request mix, fault targets, invariant verdicts, report
bytes) are pure functions of ``(scenario, seed)`` plus the run's
outcomes, so they can be tested exhaustively and fast.  The end-to-end
scenario runs live in ``test_chaos_scenarios.py``.
"""

import json

import pytest

from repro.chaos import (
    CHAOS_REPORT_FORMAT,
    ChaosAction,
    ChaosScenario,
    SCENARIOS,
    build_plan,
    build_report,
    evaluate_invariants,
    get_scenario,
    scenario_names,
)
from repro.chaos.plan import ACTION_KILL, _resolve_shard
from repro.__main__ import main


def _scenario(**overrides):
    base = dict(
        name="test",
        description="a test scenario",
        workers=2,
        requests=4,
        distinct_identities=2,
        client_retries=2,
        use_cache=False,
    )
    base.update(overrides)
    return ChaosScenario(**base)


def _outcomes(plan, overrides=None):
    """All-ok outcomes matching a reference; overrides patch by index."""
    outcomes = [
        {
            "index": r.index,
            "identity": r.identity,
            "status": "ok",
            "schedules": f"<{r.identity}>",
            "served_by": "search",
        }
        for r in plan.requests
    ]
    for index, patch in (overrides or {}).items():
        outcomes[index].update(patch)
    return outcomes


def _reference(plan):
    return {r.identity: f"<{r.identity}>" for r in plan.identities}


def _counters(plan, **overrides):
    n = len(plan.requests)
    counters = {"requests_total": n, "responses_ok": n, "responses_error": 0}
    counters.update(overrides)
    return counters


class TestPlanDeterminism:
    def test_same_seed_same_plan(self):
        for name in scenario_names():
            a = build_plan(get_scenario(name), 7)
            b = build_plan(get_scenario(name), 7)
            assert a == b, name

    def test_distinct_seeds_vary_the_mix(self):
        a = build_plan(get_scenario("kill-during-roll"), 1)
        b = build_plan(get_scenario("kill-during-roll"), 2)
        assert [r.identity for r in a.requests] != [
            r.identity for r in b.requests
        ]

    def test_request_count_override(self):
        plan = build_plan(get_scenario("slow-shard"), 0, requests=3)
        assert len(plan.requests) == 3
        with pytest.raises(ValueError, match="requests"):
            build_plan(get_scenario("slow-shard"), 0, requests=0)

    def test_actions_resolve_to_concrete_shards(self):
        plan = build_plan(get_scenario("kill-mid-request"), 7)
        (kill,) = plan.actions
        assert isinstance(kill.shard, int)
        assert 0 <= kill.shard < plan.scenario.workers
        # The worker fault is armed on the SAME shard the kill targets —
        # both resolved from the home of identity 0.
        assert set(plan.worker_env) == {kill.shard}

    def test_home_spec_matches_the_ring(self):
        scenario = _scenario(
            actions=(ChaosAction(kind=ACTION_KILL, shard="home:0"),)
        )
        plan = build_plan(scenario, 3)
        from repro.fleet import HashRing
        from repro.serve.identify import identify_request
        from repro.serve.schema import build_request, parse_request

        first = plan.identities[0]
        request = parse_request(
            build_request(first.benchmark, first.platform, fast=True)
        )
        _case, _arch, key = identify_request(request)
        assert plan.actions[0].shard == HashRing([0, 1]).route(key)

    def test_unknown_scenario_is_loud(self):
        with pytest.raises(ValueError, match="unknown chaos scenario"):
            get_scenario("nope")

    def test_unknown_action_kind_is_loud(self):
        with pytest.raises(ValueError, match="unknown chaos action"):
            ChaosAction(kind="meteor-strike")

    def test_bad_shard_specs_are_loud(self):
        plan = build_plan(_scenario(), 0)
        with pytest.raises(ValueError, match="out of range"):
            _resolve_shard(9, plan.identities, 2, None)
        with pytest.raises(ValueError, match="unresolvable"):
            _resolve_shard(object(), plan.identities, 2, None)

    def test_catalog_covers_the_documented_faults(self):
        kinds = {
            action.kind
            for scenario in SCENARIOS.values()
            for action in scenario.actions
        }
        assert kinds == {
            "kill_worker",
            "suspend_worker",
            "rolling_restart",
            "corrupt_cache",
        }


class TestInvariants:
    def test_all_green_run(self):
        plan = build_plan(_scenario(), 0)
        invariants = evaluate_invariants(
            plan,
            _outcomes(plan),
            reference=_reference(plan),
            counters=_counters(plan),
        )
        assert all(inv.ok for inv in invariants)
        names = [inv.name for inv in invariants]
        assert names == [
            "no_lost_requests",
            "bit_identical_results",
            "retry_budget_bounded",
            "metrics_conserved",
            "shed_requests_well_formed",
        ]

    def _failed(self, plan, outcomes, counters):
        invariants = evaluate_invariants(
            plan, outcomes, reference=_reference(plan), counters=counters
        )
        return {inv.name for inv in invariants if not inv.ok}

    def test_missing_outcome_is_a_lost_request(self):
        plan = build_plan(_scenario(), 0)
        outcomes = _outcomes(plan)[:-1]
        failed = self._failed(plan, outcomes, _counters(plan))
        assert "no_lost_requests" in failed

    def test_divergent_result_fails_bit_identity(self):
        plan = build_plan(_scenario(), 0)
        outcomes = _outcomes(plan, {0: {"schedules": "<tampered>"}})
        failed = self._failed(plan, outcomes, _counters(plan))
        assert failed == {"bit_identical_results"}

    def test_retry_storm_is_flagged(self):
        plan = build_plan(_scenario(client_retries=1), 0)
        counters = _counters(plan, requests_total=100, responses_ok=100)
        failed = self._failed(plan, _outcomes(plan), counters)
        assert "retry_budget_bounded" in failed

    def test_unaccounted_response_breaks_conservation(self):
        plan = build_plan(_scenario(), 0)
        counters = _counters(plan, responses_ok=len(plan.requests) - 1)
        failed = self._failed(plan, _outcomes(plan), counters)
        assert "metrics_conserved" in failed

    def test_silent_shed_is_flagged(self):
        plan = build_plan(_scenario(require_all_ok=False), 0)
        outcomes = _outcomes(
            plan,
            {0: {"status": "shed", "retry_after_s": 0.0, "reason": ""}},
        )
        counters = _counters(
            plan,
            responses_ok=len(plan.requests) - 1,
            responses_error=1,
        )
        failed = self._failed(plan, outcomes, counters)
        assert "shed_requests_well_formed" in failed

    def test_failed_request_breaks_even_lenient_scenarios(self):
        plan = build_plan(_scenario(require_all_ok=False), 0)
        outcomes = _outcomes(plan, {0: {"status": "failed",
                                        "error": "boom"}})
        counters = _counters(
            plan, responses_ok=len(plan.requests) - 1, responses_error=1
        )
        failed = self._failed(plan, outcomes, counters)
        assert "no_lost_requests" in failed

    def test_cache_consistency_reads_the_status_document(self):
        plan = build_plan(_scenario(use_cache=True), 0)
        bad_status = {
            "cache": {"consistent": False, "mismatched_keys": ["k"]}
        }
        invariants = evaluate_invariants(
            plan,
            _outcomes(plan),
            reference=_reference(plan),
            counters=_counters(plan),
            status=bad_status,
        )
        by_name = {inv.name: inv for inv in invariants}
        assert not by_name["cache_consistent"].ok


class TestReport:
    def test_report_is_deterministic_bytes(self):
        plan = build_plan(_scenario(), 5)
        make = lambda: build_report(
            plan,
            evaluate_invariants(
                plan,
                _outcomes(plan),
                reference=_reference(plan),
                counters=_counters(plan),
            ),
        )
        assert json.dumps(make(), sort_keys=True) == json.dumps(
            make(), sort_keys=True
        )

    def test_report_shape(self):
        plan = build_plan(_scenario(), 5)
        report = build_report(
            plan,
            evaluate_invariants(
                plan,
                _outcomes(plan),
                reference=_reference(plan),
                counters=_counters(plan),
            ),
        )
        assert report["format"] == CHAOS_REPORT_FORMAT
        assert report["scenario"] == "test"
        assert report["seed"] == 5
        assert report["ok"] is True
        assert {"name", "ok", "detail"} == set(report["invariants"][0])


class TestChaosCli:
    def test_list_names_every_scenario(self, capsys):
        assert main(["chaos", "list"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out

    def test_run_requires_a_scenario(self, capsys):
        assert main(["chaos", "run"]) == 2
        assert "--scenario" in capsys.readouterr().err

    def test_unknown_scenario_is_a_usage_error(self, capsys):
        assert main(["chaos", "run", "--scenario", "nope"]) == 2
        assert "unknown chaos scenario" in capsys.readouterr().err
