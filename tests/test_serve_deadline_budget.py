"""End-to-end deadline budgets: charged once, propagated, refused dead.

The contract under test: a request's ``deadline_ms`` is charged once at
the admission point (the fleet router when there is one, the worker
otherwise) and only the *remainder* travels on each forward leg via the
``x-repro-deadline-ms`` header; work whose budget is exhausted is
refused with a 504 whose payload keeps its attribution
(``reason="deadline_expired"``, benchmark, platform) — never silently
searched anyway.  The fleet half includes the headline case: the budget
dies *between* the home shard failing and the successor answering, and
the successor must never run the search.
"""

import asyncio
import json
import time

import pytest

from repro.fleet.testing import FleetThread
from repro.serve import ServeClient, ServerThread
from repro.serve.http import DEADLINE_HEADER, forward
from repro.serve.schema import (
    REASON_DEADLINE_EXPIRED,
    build_request,
)

from tests.test_fleet_failover import home_shard_for


def _forward(port, body, *, headers=None):
    return asyncio.run(
        forward(
            "127.0.0.1",
            port,
            "POST",
            "/v1/optimize",
            json.dumps(body).encode("utf-8"),
            timeout_s=30.0,
            extra_headers=headers,
        )
    )


class TestWorkerBudget:
    def test_expired_body_budget_is_refused_with_attribution(self):
        with ServerThread() as srv:
            client = ServeClient(port=srv.port, retries=0)
            status, body = client.post(
                "/v1/optimize",
                build_request(
                    "matmul", "i7-5930k", fast=True, deadline_ms=0.001
                ),
            )
            assert status == 504
            assert body["reason"] == REASON_DEADLINE_EXPIRED
            assert body["benchmark"] == "matmul"
            assert body["platform"] == "i7-5930k"
            counters = client.metrics()["counters"]
            assert counters["deadline_expired"] >= 1

    def test_header_budget_overrides_the_body(self):
        # The body says "plenty of time" but the router-forwarded header
        # says the end-to-end budget is gone: the header wins.
        with ServerThread() as srv:
            status, _headers, body = _forward(
                srv.port,
                build_request(
                    "matmul", "i7-5930k", fast=True, deadline_ms=60000.0
                ),
                headers={DEADLINE_HEADER: "0.0"},
            )
            assert status == 504
            assert body["reason"] == REASON_DEADLINE_EXPIRED
            assert body["benchmark"] == "matmul"
            # The refusal happened before any search was admitted.
            counters = ServeClient(port=srv.port).metrics()["counters"]
            assert counters["responses_ok"] == 0

    def test_malformed_header_is_a_400_not_a_crash(self):
        with ServerThread() as srv:
            status, _headers, body = _forward(
                srv.port,
                build_request("matmul", "i7-5930k", fast=True),
                headers={DEADLINE_HEADER: "soon"},
            )
            assert status == 400
            assert DEADLINE_HEADER in body["error"]

    def test_generous_budget_still_succeeds(self):
        with ServerThread() as srv:
            result = ServeClient(port=srv.port).optimize(
                "matmul", "i7-5930k", fast=True, deadline_ms=120000.0
            )
            assert result["schedules"]


@pytest.mark.slow
class TestFleetBudget:
    def test_router_charges_once_and_forwards_the_remainder(self, tmp_path):
        with FleetThread(
            workers=2, cache_path=str(tmp_path / "cache.jsonl")
        ) as fleet:
            result = ServeClient(port=fleet.port).optimize(
                "matmul", "i7-5930k", fast=True, deadline_ms=120000.0
            )
            assert result["schedules"]
            counters = ServeClient(port=fleet.port).metrics()["counters"]
            assert counters["deadline_expired"] == 0

    def test_expiry_during_failover_is_a_504_never_a_duplicate_search(
        self, tmp_path
    ):
        """The headline case: the budget dies between the home shard
        failing and the successor answering.

        The home worker is SIGSTOPped (alive but silent), so the
        router's forward leg hangs until the probe gate reclaims the
        hung process (~2 probe intervals) and the RST surfaces as a
        ConnectionError — by which point the 250 ms budget is long
        gone.  The router must answer 504 ``deadline_expired`` with
        attribution and must NOT forward to the successor.
        """
        home, successor = home_shard_for(
            "matmul", "i7-5930k", [0, 1], fast=True
        )
        with FleetThread(
            workers=2,
            cache_path=str(tmp_path / "cache.jsonl"),
            probe_interval_s=0.3,
            probe_timeout_s=1.0,
            down_after=2,
            restart_backoff_base_s=0.05,
        ) as fleet:
            client = ServeClient(port=fleet.port, retries=0, timeout_s=60.0)
            # Warm nothing; suspend the home shard first so the very
            # first leg hangs.
            fleet.supervisor.suspend_worker(home)
            status, body = client.post(
                "/v1/optimize",
                build_request(
                    "matmul", "i7-5930k", fast=True, deadline_ms=250.0
                ),
            )
            assert status == 504
            assert body["reason"] == REASON_DEADLINE_EXPIRED
            assert body["benchmark"] == "matmul"
            assert body["platform"] == "i7-5930k"
            assert body["shard"] == home

            counters = client.metrics()["counters"]
            assert counters["deadline_expired"] == 1
            # Never a duplicate search: the successor was not asked.
            assert counters["failover"] == 0
            successor_client = ServeClient(
                port=fleet.supervisor.port_of(successor)
            )
            successor_counters = successor_client.metrics()["counters"]
            assert successor_counters["requests_total"] == 0
            # Conservation: the 504 is accounted exactly once.
            assert counters["requests_total"] == (
                counters["responses_ok"] + counters["responses_error"]
            )

    def test_breaker_opens_on_repeated_dead_legs(self, tmp_path):
        """Connection failures feed the per-shard breaker; once open,
        the router routes around the shard without waiting for a probe
        cycle (and the breaker state shows in /metrics workers)."""
        home, successor = home_shard_for(
            "matmul", "i7-5930k", [0, 1], fast=True
        )
        with FleetThread(
            workers=2,
            cache_path=str(tmp_path / "cache.jsonl"),
            probe_interval_s=30.0,  # the probe gate never fires: data path only
            router_kwargs={
                "breaker_failure_threshold": 1,
                "breaker_open_for_s": 60.0,
            },
        ) as fleet:
            # Kill the home worker; mark it back "up" so the router's
            # health gate admits the leg and the breaker alone must
            # learn the truth from the dead connection.
            fleet.supervisor.kill_worker(home)
            with fleet.supervisor._lock:
                fleet.supervisor._worker(home).state = "up"
            client = ServeClient(port=fleet.port, retries=0, timeout_s=60.0)
            result = client.optimize("matmul", "i7-5930k", fast=True)
            assert result["served_by"] == "failover"
            snapshot = client.metrics()
            assert snapshot["counters"]["breaker_opened"] == 1
            states = {
                w["shard"]: w["breaker"] for w in snapshot["workers"]
            }
            assert states[home] == "open"
            assert states[successor] == "closed"
            # Next request skips the dead shard outright: no new
            # forward_retries beyond the first request's.
            retries_before = snapshot["counters"]["forward_retries"]
            result = client.optimize("gemm", "i7-5930k", fast=True)
            assert result["schedules"]
            after = client.metrics()["counters"]["forward_retries"]
            assert after == retries_before
