"""Property tests for the prefetch engines (:mod:`repro.cachesim.prefetch`).

Covers the satellite contract of the multi-striding PR: training and
eviction are deterministic, ``NextLinePrefetcher(degree=0)`` is a legal
disabled engine, the bounded stride table evicts in LRU order, and the
multi-stream detector saturates (and thrashes) exactly at its engine
count.
"""

from __future__ import annotations

import pytest

from repro.cachesim.prefetch import (
    MultiStreamPrefetcher,
    NextLinePrefetcher,
    StreamModelParams,
    StridePrefetcher,
)


class TestNextLinePrefetcher:
    def test_degree_zero_is_a_legal_disabled_engine(self):
        engine = NextLinePrefetcher(degree=0)
        assert engine.requests(0) == []
        assert engine.requests(12345) == []

    def test_degree_n_requests_the_next_n_lines(self):
        assert NextLinePrefetcher(degree=1).requests(7) == [8]
        assert NextLinePrefetcher(degree=3).requests(7) == [8, 9, 10]

    def test_negative_degree_rejected(self):
        with pytest.raises(ValueError, match="degree"):
            NextLinePrefetcher(degree=-1)


def _drive(engine, accesses):
    """Feed (ref_id, line) pairs; collect every issued prefetch."""
    out = []
    for ref_id, line in accesses:
        out.append(list(engine.observe(ref_id, line)))
    return out


class TestStridePrefetcher:
    def test_training_is_deterministic(self):
        accesses = [(1, n) for n in range(8)] + [(2, 100 - 3 * n) for n in range(6)]
        a = _drive(StridePrefetcher(), accesses)
        b = _drive(StridePrefetcher(), accesses)
        assert a == b
        sa, sb = StridePrefetcher(), StridePrefetcher()
        _drive(sa, accesses), _drive(sb, accesses)
        assert sa.stats.snapshot() == sb.stats.snapshot()

    def test_trains_after_threshold_and_issues_along_stride(self):
        engine = StridePrefetcher(degree=2)
        assert engine.observe(1, 0) == []          # first touch
        assert engine.observe(1, 1) == []          # stride learned, conf 1
        assert engine.observe(1, 2) == [3, 4]      # conf 2 == threshold
        assert engine.stream_state(1) == (1, 2)

    def test_zero_stride_repeats_neither_train_nor_reset(self):
        engine = StridePrefetcher()
        engine.observe(1, 5)
        engine.observe(1, 6)
        before = engine.stream_state(1)
        assert engine.observe(1, 6) == []          # same line again
        assert engine.stream_state(1) == before

    def test_bounded_table_evicts_lru(self):
        engine = StridePrefetcher(max_streams=2)
        engine.observe(1, 0)
        engine.observe(2, 0)
        assert engine.stats.occupancy == 2
        engine.observe(3, 0)                       # evicts ref 1 (coldest)
        assert engine.stats.evictions == 1
        assert engine.stats.occupancy == 2
        assert engine.stats.peak_occupancy == 2
        # Ref 1 lost its training state and must start over.
        assert engine.stream_state(1) == (0, 0)

    def test_touch_refreshes_lru_order(self):
        engine = StridePrefetcher(max_streams=2)
        engine.observe(1, 0)
        engine.observe(2, 0)
        engine.observe(1, 1)                       # ref 1 now the hottest
        engine.observe(3, 0)                       # must evict ref 2
        engine.observe(1, 2)
        # Ref 1 survived the eviction with its training intact.
        assert engine.stream_state(1) == (1, 2)
        assert engine.stream_state(2) == (0, 0)

    def test_reset_keeps_statistics(self):
        engine = StridePrefetcher()
        _drive(engine, [(1, n) for n in range(4)])
        issued = engine.stats.prefetches_issued
        assert issued > 0
        engine.reset()
        assert engine.stats.occupancy == 0
        assert engine.stats.prefetches_issued == issued


def _params(**kw):
    defaults = dict(n_engines=2, train_threshold=2, degree=2,
                    max_distance=20, page_lines=64, latency_accesses=10)
    defaults.update(kw)
    return StreamModelParams(**defaults)


class TestMultiStreamPrefetcher:
    def test_training_is_deterministic(self):
        # Two interleaved stride-1 streams in different pages.
        accesses = [(0, n) if t % 2 == 0 else (1, 256 + n)
                    for t, n in ((t, t // 2) for t in range(40))]
        a = MultiStreamPrefetcher(_params())
        b = MultiStreamPrefetcher(_params())
        ra = [a.observe(r, l) for r, l in accesses]
        rb = [b.observe(r, l) for r, l in accesses]
        assert ra == rb
        assert a.stats.snapshot() == b.stats.snapshot()

    def test_trained_engine_issues_with_arrival_clock(self):
        engine = MultiStreamPrefetcher(_params())
        assert engine.observe(0, 0) == ([], 1)     # allocate
        assert engine.observe(0, 1) == ([], 2)     # stride learned
        targets, arrival = engine.observe(0, 2)    # trained
        assert targets == [3, 4]
        assert arrival == 3 + engine.params.latency_accesses
        assert engine.stats.trained == 1

    def test_engines_never_cross_their_page(self):
        engine = MultiStreamPrefetcher(_params(page_lines=8, max_distance=20))
        issued = []
        for line in range(8):
            targets, _ = engine.observe(0, line)
            issued += targets
        assert issued                               # it did prefetch
        assert all(t < 8 for t in issued)           # but never past the page

    def test_saturation_thrashes_round_robin_streams(self):
        # Three pages through a two-engine pool, round-robin: every access
        # re-allocates an engine, so nothing ever trains — the loss mode
        # multistride's ``fits_engines`` check exists to avoid.
        engine = MultiStreamPrefetcher(_params(n_engines=2))
        accesses = 0
        for step in range(10):
            for page in range(3):
                targets, _ = engine.observe(page, page * 64 + step)
                accesses += 1
                assert targets == []
        assert engine.stats.trained == 0
        assert engine.stats.prefetches_issued == 0
        assert engine.stats.evictions == accesses - 2
        assert engine.stats.occupancy == 2
        assert engine.stats.peak_occupancy == 2

    def test_within_capacity_all_streams_train(self):
        engine = MultiStreamPrefetcher(_params(n_engines=2))
        for step in range(6):
            engine.observe(0, step)
            engine.observe(1, 256 + step)
        assert engine.stats.trained == 2
        assert engine.stats.evictions == 0
        assert engine.stats.prefetches_issued > 0

    def test_reset_clears_engines_and_clock_keeps_stats(self):
        engine = MultiStreamPrefetcher(_params())
        for step in range(4):
            engine.observe(0, step)
        allocs = engine.stats.allocations
        engine.reset()
        assert engine.occupancy == 0
        assert engine.stats.allocations == allocs
        assert engine.observe(0, 99) == ([], 1)    # clock restarted

    def test_param_validation(self):
        with pytest.raises(ValueError, match="n_engines"):
            StreamModelParams(n_engines=0)
        with pytest.raises(ValueError, match="max_distance"):
            StreamModelParams(max_distance=0)
        with pytest.raises(ValueError, match="latency_accesses"):
            StreamModelParams(latency_accesses=-1)
