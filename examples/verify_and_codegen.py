#!/usr/bin/env python3
"""From schedule to verified C code.

The full developer loop on one kernel (gemm):

1. optimize with the paper's flow,
2. **verify the schedule numerically** — the interpreter executes the
   scheduled nest on random inputs and compares against numpy,
3. emit the schedule as a compilable C translation unit (OpenMP pragmas,
   streaming-store macro), and — when a C compiler is on PATH — build it
   and check the compiled kernel agrees too.

Run:  python examples/verify_and_codegen.py
"""

import ctypes
import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np

from repro import Buffer, Func, RVar, Var, optimize
from repro.arch import intel_i7_5930k
from repro.ir import lower
from repro.ir.codegen_c import codegen, signature_buffers
from repro.sim import execute


def make_gemm(n, alpha=1.5, beta=1.2):
    i, j = Var("i"), Var("j")
    k = RVar("k", n)
    a = Buffer("A", (n, n))
    b = Buffer("B", (n, n))
    c_in = Buffer("Cin", (n, n))
    c = Func("C")
    c[i, j] = beta * c_in[i, j]
    c[i, j] = c[i, j] + alpha * a[i, k] * b[k, j]
    c.set_bounds({i: n, j: n})
    return c, a, b, c_in


def main() -> None:
    n = 128
    arch = intel_i7_5930k()
    func, a, b, c_in = make_gemm(n)
    result = optimize(func, arch)
    print(result.describe())

    rng = np.random.default_rng(7)
    a_v = rng.standard_normal((n, n)).astype(np.float32)
    b_v = rng.standard_normal((n, n)).astype(np.float32)
    c_v = rng.standard_normal((n, n)).astype(np.float32)
    inputs = {a: a_v, b: b_v, c_in: c_v}

    print("\n[1/3] interpreting the scheduled nest ...")
    out = execute(func, result.schedule, inputs)
    expected = 1.5 * (a_v.astype(np.float64) @ b_v) + 1.2 * c_v
    err = np.max(np.abs(out - expected))
    print(f"      max |scheduled - numpy| = {err:.2e}")
    assert err < 1e-2

    print("[2/3] emitting C ...")
    src = codegen(lower(func, result.schedule), function_name="gemm")
    print(f"      {len(src.splitlines())} lines of C")

    if shutil.which("cc") is None:
        print("[3/3] no C compiler found; skipping the compile check")
        return

    print("[3/3] compiling and running the C kernel ...")
    with tempfile.TemporaryDirectory() as tmp:
        c_path = Path(tmp) / "gemm.c"
        so_path = Path(tmp) / "gemm.so"
        c_path.write_text(src)
        subprocess.run(
            ["cc", "-O2", "-shared", "-fPIC", "-o", str(so_path), str(c_path)],
            check=True,
        )
        lib = ctypes.CDLL(str(so_path))
        compiled = np.zeros((n, n), dtype=np.float32)
        fptr = ctypes.POINTER(ctypes.c_float)
        arrays = {"A": a_v, "B": b_v, "Cin": c_v}
        nests = lower(func, result.schedule)
        param_inputs, _ = signature_buffers(nests)
        args = [arrays[buf.name].ctypes.data_as(fptr) for buf in param_inputs]
        args.append(compiled.ctypes.data_as(fptr))
        lib.gemm(*args)
        c_err = np.max(np.abs(compiled - expected))
        print(f"      max |compiled - numpy| = {c_err:.2e}")
        assert c_err < 1e-2
    print("all three agree.")


if __name__ == "__main__":
    main()
