#!/usr/bin/env python3
"""Head-to-head: the five techniques of the paper's Fig. 4 on one kernel.

Runs the proposed optimizer, the Auto-Scheduler-style heuristic, the plain
baseline and the stochastic autotuner (with a small measurement budget) on
a benchmark chosen on the command line, and prints simulated times plus
throughput relative to the fastest — one row of the paper's Fig. 4.

Run:  python examples/compare_techniques.py [benchmark] [platform]
      python examples/compare_techniques.py gemm i7-6700
"""

import sys

from repro.arch import platform_by_name
from repro.baselines import Autotuner, autoschedule, baseline_schedule
from repro.bench import benchmark_names, make_benchmark, size_for
from repro.core import optimize
from repro.sim import Machine


def main() -> None:
    bench = sys.argv[1] if len(sys.argv) > 1 else "matmul"
    platform = sys.argv[2] if len(sys.argv) > 2 else "i7-5930k"
    if bench not in benchmark_names():
        raise SystemExit(f"unknown benchmark {bench!r}; try {benchmark_names()}")

    arch = platform_by_name(platform)
    machine = Machine(arch, line_budget=60_000)

    def fresh():
        return make_benchmark(bench, **size_for(bench))

    times = {}

    case = fresh()
    schedules = {f: optimize(f, arch, allow_nti=False).schedule for f in case.funcs}
    times["proposed"] = machine.time_pipeline(case.pipeline, schedules)

    case = fresh()
    schedules = {f: optimize(f, arch, allow_nti=True).schedule for f in case.funcs}
    times["proposed+NTI"] = machine.time_pipeline(case.pipeline, schedules)

    case = fresh()
    schedules = {f: autoschedule(f, arch).schedule for f in case.funcs}
    times["auto-scheduler"] = machine.time_pipeline(case.pipeline, schedules)

    case = fresh()
    schedules = {f: baseline_schedule(f, arch) for f in case.funcs}
    times["baseline"] = machine.time_pipeline(case.pipeline, schedules)

    case = fresh()
    tuner = Autotuner(machine, evaluations=10, seed=1)
    schedules = {f: tuner.tune(f).schedule for f in case.funcs}
    times["autotuner(10 evals)"] = machine.time_pipeline(case.pipeline, schedules)

    fastest = min(times.values())
    print(f"\n{bench} ({case.problem_size}) on {arch.name}:")
    for name, ms in sorted(times.items(), key=lambda kv: kv[1]):
        bar = "#" * int(40 * fastest / ms)
        print(f"  {name:20s} {ms:9.2f} ms  rel {fastest / ms:4.2f}  {bar}")


if __name__ == "__main__":
    main()
