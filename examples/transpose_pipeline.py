#!/usr/bin/env python3
"""Spatial locality and non-temporal stores on a transposition kernel.

The image-processing motivation of the paper: a transpose-and-mask stage
(`out[y][x] = A[x][y] & B[y][x]`) has *no* temporal reuse — only the
cache-line (self-spatial) reuse of the transposed array's strided walk.
The classifier routes it to the spatial optimizer, which picks a tile one
cache line wide and as tall as Algorithm 1 allows, and — because the
output is never re-read — turns on non-temporal stores.

The example prints the classification, the chosen tile, and the simulated
effect of each ingredient (tiling, then +NTI) against the untiled loop.

Run:  python examples/transpose_pipeline.py
"""

from repro import Buffer, Func, Machine, Var, int32, optimize
from repro.arch import intel_i7_5930k
from repro.baselines import baseline_schedule
from repro.core import classify


def make_kernel(n: int) -> Func:
    a = Buffer("A", (n, n), int32)
    b = Buffer("B", (n, n), int32)
    x, y = Var("x"), Var("y")
    out = Func("TransposeMask", int32)
    out[y, x] = a[x, y] & b[y, x]
    out.set_bounds({x: n, y: n})
    return out


def main() -> None:
    n = 2048
    arch = intel_i7_5930k()
    machine = Machine(arch, line_budget=60_000)

    kernel = make_kernel(n)
    decision = classify(kernel)
    print("classifier says:", decision)
    print()

    k1 = make_kernel(n)
    baseline_ms = machine.time_funcs([(k1, baseline_schedule(k1, arch))])

    k2 = make_kernel(n)
    tiled = optimize(k2, arch, allow_nti=False)
    assert tiled.spatial is not None
    print("spatial optimizer chose:", tiled.spatial.describe())
    tiled_ms = machine.time_funcs([(k2, tiled.schedule)])

    k3 = make_kernel(n)
    nti = optimize(k3, arch, allow_nti=True)
    nti_ms = machine.time_funcs([(k3, nti.schedule)])

    print()
    print(f"baseline (no tiling):      {baseline_ms:7.3f} ms")
    print(f"spatial tiling:            {tiled_ms:7.3f} ms "
          f"({baseline_ms / tiled_ms:.2f}x)")
    print(f"spatial tiling + NTI:      {nti_ms:7.3f} ms "
          f"({baseline_ms / nti_ms:.2f}x)")


if __name__ == "__main__":
    main()
