#!/usr/bin/env python3
"""Quickstart: optimize a matrix multiplication with the paper's flow.

Defines 512x512 matmul in the Halide-like DSL, runs the prefetcher-aware
optimizer (classification -> temporal tiling -> ordering -> standard
optimizations), prints the resulting schedule as pseudo-C, and measures it
against the naive baseline on the simulated Intel i7-5930K.

Run:  python examples/quickstart.py
"""

from repro import Buffer, Func, Machine, RVar, Var, optimize, print_nest
from repro.arch import intel_i7_5930k
from repro.baselines import baseline_schedule
from repro.ir.lower import lower


def main() -> None:
    n = 512
    i, j = Var("i"), Var("j")
    k = RVar("k", n)
    a = Buffer("A", (n, n))
    b = Buffer("B", (n, n))
    c = Func("C")
    c[i, j] = 0.0
    c[i, j] = c[i, j] + a[i, k] * b[k, j]
    c.set_bounds({i: n, j: n})

    arch = intel_i7_5930k()
    print(arch.describe())
    print()

    result = optimize(c, arch)
    print(result.describe())
    print()
    print("Lowered loop nest of the scheduled update:")
    print(print_nest(lower(c, result.schedule)[1]))
    print()

    machine = Machine(arch, line_budget=80_000)
    optimized_ms = machine.time_funcs([(c, result.schedule)])
    baseline_ms = machine.time_funcs([(c, baseline_schedule(c, arch))])
    print(f"simulated time, optimized: {optimized_ms:8.3f} ms")
    print(f"simulated time, baseline:  {baseline_ms:8.3f} ms")
    print(f"speedup: {baseline_ms / optimized_ms:.2f}x")


if __name__ == "__main__":
    main()
