#!/usr/bin/env python3
"""Inside Algorithm 1: how the cache emulation bounds tile sizes.

Shows, for the i7-5930K's L1 and L2, how many tile rows of a given width
survive before interference (conflict) misses appear — and how the answer
collapses for power-of-two row strides that alias cache sets (the very
effect that makes naive tile-size formulas fail, and the reason the paper
runs an emulation instead).

Also cross-checks the emulator's verdict against the *actual* cache
simulator: rows are streamed twice through a standalone L1 model, and the
second pass's hit rate shows whether the rows really survived.

Run:  python examples/cache_emulation.py
"""

from repro.arch import intel_i7_5930k
from repro.cachesim import SetAssocCache
from repro.core.emu import emu_l1, emu_l2


def survive_in_l1(arch, rows: int, width_elems: int, stride_elems: int) -> float:
    """Second-pass hit rate when streaming `rows` rows through an L1 model."""
    lc = arch.lc(4)
    cache = SetAssocCache("L1", arch.l1.num_sets, arch.effective_ways(1))
    lines = []
    for r in range(rows):
        start = (r * stride_elems) // lc
        for off in range((width_elems + lc - 1) // lc + 1):  # +1: prefetch
            lines.append(start + off)
    for line in lines:           # pass 1: fill
        if not cache.lookup(line):
            cache.fill(line)
    hits = 0
    for line in lines:           # pass 2: measure reuse
        if cache.lookup(line):
            hits += 1
        else:
            cache.fill(line)
    return hits / len(lines)


def main() -> None:
    arch = intel_i7_5930k()
    dts = 4
    print(arch.describe())
    print()
    print("maxTi = rows of a tile that fit without conflict misses")
    print(f"{'row stride':>12} {'width':>6} {'emu L1':>7} {'emu L2':>7} "
          f"{'2nd-pass L1 hit rate @ maxTi':>30}")
    for stride in (2048, 2064, 1024, 1040, 512, 520):
        for width in (64, 512):
            m1 = emu_l1(arch, row_width_elems=width, row_stride_elems=stride,
                        max_rows=256, dts=dts)
            m2 = emu_l2(arch, row_width_elems=width, row_stride_elems=stride,
                        max_rows=256, dts=dts)
            rate = survive_in_l1(arch, m1, width, stride)
            print(f"{stride:>12} {width:>6} {m1:>7} {m2:>7} {rate:>29.0%}")
    print()
    print("Note the collapse at power-of-two strides (2048, 1024, 512): rows")
    print("alias onto few sets, so only ~associativity rows survive. Padding")
    print("the stride by one cache line (2064, 1040, 520) restores capacity —")
    print("exactly the interference the emulation exists to detect.")


if __name__ == "__main__":
    main()
