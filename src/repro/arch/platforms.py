"""The three experimental platforms of the paper's Table 3.

======================  =============  =============  ===============
parameter               Intel i7-5930K Intel i7-6700  ARM Cortex A15
======================  =============  =============  ===============
cache line              64 B           64 B           64 B
L1 ways / size          8 / 32 KB      8 / 32 KB      2 / 32 KB
L2 ways / size          8 / 256 KB     8 / 256 KB     16 / 512 KB
cores                   6              4              4
threads per core        2              2              1
======================  =============  =============  ===============

The L3 sizes are not in Table 3; we use the parts' data sheets (15 MB for the
5930K, 8 MB for the 6700).  The A15 has no L3 and its L2 is shared by all
four cores, which is why the paper changes the effective-associativity
divisor to ``Ncores`` for that platform (Sec. 5.1).
"""

from __future__ import annotations

from typing import Dict

from repro.arch.params import ArchSpec, CacheSpec


def intel_i7_5930k() -> ArchSpec:
    """Intel i7-5930K (Haswell-E): 6 cores x 2 threads, AVX2, 15 MB L3."""
    return ArchSpec(
        name="Intel i7-5930K",
        l1=CacheSpec(size=32 * 1024, line_size=64, ways=8, latency=4),
        l2=CacheSpec(size=256 * 1024, line_size=64, ways=8, latency=12),
        l3=CacheSpec(
            size=15 * 1024 * 1024, line_size=64, ways=20, latency=40,
            shared_by_cores=6,
        ),
        n_cores=6,
        threads_per_core=2,
        vector_width_bytes=32,
        l2_prefetches_per_access=2,
        l2_max_prefetch_distance=20,
        mem_latency=230,
        freq_ghz=3.5,
        bw_bytes_per_cycle=16.0,  # quad-channel DDR4 ~56 GB/s
    )


def intel_i7_6700() -> ArchSpec:
    """Intel i7-6700 (Skylake): 4 cores x 2 threads, AVX2, 8 MB L3."""
    return ArchSpec(
        name="Intel i7-6700",
        l1=CacheSpec(size=32 * 1024, line_size=64, ways=8, latency=4),
        l2=CacheSpec(size=256 * 1024, line_size=64, ways=8, latency=12),
        l3=CacheSpec(
            size=8 * 1024 * 1024, line_size=64, ways=16, latency=42,
            shared_by_cores=4,
        ),
        n_cores=4,
        threads_per_core=2,
        vector_width_bytes=32,
        l2_prefetches_per_access=2,
        l2_max_prefetch_distance=20,
        mem_latency=220,
        freq_ghz=3.4,
        bw_bytes_per_cycle=10.0,  # dual-channel DDR4 ~34 GB/s
    )


def arm_cortex_a15() -> ArchSpec:
    """ARM Cortex-A15: 4 cores x 1 thread, NEON, shared 512 KB L2, no L3.

    The A15 lacks vector non-temporal stores, so ``supports_nt_stores`` is
    false — matching the paper's note that copy/mask are excluded from the
    Fig. 7 comparison.
    """
    return ArchSpec(
        name="ARM Cortex A15",
        l1=CacheSpec(size=32 * 1024, line_size=64, ways=2, latency=4),
        l2=CacheSpec(
            size=512 * 1024, line_size=64, ways=16, latency=21,
            shared_by_cores=4,
        ),
        l3=None,
        n_cores=4,
        threads_per_core=1,
        vector_width_bytes=16,
        l2_prefetches_per_access=1,
        l2_max_prefetch_distance=8,
        l2_shared_across_cores=True,
        supports_nt_stores=False,
        mem_latency=260,
        freq_ghz=1.9,
        bw_bytes_per_cycle=3.0,  # LPDDR3 ~6 GB/s
    )


#: Name -> factory for every platform in the paper, keyed as the experiment
#: scripts refer to them.
PLATFORMS = {
    "i7-5930k": intel_i7_5930k,
    "i7-6700": intel_i7_6700,
    "arm-a15": arm_cortex_a15,
}


def platform_by_name(name: str) -> ArchSpec:
    """Look up a platform by its short key (see :data:`PLATFORMS`)."""
    key = name.lower()
    if key not in PLATFORMS:
        raise KeyError(
            f"unknown platform {name!r}; known: {sorted(PLATFORMS)}"
        )
    return PLATFORMS[key]()
