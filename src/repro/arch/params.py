"""Architecture parameter dataclasses (paper Table 1 / Table 3).

Two levels of description are kept separate on purpose:

* :class:`CacheSpec` — geometry of a single cache level, in bytes.
* :class:`ArchSpec` — a whole platform: the cache hierarchy, the core/thread
  organisation, vector width and the latency/prefetcher model parameters that
  both the analytical model (Sec. 3) and the trace-driven simulator
  (:mod:`repro.sim`) consume.

All sizes are bytes; latencies are cycles.  The analytical model frequently
needs *elements* rather than bytes, so the specs expose helpers that take the
data-type size (``dts``) as an argument instead of baking one in.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace
from typing import Optional, Tuple

from repro.util import ceil_div
from repro.util.errors import ValidationError


@dataclass(frozen=True)
class CacheSpec:
    """Geometry and timing of one cache level.

    Attributes
    ----------
    size:
        Capacity in bytes.
    line_size:
        Cache line size in bytes.
    ways:
        Associativity (number of ways per set).
    latency:
        Load-to-use latency in cycles; used both as the simulator hit cost
        and as the ``a_i`` weight of the paper's Eq. 11.
    shared_by_cores:
        Number of cores sharing this level (1 = private).
    """

    size: int
    line_size: int
    ways: int
    latency: int
    shared_by_cores: int = 1

    def __post_init__(self) -> None:
        if self.size <= 0 or self.line_size <= 0 or self.ways <= 0:
            raise ValidationError(
                "cache size, line size and ways must be positive"
            )
        if self.line_size & (self.line_size - 1):
            raise ValidationError(
                f"cache line size must be a power of two, got {self.line_size}"
            )
        if not 8 <= self.line_size <= 4096:
            raise ValidationError(
                f"cache line size {self.line_size}B is outside the plausible "
                f"8B..4096B range"
            )
        if self.size % (self.line_size * self.ways) != 0:
            raise ValidationError(
                f"cache size {self.size} is not a whole number of "
                f"{self.ways}-way sets of {self.line_size}B lines"
            )
        if self.latency <= 0:
            raise ValidationError(
                f"cache latency must be positive cycles, got {self.latency}"
            )
        if self.shared_by_cores <= 0:
            raise ValidationError(
                f"shared_by_cores must be positive, got {self.shared_by_cores}"
            )

    @property
    def num_lines(self) -> int:
        """Total number of cache lines in this level."""
        return self.size // self.line_size

    @property
    def num_sets(self) -> int:
        """Number of sets (``size / (ways * line_size)``)."""
        return self.size // (self.ways * self.line_size)

    def lines_per_way(self) -> int:
        """Alias of :attr:`num_sets`; lines that fit in one way."""
        return self.num_sets

    def elements_per_line(self, dts: int) -> int:
        """Number of ``dts``-byte elements in one cache line (paper's ``lc``)."""
        if dts <= 0:
            raise ValidationError(
                f"data type size must be positive, got {dts}"
            )
        return max(1, self.line_size // dts)

    def capacity_elements(self, dts: int) -> int:
        """How many ``dts``-byte elements fit in this level."""
        return self.size // dts


@dataclass(frozen=True)
class ArchSpec:
    """A complete platform description.

    The three platforms of the paper's Table 3 are built in
    :mod:`repro.arch.platforms`.

    Attributes
    ----------
    name:
        Human-readable platform name.
    l1, l2:
        Private cache levels (L2 may be shared on ARM; see
        ``l2_shared_across_cores``).
    l3:
        Optional shared last-level cache (the ARM A15 has none).
    n_cores:
        Physical cores (paper's ``NCores``).
    threads_per_core:
        Hardware threads per core (paper's ``Nthreads``).
    vector_width_bytes:
        Native SIMD width in bytes (32 for AVX2, 16 for NEON).
    l2_prefetches_per_access:
        Paper's ``L2pref``: lines the L2 streaming prefetcher requests per
        triggering access.
    l2_max_prefetch_distance:
        Paper's ``L2maxpref``: maximum distance (in lines) between the
        demand reference and a prefetched line (~20 on Intel).
    l2_shared_across_cores:
        When true (ARM A15), the effective associativity divisor in the
        model becomes ``n_cores`` instead of ``threads_per_core``
        (Sec. 5.1, Fig. 7 discussion).
    supports_nt_stores:
        Whether the ISA has vector non-temporal stores (false on the A15,
        which is why copy/mask are absent from Fig. 7).
    mem_latency:
        Main-memory access latency in cycles.
    freq_ghz:
        Clock frequency used to convert cycles to milliseconds.
    bw_bytes_per_cycle:
        Chip-wide sustainable DRAM bandwidth in bytes per core-clock
        cycle (the roofline floor shared by all cores).
    """

    name: str
    l1: CacheSpec
    l2: CacheSpec
    l3: Optional[CacheSpec]
    n_cores: int
    threads_per_core: int
    vector_width_bytes: int
    l2_prefetches_per_access: int = 2
    l2_max_prefetch_distance: int = 20
    l2_shared_across_cores: bool = False
    supports_nt_stores: bool = True
    mem_latency: int = 200
    freq_ghz: float = 3.0
    bw_bytes_per_cycle: float = 12.0

    def __post_init__(self) -> None:
        if self.n_cores <= 0 or self.threads_per_core <= 0:
            raise ValidationError("core and thread counts must be positive")
        if self.vector_width_bytes <= 0:
            raise ValidationError("vector width must be positive")
        if self.l1.size > self.l2.size:
            raise ValidationError(
                f"{self.name}: L1 ({self.l1.size}B) larger than L2 "
                f"({self.l2.size}B) is not a plausible hierarchy"
            )
        if self.l3 is not None and self.l3.size < self.l2.size:
            raise ValidationError(
                f"{self.name}: L3 ({self.l3.size}B) smaller than L2 "
                f"({self.l2.size}B) is not a plausible hierarchy"
            )
        if self.l1.line_size != self.l2.line_size:
            raise ValidationError(
                f"{self.name}: the model assumes one line size across "
                f"levels, got L1={self.l1.line_size}B L2={self.l2.line_size}B"
            )
        if self.mem_latency <= 0:
            raise ValidationError(
                f"memory latency must be positive cycles, got {self.mem_latency}"
            )
        if self.freq_ghz <= 0 or self.bw_bytes_per_cycle <= 0:
            raise ValidationError(
                "clock frequency and DRAM bandwidth must be positive"
            )
        if self.l2_prefetches_per_access < 0 or self.l2_max_prefetch_distance < 0:
            raise ValidationError(
                "prefetcher degree and distance must be non-negative"
            )

    # ----- derived quantities used by the analytical model -----

    @property
    def total_threads(self) -> int:
        """Total hardware threads (Eq. 13's ``Nthreads/core * Ncores``)."""
        return self.n_cores * self.threads_per_core

    def vector_lanes(self, dts: int) -> int:
        """SIMD lanes for ``dts``-byte elements."""
        return max(1, self.vector_width_bytes // dts)

    def lc(self, dts: int) -> int:
        """Elements per L1 cache line (paper's ``lc``)."""
        return self.l1.elements_per_line(dts)

    def cache_level(self, level: int) -> CacheSpec:
        """Return the :class:`CacheSpec` for level 1, 2 or 3."""
        if level == 1:
            return self.l1
        if level == 2:
            return self.l2
        if level == 3:
            if self.l3 is None:
                raise ValueError(f"{self.name} has no L3 cache")
            return self.l3
        raise ValueError(f"unknown cache level {level}")

    @property
    def levels(self) -> Tuple[CacheSpec, ...]:
        """All present cache levels, innermost first."""
        if self.l3 is None:
            return (self.l1, self.l2)
        return (self.l1, self.l2, self.l3)

    def effective_ways(self, level: int) -> int:
        """Effective associativity once sharing is accounted for.

        The paper divides ``Liway`` by the number of threads per core
        (SMT co-residency), except for a shared L2 (ARM) where the divisor
        becomes the number of cores.
        """
        spec = self.cache_level(level)
        if level == 2 and self.l2_shared_across_cores:
            divisor = self.n_cores
        else:
            divisor = self.threads_per_core
        return max(1, spec.ways // divisor)

    def access_cost(self, level: int) -> int:
        """The paper's ``a_i`` weight: access latency of level ``level``.

        ``level`` may be 1..3 or 4 for main memory.  When a platform has no
        L3 (ARM A15), level 3 falls through to main memory, which is what
        the weighted cost function degenerates to there.
        """
        if level == 4:
            return self.mem_latency
        if level == 3 and self.l3 is None:
            return self.mem_latency
        return self.cache_level(level).latency

    def with_overrides(self, **kwargs) -> "ArchSpec":
        """Return a copy with some fields replaced (for ablations/tests)."""
        return replace(self, **kwargs)

    def fingerprint(self) -> str:
        """Stable content hash of every model-relevant parameter.

        Two specs with equal fields — regardless of how they were built —
        share a fingerprint; any field change (cache geometry, prefetcher
        degree, thread counts...) produces a new one.  Used as the
        architecture half of content-addressed caches: the ``emu``
        memoization key and the persistent schedule cache
        (:mod:`repro.cache`).
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            canonical = json.dumps(asdict(self), sort_keys=True)
            cached = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
            # Frozen dataclasses only block attribute *assignment*; the
            # memo slot is invisible to ==/hash/asdict.
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    def describe(self) -> str:
        """Multi-line human-readable summary (used by experiments)."""
        lines = [f"{self.name}:"]
        for i, spec in enumerate(self.levels, start=1):
            share = (
                f", shared by {spec.shared_by_cores} cores"
                if spec.shared_by_cores > 1
                else ""
            )
            lines.append(
                f"  L{i}: {spec.size // 1024}KB, {spec.ways}-way, "
                f"{spec.line_size}B lines, {spec.latency} cyc{share}"
            )
        lines.append(
            f"  cores={self.n_cores} x {self.threads_per_core} threads, "
            f"SIMD={self.vector_width_bytes}B, mem={self.mem_latency} cyc, "
            f"{self.freq_ghz} GHz"
        )
        return "\n".join(lines)
