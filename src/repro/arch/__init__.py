"""Architecture descriptions: cache geometry, prefetchers, core counts.

The dataclasses in :mod:`repro.arch.params` capture exactly the parameters
Table 1 of the paper lists (cache line size, associativity, size per level,
core/thread counts, vector width) plus the prefetcher knobs Algorithm 1 needs
(``L2pref`` prefetches per access and the maximum prefetch distance
``L2maxpref``).  :mod:`repro.arch.platforms` instantiates the three platforms
of Table 3.
"""

from repro.arch.params import CacheSpec, ArchSpec
from repro.arch.platforms import (
    intel_i7_6700,
    intel_i7_5930k,
    arm_cortex_a15,
    PLATFORMS,
    platform_by_name,
)

__all__ = [
    "CacheSpec",
    "ArchSpec",
    "intel_i7_6700",
    "intel_i7_5930k",
    "arm_cortex_a15",
    "PLATFORMS",
    "platform_by_name",
]
