"""The stable, versioned entry point: one request in, one result out.

The repository grew five public optimization surfaces with divergent
keyword sets — :func:`repro.core.optimize`,
:func:`repro.core.optimize_temporal`, :func:`repro.core.optimize_spatial`,
:func:`repro.robust.safe_optimize` and
:func:`repro.core.optimize_pipeline`.  They remain available (and are
now thin delegates over the same machinery this module drives), but the
**documented, stability-guaranteed** surface is::

    from repro import OptimizeRequest, api

    result = api.optimize(OptimizeRequest(func=C, arch=arch))
    result.schedule            # the chosen Schedule
    result.stats.considered    # canonical candidate accounting

:class:`OptimizeRequest` is a frozen dataclass naming every knob the
five legacy surfaces accepted — NT stores, ablations, parallel search
``jobs``, deadlines, fallback policy, the persistent schedule cache, a
tracer — with one ``mode`` selector:

* ``"auto"`` (default) — the paper's full flow (classify → Algorithm
  2/3 → schedule), via :func:`repro.core.optimize`;
* ``"temporal"`` / ``"spatial"`` — run exactly Algorithm 2 / Algorithm
  3 (search results only; no Schedule is materialized);
* ``"safe"`` — the graceful-degradation chain
  (:func:`repro.robust.safe_optimize`), with the fallback policy taken
  from ``policy`` or synthesized from the request's own switches.

:class:`OptimizeResult` is likewise frozen: which fields are populated
depends on the mode (``schedule`` for single-Func modes, ``schedules``
for pipelines, ``rung``/``fell_back``/``diagnostics`` for safe mode,
``temporal``/``spatial`` search details whenever a search ran).

Versioning: this surface follows the package ``__version__`` under
semantic-versioning rules — fields are only added (with defaults), never
renamed or removed, within a major version; see docs/API.md's "Stable
API" section for the deprecation schedule of the legacy keywords.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from types import MappingProxyType
from typing import Mapping, Optional, Union

from repro.arch import ArchSpec
from repro.core.classify import Classification
from repro.core.optimizer import (
    OptimizationResult,
    optimize as _core_optimize,
    optimize_pipeline as _core_optimize_pipeline,
)
from repro.core.spatial import SpatialResult, optimize_spatial
from repro.core.temporal import TemporalResult, optimize_temporal
from repro.ir.func import Func, Pipeline
from repro.ir.schedule import Schedule
from repro.obs.stats import CandidateStats
from repro.robust.diagnostics import Diagnostics
from repro.robust.policy import FallbackPolicy
from repro.robust.safe import SafeResult, safe_optimize, safe_optimize_pipeline
from repro.util import Deadline

__all__ = [
    "MODE_AUTO",
    "MODE_SAFE",
    "MODE_SPATIAL",
    "MODE_TEMPORAL",
    "OptimizeRequest",
    "OptimizeResult",
    "optimize",
]

MODE_AUTO = "auto"
MODE_TEMPORAL = "temporal"
MODE_SPATIAL = "spatial"
MODE_SAFE = "safe"

_MODES = (MODE_AUTO, MODE_TEMPORAL, MODE_SPATIAL, MODE_SAFE)


@dataclass(frozen=True)
class OptimizeRequest:
    """Everything one optimization run needs, in one value object.

    Exactly one of ``func`` / ``pipeline`` must be set.  ``pipeline``
    targets support the ``auto`` and ``safe`` modes (stages are
    optimized independently, as ``compute_root``).

    Attributes
    ----------
    func / pipeline:
        The optimization target.
    arch:
        Target platform parameters (paper Table 1).
    mode:
        ``auto`` | ``temporal`` | ``spatial`` | ``safe`` (see module
        docstring).
    use_nti / parallelize / vectorize / exhaustive / use_emu / order_step:
        The uniform switch set of the legacy surfaces.
    jobs:
        Worker processes for the Algorithm-2/3 candidate searches
        (0 or ``"auto"`` = resolve from ``os.cpu_count()``, degrading
        to the serial path on single-core hosts; 1 = serial);
        bit-identical results either way.
    deadline_ms:
        Cooperative time budget for the whole run (``None`` =
        unbounded).  In safe mode this becomes the policy's
        ``total_deadline_ms`` unless an explicit ``policy`` is given.
    policy:
        Safe-mode fallback policy.  When ``None``, one is synthesized
        from this request's switches.
    cache_path:
        Path of a persistent :class:`repro.cache.ScheduleCache`; when
        set, ``auto`` and ``safe`` runs consult it before searching and
        store what they find.
    tracer:
        Optional :class:`repro.obs.Tracer` installed for the run.
    """

    arch: ArchSpec
    func: Optional[Func] = None
    pipeline: Optional[Pipeline] = None
    mode: str = MODE_AUTO
    use_nti: bool = True
    parallelize: bool = True
    vectorize: bool = True
    exhaustive: bool = False
    use_emu: bool = True
    order_step: bool = True
    jobs: Union[int, str] = 1
    deadline_ms: Optional[float] = None
    policy: Optional[FallbackPolicy] = None
    cache_path: Optional[str] = None
    tracer: object = None

    def __post_init__(self) -> None:
        if (self.func is None) == (self.pipeline is None):
            raise ValueError(
                "an OptimizeRequest needs exactly one of func= / pipeline="
            )
        if self.mode not in _MODES:
            raise ValueError(
                f"unknown mode {self.mode!r}; known: {list(_MODES)}"
            )
        if self.pipeline is not None and self.mode in (
            MODE_TEMPORAL,
            MODE_SPATIAL,
        ):
            raise ValueError(
                f"mode {self.mode!r} targets a single Func; pipelines "
                f"support the 'auto' and 'safe' modes"
            )
        # Delegate jobs validation (and the "auto" spelling) to the
        # parallel-search layer so every surface rejects the same inputs.
        from repro.core.parallel import resolve_jobs

        resolve_jobs(self.jobs)
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError(
                f"deadline_ms must be positive, got {self.deadline_ms}"
            )
        if self.policy is not None and self.mode != MODE_SAFE:
            raise ValueError("policy= is only meaningful with mode='safe'")

    def with_overrides(self, **kwargs) -> "OptimizeRequest":
        """Copy with some fields replaced (runs validation again)."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class OptimizeResult:
    """What one :func:`optimize` call produced.

    Populated fields depend on the request's mode: every mode that
    materializes a schedule sets ``schedule`` (or ``schedules`` for a
    pipeline target); search modes and the full flow carry the
    ``temporal``/``spatial`` search details and their canonical
    ``stats``; safe mode adds ``rung``/``fell_back``/``diagnostics``.
    """

    request: OptimizeRequest
    mode: str
    schedule: Optional[Schedule] = None
    schedules: Optional[Mapping[Func, Schedule]] = None
    classification: Optional[Classification] = None
    temporal: Optional[TemporalResult] = None
    spatial: Optional[SpatialResult] = None
    rung: Optional[str] = None
    fell_back: bool = False
    diagnostics: Optional[Diagnostics] = None
    elapsed_seconds: float = 0.0

    @property
    def stats(self) -> Optional[CandidateStats]:
        """The canonical candidate accounting of whichever search ran."""
        search = self.temporal or self.spatial
        return search.stats if search is not None else None

    @property
    def cost(self) -> Optional[float]:
        """The winning candidate's modeled cost (Eq. 11 / Eq. 15 sum)."""
        search = self.temporal or self.spatial
        return search.cost if search is not None else None

    def describe(self) -> str:
        parts = [f"mode={self.mode}"]
        if self.rung is not None:
            parts.append(f"rung={self.rung}")
        if self.schedule is not None:
            parts.append(self.schedule.describe())
        if self.schedules is not None:
            parts.append(f"{len(self.schedules)} stage schedules")
        search = self.temporal or self.spatial
        if search is not None:
            parts.append(search.describe())
        return "; ".join(parts)


def _deadline(request: OptimizeRequest) -> Optional[Deadline]:
    if request.deadline_ms is None:
        return None
    return Deadline(request.deadline_ms / 1000.0, label="repro.api.optimize")


def _schedule_cache(request: OptimizeRequest):
    if request.cache_path is None:
        return None
    from repro.cache import ScheduleCache

    return ScheduleCache(request.cache_path)


def _safe_policy(request: OptimizeRequest) -> FallbackPolicy:
    if request.policy is not None:
        return request.policy
    return FallbackPolicy(
        total_deadline_ms=request.deadline_ms,
        allow_nti=request.use_nti,
        parallelize=request.parallelize,
        vectorize=request.vectorize,
        exhaustive=request.exhaustive,
        use_emu=request.use_emu,
        order_step=request.order_step,
        jobs=request.jobs,
    )


def _from_core(
    request: OptimizeRequest, result: OptimizationResult
) -> OptimizeResult:
    return OptimizeResult(
        request=request,
        mode=request.mode,
        schedule=result.schedule,
        classification=result.classification,
        temporal=result.temporal,
        spatial=result.spatial,
        elapsed_seconds=result.runtime_seconds,
    )


def _from_safe(request: OptimizeRequest, safe: SafeResult) -> OptimizeResult:
    inner = safe.result
    return OptimizeResult(
        request=request,
        mode=request.mode,
        schedule=safe.schedule,
        classification=inner.classification if inner else None,
        temporal=inner.temporal if inner else None,
        spatial=inner.spatial if inner else None,
        rung=safe.rung,
        fell_back=safe.fell_back,
        diagnostics=safe.diagnostics,
        elapsed_seconds=safe.elapsed_ms / 1000.0,
    )


def optimize(request: OptimizeRequest) -> OptimizeResult:
    """Run the requested optimization; the one stable entry point.

    Dispatches on ``request.mode`` (and ``func`` vs ``pipeline``); see
    :class:`OptimizeRequest` for the knobs and :class:`OptimizeResult`
    for what comes back.
    """
    if request.mode == MODE_SAFE:
        policy = _safe_policy(request)
        cache = _schedule_cache(request)
        if request.pipeline is not None:
            # Per-stage safe optimization; cache consulted per stage.
            schedules = {}
            fell_back = False
            diagnostics = Diagnostics()
            elapsed = 0.0
            for stage in request.pipeline:
                safe = safe_optimize(stage, request.arch, policy, cache=cache)
                schedules[stage] = safe.schedule
                fell_back = fell_back or safe.fell_back
                for record in safe.diagnostics:
                    diagnostics.add(record)
                elapsed += safe.elapsed_ms
            return OptimizeResult(
                request=request,
                mode=request.mode,
                schedules=MappingProxyType(schedules),
                fell_back=fell_back,
                diagnostics=diagnostics,
                elapsed_seconds=elapsed / 1000.0,
            )
        safe = safe_optimize(request.func, request.arch, policy, cache=cache)
        return _from_safe(request, safe)

    if request.mode == MODE_TEMPORAL:
        result = optimize_temporal(
            request.func,
            request.arch,
            exhaustive=request.exhaustive,
            use_emu=request.use_emu,
            order_step=request.order_step,
            tracer=request.tracer,
            jobs=request.jobs,
        )
        return OptimizeResult(
            request=request, mode=request.mode, temporal=result
        )

    if request.mode == MODE_SPATIAL:
        result = optimize_spatial(
            request.func,
            request.arch,
            exhaustive=request.exhaustive,
            use_emu=request.use_emu,
            order_step=request.order_step,
            tracer=request.tracer,
            jobs=request.jobs,
        )
        return OptimizeResult(
            request=request, mode=request.mode, spatial=result
        )

    # MODE_AUTO
    if request.pipeline is not None:
        schedules = _core_optimize_pipeline(
            request.pipeline,
            request.arch,
            use_nti=request.use_nti,
            parallelize=request.parallelize,
            vectorize=request.vectorize,
            exhaustive=request.exhaustive,
            use_emu=request.use_emu,
            order_step=request.order_step,
            jobs=request.jobs,
            deadline=_deadline(request),
            tracer=request.tracer,
        )
        return OptimizeResult(
            request=request,
            mode=request.mode,
            schedules=MappingProxyType(schedules),
        )

    cache = _schedule_cache(request)
    if cache is not None:
        from repro.cache import optimize_options

        options = optimize_options(
            use_nti=request.use_nti,
            parallelize=request.parallelize,
            vectorize=request.vectorize,
            exhaustive=request.exhaustive,
            use_emu=request.use_emu,
            order_step=request.order_step,
        )
        hit = cache.get(request.func, request.arch, options)
        if hit is not None:
            return OptimizeResult(
                request=request, mode=request.mode, schedule=hit
            )
    result = _core_optimize(
        request.func,
        request.arch,
        use_nti=request.use_nti,
        parallelize=request.parallelize,
        vectorize=request.vectorize,
        exhaustive=request.exhaustive,
        use_emu=request.use_emu,
        order_step=request.order_step,
        jobs=request.jobs,
        deadline=_deadline(request),
        tracer=request.tracer,
    )
    if cache is not None:
        cache.put(
            request.func,
            request.arch,
            options,
            result.schedule,
            meta={"mode": request.mode, "func": request.func.name},
        )
    return _from_core(request, result)
