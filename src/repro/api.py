"""The stable, versioned entry point: one request in, one result out.

The repository grew five public optimization surfaces with divergent
keyword sets — :func:`repro.core.optimize`,
:func:`repro.core.optimize_temporal`, :func:`repro.core.optimize_spatial`,
:func:`repro.robust.safe_optimize` and
:func:`repro.core.optimize_pipeline`.  They remain available (and are
now thin delegates over the same machinery this module drives), but the
**documented, stability-guaranteed** surface is::

    from repro import OptimizeRequest, api

    result = api.optimize(OptimizeRequest(func=C, arch=arch))
    result.schedule            # the chosen Schedule
    result.stats.considered    # canonical candidate accounting

:class:`OptimizeRequest` is a frozen dataclass naming every knob the
five legacy surfaces accepted — NT stores, ablations, parallel search
``jobs``, deadlines, fallback policy, the persistent schedule cache, a
tracer — with one ``mode`` selector:

* ``"auto"`` (default) — the paper's full flow (classify → Algorithm
  2/3 → schedule), via :func:`repro.core.optimize`;
* ``"temporal"`` / ``"spatial"`` — run exactly Algorithm 2 / Algorithm
  3 (search results only; no Schedule is materialized);
* ``"safe"`` — the graceful-degradation chain
  (:func:`repro.robust.safe_optimize`), with the fallback policy taken
  from ``policy`` or synthesized from the request's own switches.

:class:`OptimizeResult` is likewise frozen: which fields are populated
depends on the mode (``schedule`` for single-Func modes, ``schedules``
for pipelines, ``rung``/``fell_back``/``diagnostics`` for safe mode,
``temporal``/``spatial`` search details whenever a search ran).

Versioning: this surface follows the package ``__version__`` under
semantic-versioning rules — fields are only added (with defaults), never
renamed or removed, within a major version; see docs/API.md's "Stable
API" section for the deprecation schedule of the legacy keywords.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping, Optional, Union

from repro.arch import ArchSpec
from repro.core.classify import Classification
from repro.core.optimizer import (
    OptimizationResult,
    optimize as _core_optimize,
    optimize_pipeline as _core_optimize_pipeline,
)
from repro.core.spatial import SpatialResult, optimize_spatial
from repro.core.temporal import TemporalResult, optimize_temporal
from repro.ir.func import Func, Pipeline
from repro.ir.schedule import Schedule
from repro.obs.stats import CandidateStats
from repro.options import OptimizeOptions
from repro.robust.diagnostics import Diagnostics
from repro.robust.policy import FallbackPolicy
from repro.robust.safe import SafeResult, safe_optimize, safe_optimize_pipeline
from repro.util import Deadline

__all__ = [
    "MODE_AUTO",
    "MODE_SAFE",
    "MODE_SPATIAL",
    "MODE_TEMPORAL",
    "OptimizeOptions",
    "OptimizeRequest",
    "OptimizeResult",
    "optimize",
]

MODE_AUTO = "auto"
MODE_TEMPORAL = "temporal"
MODE_SPATIAL = "spatial"
MODE_SAFE = "safe"

_MODES = (MODE_AUTO, MODE_TEMPORAL, MODE_SPATIAL, MODE_SAFE)


class _Unset:
    """Sentinel distinguishing "not passed" from any real value."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<unset>"


_UNSET = _Unset()

#: Legacy per-keyword option spellings, now folded into ``options=``.
_LEGACY_OPTION_FIELDS = (
    "use_nti",
    "parallelize",
    "vectorize",
    "exhaustive",
    "use_emu",
    "order_step",
    "jobs",
    "tracer",
)

#: The canonical constructor surface (everything that is *not* a legacy
#: option keyword); ``with_overrides`` rebuilds requests from these.
_CANONICAL_FIELDS = (
    "arch",
    "func",
    "pipeline",
    "spec",
    "dims",
    "dtypes",
    "params",
    "mode",
    "options",
    "deadline_ms",
    "policy",
    "cache_path",
)


@dataclass(frozen=True)
class OptimizeRequest:
    """Everything one optimization run needs, in one value object.

    Exactly one of ``func`` / ``pipeline`` / ``spec`` must be set.
    ``pipeline`` targets support the ``auto`` and ``safe`` modes (stages
    are optimized independently, as ``compute_root``).  A ``spec``
    target is a kernel-spec string (see :mod:`repro.frontend` and
    docs/API.md § *Kernel spec language*) lowered at construction time:
    after ``__init__`` the request's ``func`` (single-stage spec) or
    ``pipeline`` (multi-stage) is populated with the lowered target, so
    everything downstream sees a plain IR request.

    Attributes
    ----------
    func / pipeline / spec:
        The optimization target.  ``spec`` needs ``dims`` (loop extents,
        e.g. ``{"i": 512, "j": 512, "k": 512}``) and accepts optional
        ``dtypes`` / ``params`` mappings.
    arch:
        Target platform parameters (paper Table 1).
    mode:
        ``auto`` | ``temporal`` | ``spatial`` | ``safe`` (see module
        docstring).
    options:
        The consolidated :class:`repro.options.OptimizeOptions` — the
        six schedule-changing switches plus ``jobs`` and ``tracer``.
        The per-keyword spellings (``use_nti=...``, ``jobs=...``, ...)
        keep working but raise :class:`DeprecationWarning`; after
        construction the resolved values are readable as plain
        attributes (``request.use_nti`` etc.) either way.
    deadline_ms:
        Cooperative time budget for the whole run (``None`` =
        unbounded).  In safe mode this becomes the policy's
        ``total_deadline_ms`` unless an explicit ``policy`` is given.
    policy:
        Safe-mode fallback policy.  When ``None``, one is synthesized
        from this request's switches.
    cache_path:
        Path of a persistent :class:`repro.cache.ScheduleCache`; when
        set, ``auto`` and ``safe`` runs consult it before searching and
        store what they find.
    """

    arch: ArchSpec
    func: Optional[Func] = None
    pipeline: Optional[Pipeline] = None
    spec: Optional[str] = None
    dims: Optional[Mapping[str, int]] = None
    dtypes: Optional[Mapping[str, str]] = None
    params: Optional[Mapping[str, Union[int, float]]] = None
    mode: str = MODE_AUTO
    options: Optional[OptimizeOptions] = None
    use_nti: object = _UNSET
    parallelize: object = _UNSET
    vectorize: object = _UNSET
    exhaustive: object = _UNSET
    use_emu: object = _UNSET
    order_step: object = _UNSET
    jobs: object = _UNSET
    deadline_ms: Optional[float] = None
    policy: Optional[FallbackPolicy] = None
    cache_path: Optional[str] = None
    tracer: object = _UNSET

    def __post_init__(self) -> None:
        self._resolve_options()
        self._resolve_target()
        if self.mode not in _MODES:
            raise ValueError(
                f"unknown mode {self.mode!r}; known: {list(_MODES)}"
            )
        if self.pipeline is not None and self.mode in (
            MODE_TEMPORAL,
            MODE_SPATIAL,
        ):
            raise ValueError(
                f"mode {self.mode!r} targets a single Func; pipelines "
                f"support the 'auto' and 'safe' modes"
            )
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError(
                f"deadline_ms must be positive, got {self.deadline_ms}"
            )
        if self.policy is not None and self.mode != MODE_SAFE:
            raise ValueError("policy= is only meaningful with mode='safe'")

    def _resolve_options(self) -> None:
        """Merge legacy per-keyword options into ``options`` and mirror
        the resolved values back onto the legacy attribute names, so
        both spellings *read* identically after construction."""
        legacy = {
            name: getattr(self, name)
            for name in _LEGACY_OPTION_FIELDS
            if getattr(self, name) is not _UNSET
        }
        if legacy:
            warnings.warn(
                f"passing {sorted(legacy)} to OptimizeRequest is "
                f"deprecated; use options=OptimizeOptions(...) "
                f"(see docs/API.md, 'Migration notes')",
                DeprecationWarning,
                stacklevel=3,
            )
            if self.options is not None:
                raise ValueError(
                    f"pass options= or the legacy keyword(s) "
                    f"{sorted(legacy)}, not both"
                )
        # OptimizeOptions.__post_init__ validates jobs for every path.
        resolved = (self.options or OptimizeOptions()).replace(**legacy)
        object.__setattr__(self, "options", resolved)
        for name in _LEGACY_OPTION_FIELDS:
            object.__setattr__(self, name, getattr(resolved, name))

    def _resolve_target(self) -> None:
        """Enforce exactly-one target and lower a spec into IR."""
        targets = [
            kind
            for kind, value in (
                ("func", self.func),
                ("pipeline", self.pipeline),
                ("spec", self.spec),
            )
            if value is not None
        ]
        if len(targets) != 1:
            raise ValueError(
                "an OptimizeRequest needs exactly one of func= / "
                "pipeline= / spec=" + (f"; got {targets}" if targets else "")
            )
        if self.spec is None:
            for name in ("dims", "dtypes", "params"):
                if getattr(self, name) is not None:
                    raise ValueError(
                        f"{name}= is only meaningful together with spec="
                    )
            return
        from repro.frontend import lower_spec
        from repro.util import ValidationError

        if self.dims is None:
            raise ValidationError(
                "spec= needs dims= (loop extents, e.g. "
                "{'i': 512, 'j': 512, 'k': 512})"
            )
        lowered = lower_spec(
            self.spec, self.dims, dtypes=self.dtypes, params=self.params
        )
        funcs = lowered.funcs
        if len(funcs) == 1:
            object.__setattr__(self, "func", funcs[0])
        else:
            object.__setattr__(self, "pipeline", lowered.pipeline)

    def with_overrides(self, **kwargs) -> "OptimizeRequest":
        """Copy with some fields replaced (runs validation again).

        Accepts the same keywords as the constructor; legacy option
        keywords warn exactly like the constructor does.  Passing a new
        target (``func`` / ``pipeline`` / ``spec``) replaces the old
        one, whichever spelling built it.
        """
        base = {name: getattr(self, name) for name in _CANONICAL_FIELDS}
        if self.spec is not None:
            # The lowered twin of a spec target is derived state; keep
            # only the spec so re-validation lowers it afresh.
            base["func"] = None
            base["pipeline"] = None
        if any(k in kwargs for k in ("func", "pipeline", "spec")):
            for key in ("func", "pipeline", "spec", "dims",
                        "dtypes", "params"):
                base[key] = None
        unknown = sorted(
            set(kwargs) - set(_CANONICAL_FIELDS) - set(_LEGACY_OPTION_FIELDS)
        )
        if unknown:
            raise TypeError(
                f"unknown OptimizeRequest field(s) {unknown}"
            )
        legacy = {
            name: kwargs.pop(name)
            for name in _LEGACY_OPTION_FIELDS
            if name in kwargs
        }
        if legacy:
            # Same shim as the constructor: warn once, fold into the
            # canonical options field (which `base` already carries, so
            # passing both through would trip the both-spellings guard).
            warnings.warn(
                f"passing {sorted(legacy)} to with_overrides is "
                f"deprecated; use options=OptimizeOptions(...) "
                f"(see docs/API.md, 'Migration notes')",
                DeprecationWarning,
                stacklevel=2,
            )
            if "options" in kwargs:
                raise ValueError(
                    f"pass options= or the legacy keyword(s) "
                    f"{sorted(legacy)}, not both"
                )
            base["options"] = (
                base["options"] or OptimizeOptions()
            ).replace(**legacy)
        base.update(kwargs)
        return OptimizeRequest(**base)


@dataclass(frozen=True)
class OptimizeResult:
    """What one :func:`optimize` call produced.

    Populated fields depend on the request's mode: every mode that
    materializes a schedule sets ``schedule`` (or ``schedules`` for a
    pipeline target); search modes and the full flow carry the
    ``temporal``/``spatial`` search details and their canonical
    ``stats``; safe mode adds ``rung``/``fell_back``/``diagnostics``.
    """

    request: OptimizeRequest
    mode: str
    schedule: Optional[Schedule] = None
    schedules: Optional[Mapping[Func, Schedule]] = None
    classification: Optional[Classification] = None
    temporal: Optional[TemporalResult] = None
    spatial: Optional[SpatialResult] = None
    rung: Optional[str] = None
    fell_back: bool = False
    diagnostics: Optional[Diagnostics] = None
    elapsed_seconds: float = 0.0
    #: The multi-striding classifier's verdict
    #: (:class:`repro.multistride.MultistrideDecision`); populated only
    #: when the request enabled the ``multistride`` option in ``auto``
    #: mode (safe mode's fallback ladder never multistrides).
    multistride: Optional[object] = None

    @property
    def stats(self) -> Optional[CandidateStats]:
        """The canonical candidate accounting of whichever search ran."""
        search = self.temporal or self.spatial
        return search.stats if search is not None else None

    @property
    def cost(self) -> Optional[float]:
        """The winning candidate's modeled cost (Eq. 11 / Eq. 15 sum)."""
        search = self.temporal or self.spatial
        return search.cost if search is not None else None

    def describe(self) -> str:
        parts = [f"mode={self.mode}"]
        if self.rung is not None:
            parts.append(f"rung={self.rung}")
        if self.schedule is not None:
            parts.append(self.schedule.describe())
        if self.schedules is not None:
            parts.append(f"{len(self.schedules)} stage schedules")
        search = self.temporal or self.spatial
        if search is not None:
            parts.append(search.describe())
        return "; ".join(parts)


def _deadline(request: OptimizeRequest) -> Optional[Deadline]:
    if request.deadline_ms is None:
        return None
    return Deadline(request.deadline_ms / 1000.0, label="repro.api.optimize")


def _schedule_cache(request: OptimizeRequest):
    if request.cache_path is None:
        return None
    from repro.cache import ScheduleCache

    return ScheduleCache(request.cache_path)


def _safe_policy(request: OptimizeRequest) -> FallbackPolicy:
    if request.policy is not None:
        return request.policy
    return FallbackPolicy(
        total_deadline_ms=request.deadline_ms,
        allow_nti=request.use_nti,
        parallelize=request.parallelize,
        vectorize=request.vectorize,
        exhaustive=request.exhaustive,
        use_emu=request.use_emu,
        order_step=request.order_step,
        jobs=request.jobs,
    )


def _from_core(
    request: OptimizeRequest, result: OptimizationResult
) -> OptimizeResult:
    return OptimizeResult(
        request=request,
        mode=request.mode,
        schedule=result.schedule,
        classification=result.classification,
        temporal=result.temporal,
        spatial=result.spatial,
        elapsed_seconds=result.runtime_seconds,
        multistride=result.multistride,
    )


def _from_safe(request: OptimizeRequest, safe: SafeResult) -> OptimizeResult:
    inner = safe.result
    return OptimizeResult(
        request=request,
        mode=request.mode,
        schedule=safe.schedule,
        classification=inner.classification if inner else None,
        temporal=inner.temporal if inner else None,
        spatial=inner.spatial if inner else None,
        rung=safe.rung,
        fell_back=safe.fell_back,
        diagnostics=safe.diagnostics,
        elapsed_seconds=safe.elapsed_ms / 1000.0,
    )


def optimize(request: OptimizeRequest) -> OptimizeResult:
    """Run the requested optimization; the one stable entry point.

    Dispatches on ``request.mode`` (and ``func`` vs ``pipeline``); see
    :class:`OptimizeRequest` for the knobs and :class:`OptimizeResult`
    for what comes back.
    """
    if request.mode == MODE_SAFE:
        policy = _safe_policy(request)
        cache = _schedule_cache(request)
        if request.pipeline is not None:
            # Per-stage safe optimization; cache consulted per stage.
            schedules = {}
            fell_back = False
            diagnostics = Diagnostics()
            elapsed = 0.0
            for stage in request.pipeline:
                safe = safe_optimize(stage, request.arch, policy, cache=cache)
                schedules[stage] = safe.schedule
                fell_back = fell_back or safe.fell_back
                for record in safe.diagnostics:
                    diagnostics.add(record)
                elapsed += safe.elapsed_ms
            return OptimizeResult(
                request=request,
                mode=request.mode,
                schedules=MappingProxyType(schedules),
                fell_back=fell_back,
                diagnostics=diagnostics,
                elapsed_seconds=elapsed / 1000.0,
            )
        safe = safe_optimize(request.func, request.arch, policy, cache=cache)
        return _from_safe(request, safe)

    if request.mode == MODE_TEMPORAL:
        result = optimize_temporal(
            request.func,
            request.arch,
            exhaustive=request.exhaustive,
            use_emu=request.use_emu,
            order_step=request.order_step,
            tracer=request.tracer,
            jobs=request.jobs,
        )
        return OptimizeResult(
            request=request, mode=request.mode, temporal=result
        )

    if request.mode == MODE_SPATIAL:
        result = optimize_spatial(
            request.func,
            request.arch,
            exhaustive=request.exhaustive,
            use_emu=request.use_emu,
            order_step=request.order_step,
            tracer=request.tracer,
            jobs=request.jobs,
        )
        return OptimizeResult(
            request=request, mode=request.mode, spatial=result
        )

    # MODE_AUTO
    if request.pipeline is not None:
        schedules = _core_optimize_pipeline(
            request.pipeline,
            request.arch,
            use_nti=request.use_nti,
            parallelize=request.parallelize,
            vectorize=request.vectorize,
            exhaustive=request.exhaustive,
            use_emu=request.use_emu,
            order_step=request.order_step,
            multistride=request.options.multistride,
            jobs=request.jobs,
            deadline=_deadline(request),
            tracer=request.tracer,
        )
        return OptimizeResult(
            request=request,
            mode=request.mode,
            schedules=MappingProxyType(schedules),
        )

    cache = _schedule_cache(request)
    if cache is not None:
        # OptimizeOptions is the single fingerprint source: the cache
        # key's options half is exactly its cache identity.
        options = request.options.cache_dict()
        hit = cache.get(request.func, request.arch, options)
        if hit is not None:
            return OptimizeResult(
                request=request, mode=request.mode, schedule=hit
            )
    result = _core_optimize(
        request.func,
        request.arch,
        use_nti=request.use_nti,
        parallelize=request.parallelize,
        vectorize=request.vectorize,
        exhaustive=request.exhaustive,
        use_emu=request.use_emu,
        order_step=request.order_step,
        multistride=request.options.multistride,
        jobs=request.jobs,
        deadline=_deadline(request),
        tracer=request.tracer,
    )
    if cache is not None:
        cache.put(
            request.func,
            request.arch,
            options,
            result.schedule,
            meta={"mode": request.mode, "func": request.func.name},
        )
    return _from_core(request, result)
