"""Isolated measurement worker: ``python -m repro.sweep.worker``.

The sweep runner executes every cell in a fresh subprocess running this
module, so a crash (segfault, OOM kill, interpreter abort) costs one
cell, never the sweep.  Protocol, designed to stay debuggable by hand:

* stdin — one JSON envelope ``{"cell": {...}, "deadline_s": <float?>,
  "schedule_cache": "<path?>"}`` (the optional path names a shared
  :class:`repro.cache.ScheduleCache` file consulted/updated for the
  ``proposed``/``proposed_nti`` techniques — appends are line-atomic, so
  concurrent workers may share it);
* stdout — one JSON line, either
  ``{"ok": true, "ms": <float>, "elapsed_s": <float>,
  "schedules": [...]}`` (the chosen schedules serialized with
  :func:`repro.ir.serialize.schedule_to_dict`, journaled for replay) or
  ``{"ok": false, "error": "<type>", "message": "<str>"}``;
* exit code — 0 for a measured cell, 1 for a structured failure;
  anything else (or unparsable stdout) is treated as a crash by the
  parent.

``deadline_s`` installs a cooperative :class:`~repro.util.Deadline`
around the measurement, slightly tighter than the parent's hard
timeout, so slow searches stop at a checkpoint with a clean
``DeadlineExceeded`` instead of being SIGKILLed mid-write.

Fault injection (test-only): the ``REPRO_WORKER_FAULT`` environment
variable — set per spawn by :class:`repro.robust.faults.WorkerFaultPlan`
— makes the worker die (``kill``), stall (``hang:<seconds>``), or emit
garbage output (``corrupt``) so the runner's retry/quarantine paths can
be exercised deterministically.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import time


def _apply_injected_fault() -> None:
    """Honor REPRO_WORKER_FAULT before doing any real work."""
    fault = os.environ.get("REPRO_WORKER_FAULT", "")
    if not fault:
        return
    kind, _, arg = fault.partition(":")
    if kind == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif kind == "hang":
        time.sleep(float(arg or "3600"))
    elif kind == "corrupt":
        sys.stdout.write("\x00corrupt-worker-output-not-json\n")
        sys.stdout.flush()
        raise SystemExit(0)
    else:
        raise SystemExit(f"unknown REPRO_WORKER_FAULT kind {kind!r}")


def run_cell(payload: dict) -> dict:
    """Measure one cell; returns the result envelope (never raises)."""
    # Imports happen here, after the fault hook, so even an import-time
    # crash in the measurement stack is contained to the worker.
    from repro.arch import platform_by_name
    from repro.bench import make_benchmark, size_for
    from repro.experiments.harness import schedules_for
    from repro.ir.serialize import schedule_to_dict
    from repro.sweep.cell import KIND_OPTIMIZE_RUNTIME, SweepCell
    from repro.util import Deadline
    from repro.util.deadline import active_deadline

    cell = SweepCell.from_dict(payload["cell"])
    deadline_s = payload.get("deadline_s")
    cache_path = payload.get("schedule_cache")
    schedule_cache = None
    if cache_path:
        from repro.cache import ScheduleCache

        schedule_cache = ScheduleCache(cache_path)
    config = cell.config()
    started = time.perf_counter()
    schedules = None
    try:
        arch = platform_by_name(cell.platform)
        sizes = dict(cell.size_overrides) or size_for(
            cell.benchmark, small=cell.fast
        )
        case = make_benchmark(cell.benchmark, **sizes)
        deadline = Deadline(deadline_s, label=f"sweep:{cell.key()}")
        with active_deadline(deadline):
            if cell.kind == KIND_OPTIMIZE_RUNTIME:
                from repro.experiments.harness import (
                    modeled_optimize_seconds,
                )

                value = modeled_optimize_seconds(case, arch)
            else:
                schedules = schedules_for(
                    case,
                    cell.technique,
                    arch,
                    config=config,
                    autotune_evals=cell.autotune_evals,
                    cache=schedule_cache,
                    options=cell.options,
                )
                machine = config.machine(arch)
                value = machine.time_pipeline(case.pipeline, schedules)
    except BaseException as exc:  # noqa: BLE001 — report, don't crash
        return {
            "ok": False,
            "error": type(exc).__name__,
            "message": str(exc) or type(exc).__name__,
            "elapsed_s": time.perf_counter() - started,
        }
    return {
        "ok": True,
        "ms": value,
        "elapsed_s": time.perf_counter() - started,
        "schedules": (
            None
            if schedules is None
            else [
                schedule_to_dict(schedules[stage]) for stage in case.pipeline
            ]
        ),
    }


def main() -> int:
    _apply_injected_fault()
    try:
        payload = json.loads(sys.stdin.read())
    except json.JSONDecodeError as exc:
        print(
            json.dumps(
                {"ok": False, "error": "ProtocolError", "message": str(exc)}
            )
        )
        return 1
    result = run_cell(payload)
    print(json.dumps(result))
    return 0 if result.get("ok") else 1


if __name__ == "__main__":
    raise SystemExit(main())
