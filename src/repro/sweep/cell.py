"""The unit of sweep work: one measurement cell.

A :class:`SweepCell` pins down everything a worker subprocess needs to
reproduce one ``measure_case`` call — benchmark, technique, platform,
problem-size overrides, and the budget/seed knobs that are normally
carried by :class:`~repro.experiments.harness.ExperimentConfig`.  Cells
are value objects: two cells with equal fields denote the same
measurement, have the same :meth:`key`, and map to the same record in
the on-disk journal and the same entry in the in-process memo
(:func:`~repro.experiments.harness.measure_key`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.experiments.harness import (
    ExperimentConfig,
    measure_key,
    optimize_runtime_key,
)

#: A ``measure_case`` cell (simulated milliseconds for one technique).
KIND_MEASURE = "measure"
#: A Table-5 cell: wall-clock seconds of the proposed optimizer.
KIND_OPTIMIZE_RUNTIME = "optimize_runtime"

_KINDS = (KIND_MEASURE, KIND_OPTIMIZE_RUNTIME)


@dataclass(frozen=True)
class SweepCell:
    """One (benchmark, technique, platform, sizes, budgets) measurement.

    ``autotune_evals`` and ``seed`` only matter for the ``autotuner``
    technique; :meth:`memo_key` normalizes them away for deterministic
    techniques exactly as the harness memo does.  ``optimize_runtime``
    cells (Table 5) only use benchmark/platform/fast; their value is
    seconds of optimizer wall-clock rather than simulated milliseconds.
    """

    benchmark: str
    technique: str
    platform: str
    line_budget: int
    autotune_evals: Optional[int] = None
    fast: bool = False
    seed: int = 0
    size_overrides: Tuple[Tuple[str, int], ...] = field(default=())
    kind: str = KIND_MEASURE

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown cell kind {self.kind!r}; known: {_KINDS}"
            )
        # Normalize dict-valued overrides into the canonical sorted tuple
        # so equal cells always hash (and serialize) identically.
        if isinstance(self.size_overrides, dict):
            object.__setattr__(
                self,
                "size_overrides",
                tuple(sorted(self.size_overrides.items())),
            )

    # -- identity ------------------------------------------------------

    def memo_key(self) -> Tuple:
        """The harness memo key this cell fills when it completes."""
        if self.kind == KIND_OPTIMIZE_RUNTIME:
            return optimize_runtime_key(
                self.benchmark, self.platform, self.fast
            )
        return measure_key(
            self.benchmark,
            self.technique,
            self.platform,
            line_budget=self.line_budget,
            autotune_evals=self.autotune_evals,
            fast=self.fast,
            seed=self.seed,
            size_overrides=dict(self.size_overrides),
        )

    def key(self) -> str:
        """Stable string identity used by the journal and the logs."""
        if self.kind == KIND_OPTIMIZE_RUNTIME:
            parts = [self.kind, self.benchmark, self.platform]
            if self.fast:
                parts.append("fast")
            return ":".join(parts)
        parts = [
            self.benchmark,
            self.technique,
            self.platform,
            f"lb{self.line_budget}",
        ]
        if self.technique == "autotuner":
            parts.append(f"ev{self.autotune_evals or 0}")
            parts.append(f"seed{self.seed}")
        if self.fast:
            parts.append("fast")
        parts.extend(f"{k}={v}" for k, v in self.size_overrides)
        return ":".join(parts)

    # -- (de)serialization ---------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "kind": self.kind,
            "benchmark": self.benchmark,
            "technique": self.technique,
            "platform": self.platform,
            "line_budget": self.line_budget,
            "autotune_evals": self.autotune_evals,
            "fast": self.fast,
            "seed": self.seed,
            "size_overrides": dict(self.size_overrides),
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "SweepCell":
        return cls(
            kind=payload.get("kind", KIND_MEASURE),
            benchmark=payload["benchmark"],
            technique=payload.get("technique", ""),
            platform=payload["platform"],
            line_budget=int(payload.get("line_budget", 0)),
            autotune_evals=(
                None
                if payload.get("autotune_evals") is None
                else int(payload["autotune_evals"])
            ),
            fast=bool(payload.get("fast", False)),
            seed=int(payload.get("seed", 0)),
            size_overrides=tuple(
                sorted(
                    (k, int(v))
                    for k, v in (payload.get("size_overrides") or {}).items()
                )
            ),
        )

    # -- execution support ---------------------------------------------

    def config(self) -> ExperimentConfig:
        """An ExperimentConfig reproducing this cell in a fresh process.

        Built explicitly from the cell's fields — never from environment
        variables — so a worker measures exactly what the parent planned
        regardless of its inherited environment.
        """
        return ExperimentConfig(
            line_budget=self.line_budget,
            autotune_evals=self.autotune_evals or 12,
            fast=self.fast,
            seed=self.seed,
        )
