"""The unit of sweep work: one measurement cell.

A :class:`SweepCell` pins down everything a worker subprocess needs to
reproduce one ``measure_case`` call — benchmark, technique, platform,
problem-size overrides, and the budget/seed knobs that are normally
carried by :class:`~repro.experiments.harness.ExperimentConfig`.  Cells
are value objects: two cells with equal fields denote the same
measurement, have the same :meth:`key`, and map to the same record in
the on-disk journal and the same entry in the in-process memo
(:func:`~repro.experiments.harness.measure_key`).

Optimizer switches travel as one frozen
:class:`~repro.options.OptimizeOptions` value in the ``options`` field
(``None`` = let the technique decide, the historical behaviour).  The
loose per-keyword spellings (``use_nti=...`` etc.) that predate the
consolidated option object keep constructing but raise
:class:`DeprecationWarning`; the suite runs with
``-W error::DeprecationWarning`` so no internal caller may use them.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.experiments.harness import (
    ExperimentConfig,
    measure_key,
    optimize_runtime_key,
)
from repro.options import CACHE_KEYS, OptimizeOptions

#: A ``measure_case`` cell (simulated milliseconds for one technique).
KIND_MEASURE = "measure"
#: A Table-5 cell: wall-clock seconds of the proposed optimizer.
KIND_OPTIMIZE_RUNTIME = "optimize_runtime"
#: A fleet-tune cell: one (kernel, platform, options) point of a tune
#: grid, executed as an ordinary ``/v1/optimize`` through the router
#: (see :mod:`repro.tune`) rather than in a local worker subprocess.
KIND_TUNE = "tune"

_KINDS = (KIND_MEASURE, KIND_OPTIMIZE_RUNTIME, KIND_TUNE)


class _Unset:
    """Sentinel distinguishing "not passed" from any real value."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<unset>"


_UNSET = _Unset()

#: Legacy loose option keywords, now folded into ``options=``.
_LEGACY_OPTION_FIELDS = CACHE_KEYS


@dataclass(frozen=True)
class SweepCell:
    """One (benchmark, technique, platform, sizes, budgets) measurement.

    ``autotune_evals`` and ``seed`` only matter for the ``autotuner``
    technique; :meth:`memo_key` normalizes them away for deterministic
    techniques exactly as the harness memo does.  ``optimize_runtime``
    cells (Table 5) only use benchmark/platform/fast; their value is
    seconds of optimizer wall-clock rather than simulated milliseconds.
    ``tune`` cells identify one point of a tune grid by (benchmark,
    platform, options, fast); ``options`` must be set for them.
    """

    benchmark: str
    technique: str
    platform: str
    line_budget: int
    autotune_evals: Optional[int] = None
    fast: bool = False
    seed: int = 0
    size_overrides: Tuple[Tuple[str, int], ...] = field(default=())
    kind: str = KIND_MEASURE
    options: Optional[OptimizeOptions] = None
    # Deprecated loose spellings; excluded from equality/hash — the
    # consolidated ``options`` value *is* the identity.
    use_nti: object = field(default=_UNSET, repr=False, compare=False)
    parallelize: object = field(default=_UNSET, repr=False, compare=False)
    vectorize: object = field(default=_UNSET, repr=False, compare=False)
    exhaustive: object = field(default=_UNSET, repr=False, compare=False)
    use_emu: object = field(default=_UNSET, repr=False, compare=False)
    order_step: object = field(default=_UNSET, repr=False, compare=False)

    def __post_init__(self) -> None:
        self._resolve_options()
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown cell kind {self.kind!r}; known: {_KINDS}"
            )
        if self.kind == KIND_TUNE and self.options is None:
            raise ValueError("tune cells require options=OptimizeOptions(...)")
        # Normalize dict-valued overrides into the canonical sorted tuple
        # so equal cells always hash (and serialize) identically.
        if isinstance(self.size_overrides, dict):
            object.__setattr__(
                self,
                "size_overrides",
                tuple(sorted(self.size_overrides.items())),
            )

    def _resolve_options(self) -> None:
        """Fold deprecated loose option keywords into ``options`` and
        mirror the resolved switches back onto the loose names, so both
        spellings *read* identically after construction."""
        legacy = {
            name: getattr(self, name)
            for name in _LEGACY_OPTION_FIELDS
            if getattr(self, name) is not _UNSET
        }
        if legacy:
            warnings.warn(
                f"passing {sorted(legacy)} to SweepCell is deprecated; "
                f"use options=OptimizeOptions(...) (see docs/API.md, "
                f"'Migration notes')",
                DeprecationWarning,
                stacklevel=3,
            )
            if self.options is not None:
                raise ValueError(
                    f"pass options= or the legacy keyword(s) "
                    f"{sorted(legacy)}, not both"
                )
            object.__setattr__(
                self, "options", OptimizeOptions().replace(**legacy)
            )
        resolved = self.options
        for name in _LEGACY_OPTION_FIELDS:
            object.__setattr__(
                self,
                name,
                None if resolved is None else getattr(resolved, name),
            )

    # -- identity ------------------------------------------------------

    def options_dict(self) -> Optional[Dict[str, bool]]:
        """The canonical cache/coalesce options dict, or ``None``."""
        return None if self.options is None else self.options.cache_dict()

    def memo_key(self) -> Tuple:
        """The harness memo key this cell fills when it completes."""
        if self.kind == KIND_OPTIMIZE_RUNTIME:
            return optimize_runtime_key(
                self.benchmark, self.platform, self.fast
            )
        if self.kind == KIND_TUNE:
            return (
                "tune",
                self.benchmark,
                self.platform,
                self.options.fingerprint(),
                self.fast,
            )
        return measure_key(
            self.benchmark,
            self.technique,
            self.platform,
            line_budget=self.line_budget,
            autotune_evals=self.autotune_evals,
            fast=self.fast,
            seed=self.seed,
            size_overrides=dict(self.size_overrides),
        )

    def key(self) -> str:
        """Stable string identity used by the journal and the logs."""
        if self.kind == KIND_OPTIMIZE_RUNTIME:
            parts = [self.kind, self.benchmark, self.platform]
            if self.fast:
                parts.append("fast")
            return ":".join(parts)
        if self.kind == KIND_TUNE:
            parts = [
                self.kind,
                self.benchmark,
                self.platform,
                f"opt{self.options.fingerprint()[:12]}",
            ]
            if self.fast:
                parts.append("fast")
            return ":".join(parts)
        parts = [
            self.benchmark,
            self.technique,
            self.platform,
            f"lb{self.line_budget}",
        ]
        if self.technique == "autotuner":
            parts.append(f"ev{self.autotune_evals or 0}")
            parts.append(f"seed{self.seed}")
        if self.fast:
            parts.append("fast")
        if self.options is not None:
            parts.append(f"opt{self.options.fingerprint()[:12]}")
        parts.extend(f"{k}={v}" for k, v in self.size_overrides)
        return ":".join(parts)

    # -- (de)serialization ---------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "kind": self.kind,
            "benchmark": self.benchmark,
            "technique": self.technique,
            "platform": self.platform,
            "line_budget": self.line_budget,
            "autotune_evals": self.autotune_evals,
            "fast": self.fast,
            "seed": self.seed,
            "size_overrides": dict(self.size_overrides),
            "options": self.options_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "SweepCell":
        options = payload.get("options")
        return cls(
            kind=payload.get("kind", KIND_MEASURE),
            benchmark=payload["benchmark"],
            technique=payload.get("technique", ""),
            platform=payload["platform"],
            line_budget=int(payload.get("line_budget", 0)),
            autotune_evals=(
                None
                if payload.get("autotune_evals") is None
                else int(payload["autotune_evals"])
            ),
            fast=bool(payload.get("fast", False)),
            seed=int(payload.get("seed", 0)),
            size_overrides=tuple(
                sorted(
                    (k, int(v))
                    for k, v in (payload.get("size_overrides") or {}).items()
                )
            ),
            options=(
                None
                if options is None
                else OptimizeOptions(**{k: bool(v) for k, v in options.items()})
            ),
        )

    # -- execution support ---------------------------------------------

    def config(self) -> ExperimentConfig:
        """An ExperimentConfig reproducing this cell in a fresh process.

        Built explicitly from the cell's fields — never from environment
        variables — so a worker measures exactly what the parent planned
        regardless of its inherited environment.
        """
        return ExperimentConfig(
            line_budget=self.line_budget,
            autotune_evals=self.autotune_evals or 12,
            fast=self.fast,
            seed=self.seed,
        )
