"""Append-only, checksummed JSONL journal for sweep results.

Every completed (or quarantined) cell becomes one JSON line::

    {"format": "repro-sweep-v1", "key": "<cell key>", "status": "ok",
     "cell": {...}, "ms": 12.34, "attempts": 1, "trail": [...],
     "schedules": [...], "sha256": "<hex>"}

Durability and corruption tolerance:

* **Appends** are flushed and ``fsync``'d per record, so a completed
  cell survives a SIGKILL of the sweep driver an instant later.
* **Rewrites** (compaction, pruning) go through a temp file in the same
  directory, ``fsync``, then an atomic ``os.replace`` — a crash mid
  rewrite leaves either the old or the new journal, never a torn one.
* **Per-record checksums** (SHA-256 over the canonical record JSON)
  catch truncated or bit-flipped lines: :meth:`Journal.load` skips such
  lines with a diagnostic instead of aborting, so one torn append —
  e.g. from the SIGKILL above — costs one cell, not the whole sweep.

The record ``status`` is ``"ok"`` for a measured cell or
``"quarantined"`` for one that exhausted its retries; the last record
per key wins, so re-running a quarantined cell successfully simply
appends the fresh ``"ok"`` record.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sweep.cell import SweepCell

#: Schema tag; bump when the record layout changes incompatibly.
JOURNAL_FORMAT = "repro-sweep-v1"

STATUS_OK = "ok"
STATUS_QUARANTINED = "quarantined"

_STATUSES = (STATUS_OK, STATUS_QUARANTINED)


def _canonical(payload: Dict) -> str:
    """Deterministic JSON used both on the wire and under the checksum."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _checksum(payload: Dict) -> str:
    body = {k: v for k, v in payload.items() if k != "sha256"}
    return hashlib.sha256(_canonical(body).encode("utf-8")).hexdigest()


@dataclass
class JournalRecord:
    """One journaled cell result."""

    cell: SweepCell
    status: str
    ms: Optional[float] = None
    attempts: int = 1
    error: Optional[str] = None
    trail: List[str] = field(default_factory=list)
    schedules: Optional[List[Dict]] = None

    def __post_init__(self) -> None:
        if self.status not in _STATUSES:
            raise ValueError(
                f"unknown status {self.status!r}; known: {_STATUSES}"
            )
        if self.status == STATUS_OK and self.ms is None:
            raise ValueError("an 'ok' record needs a measurement")

    @property
    def key(self) -> str:
        return self.cell.key()

    def to_dict(self) -> Dict:
        payload = {
            "format": JOURNAL_FORMAT,
            "key": self.key,
            "status": self.status,
            "cell": self.cell.to_dict(),
            "ms": self.ms,
            "attempts": self.attempts,
            "error": self.error,
            "trail": list(self.trail),
            "schedules": self.schedules,
        }
        payload["sha256"] = _checksum(payload)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict) -> "JournalRecord":
        return cls(
            cell=SweepCell.from_dict(payload["cell"]),
            status=payload["status"],
            ms=payload.get("ms"),
            attempts=int(payload.get("attempts", 1)),
            error=payload.get("error"),
            trail=list(payload.get("trail") or []),
            schedules=payload.get("schedules"),
        )


class Journal:
    """The on-disk store, safe for concurrent appends from worker threads."""

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._lock = threading.Lock()
        #: Human-readable notes about skipped lines from the last load.
        self.load_diagnostics: List[str] = []

    # -- writing -------------------------------------------------------

    def append(self, record: JournalRecord) -> None:
        """Durably append one record (flush + fsync before returning)."""
        line = _canonical(record.to_dict()) + "\n"
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line)
                handle.flush()
                os.fsync(handle.fileno())

    def rewrite(self, records: List[JournalRecord]) -> None:
        """Atomically replace the journal (temp file + fsync + rename)."""
        directory = os.path.dirname(os.path.abspath(self.path)) or "."
        with self._lock:
            fd, tmp_path = tempfile.mkstemp(
                prefix=".sweep-journal-", suffix=".tmp", dir=directory
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    for record in records:
                        handle.write(_canonical(record.to_dict()) + "\n")
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp_path, self.path)
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise
            # Make the rename itself durable.
            try:
                dir_fd = os.open(directory, os.O_RDONLY)
            except OSError:
                return  # platform without directory fsync; best effort
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)

    def clear(self) -> None:
        """Remove the journal file (``--fresh``)."""
        with self._lock:
            try:
                os.unlink(self.path)
            except FileNotFoundError:
                pass

    # -- reading -------------------------------------------------------

    def load(self) -> Dict[str, JournalRecord]:
        """Parse the journal; last valid record per key wins.

        Truncated, corrupt, or foreign lines are skipped with a note in
        :attr:`load_diagnostics` — a damaged journal degrades to fewer
        resumable cells, it never aborts the sweep.
        """
        self.load_diagnostics = []
        records: Dict[str, JournalRecord] = {}
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
        except FileNotFoundError:
            return records
        for lineno, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            note = self._ingest(line, lineno, records)
            if note is not None:
                self.load_diagnostics.append(note)
        return records

    def _ingest(
        self, line: str, lineno: int, records: Dict[str, JournalRecord]
    ) -> Optional[str]:
        """Parse one line into ``records``; return a diagnostic on skip."""
        where = f"{self.path}:{lineno}"
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            return f"{where}: skipping unparsable line ({exc.msg})"
        if not isinstance(payload, dict):
            return f"{where}: skipping non-object line"
        if payload.get("format") != JOURNAL_FORMAT:
            return (
                f"{where}: skipping record with format="
                f"{payload.get('format')!r} (expected {JOURNAL_FORMAT!r})"
            )
        if payload.get("sha256") != _checksum(payload):
            return f"{where}: skipping record with bad checksum (truncated?)"
        try:
            record = JournalRecord.from_dict(payload)
        except (KeyError, TypeError, ValueError) as exc:
            return f"{where}: skipping malformed record ({exc})"
        records[record.key] = record
        return None

    def compact(self) -> Dict[str, JournalRecord]:
        """Drop superseded/corrupt lines by atomically rewriting the file."""
        records = self.load()
        self.rewrite(list(records.values()))
        return records
