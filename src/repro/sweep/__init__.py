"""Crash-safe, resumable experiment sweeps.

The paper's evaluation is a long sequential sweep dominated by
autotuner searches; this package makes it survivable and restartable:

* :mod:`repro.sweep.cell` — :class:`SweepCell`, the unit of work (one
  ``measure_case`` invocation, fully pinned down);
* :mod:`repro.sweep.plan` — cell discovery by dry-running the
  regenerators in recording mode;
* :mod:`repro.sweep.worker` — the isolated subprocess that measures one
  cell (``python -m repro.sweep.worker``);
* :mod:`repro.sweep.runner` — :class:`SweepRunner`: timeouts, retries
  with backoff + jitter, quarantine, parallel ``--jobs``, and journal
  resume;
* :mod:`repro.sweep.journal` — the append-only, checksummed JSONL store
  that doubles as a persistent cross-process measurement cache.

``python -m repro.experiments`` (or ``python -m repro sweep``) drives
the whole thing; see ``docs/API.md`` for the journal format, resume
semantics, and the quarantine policy.
"""

from repro.sweep.cell import (
    KIND_MEASURE,
    KIND_OPTIMIZE_RUNTIME,
    KIND_TUNE,
    SweepCell,
)
from repro.sweep.journal import (
    JOURNAL_FORMAT,
    Journal,
    JournalRecord,
    STATUS_OK,
    STATUS_QUARANTINED,
)
from repro.sweep.plan import plan_cells
from repro.sweep.runner import (
    CellOutcome,
    EXIT_QUARANTINED,
    RetryPolicy,
    SweepReport,
    SweepRunner,
)

__all__ = [
    "CellOutcome",
    "EXIT_QUARANTINED",
    "JOURNAL_FORMAT",
    "Journal",
    "JournalRecord",
    "KIND_MEASURE",
    "KIND_OPTIMIZE_RUNTIME",
    "KIND_TUNE",
    "RetryPolicy",
    "STATUS_OK",
    "STATUS_QUARANTINED",
    "SweepCell",
    "SweepReport",
    "SweepRunner",
    "plan_cells",
]
