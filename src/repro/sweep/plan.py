"""Cell planning: discover which cells a set of regenerators will need.

Rather than duplicating the figure/table loops (and drifting from them),
the planner runs each regenerator once in the harness's recording mode
(:func:`repro.experiments.harness.recording_cells`): ``measure_case``
reports the normalized parameters of every cell it is asked for and
returns NaN without simulating anything, so a full plan costs
milliseconds.  The recorded parameters convert 1:1 into
:class:`~repro.sweep.cell.SweepCell` values, deduplicated in first-use
order (Fig. 4, Fig. 6 and Table 4 share most of their cells).
"""

from __future__ import annotations

import contextlib
import io
from typing import Dict, List, Optional, Sequence

from repro.experiments.harness import ExperimentConfig, recording_cells
from repro.sweep.cell import SweepCell


def plan_cells(
    modules: Sequence,
    *,
    config: Optional[ExperimentConfig] = None,
) -> List[SweepCell]:
    """Dry-run ``module.run(config=...)`` for each module; return its cells.

    Modules must follow the regenerator convention (``run(*, config,
    echo)``).  Output is suppressed and nothing is measured; the same
    code paths that will later consume the journal decide the cell set,
    so plan and render can never disagree.
    """
    config = config or ExperimentConfig()
    recorded: List[Dict] = []
    with recording_cells(recorded.append):
        for module in modules:
            # echo=False keeps regenerators quiet, but belt-and-braces
            # swallow stray prints so planning never pollutes stdout.
            with contextlib.redirect_stdout(io.StringIO()):
                module.run(config=config, echo=False)
    cells: List[SweepCell] = []
    seen = set()
    for params in recorded:
        # The recorder emits SweepCell.from_dict-compatible payloads for
        # both cell kinds (measurements and Table-5 optimizer runtimes).
        cell = SweepCell.from_dict(params)
        key = cell.key()
        if key not in seen:
            seen.add(key)
            cells.append(cell)
    return cells
