"""The crash-safe sweep runner.

``SweepRunner.run(cells)`` drives a list of :class:`SweepCell` to
completion with the durability story a tens-of-minutes evaluation needs:

* **process isolation** — every attempt runs ``python -m
  repro.sweep.worker`` in a fresh subprocess; a crash or OOM kill costs
  one attempt, not the sweep;
* **timeouts** — each attempt gets a hard wall-clock bound (the worker
  also installs a slightly tighter cooperative
  :class:`~repro.util.Deadline` so it usually stops cleanly first);
* **retries** — failed attempts back off exponentially with
  deterministic jitter (seeded per cell+attempt, so reruns behave
  identically) before trying again;
* **quarantine** — a cell that exhausts its retries is journaled as
  ``quarantined`` (the poison list) and rendered as ``—`` downstream;
  the sweep itself keeps going;
* **journaling** — every outcome is durably appended to the
  :class:`~repro.sweep.journal.Journal` the moment it is known, so a
  SIGKILL of the driver never loses a completed cell, and a re-run
  resumes exactly where the last one died;
* **parallelism** — ``jobs > 1`` runs that many workers concurrently
  (cells are independent measurements).

Every cell carries a :class:`~repro.robust.Diagnostics` trail recording
each attempt and its failure; the trail is journaled with the record so
a post-mortem never depends on scrollback.
"""

from __future__ import annotations

import json
import os
import random
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, TextIO, Tuple

from repro.experiments.harness import mark_quarantined, seed_measure_cache
from repro.obs.events import (
    EVENT_CELL_ATTEMPT,
    EVENT_CELL_OK,
    EVENT_CELL_QUARANTINED,
    EVENT_CELL_RESUMED,
    EVENT_CELL_RETRY,
)
from repro.obs.tracer import NULL_TRACER
from repro.robust import Diagnostics, WorkerFaultPlan
from repro.sweep.cell import SweepCell
from repro.sweep.journal import (
    STATUS_OK,
    STATUS_QUARANTINED,
    Journal,
    JournalRecord,
)

# "Sweep completed but some cells are quarantined" — distinct from the
# CLI's 3 (degraded) and 4 (hard failure).  Defined centrally with the
# rest of the exit-code protocol; re-exported here for compatibility.
from repro.core.exitcodes import EXIT_QUARANTINED  # noqa: E402,F401


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule for failed cells.

    ``max_attempts`` bounds total tries per cell; the delay before retry
    *k* (1-based) is ``backoff_s * multiplier**(k-1)``, scaled by a
    deterministic jitter factor in ``[1, 1+jitter]`` derived from the
    cell key — identical across reruns, uncorrelated across cells so
    parallel retries do not stampede in lockstep.
    """

    max_attempts: int = 3
    backoff_s: float = 0.25
    multiplier: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_s < 0 or self.multiplier < 1 or self.jitter < 0:
            raise ValueError("backoff_s >= 0, multiplier >= 1, jitter >= 0")

    def delay_before(self, cell_key: str, attempt: int) -> float:
        """Seconds to sleep before retry ``attempt`` (2-based)."""
        base = self.backoff_s * self.multiplier ** (attempt - 2)
        rng = random.Random(f"{cell_key}#{attempt}")
        return base * (1.0 + self.jitter * rng.random())


@dataclass
class CellOutcome:
    """What happened to one cell in this run."""

    cell: SweepCell
    status: str  # "ok" | "quarantined" | "resumed"
    ms: Optional[float] = None
    attempts: int = 0
    error: Optional[str] = None


@dataclass
class SweepReport:
    """Aggregate result of ``SweepRunner.run``."""

    outcomes: List[CellOutcome] = field(default_factory=list)
    journal_diagnostics: List[str] = field(default_factory=list)

    def _count(self, status: str) -> int:
        return sum(1 for o in self.outcomes if o.status == status)

    @property
    def completed(self) -> int:
        return self._count("ok")

    @property
    def resumed(self) -> int:
        return self._count("resumed")

    @property
    def quarantined(self) -> int:
        return self._count("quarantined")

    @property
    def retried(self) -> int:
        return sum(1 for o in self.outcomes if o.attempts > 1)

    def exit_code(self) -> int:
        return EXIT_QUARANTINED if self.quarantined else 0

    def summary(self) -> str:
        total = len(self.outcomes)
        parts = [
            f"sweep: {total} cells — {self.resumed} resumed from journal, "
            f"{self.completed} measured ({self.retried} after retries), "
            f"{self.quarantined} quarantined"
        ]
        for outcome in self.outcomes:
            if outcome.status == "quarantined":
                parts.append(
                    f"  quarantined {outcome.cell.key()} after "
                    f"{outcome.attempts} attempts: {outcome.error}"
                )
        parts.extend(f"  journal: {note}" for note in self.journal_diagnostics)
        return "\n".join(parts)


class SweepRunner:
    """Executes cells in isolated workers, journaling every outcome."""

    def __init__(
        self,
        journal: Journal,
        *,
        jobs: int = 1,
        timeout_s: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        fault_plan: Optional[WorkerFaultPlan] = None,
        progress: Optional[TextIO] = None,
        tracer=None,
        schedule_cache: Optional[str] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError(f"timeout_s must be > 0, got {timeout_s}")
        self.journal = journal
        self.jobs = jobs
        self.timeout_s = timeout_s
        self.retry = retry or RetryPolicy()
        self.fault_plan = fault_plan
        self.progress = progress
        #: Optional path of a shared repro.cache.ScheduleCache file; each
        #: worker consults it before searching and stores what it finds
        #: (appends are line-atomic, so concurrent workers can share it).
        self.schedule_cache = schedule_cache
        # Explicit, not ambient: worker threads (jobs > 1) do not inherit
        # the caller's context variables, so the cell-lifecycle events
        # would silently vanish with a contextvar-based default.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Diagnostics trail per cell key, populated during run().
        self.trails: Dict[str, Diagnostics] = {}

    # -- public API ----------------------------------------------------

    def run(self, cells: Sequence[SweepCell]) -> SweepReport:
        """Bring every cell to a journaled outcome; never raises per-cell."""
        report = SweepReport()
        journaled = self.journal.load()
        report.journal_diagnostics = list(self.journal.load_diagnostics)
        for note in report.journal_diagnostics:
            self._log(note)

        pending: List[SweepCell] = []
        seen: set = set()
        for cell in cells:
            key = cell.key()
            if key in seen:
                continue
            seen.add(key)
            record = journaled.get(key)
            if record is not None and record.status == STATUS_OK:
                if self.tracer.enabled:
                    self.tracer.count("sweep.cells.resumed")
                    self.tracer.event(
                        EVENT_CELL_RESUMED, cell=key, ms=record.ms
                    )
                report.outcomes.append(
                    CellOutcome(cell, "resumed", ms=record.ms)
                )
            elif record is not None and record.status == STATUS_QUARANTINED:
                report.outcomes.append(
                    CellOutcome(
                        cell,
                        "quarantined",
                        attempts=record.attempts,
                        error=record.error,
                    )
                )
            else:
                pending.append(cell)

        if pending:
            self._log(
                f"sweep: {len(pending)} cells to measure "
                f"({len(seen) - len(pending)} already journaled), "
                f"jobs={self.jobs}"
            )
            with self.tracer.span(
                "sweep.run", pending=len(pending), jobs=self.jobs
            ):
                if self.jobs == 1:
                    outcomes = [self._run_cell(c) for c in pending]
                else:
                    with ThreadPoolExecutor(max_workers=self.jobs) as pool:
                        outcomes = list(pool.map(self._run_cell, pending))
            report.outcomes.extend(outcomes)

        self.install(journal_records=self.journal.load())
        return report

    def install(
        self, journal_records: Optional[Dict[str, JournalRecord]] = None
    ) -> Tuple[int, int]:
        """Seed the in-process measurement memo from the journal.

        Completed cells become cache entries (the journal acting as the
        persistent ``_MEASURE_CACHE``); quarantined cells go on the
        harness poison list so the regenerators render ``—`` instead of
        re-running a known-bad measurement.  Returns ``(ok, quarantined)``
        counts.
        """
        records = (
            journal_records
            if journal_records is not None
            else self.journal.load()
        )
        ok_entries = {
            r.cell.memo_key(): r.ms
            for r in records.values()
            if r.status == STATUS_OK and r.ms is not None
        }
        bad_keys = [
            r.cell.memo_key()
            for r in records.values()
            if r.status == STATUS_QUARANTINED
        ]
        seed_measure_cache(ok_entries)
        mark_quarantined(bad_keys)
        return len(ok_entries), len(bad_keys)

    # -- one cell ------------------------------------------------------

    def _run_cell(self, cell: SweepCell) -> CellOutcome:
        key = cell.key()
        trail = Diagnostics()
        self.trails[key] = trail
        traced = self.tracer.enabled
        last_error = "unknown failure"
        for attempt in range(1, self.retry.max_attempts + 1):
            if attempt > 1:
                delay = self.retry.delay_before(key, attempt)
                trail.info(
                    "retry", f"attempt {attempt} after {delay:.2f}s backoff"
                )
                if traced:
                    self.tracer.count("sweep.retries")
                    self.tracer.event(
                        EVENT_CELL_RETRY,
                        cell=key,
                        attempt=attempt,
                        backoff_s=round(delay, 4),
                        error=last_error,
                    )
                time.sleep(delay)
            if traced:
                self.tracer.count("sweep.attempts")
                self.tracer.event(EVENT_CELL_ATTEMPT, cell=key, attempt=attempt)
            started = time.perf_counter()
            ok, payload, error = self._attempt(cell)
            elapsed_ms = (time.perf_counter() - started) * 1000.0
            if ok:
                ms = float(payload["ms"])
                trail.info(
                    "worker",
                    f"measured {ms:.4f} ms (attempt {attempt})",
                    elapsed_ms=elapsed_ms,
                )
                self.journal.append(
                    JournalRecord(
                        cell=cell,
                        status=STATUS_OK,
                        ms=ms,
                        attempts=attempt,
                        trail=[r.describe() for r in trail],
                        schedules=payload.get("schedules"),
                    )
                )
                if traced:
                    self.tracer.count("sweep.cells.ok")
                    self.tracer.event(
                        EVENT_CELL_OK,
                        cell=key,
                        ms=ms,
                        attempt=attempt,
                        elapsed_ms=round(elapsed_ms, 3),
                    )
                self._log(f"  ok         {key} ({ms:.2f} ms)")
                return CellOutcome(cell, "ok", ms=ms, attempts=attempt)
            last_error = error or "unknown failure"
            trail.error(
                "worker",
                f"attempt {attempt} failed: {last_error}",
                elapsed_ms=elapsed_ms,
            )
            self._log(f"  attempt {attempt} failed for {key}: {last_error}")
        self.journal.append(
            JournalRecord(
                cell=cell,
                status=STATUS_QUARANTINED,
                attempts=self.retry.max_attempts,
                error=last_error,
                trail=[r.describe() for r in trail],
            )
        )
        if traced:
            self.tracer.count("sweep.cells.quarantined")
            self.tracer.event(
                EVENT_CELL_QUARANTINED,
                cell=key,
                attempts=self.retry.max_attempts,
                error=last_error,
            )
        self._log(
            f"  quarantine {key} after {self.retry.max_attempts} attempts"
        )
        return CellOutcome(
            cell,
            "quarantined",
            attempts=self.retry.max_attempts,
            error=last_error,
        )

    def _attempt(
        self, cell: SweepCell
    ) -> Tuple[bool, Optional[dict], Optional[str]]:
        """One isolated worker execution: (ok, payload, error)."""
        envelope = json.dumps(
            {
                "cell": cell.to_dict(),
                # Leave the worker ~10% headroom to stop cooperatively
                # before the hard kill below.
                "deadline_s": (
                    self.timeout_s * 0.9 if self.timeout_s else None
                ),
                "schedule_cache": self.schedule_cache,
            }
        )
        env = dict(os.environ)
        # The worker must resolve `repro` exactly as this process does,
        # even when run from a different working directory.
        src_dir = os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))
        )
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_dir if not existing else os.pathsep.join([src_dir, existing])
        )
        if self.fault_plan is not None:
            env.update(self.fault_plan.env_for_spawn())
        try:
            proc = subprocess.run(
                [sys.executable, "-m", "repro.sweep.worker"],
                input=envelope,
                capture_output=True,
                text=True,
                env=env,
                timeout=self.timeout_s,
            )
        except subprocess.TimeoutExpired:
            return False, None, f"timeout after {self.timeout_s}s (killed)"
        except OSError as exc:
            return False, None, f"failed to spawn worker: {exc}"
        if proc.returncode not in (0, 1):
            return (
                False,
                None,
                f"worker crashed with exit code {proc.returncode}",
            )
        try:
            payload = json.loads(proc.stdout.strip().splitlines()[-1])
        except (json.JSONDecodeError, IndexError):
            return False, None, "worker produced corrupt/empty output"
        if not isinstance(payload, dict) or "ok" not in payload:
            return False, None, "worker produced a malformed result object"
        if payload["ok"]:
            return True, payload, None
        return (
            False,
            None,
            f"{payload.get('error', 'Error')}: "
            f"{payload.get('message', 'worker reported failure')}",
        )

    # -- logging -------------------------------------------------------

    def _log(self, message: str) -> None:
        if self.progress is not None:
            print(message, file=self.progress, flush=True)
