"""The sharded serve fleet: router, supervisor, and health-gated failover.

One front :class:`FleetRouter` consistent-hashes every optimization
request's identity — the same func/arch/options fingerprints behind
request coalescing and the persistent schedule cache
(:func:`repro.serve.schema.coalesce_key`) — onto N ``repro serve``
worker processes, so each worker's coalescing table and per-shard
:func:`repro.cache.shard_cache_path` store stay warm by construction.
The :class:`FleetSupervisor` spawns those workers, probes their
enriched ``/healthz`` on an interval, restarts crashes and hangs with
exponential backoff, quarantines flapping shards, and performs
zero-loss rolling restarts; when a shard is down, the router re-routes
its keyspace to the deterministic ring sibling with
``served_by="failover"`` attribution.

Entry points: ``python -m repro fleet --workers N`` (CLI),
:class:`repro.fleet.testing.FleetThread` (tests/CI), and
``python -m repro loadgen`` for the measurement harness that feeds
``BENCH_serve.json``.
"""

from repro.fleet.breaker import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
)
from repro.fleet.hashring import HashRing
from repro.fleet.metrics import (
    FLEET_METRIC_COUNTERS,
    FLEET_METRICS_FORMAT,
    FleetMetrics,
    validate_fleet_metrics,
)
from repro.fleet.router import FLEET_FORMAT, FleetRouter
from repro.fleet.supervisor import (
    STATE_DOWN,
    STATE_DRAINING,
    STATE_QUARANTINED,
    STATE_STARTING,
    STATE_UP,
    FleetSupervisor,
    free_port,
)

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "CircuitBreaker",
    "FLEET_FORMAT",
    "FLEET_METRIC_COUNTERS",
    "FLEET_METRICS_FORMAT",
    "FleetMetrics",
    "FleetRouter",
    "FleetSupervisor",
    "HashRing",
    "STATE_DOWN",
    "STATE_DRAINING",
    "STATE_QUARANTINED",
    "STATE_STARTING",
    "STATE_UP",
    "free_port",
    "validate_fleet_metrics",
]
