"""Worker lifecycle management for the serve fleet.

:class:`FleetSupervisor` owns N ``python -m repro serve`` subprocesses —
one shard each, every shard on its own port with its own
:func:`repro.cache.shard_cache_path` store — and runs the health gate
the router's failover keys on:

* **probing** — a daemon thread hits every worker's enriched
  ``GET /healthz`` on an interval (:meth:`repro.serve.ServeClient.probe`,
  which never raises on a non-200): 200 means *up*, a 503-draining
  answer means *degraded* (alive, finishing admitted work, not
  routable), and connection failures accumulate toward *down*;
* **crash/hang restarts** — a worker whose process exited, or whose
  probes failed ``down_after`` times in a row (a hung event loop looks
  exactly like that), is killed if needed and respawned on the *same*
  port after an exponential backoff, so the router's shard→port map
  never changes;
* **flap quarantine** — a shard restarted more than ``flap_threshold``
  times inside ``flap_window_s`` is quarantined instead of respawned
  (mirroring the sweep runner's poison list): its keyspace permanently
  fails over to the deterministic sibling, and a human gets to look at
  it rather than the supervisor burning CPU on a crash loop;
* **rolling restart** — :meth:`FleetSupervisor.rolling_restart` drains
  one shard at a time (SIGTERM → the worker's graceful drain → respawn
  → wait up), so a fleet-wide restart never loses an admitted job and
  never takes two shards out at once.

States: ``starting → up ⇄ draining``, ``up → down → (backoff) →
starting`` on crash, ``down → quarantined`` on flapping.  Every
transition emits a ``fleet.*`` trace event and bumps the shared
:class:`repro.fleet.metrics.FleetMetrics`.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import repro
from repro.cache import shard_cache_path
from repro.fleet.metrics import FleetMetrics
from repro.obs import NULL_TRACER
from repro.obs.events import (
    EVENT_FLEET_DOWN,
    EVENT_FLEET_QUARANTINED,
    EVENT_FLEET_RESTART,
    EVENT_FLEET_ROLL,
    EVENT_FLEET_SPAWN,
    EVENT_FLEET_UP,
)
from repro.serve.client import ServeClient

__all__ = [
    "FleetSupervisor",
    "STATE_DOWN",
    "STATE_DRAINING",
    "STATE_QUARANTINED",
    "STATE_STARTING",
    "STATE_UP",
    "free_port",
]

STATE_STARTING = "starting"
STATE_UP = "up"
STATE_DRAINING = "draining"
STATE_DOWN = "down"
STATE_QUARANTINED = "quarantined"


def free_port(host: str = "127.0.0.1") -> int:
    """Ask the kernel for a currently-free port (bind-then-close)."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.bind((host, 0))
        return sock.getsockname()[1]


def _worker_environment(extra: Optional[Dict[str, str]]) -> Dict[str, str]:
    """The spawn environment: inherit, ensure ``repro`` is importable.

    Same discipline as the sweep runner's worker spawn: prepend this
    package's source root to ``PYTHONPATH`` so ``python -m repro`` works
    from any CWD, then layer per-shard extras (e.g. a test arming
    ``REPRO_SERVE_FAULT`` on one shard only) on top.
    """
    env = dict(os.environ)
    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (
        src_dir + os.pathsep + existing if existing else src_dir
    )
    if extra:
        env.update(extra)
    return env


@dataclass
class _Worker:
    """Mutable supervisor-side record of one shard."""

    shard: int
    port: int
    proc: Optional[subprocess.Popen] = None
    state: str = STATE_STARTING
    restarts: int = 0
    consecutive_failures: int = 0
    restart_times: List[float] = field(default_factory=list)
    next_restart_at: float = 0.0

    def to_dict(self) -> Dict:
        return {
            "shard": self.shard,
            "port": self.port,
            "state": self.state,
            "restarts": self.restarts,
            "consecutive_failures": self.consecutive_failures,
            "pid": self.proc.pid if self.proc is not None else None,
        }


class FleetSupervisor:
    """Spawn, probe, restart and roll N serve workers.

    Parameters
    ----------
    workers:
        Shard count (>= 1).
    host:
        Bind address shared by every worker.
    cache_path:
        Base schedule-cache path; each shard gets its own
        :func:`repro.cache.shard_cache_path` spelling (``None`` disables
        caching).
    queue_limit / serve_args:
        Per-worker admission bound, plus any extra ``repro serve``
        argv tail (e.g. ``["--batch-window-ms", "0"]``).
    probe_interval_s / probe_timeout_s / down_after:
        The health gate: probe cadence, per-probe socket timeout, and
        how many consecutive failures mark a shard down.
    restart_backoff_base_s / restart_backoff_cap_s:
        Exponential restart backoff (``min(cap, base * 2**(n-1))`` for
        the n-th restart).
    flap_window_s / flap_threshold:
        Quarantine a shard restarted more than ``flap_threshold`` times
        within ``flap_window_s`` seconds.
    metrics / tracer:
        Shared :class:`~repro.fleet.metrics.FleetMetrics` (the router
        passes its own) and :class:`repro.obs.Tracer`.
    worker_env:
        Optional per-shard extra environment: ``{shard: {VAR: value}}``
        — the fault-injection hook the failover tests use.
    worker_cmd:
        Optional ``(shard, port) -> argv`` override replacing the
        ``repro serve`` command line entirely (flap tests spawn a
        process that exits immediately).
    """

    def __init__(
        self,
        *,
        workers: int = 2,
        host: str = "127.0.0.1",
        cache_path: Optional[str] = None,
        queue_limit: int = 16,
        serve_args: Optional[Sequence[str]] = None,
        probe_interval_s: float = 0.25,
        probe_timeout_s: float = 2.0,
        down_after: int = 3,
        restart_backoff_base_s: float = 0.25,
        restart_backoff_cap_s: float = 5.0,
        flap_window_s: float = 30.0,
        flap_threshold: int = 3,
        metrics: Optional[FleetMetrics] = None,
        tracer=None,
        worker_env: Optional[Dict[int, Dict[str, str]]] = None,
        worker_cmd: Optional[Callable[[int, int], List[str]]] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if probe_interval_s <= 0 or probe_timeout_s <= 0:
            raise ValueError("probe interval/timeout must be positive")
        if down_after < 1:
            raise ValueError(f"down_after must be >= 1, got {down_after}")
        if flap_threshold < 1:
            raise ValueError(
                f"flap_threshold must be >= 1, got {flap_threshold}"
            )
        self.host = host
        self.cache_path = cache_path
        self.queue_limit = int(queue_limit)
        self.serve_args = list(serve_args or [])
        self.probe_interval_s = float(probe_interval_s)
        self.probe_timeout_s = float(probe_timeout_s)
        self.down_after = int(down_after)
        self.restart_backoff_base_s = float(restart_backoff_base_s)
        self.restart_backoff_cap_s = float(restart_backoff_cap_s)
        self.flap_window_s = float(flap_window_s)
        self.flap_threshold = int(flap_threshold)
        self.metrics = metrics if metrics is not None else FleetMetrics()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.worker_env = dict(worker_env or {})
        self.worker_cmd = worker_cmd

        self._lock = threading.Lock()
        self._workers: List[_Worker] = [
            _Worker(shard=shard, port=free_port(host))
            for shard in range(workers)
        ]
        self._rolling: set = set()  # shards mid-roll: probe loop hands off
        self._probe_thread: Optional[threading.Thread] = None
        self._stopping = threading.Event()

    # -- introspection -------------------------------------------------

    @property
    def shards(self) -> List[int]:
        return [w.shard for w in self._workers]

    def port_of(self, shard: int) -> int:
        return self._worker(shard).port

    def state_of(self, shard: int) -> str:
        with self._lock:
            return self._worker(shard).state

    def routable(self, shard: int) -> bool:
        """May the router send this shard new work right now?"""
        with self._lock:
            worker = self._worker(shard)
            return (
                worker.state == STATE_UP and worker.shard not in self._rolling
            )

    def states(self) -> List[Dict]:
        """Per-shard listing for ``/metrics`` and ``/fleet/status``."""
        with self._lock:
            return [w.to_dict() for w in self._workers]

    def _worker(self, shard: int) -> _Worker:
        for worker in self._workers:
            if worker.shard == shard:
                return worker
        raise KeyError(f"no shard {shard} (have {self.shards})")

    # -- spawning ------------------------------------------------------

    def _command(self, shard: int, port: int) -> List[str]:
        if self.worker_cmd is not None:
            return list(self.worker_cmd(shard, port))
        argv = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--host",
            self.host,
            "--port",
            str(port),
            "--workers",
            "1",
            "--queue-limit",
            str(self.queue_limit),
        ]
        if self.cache_path:
            argv += [
                "--schedule-cache",
                shard_cache_path(self.cache_path, shard),
            ]
        return argv + self.serve_args

    def _spawn(self, worker: _Worker) -> None:
        worker.proc = subprocess.Popen(
            self._command(worker.shard, worker.port),
            env=_worker_environment(self.worker_env.get(worker.shard)),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        worker.state = STATE_STARTING
        worker.consecutive_failures = 0
        self.tracer.event(
            EVENT_FLEET_SPAWN,
            shard=worker.shard,
            port=worker.port,
            pid=worker.proc.pid,
        )

    def start(self, *, wait_s: float = 30.0) -> None:
        """Spawn every worker, start the probe loop, wait for readiness.

        Raises :class:`RuntimeError` when any shard fails to answer its
        ``/healthz`` within ``wait_s`` — a fleet that cannot boot should
        fail loudly at start, not limp into degraded mode.
        """
        with self._lock:
            for worker in self._workers:
                self._spawn(worker)
        give_up = time.perf_counter() + wait_s
        for worker in self._workers:
            remaining = give_up - time.perf_counter()
            if remaining <= 0 or not self._client(worker).wait_ready(
                timeout_s=max(remaining, 0.01)
            ):
                self.stop()
                raise RuntimeError(
                    f"fleet worker shard={worker.shard} "
                    f"port={worker.port} did not come up within {wait_s:g}s"
                )
            with self._lock:
                worker.state = STATE_UP
            self.tracer.event(
                EVENT_FLEET_UP, shard=worker.shard, port=worker.port
            )
        self._probe_thread = threading.Thread(
            target=self._probe_loop, name="repro-fleet-probe", daemon=True
        )
        self._probe_thread.start()

    def _client(self, worker: _Worker) -> ServeClient:
        return ServeClient(
            self.host, worker.port, timeout_s=self.probe_timeout_s, retries=0
        )

    # -- the health gate -----------------------------------------------

    def _probe_loop(self) -> None:
        while not self._stopping.wait(self.probe_interval_s):
            for worker in self._workers:
                with self._lock:
                    skip = (
                        worker.state == STATE_QUARANTINED
                        or worker.shard in self._rolling
                    )
                if not skip:
                    try:
                        self._probe_one(worker)
                    except Exception:  # pragma: no cover - keep gating
                        pass

    def _probe_one(self, worker: _Worker) -> None:
        if worker.proc is not None and worker.proc.poll() is not None:
            self._note_down(
                worker, f"process exited with {worker.proc.returncode}"
            )
            self._maybe_restart(worker)
            return
        try:
            status, _body = self._client(worker).probe()
        except (ConnectionError, OSError):
            self.metrics.bump("probe_failures")
            with self._lock:
                worker.consecutive_failures += 1
                failures = worker.consecutive_failures
            if failures >= self.down_after:
                self._note_down(
                    worker, f"{failures} consecutive probe failures"
                )
                # A live-but-unresponsive process is hung: reclaim it so
                # the respawn can rebind the port.
                if worker.proc is not None and worker.proc.poll() is None:
                    worker.proc.kill()
                    worker.proc.wait()
                self._maybe_restart(worker)
            return
        with self._lock:
            worker.consecutive_failures = 0
            previous = worker.state
            worker.state = STATE_DRAINING if status == 503 else STATE_UP
            current = worker.state
        if current == STATE_UP and previous != STATE_UP:
            self.tracer.event(
                EVENT_FLEET_UP, shard=worker.shard, port=worker.port
            )

    def _note_down(self, worker: _Worker, reason: str) -> None:
        with self._lock:
            already = worker.state == STATE_DOWN
            worker.state = STATE_DOWN
        if not already:
            self.tracer.event(
                EVENT_FLEET_DOWN,
                shard=worker.shard,
                port=worker.port,
                reason=reason,
            )

    def _maybe_restart(self, worker: _Worker) -> None:
        """Restart a down worker — after backoff, unless it is flapping."""
        now = time.monotonic()
        with self._lock:
            if worker.state != STATE_DOWN or now < worker.next_restart_at:
                return
            recent = [
                t
                for t in worker.restart_times
                if now - t <= self.flap_window_s
            ]
            if len(recent) >= self.flap_threshold:
                worker.state = STATE_QUARANTINED
                worker.restart_times = recent
                quarantined = True
            else:
                worker.restarts += 1
                recent.append(now)
                worker.restart_times = recent
                worker.next_restart_at = now + min(
                    self.restart_backoff_cap_s,
                    self.restart_backoff_base_s
                    * 2.0 ** max(len(recent) - 1, 0),
                )
                quarantined = False
        if quarantined:
            self.metrics.bump("workers_quarantined")
            self.tracer.event(
                EVENT_FLEET_QUARANTINED,
                shard=worker.shard,
                port=worker.port,
                restarts_in_window=self.flap_threshold,
                window_s=self.flap_window_s,
            )
            return
        self.metrics.bump("worker_restarts")
        self.tracer.event(
            EVENT_FLEET_RESTART,
            shard=worker.shard,
            port=worker.port,
            restarts=worker.restarts,
        )
        with self._lock:
            self._spawn(worker)

    # -- rolling restart -----------------------------------------------

    def rolling_restart(self, *, drain_timeout_s: float = 60.0) -> int:
        """Drain and respawn every live shard, one at a time.

        Each shard gets SIGTERM (the worker's graceful drain: every
        admitted job finishes, every open connection gets its answer),
        then a respawn on the same port, then a wait until its
        ``/healthz`` answers 200 — only then does the roll move on, so
        at most one shard is ever out and its keyspace is covered by
        the deterministic sibling throughout.  Returns how many shards
        were rolled; quarantined shards are skipped.
        """
        rolled = 0
        for worker in self._workers:
            with self._lock:
                if worker.state == STATE_QUARANTINED:
                    continue
                self._rolling.add(worker.shard)
                worker.state = STATE_DRAINING
            try:
                proc = worker.proc
                if proc is not None and proc.poll() is None:
                    proc.terminate()
                    try:
                        proc.wait(timeout=drain_timeout_s)
                    except subprocess.TimeoutExpired:
                        proc.kill()
                        proc.wait()
                with self._lock:
                    worker.restarts += 1
                    self._spawn(worker)
                self.tracer.event(
                    EVENT_FLEET_RESTART,
                    shard=worker.shard,
                    port=worker.port,
                    restarts=worker.restarts,
                    rolling=True,
                )
                if not self._client(worker).wait_ready(
                    timeout_s=drain_timeout_s
                ):
                    raise RuntimeError(
                        f"rolled worker shard={worker.shard} did not come "
                        f"back within {drain_timeout_s:g}s"
                    )
                with self._lock:
                    worker.state = STATE_UP
                self.tracer.event(
                    EVENT_FLEET_UP, shard=worker.shard, port=worker.port
                )
                rolled += 1
            finally:
                with self._lock:
                    self._rolling.discard(worker.shard)
        self.metrics.bump("rolls")
        self.tracer.event(EVENT_FLEET_ROLL, rolled=rolled)
        return rolled

    # -- shutdown ------------------------------------------------------

    def stop(self, *, drain_timeout_s: float = 30.0) -> None:
        """Stop probing, drain every worker (SIGTERM), reap stragglers."""
        self._stopping.set()
        if self._probe_thread is not None:
            self._probe_thread.join(timeout=drain_timeout_s)
            self._probe_thread = None
        procs = [w.proc for w in self._workers if w.proc is not None]
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        give_up = time.monotonic() + drain_timeout_s
        for proc in procs:
            if proc.poll() is None:
                try:
                    proc.wait(timeout=max(give_up - time.monotonic(), 0.1))
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
        with self._lock:
            for worker in self._workers:
                if worker.state != STATE_QUARANTINED:
                    worker.state = STATE_DOWN

    # -- test hooks ----------------------------------------------------

    def kill_worker(self, shard: int) -> None:
        """SIGKILL one worker (fault injection for failover tests)."""
        worker = self._worker(shard)
        if worker.proc is not None and worker.proc.poll() is None:
            worker.proc.kill()
            worker.proc.wait()
        with self._lock:
            worker.state = STATE_DOWN

    def suspend_worker(self, shard: int) -> None:
        """SIGSTOP one worker — a *hung* process, not a dead one.

        The process keeps its port bound and its PID alive, but answers
        nothing: exactly the failure the probe gate's ``down_after``
        consecutive-failure counter plus hung-process reclaim
        (:meth:`_probe_one` SIGKILLs a live-but-unresponsive process
        before respawning) exists for.  The chaos harness's hung-worker
        scenario drives this hook.
        """
        worker = self._worker(shard)
        if worker.proc is not None and worker.proc.poll() is None:
            worker.proc.send_signal(signal.SIGSTOP)

    def resume_worker(self, shard: int) -> None:
        """SIGCONT a suspended worker (undo :meth:`suspend_worker`).

        Usually unnecessary — the probe gate reclaims a hung worker with
        SIGKILL — but lets a test end a hang without the reclaim path.
        """
        worker = self._worker(shard)
        if worker.proc is not None and worker.proc.poll() is None:
            worker.proc.send_signal(signal.SIGCONT)
