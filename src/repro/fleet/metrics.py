"""Fleet-level metrics: the router's counters + per-shard health states.

The router exposes one JSON snapshot (``repro-fleet-metrics-v1``) on its
``/metrics`` route.  It deliberately does *not* proxy or merge the
workers' own ``repro-serve-metrics-v1`` snapshots — those stay available
per worker, and conflating two schemas would break both contracts.  The
fleet document answers fleet questions: how requests were routed, how
often the health gate re-routed a keyspace, how many restarts the
supervisor performed, and what state every shard is in right now.

Latency is observed router-side (admission to response) on the same
log-spaced histogram the workers use
(:class:`repro.serve.LatencyHistogram`), so fleet and single-server
latency distributions are directly comparable — which is exactly what
``repro loadgen`` and ``BENCH_serve.json`` need.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List

from repro.serve.metrics import LatencyHistogram

__all__ = [
    "FLEET_METRICS_FORMAT",
    "FLEET_METRIC_COUNTERS",
    "FleetMetrics",
    "validate_fleet_metrics",
]

#: Fleet metrics snapshot schema tag, versioned independently.
FLEET_METRICS_FORMAT = "repro-fleet-metrics-v1"

#: Counter names every fleet snapshot must carry (all >= 0 integers).
FLEET_METRIC_COUNTERS = (
    "requests_total",      # optimize requests admitted by the router
    "responses_ok",        # 200s relayed to clients
    "responses_error",     # non-200s relayed to clients
    "failover",            # responses served by a sibling shard
    "forward_retries",     # forward legs retried on another shard
    "no_shard",            # 503s because no shard could take the key
    "probe_failures",      # health probes that failed or timed out
    "worker_restarts",     # crash/hang restarts performed
    "workers_quarantined", # shards flap-quarantined (never restarted)
    "rolls",               # completed rolling restarts
    "breaker_opened",      # per-shard circuit breakers tripped open
    "breaker_probes",      # half-open probe requests admitted
    "deadline_expired",    # 504s because the end-to-end budget ran out
    "tune_requests",       # POST /v1/tune jobs admitted
    "tune_cells",          # tune cells streamed (settled, any status)
)


class FleetMetrics:
    """The router/supervisor counter registry; thread-safe.

    Mirrors :class:`repro.serve.ServeMetrics`: a fixed counter registry
    (bumping an unknown name is a loud programming error, so the
    documented schema cannot drift) plus the shared latency histogram.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {
            name: 0 for name in FLEET_METRIC_COUNTERS
        }
        self._latency = LatencyHistogram()
        self._started_at = time.perf_counter()

    def bump(self, name: str, n: int = 1) -> None:
        with self._lock:
            if name not in self._counters:
                raise KeyError(
                    f"unknown fleet counter {name!r}; known: "
                    f"{sorted(self._counters)}"
                )
            self._counters[name] += n

    def get(self, name: str) -> int:
        with self._lock:
            return self._counters[name]

    def observe_latency(self, ms: float) -> None:
        with self._lock:
            self._latency.observe(ms)

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counters)

    def snapshot(self, *, workers: List[Dict]) -> Dict:
        """The full ``repro-fleet-metrics-v1`` document for ``/metrics``.

        ``workers`` is the supervisor's per-shard state listing (shard,
        port, state, restarts, consecutive failures...).
        """
        with self._lock:
            counters = dict(self._counters)
            latency = self._latency.snapshot()
            uptime_ms = (time.perf_counter() - self._started_at) * 1000.0
        return {
            "format": FLEET_METRICS_FORMAT,
            "uptime_ms": round(uptime_ms, 3),
            "counters": counters,
            "latency_ms": latency,
            "workers": [dict(w) for w in workers],
        }


def validate_fleet_metrics(snapshot) -> List[str]:
    """Check one fleet ``/metrics`` snapshot against the schema.

    Returns every problem found (empty list = valid), in the style of
    :func:`repro.serve.validate_metrics`; the CI fleet-smoke job fails
    on a non-empty return.
    """
    problems: List[str] = []
    if not isinstance(snapshot, dict):
        return [f"snapshot is {type(snapshot).__name__}, not an object"]
    if snapshot.get("format") != FLEET_METRICS_FORMAT:
        problems.append(
            f"format is {snapshot.get('format')!r} "
            f"(expected {FLEET_METRICS_FORMAT!r})"
        )
    uptime = snapshot.get("uptime_ms")
    if isinstance(uptime, bool) or not isinstance(uptime, (int, float)) or uptime < 0:
        problems.append(f"uptime_ms must be a number >= 0, got {uptime!r}")
    counters = snapshot.get("counters")
    if not isinstance(counters, dict):
        problems.append(f"counters must be an object, got {counters!r}")
    else:
        for name in FLEET_METRIC_COUNTERS:
            value = counters.get(name)
            if (
                isinstance(value, bool)
                or not isinstance(value, int)
                or value < 0
            ):
                problems.append(
                    f"counters.{name} must be a non-negative integer, "
                    f"got {value!r}"
                )
    workers = snapshot.get("workers")
    if not isinstance(workers, list):
        problems.append(f"workers must be a list, got {workers!r}")
    else:
        for index, worker in enumerate(workers):
            if not isinstance(worker, dict):
                problems.append(f"workers[{index}] must be an object")
                continue
            for key in ("shard", "port", "restarts"):
                value = worker.get(key)
                if (
                    isinstance(value, bool)
                    or not isinstance(value, int)
                    or value < 0
                ):
                    problems.append(
                        f"workers[{index}].{key} must be a non-negative "
                        f"integer, got {value!r}"
                    )
            if not isinstance(worker.get("state"), str):
                problems.append(
                    f"workers[{index}].state must be a string, "
                    f"got {worker.get('state')!r}"
                )
    latency = snapshot.get("latency_ms")
    if not isinstance(latency, dict):
        problems.append(f"latency_ms must be an object, got {latency!r}")
    return problems
