"""The fleet's front door: a consistent-hash proxy over serve workers.

One asyncio HTTP/1.1 server (the exact wire discipline of
:mod:`repro.serve.http` — ``Connection: close``, JSON bodies) that owns
no optimizer state at all.  Every ``POST /v1/optimize`` is identified
*router-side* with the same :func:`repro.serve.identify.identify_request`
the workers use — so the routing key IS the coalescing/cache key — and
forwarded to the key's home shard on the :class:`repro.fleet.HashRing`.
That one invariant is the whole point: identical requests always land on
the same worker, whose in-process :class:`repro.serve.CoalesceTable` and
persistent per-shard :class:`repro.cache.ScheduleCache` are therefore
warm by construction.

Failover is health-gated and deterministic: when the home shard is not
routable (the supervisor's probe gate says down/draining/quarantined, or
the forward leg dies with :class:`ConnectionError`), the router walks
the ring's successor order — the same sibling every time, on every
router — and attributes the served answer with
``served_by="failover"`` plus ``failover_from`` so clients and metrics
can see exactly which answers crossed shards.  Worker 429s (admission
backpressure) are relayed, not failed over: spilling a hot shard's
overload onto its sibling would trade transient backpressure for
permanent cache pollution.

Routes::

    POST /v1/optimize   proxy with failover (the repro-serve-v1 schema)
    GET  /healthz       router liveness + fleet degradation summary
    GET  /metrics       repro-fleet-metrics-v1 snapshot
    GET  /fleet/status  shards, states, ring topology
    POST /fleet/restart rolling drain/restart of every shard
"""

from __future__ import annotations

import asyncio
import json
import math
import signal
import sys
import time
from typing import Dict, Optional, Tuple

from repro.fleet.hashring import HashRing
from repro.fleet.metrics import FleetMetrics
from repro.fleet.supervisor import FleetSupervisor
from repro.obs import NULL_TRACER
from repro.obs.events import EVENT_FLEET_FAILOVER
from repro.serve.http import (
    HttpViolation,
    IO_TIMEOUT_S,
    forward,
    read_request,
    write_response,
)
from repro.serve.identify import identify_request
from repro.serve.schema import (
    SERVED_BY_FAILOVER,
    error_payload,
    parse_request,
)
from repro.util import ServeError

__all__ = ["FLEET_FORMAT", "FleetRouter"]

#: Schema tag for the router's own documents (``/fleet/status``,
#: ``/healthz``); bump on any incompatible layout change.
FLEET_FORMAT = "repro-fleet-v1"


class FleetRouter:
    """One router process in front of a :class:`FleetSupervisor`.

    The router and supervisor share one
    :class:`~repro.fleet.metrics.FleetMetrics`, so ``/metrics`` is the
    single pane for both halves: routing counters from here, restart and
    quarantine counters from the probe loop.
    """

    def __init__(
        self,
        supervisor: FleetSupervisor,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        tracer=None,
        forward_timeout_s: float = 120.0,
        retry_after_s: float = 1.0,
    ) -> None:
        if retry_after_s <= 0:
            raise ValueError(
                f"retry_after_s must be positive, got {retry_after_s}"
            )
        self.supervisor = supervisor
        self.host = host
        self.port = int(port)
        self.metrics: FleetMetrics = supervisor.metrics
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.forward_timeout_s = float(forward_timeout_s)
        self.retry_after_s = float(retry_after_s)
        self.ring = HashRing(supervisor.shards)
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._draining = False
        self._drained: Optional[asyncio.Event] = None
        self._open_conns = 0

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> int:
        """Bind the listener; returns the bound port."""
        self._loop = asyncio.get_running_loop()
        self._drained = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def drain(self) -> None:
        """Stop accepting, let every open connection finish its answer."""
        if self._draining:
            await self._drained.wait()
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        while self._open_conns:
            await asyncio.sleep(0.02)
        self._drained.set()

    def run(self) -> int:
        """Blocking entry point for the CLI: route until SIGTERM/SIGINT.

        Assumes the supervisor's workers are already started; stops them
        after the router's own drain, so admitted work finishes on both
        tiers.  Startup errors (the port is taken) propagate as
        :class:`OSError` for the CLI to render.
        """

        async def _main() -> None:
            await self.start()
            loop = asyncio.get_running_loop()

            def _begin_drain() -> None:
                asyncio.ensure_future(self.drain())

            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(sig, _begin_drain)
                except (NotImplementedError, RuntimeError):
                    pass
            workers = ", ".join(
                f"shard{w['shard']}:{w['port']}"
                for w in self.supervisor.states()
            )
            print(
                f"repro fleet: routing on http://{self.host}:{self.port} "
                f"({workers})",
                file=sys.stderr,
                flush=True,
            )
            await self._drained.wait()

        asyncio.run(_main())
        self.supervisor.stop()
        print("repro fleet: drained, bye", file=sys.stderr, flush=True)
        return 0

    # -- HTTP plumbing (same shape as the worker's) --------------------

    async def _handle_conn(self, reader, writer) -> None:
        self._open_conns += 1
        try:
            try:
                method, path, _headers, body = await asyncio.wait_for(
                    read_request(reader), timeout=IO_TIMEOUT_S
                )
            except HttpViolation as exc:
                await write_response(
                    writer, exc.status, error_payload(exc.status, str(exc))
                )
                return
            except (
                asyncio.TimeoutError,
                asyncio.IncompleteReadError,
                ConnectionError,
                ValueError,
            ):
                return
            status, payload, extra = await self._route(method, path, body)
            await write_response(writer, status, payload, extra)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._open_conns -= 1
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict, Optional[Dict[str, str]]]:
        if path == "/healthz":
            if method != "GET":
                return 405, error_payload(405, "healthz is GET-only"), None
            return self._healthz()
        if path == "/metrics":
            if method != "GET":
                return 405, error_payload(405, "metrics is GET-only"), None
            return 200, self.metrics_snapshot(), None
        if path == "/fleet/status":
            if method != "GET":
                return 405, error_payload(405, "status is GET-only"), None
            return 200, self.status_snapshot(), None
        if path == "/fleet/restart":
            if method != "POST":
                return 405, error_payload(405, "restart is POST-only"), None
            return await self._handle_restart()
        if path == "/v1/optimize":
            if method != "POST":
                return 405, error_payload(405, "optimize is POST-only"), None
            return await self._handle_optimize(body)
        return 404, error_payload(404, f"unknown path {path!r}"), None

    def _retry_header(self) -> Dict[str, str]:
        return {"Retry-After": str(max(1, math.ceil(self.retry_after_s)))}

    # -- operability documents -----------------------------------------

    def _healthz(self) -> Tuple[int, Dict, Optional[Dict[str, str]]]:
        states = self.supervisor.states()
        up = sum(1 for w in states if w["state"] == "up")
        if self._draining:
            status, code = "draining", 503
        elif up == len(states):
            status, code = "ok", 200
        elif up > 0:
            status, code = "degraded", 200
        else:
            status, code = "down", 503
        payload = {
            "format": FLEET_FORMAT,
            "status": status,
            "draining": self._draining,
            "workers_up": up,
            "workers_total": len(states),
        }
        extra = self._retry_header() if code == 503 else None
        return code, payload, extra

    def metrics_snapshot(self) -> Dict:
        """The live ``repro-fleet-metrics-v1`` document."""
        return self.metrics.snapshot(workers=self.supervisor.states())

    def status_snapshot(self) -> Dict:
        """The ``/fleet/status`` document: shards, states, topology."""
        return {
            "format": FLEET_FORMAT,
            "draining": self._draining,
            "workers": self.supervisor.states(),
            "ring": {
                "shards": list(self.ring.shards),
                "replicas": self.ring.replicas,
            },
        }

    async def _handle_restart(
        self,
    ) -> Tuple[int, Dict, Optional[Dict[str, str]]]:
        try:
            rolled = await self._loop.run_in_executor(
                None, self.supervisor.rolling_restart
            )
        except RuntimeError as exc:
            return 500, error_payload(500, str(exc)), None
        return 200, {"format": FLEET_FORMAT, "rolled": rolled}, None

    # -- the proxy leg -------------------------------------------------

    async def _handle_optimize(
        self, body: bytes
    ) -> Tuple[int, Dict, Optional[Dict[str, str]]]:
        arrived = time.perf_counter()
        self.metrics.bump("requests_total")
        if self._draining:
            self.metrics.bump("responses_error")
            return (
                503,
                error_payload(
                    503,
                    "fleet router is draining; retry shortly",
                    retry_after_s=self.retry_after_s,
                ),
                self._retry_header(),
            )
        try:
            request = parse_request(json.loads(body.decode("utf-8")))
            # identify_request builds the benchmark Funcs to fingerprint
            # them — CPU work, so keep it off the event loop.
            _case, _arch, key = await self._loop.run_in_executor(
                None, identify_request, request
            )
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            self.metrics.bump("responses_error")
            return 400, error_payload(400, f"request is not JSON: {exc}"), None
        except ServeError as exc:
            self.metrics.bump("responses_error")
            return 400, error_payload(400, str(exc)), None

        order = self.ring.successors(key)
        home = order[0]
        outcome = await self._forward_with_failover(order, home, body)
        elapsed_ms = (time.perf_counter() - arrived) * 1000.0
        self.metrics.observe_latency(elapsed_ms)
        status, payload, extra = outcome
        self.metrics.bump(
            "responses_ok" if status == 200 else "responses_error"
        )
        return status, payload, extra

    async def _forward_with_failover(
        self, order, home: int, body: bytes
    ) -> Tuple[int, Dict, Optional[Dict[str, str]]]:
        """Walk the ring order until a shard answers; attribute failover.

        A shard is tried when the health gate says it is routable; a
        forward leg that dies (:class:`ConnectionError` — the worker was
        SIGKILLed mid-request, say) or answers 503 (draining) moves on
        to the next successor.  Any other answer — success *or* error —
        is relayed as-is: a 400 or a 429 is the same answer on every
        shard, so hopping would only hide it.
        """
        tried = 0
        for shard in order:
            if not self.supervisor.routable(shard):
                continue
            if tried:
                self.metrics.bump("forward_retries")
            tried += 1
            try:
                status, _headers, payload = await forward(
                    self.supervisor.host,
                    self.supervisor.port_of(shard),
                    "POST",
                    "/v1/optimize",
                    body,
                    timeout_s=self.forward_timeout_s,
                )
            except ConnectionError:
                continue
            except ServeError as exc:
                return 502, error_payload(502, f"shard {shard}: {exc}"), None
            if status == 503:
                continue  # draining worker the gate has not caught yet
            if status == 200:
                payload = dict(payload)
                payload["shard"] = shard
                if shard != home:
                    payload["served_by"] = SERVED_BY_FAILOVER
                    payload["failover_from"] = home
                    self.metrics.bump("failover")
                    self.tracer.event(
                        EVENT_FLEET_FAILOVER,
                        key=payload.get("key", ""),
                        home=home,
                        served_by_shard=shard,
                    )
                return 200, payload, None
            extra = None
            if status in (429, 503) and "retry_after_s" in payload:
                extra = {
                    "Retry-After": str(
                        max(1, math.ceil(payload["retry_after_s"]))
                    )
                }
            return status, payload, extra
        self.metrics.bump("no_shard")
        return (
            503,
            error_payload(
                503,
                "no shard can take this request right now (all down, "
                "draining, or quarantined); retry shortly",
                retry_after_s=self.retry_after_s,
            ),
            self._retry_header(),
        )
