"""The fleet's front door: a consistent-hash proxy over serve workers.

One asyncio HTTP/1.1 server (the exact wire discipline of
:mod:`repro.serve.http` — ``Connection: close``, JSON bodies) that owns
no optimizer state at all.  Every ``POST /v1/optimize`` is identified
*router-side* with the same :func:`repro.serve.identify.identify_request`
the workers use — so the routing key IS the coalescing/cache key — and
forwarded to the key's home shard on the :class:`repro.fleet.HashRing`.
That one invariant is the whole point: identical requests always land on
the same worker, whose in-process :class:`repro.serve.CoalesceTable` and
persistent per-shard :class:`repro.cache.ScheduleCache` are therefore
warm by construction.

Failover is health-gated and deterministic: when the home shard is not
routable (the supervisor's probe gate says down/draining/quarantined, or
the forward leg dies with :class:`ConnectionError`), the router walks
the ring's successor order — the same sibling every time, on every
router — and attributes the served answer with
``served_by="failover"`` plus ``failover_from`` so clients and metrics
can see exactly which answers crossed shards.  Worker 429s (admission
backpressure) are relayed, not failed over: spilling a hot shard's
overload onto its sibling would trade transient backpressure for
permanent cache pollution.

Routes::

    POST /v1/optimize   proxy with failover (the repro-serve-v1 schema)
    POST /v1/tune       fleet autotuning job (repro-tune-v1, chunked
                        NDJSON stream; see :mod:`repro.tune`)
    GET  /healthz       router liveness + fleet degradation summary
    GET  /metrics       repro-fleet-metrics-v1 snapshot
    GET  /fleet/status  shards, states, ring topology
    POST /fleet/restart rolling drain/restart of every shard

``/v1/tune`` is the one streaming route: cells are planned router-side,
executed as ordinary ``/v1/optimize`` calls *through this router's own
front door* (coalescing, breakers, deadline budgets and failover apply
to tune traffic unchanged), journaled per cell in a resumable
``repro-sweep-v1`` journal keyed by the request's deterministic
``tune_id``, and streamed back as one NDJSON record per settled cell
with the final ``repro-tune-report-v1`` document as the last line.
"""

from __future__ import annotations

import asyncio
import json
import math
import os
import signal
import sys
import time
from typing import Dict, Optional, Tuple

from repro.cache import check_shard_caches
from repro.fleet.breaker import CircuitBreaker
from repro.fleet.hashring import HashRing
from repro.fleet.metrics import FleetMetrics
from repro.fleet.supervisor import FleetSupervisor
from repro.obs import NULL_TRACER
from repro.obs.events import EVENT_FLEET_FAILOVER
from repro.serve.http import (
    DEADLINE_HEADER,
    HttpViolation,
    IO_TIMEOUT_S,
    forward,
    read_request,
    write_chunk,
    write_chunked_end,
    write_chunked_head,
    write_response,
)
from repro.serve.identify import identify_request
from repro.sweep import Journal
from repro.tune import TUNE_FORMAT, TuneRunner, plan_tune_cells, tune_id
from repro.serve.schema import (
    REASON_DEADLINE_EXPIRED,
    REASON_INVALID_SPEC,
    SERVED_BY_FAILOVER,
    ServeRequest,
    error_payload,
    parse_request,
    render_for,
)
from repro.util import ServeError, ValidationError
from repro.util.deadline import Deadline

__all__ = ["FLEET_FORMAT", "FleetRouter"]

#: Schema tag for the router's own documents (``/fleet/status``,
#: ``/healthz``); bump on any incompatible layout change.
FLEET_FORMAT = "repro-fleet-v1"


class FleetRouter:
    """One router process in front of a :class:`FleetSupervisor`.

    The router and supervisor share one
    :class:`~repro.fleet.metrics.FleetMetrics`, so ``/metrics`` is the
    single pane for both halves: routing counters from here, restart and
    quarantine counters from the probe loop.
    """

    def __init__(
        self,
        supervisor: FleetSupervisor,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        tracer=None,
        forward_timeout_s: float = 120.0,
        retry_after_s: float = 1.0,
        breaker_failure_threshold: int = 3,
        breaker_open_for_s: float = 5.0,
        breaker_clock=None,
        tune_dir: Optional[str] = None,
        tune_jobs: int = 2,
    ) -> None:
        if retry_after_s <= 0:
            raise ValueError(
                f"retry_after_s must be positive, got {retry_after_s}"
            )
        self.supervisor = supervisor
        self.host = host
        self.port = int(port)
        self.metrics: FleetMetrics = supervisor.metrics
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.forward_timeout_s = float(forward_timeout_s)
        self.retry_after_s = float(retry_after_s)
        self.tune_dir = tune_dir
        self.tune_jobs = int(tune_jobs)
        if self.tune_jobs < 1:
            raise ValueError(f"tune_jobs must be >= 1, got {tune_jobs}")
        self.ring = HashRing(supervisor.shards)
        self.breaker = CircuitBreaker(
            supervisor.shards,
            failure_threshold=breaker_failure_threshold,
            open_for_s=breaker_open_for_s,
            clock=breaker_clock,
            metrics=self.metrics,
            tracer=self.tracer,
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._draining = False
        self._drained: Optional[asyncio.Event] = None
        self._open_conns = 0

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> int:
        """Bind the listener; returns the bound port."""
        self._loop = asyncio.get_running_loop()
        self._drained = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def drain(self) -> None:
        """Stop accepting, let every open connection finish its answer."""
        if self._draining:
            await self._drained.wait()
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        while self._open_conns:
            await asyncio.sleep(0.02)
        self._drained.set()

    def run(self) -> int:
        """Blocking entry point for the CLI: route until SIGTERM/SIGINT.

        Assumes the supervisor's workers are already started; stops them
        after the router's own drain, so admitted work finishes on both
        tiers.  Startup errors (the port is taken) propagate as
        :class:`OSError` for the CLI to render.
        """

        async def _main() -> None:
            await self.start()
            loop = asyncio.get_running_loop()

            def _begin_drain() -> None:
                asyncio.ensure_future(self.drain())

            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(sig, _begin_drain)
                except (NotImplementedError, RuntimeError):
                    pass
            workers = ", ".join(
                f"shard{w['shard']}:{w['port']}"
                for w in self.supervisor.states()
            )
            print(
                f"repro fleet: routing on http://{self.host}:{self.port} "
                f"({workers})",
                file=sys.stderr,
                flush=True,
            )
            await self._drained.wait()

        asyncio.run(_main())
        self.supervisor.stop()
        print("repro fleet: drained, bye", file=sys.stderr, flush=True)
        from repro.core.exitcodes import EXIT_OK

        return EXIT_OK

    # -- HTTP plumbing (same shape as the worker's) --------------------

    async def _handle_conn(self, reader, writer) -> None:
        self._open_conns += 1
        try:
            try:
                method, path, _headers, body = await asyncio.wait_for(
                    read_request(reader), timeout=IO_TIMEOUT_S
                )
            except HttpViolation as exc:
                await write_response(
                    writer, exc.status, error_payload(exc.status, str(exc))
                )
                return
            except (
                asyncio.TimeoutError,
                asyncio.IncompleteReadError,
                ConnectionError,
                ValueError,
            ):
                return
            if path == "/v1/tune":
                # The one streaming route: records go out as they settle,
                # so it cannot fit _route's (status, payload) shape.
                if method != "POST":
                    await write_response(
                        writer, 405, error_payload(405, "tune is POST-only")
                    )
                else:
                    await self._handle_tune(writer, body)
                return
            status, payload, extra = await self._route(method, path, body)
            await write_response(writer, status, payload, extra)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._open_conns -= 1
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict, Optional[Dict[str, str]]]:
        if path == "/healthz":
            if method != "GET":
                return 405, error_payload(405, "healthz is GET-only"), None
            return self._healthz()
        if path == "/metrics":
            if method != "GET":
                return 405, error_payload(405, "metrics is GET-only"), None
            return 200, self.metrics_snapshot(), None
        if path == "/fleet/status":
            if method != "GET":
                return 405, error_payload(405, "status is GET-only"), None
            # The cache consistency check reads shard files — disk work,
            # so keep it off the event loop.
            return (
                200,
                await self._loop.run_in_executor(None, self.status_snapshot),
                None,
            )
        if path == "/fleet/restart":
            if method != "POST":
                return 405, error_payload(405, "restart is POST-only"), None
            return await self._handle_restart()
        if path == "/v1/optimize":
            if method != "POST":
                return 405, error_payload(405, "optimize is POST-only"), None
            return await self._handle_optimize(body)
        return 404, error_payload(404, f"unknown path {path!r}"), None

    def _retry_header(self) -> Dict[str, str]:
        return {"Retry-After": str(max(1, math.ceil(self.retry_after_s)))}

    # -- operability documents -----------------------------------------

    def _healthz(self) -> Tuple[int, Dict, Optional[Dict[str, str]]]:
        states = self.supervisor.states()
        up = sum(1 for w in states if w["state"] == "up")
        if self._draining:
            status, code = "draining", 503
        elif up == len(states):
            status, code = "ok", 200
        elif up > 0:
            status, code = "degraded", 200
        else:
            status, code = "down", 503
        payload = {
            "format": FLEET_FORMAT,
            "status": status,
            "draining": self._draining,
            "workers_up": up,
            "workers_total": len(states),
        }
        extra = self._retry_header() if code == 503 else None
        return code, payload, extra

    def _workers_with_breaker(self) -> list:
        """Supervisor states with each shard's breaker state merged in."""
        breaker_states = self.breaker.states()
        workers = self.supervisor.states()
        for worker in workers:
            worker["breaker"] = breaker_states.get(worker["shard"], "closed")
        return workers

    def metrics_snapshot(self) -> Dict:
        """The live ``repro-fleet-metrics-v1`` document."""
        return self.metrics.snapshot(workers=self._workers_with_breaker())

    def status_snapshot(self, *, check_caches: bool = True) -> Dict:
        """The ``/fleet/status`` document: shards, states, topology.

        When the fleet runs with a persistent schedule cache, the
        document also carries the cross-shard consistency report
        (:func:`repro.cache.check_shard_caches`): shard stores sharing a
        key (failover writes) must agree bit-for-bit, and corrupt lines
        on disk are surfaced per shard.  ``check_caches=False`` skips
        the disk reads (the CLI's ``--no-cache-check``).
        """
        payload = {
            "format": FLEET_FORMAT,
            "draining": self._draining,
            "workers": self._workers_with_breaker(),
            "ring": {
                "shards": list(self.ring.shards),
                "replicas": self.ring.replicas,
            },
        }
        if check_caches and self.supervisor.cache_path:
            payload["cache"] = check_shard_caches(
                self.supervisor.cache_path, self.supervisor.shards
            )
        return payload

    async def _handle_restart(
        self,
    ) -> Tuple[int, Dict, Optional[Dict[str, str]]]:
        try:
            rolled = await self._loop.run_in_executor(
                None, self.supervisor.rolling_restart
            )
        except RuntimeError as exc:
            return 500, error_payload(500, str(exc)), None
        return 200, {"format": FLEET_FORMAT, "rolled": rolled}, None

    # -- the proxy leg -------------------------------------------------

    async def _handle_optimize(
        self, body: bytes
    ) -> Tuple[int, Dict, Optional[Dict[str, str]]]:
        arrived = time.perf_counter()
        self.metrics.bump("requests_total")
        if self._draining:
            self.metrics.bump("responses_error")
            return (
                503,
                error_payload(
                    503,
                    "fleet router is draining; retry shortly",
                    retry_after_s=self.retry_after_s,
                ),
                self._retry_header(),
            )
        request = None
        try:
            request = parse_request(json.loads(body.decode("utf-8")))
            # identify_request builds the benchmark Funcs (lowering spec
            # targets) to fingerprint them — CPU work, so keep it off
            # the event loop.
            _case, _arch, key = await self._loop.run_in_executor(
                None, identify_request, request
            )
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            self.metrics.bump("responses_error")
            return 400, error_payload(400, f"request is not JSON: {exc}"), None
        except ServeError as exc:
            self.metrics.bump("responses_error")
            return 400, render_for(request, error_payload(400, str(exc))), None
        except ValidationError as exc:
            # A spec that does not lower is the caller's bug: reject at
            # the router before any shard burns a forward leg on it.
            self.metrics.bump("responses_error")
            return (
                400,
                render_for(
                    request,
                    error_payload(400, str(exc), reason=REASON_INVALID_SPEC),
                ),
                None,
            )

        # The end-to-end budget is charged ONCE, here at admission: every
        # forward leg (failover successors included) sees only what is
        # left of it, so a failed-over request can never double-spend.
        deadline = (
            Deadline(request.deadline_ms / 1000.0, "fleet-admission")
            if request.deadline_ms is not None
            else None
        )
        order = self.ring.successors(key)
        home = order[0]
        outcome = await self._forward_with_failover(
            order, home, body, request=request, deadline=deadline
        )
        elapsed_ms = (time.perf_counter() - arrived) * 1000.0
        self.metrics.observe_latency(elapsed_ms)
        status, payload, extra = outcome
        self.metrics.bump(
            "responses_ok" if status == 200 else "responses_error"
        )
        return status, payload, extra

    def _deadline_expired_payload(
        self, request: ServeRequest, home: int
    ) -> Tuple[int, Dict, Optional[Dict[str, str]]]:
        """The router-side 504: budget died between forward legs.

        Attribution (benchmark/platform/home shard) is preserved so a
        timed-out caller still learns which request died where — the
        chaos harness asserts on exactly these fields.
        """
        self.metrics.bump("deadline_expired")
        payload = error_payload(
            504,
            f"end-to-end deadline of {request.deadline_ms:g} ms expired "
            f"before a shard could answer",
            reason=REASON_DEADLINE_EXPIRED,
        )
        payload["benchmark"] = request.label
        payload["platform"] = request.platform
        payload["shard"] = home
        return 504, render_for(request, payload), None

    async def _forward_with_failover(
        self,
        order,
        home: int,
        body: bytes,
        *,
        request: ServeRequest,
        deadline: Optional[Deadline] = None,
    ) -> Tuple[int, Dict, Optional[Dict[str, str]]]:
        """Walk the ring order until a shard answers; attribute failover.

        A shard is tried when the health gate says it is routable AND
        its circuit breaker admits the leg; a forward leg that dies
        (:class:`ConnectionError` — the worker was SIGKILLed
        mid-request, say) feeds the breaker and moves on, a 503
        (draining) moves on without penalizing the breaker (an HTTP
        answer is proof of life).  Any other answer — success *or*
        error — is relayed as-is: a 400 or a 429 is the same answer on
        every shard, so hopping would only hide it.

        Between legs the remaining end-to-end budget is re-checked: a
        deadline that dies after the home shard failed but before the
        successor answers yields a 504 ``deadline_expired`` (never a
        wasted search on the successor), and each admitted leg carries
        the remaining budget in the :data:`DEADLINE_HEADER` so the
        worker's own admission gate sees the same clock.
        """
        tried = 0
        for shard in order:
            if not self.supervisor.routable(shard):
                continue
            if not self.breaker.allow(shard):
                continue
            if deadline is not None and deadline.expired():
                return self._deadline_expired_payload(request, home)
            if tried:
                self.metrics.bump("forward_retries")
            tried += 1
            extra_headers = None
            if deadline is not None:
                extra_headers = {
                    DEADLINE_HEADER: f"{deadline.remaining_ms():.3f}"
                }
            try:
                status, _headers, payload = await forward(
                    self.supervisor.host,
                    self.supervisor.port_of(shard),
                    "POST",
                    "/v1/optimize",
                    body,
                    timeout_s=self.forward_timeout_s,
                    extra_headers=extra_headers,
                )
            except ConnectionError:
                self.breaker.record_failure(shard)
                continue
            except ServeError as exc:
                self.breaker.record_success(shard)
                return 502, error_payload(502, f"shard {shard}: {exc}"), None
            self.breaker.record_success(shard)
            if status == 503:
                continue  # draining worker the gate has not caught yet
            if status == 200:
                payload = dict(payload)
                payload["shard"] = shard
                if shard != home:
                    payload["served_by"] = SERVED_BY_FAILOVER
                    payload["failover_from"] = home
                    self.metrics.bump("failover")
                    self.tracer.event(
                        EVENT_FLEET_FAILOVER,
                        key=payload.get("key", ""),
                        home=home,
                        served_by_shard=shard,
                    )
                return 200, payload, None
            extra = None
            if status in (429, 503) and "retry_after_s" in payload:
                extra = {
                    "Retry-After": str(
                        max(1, math.ceil(payload["retry_after_s"]))
                    )
                }
            return status, payload, extra
        self.metrics.bump("no_shard")
        return (
            503,
            error_payload(
                503,
                "no shard can take this request right now (all down, "
                "draining, or quarantined); retry shortly",
                retry_after_s=self.retry_after_s,
            ),
            self._retry_header(),
        )

    # -- the tune job --------------------------------------------------

    def _tune_journal_path(self, job_id: str) -> str:
        """Where one tune job's resumable journal lives.

        Deterministic from the ``tune_id``, so re-POSTing the same
        request body — after a router SIGKILL, say — finds its own
        half-finished journal and resumes instead of recomputing.
        """
        if self.tune_dir:
            base = self.tune_dir
        elif self.supervisor.cache_path:
            base = os.path.dirname(
                os.path.abspath(self.supervisor.cache_path)
            )
        else:
            base = os.getcwd()
        return os.path.join(base, f"tune-{job_id}.jsonl")

    async def _handle_tune(self, writer, body: bytes) -> None:
        """``POST /v1/tune``: plan, fan out, stream settled cells.

        The job itself runs on an executor thread (it drives blocking
        :class:`~repro.serve.ServeClient` round-trips back through this
        router's own listening socket); settled-cell records cross back
        onto the loop via ``call_soon_threadsafe`` and go out as NDJSON
        chunks the moment they land, with the final
        ``repro-tune-report-v1`` document as the stream's last record.
        """
        self.metrics.bump("tune_requests")
        if self._draining:
            await write_response(
                writer,
                503,
                error_payload(
                    503,
                    "fleet router is draining; retry shortly",
                    retry_after_s=self.retry_after_s,
                ),
                self._retry_header(),
            )
            return
        try:
            payload = json.loads(body.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            await write_response(
                writer, 400, error_payload(400, f"request is not JSON: {exc}")
            )
            return
        try:
            # Planning lowers corpus specs to fingerprint cells — CPU
            # work, so keep it off the event loop.
            cells = await self._loop.run_in_executor(
                None, plan_tune_cells, payload
            )
        except (KeyError, ValueError) as exc:
            await write_response(writer, 400, error_payload(400, str(exc)))
            return
        job_id = tune_id(payload)
        journal = Journal(self._tune_journal_path(job_id))
        loop = self._loop
        queue: asyncio.Queue = asyncio.Queue()

        def on_record(record: Dict) -> None:
            loop.call_soon_threadsafe(queue.put_nowait, record)

        def run_job():
            runner = TuneRunner(
                journal,
                host=self.host,
                port=self.port,
                jobs=self.tune_jobs,
                timeout_s=self.forward_timeout_s,
                deadline_ms=payload.get("deadline_ms"),
                tracer=self.tracer,
            )
            return runner.run(cells, tune_id=job_id, on_record=on_record)

        await write_chunked_head(
            writer, 200, {"x-repro-tune-id": job_id}
        )
        future = loop.run_in_executor(None, run_job)
        try:
            while True:
                get = asyncio.ensure_future(queue.get())
                await asyncio.wait(
                    {get, future}, return_when=asyncio.FIRST_COMPLETED
                )
                if get.done():
                    self.metrics.bump("tune_cells")
                    await write_chunk(writer, get.result())
                    continue
                get.cancel()
                break
            report = await future
            while not queue.empty():
                self.metrics.bump("tune_cells")
                await write_chunk(writer, queue.get_nowait())
            await write_chunk(writer, report.document())
        except Exception as exc:  # noqa: BLE001 — stream the failure
            await write_chunk(
                writer,
                {"format": TUNE_FORMAT, "kind": "error", "error": str(exc)},
            )
        await write_chunked_end(writer)
