"""In-process fleet harness for tests and the CI fleet-smoke job.

``FleetThread`` boots a whole fleet — N ``repro serve`` worker
subprocesses under a :class:`repro.fleet.FleetSupervisor`, plus a
:class:`repro.fleet.FleetRouter` on a daemon thread with its own event
loop — and tears it all down on exit::

    with FleetThread(workers=2, cache_path=tmp / "cache.jsonl") as fleet:
        client = ServeClient(port=fleet.port)
        result = client.optimize("matmul", "i7-5930k", fast=True)

The supervisor is exposed (``fleet.supervisor``) so failover tests can
reach its fault hooks (``kill_worker``, per-shard ``worker_env``) while
talking to the router like any client would.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional

from repro.fleet.router import FleetRouter
from repro.fleet.supervisor import FleetSupervisor

__all__ = ["FleetThread"]


class FleetThread:
    """One supervisor + one router on one daemon thread."""

    def __init__(self, *, router_kwargs=None, **supervisor_kwargs) -> None:
        self.supervisor = FleetSupervisor(**supervisor_kwargs)
        self.router = FleetRouter(self.supervisor, **(router_kwargs or {}))
        self.port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def start(self, timeout_s: float = 60.0) -> int:
        """Boot workers, bind the router; block until both are ready."""
        self.supervisor.start()
        try:
            self._thread = threading.Thread(
                target=self._run, name="repro-fleet-loop", daemon=True
            )
            self._thread.start()
            if not self._ready.wait(timeout_s):
                raise RuntimeError(
                    "fleet router failed to start within the timeout"
                )
            if self._startup_error is not None:
                raise self._startup_error
        except BaseException:
            self.supervisor.stop()
            raise
        return self.port

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            self.port = loop.run_until_complete(self.router.start())
        except BaseException as exc:  # surfaced from start()
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    def stop(self, timeout_s: float = 60.0) -> None:
        """Drain the router, stop the loop, drain every worker."""
        if self._loop is not None and self._thread is not None:
            if self._thread.is_alive():
                future = asyncio.run_coroutine_threadsafe(
                    self.router.drain(), self._loop
                )
                future.result(timeout=timeout_s)
                self._loop.call_soon_threadsafe(self._loop.stop)
                self._thread.join(timeout=timeout_s)
        self.supervisor.stop()

    def __enter__(self) -> "FleetThread":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
