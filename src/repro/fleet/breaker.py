"""Per-shard circuit breaking for the fleet router's forward legs.

A consistent-hash fleet has a failure mode plain health probing is too
slow for: a shard that accepts TCP connections but fails every request
(wedged process, poisoned state) keeps eating its keyspace's traffic —
plus one forward-timeout of router latency per request — until the
supervisor's probe loop notices.  The breaker closes that gap from the
*data path*: every forward-leg outcome feeds the shard's breaker, and
``failure_threshold`` consecutive connection failures trip it **open**,
after which the router skips the shard outright (failover takes the
keyspace) without waiting for a probe cycle.

The state machine is the classic three-state breaker, kept boring and
deterministic on purpose:

* **closed** — normal; consecutive connection failures are counted,
  any success resets the count.
* **open** — all requests refused for ``open_for_s`` seconds (measured
  on an injectable ``clock``, so tests drive time by hand).
* **half_open** — after the cool-off, exactly *one* probe request is
  admitted (counter-gated, not sampled — no randomness anywhere);
  success closes the breaker, failure re-opens it for another
  ``open_for_s``.

The breaker is a pure state machine: it owns no sockets and does its
own metrics/trace plumbing only through the ``FleetMetrics`` registry
and tracer handed in (counters ``breaker_opened`` / ``breaker_probes``,
event :data:`repro.obs.events.EVENT_FLEET_BREAKER` on every state
transition).  Deciding *what counts as a failure* stays in the router:
only transport-level failures (:class:`ConnectionError` legs) feed
:meth:`record_failure` — an HTTP error relayed from a live worker is an
answer, not an outage.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional, Sequence

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "CircuitBreaker",
]

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


class _ShardState:
    __slots__ = ("state", "failures", "opened_at", "probe_in_flight")

    def __init__(self) -> None:
        self.state = BREAKER_CLOSED
        self.failures = 0
        self.opened_at = 0.0
        self.probe_in_flight = False


class CircuitBreaker:
    """One breaker per shard, consulted on every forward leg.

    Thread-safe (one lock around the whole table) although the router
    drives it from a single event loop — status snapshots may be read
    from other threads.
    """

    def __init__(
        self,
        shards: Sequence[int],
        *,
        failure_threshold: int = 3,
        open_for_s: float = 5.0,
        clock: Optional[Callable[[], float]] = None,
        metrics=None,
        tracer=None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if open_for_s <= 0:
            raise ValueError(f"open_for_s must be positive, got {open_for_s}")
        self.failure_threshold = int(failure_threshold)
        self.open_for_s = float(open_for_s)
        self._clock = clock if clock is not None else time.monotonic
        self._metrics = metrics
        self._tracer = tracer
        self._lock = threading.Lock()
        self._shards: Dict[int, _ShardState] = {
            int(shard): _ShardState() for shard in shards
        }

    # -- plumbing ------------------------------------------------------

    def _entry(self, shard: int) -> _ShardState:
        try:
            return self._shards[shard]
        except KeyError:
            raise KeyError(
                f"unknown shard {shard}; known: {sorted(self._shards)}"
            ) from None

    def _transition(self, shard: int, entry: _ShardState, state: str) -> None:
        if entry.state == state:
            return
        entry.state = state
        if self._tracer is not None:
            from repro.obs.events import EVENT_FLEET_BREAKER

            self._tracer.event(EVENT_FLEET_BREAKER, shard=shard, state=state)

    # -- the data-path API ---------------------------------------------

    def allow(self, shard: int) -> bool:
        """May the router forward to this shard right now?

        Open breakers start admitting again only through the half-open
        probe: once ``open_for_s`` has elapsed, the *first* caller gets
        the probe slot (and ``breaker_probes`` is bumped); everyone else
        keeps being refused until that probe's outcome is recorded.
        """
        with self._lock:
            entry = self._entry(shard)
            if entry.state == BREAKER_CLOSED:
                return True
            if entry.state == BREAKER_OPEN:
                if self._clock() - entry.opened_at < self.open_for_s:
                    return False
                self._transition(shard, entry, BREAKER_HALF_OPEN)
                entry.probe_in_flight = False
            # half-open: exactly one probe may be in flight.
            if entry.probe_in_flight:
                return False
            entry.probe_in_flight = True
            if self._metrics is not None:
                self._metrics.bump("breaker_probes")
            return True

    def record_success(self, shard: int) -> None:
        """A forward leg to ``shard`` got an HTTP answer (any status)."""
        with self._lock:
            entry = self._entry(shard)
            entry.failures = 0
            entry.probe_in_flight = False
            self._transition(shard, entry, BREAKER_CLOSED)

    def record_failure(self, shard: int) -> None:
        """A forward leg to ``shard`` died at the transport level."""
        with self._lock:
            entry = self._entry(shard)
            entry.failures += 1
            entry.probe_in_flight = False
            if entry.state == BREAKER_HALF_OPEN:
                # The probe failed: straight back to open, fresh cool-off.
                entry.opened_at = self._clock()
                self._transition(shard, entry, BREAKER_OPEN)
                if self._metrics is not None:
                    self._metrics.bump("breaker_opened")
                return
            if (
                entry.state == BREAKER_CLOSED
                and entry.failures >= self.failure_threshold
            ):
                entry.opened_at = self._clock()
                self._transition(shard, entry, BREAKER_OPEN)
                if self._metrics is not None:
                    self._metrics.bump("breaker_opened")

    # -- introspection -------------------------------------------------

    def state_of(self, shard: int) -> str:
        with self._lock:
            return self._entry(shard).state

    def states(self) -> Dict[int, str]:
        """Per-shard breaker state, for status/metrics documents."""
        with self._lock:
            return {shard: entry.state for shard, entry in self._shards.items()}
