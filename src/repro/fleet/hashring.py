"""Consistent-hash routing for the serve fleet.

The router must send one optimization identity (the
:func:`repro.serve.schema.coalesce_key` — func/arch/options
fingerprints) to the *same* shard every time, or request coalescing and
the shard-local :class:`repro.cache.ScheduleCache` stop being
warm-by-construction.  A classic consistent-hash ring with virtual
nodes gives that stickiness plus two properties a modulo hash lacks:

* **deterministic failover order** — :meth:`HashRing.successors` walks
  the ring clockwise from the key's position, yielding each distinct
  shard once; the second entry is *the* sibling that absorbs a down
  shard's keyspace, the same sibling on every router and every restart;
* **bounded remap under resize** — adding/removing one shard moves only
  the keys adjacent to its virtual nodes, not ``(N-1)/N`` of them, so a
  future elastic fleet keeps most caches warm through a topology change.

Everything is derived from SHA-256 over stable strings; there is no
process-local state, so two routers (or a router and a test) always
agree on placement.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence, Tuple

__all__ = ["HashRing"]

#: Virtual nodes per shard; enough for ±10%-ish balance at small N
#: without making ring construction measurable.
DEFAULT_REPLICAS = 64


def _point(label: str) -> int:
    return int.from_bytes(
        hashlib.sha256(label.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """An immutable ring over integer shard ids.

    >>> ring = HashRing([0, 1, 2])
    >>> ring.route("deadbeef")        # doctest: +SKIP
    1
    >>> ring.successors("deadbeef")   # doctest: +SKIP
    [1, 0, 2]
    """

    def __init__(
        self, shards: Sequence[int], *, replicas: int = DEFAULT_REPLICAS
    ) -> None:
        shard_list = list(shards)
        if not shard_list:
            raise ValueError("HashRing needs at least one shard")
        if len(set(shard_list)) != len(shard_list):
            raise ValueError(f"duplicate shard ids: {shard_list}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.shards: Tuple[int, ...] = tuple(sorted(shard_list))
        self.replicas = int(replicas)
        points: List[Tuple[int, int]] = []
        for shard in self.shards:
            for replica in range(self.replicas):
                points.append((_point(f"shard-{shard}#{replica}"), shard))
        points.sort()
        self._points = points
        self._hashes = [h for h, _ in points]

    def __len__(self) -> int:
        return len(self.shards)

    def route(self, key: str) -> int:
        """The home shard of ``key`` (first ring point clockwise)."""
        return self.successors(key, limit=1)[0]

    def successors(self, key: str, *, limit: int = 0) -> List[int]:
        """Distinct shards in ring order starting at ``key``'s position.

        The first entry is the home shard; the second is the
        deterministic failover sibling; and so on until every shard
        appears once.  ``limit`` truncates the walk (0 = all shards).
        """
        start = bisect.bisect_right(self._hashes, _point(key))
        seen: Dict[int, None] = {}
        want = len(self.shards) if limit < 1 else min(limit, len(self.shards))
        for offset in range(len(self._points)):
            _, shard = self._points[(start + offset) % len(self._points)]
            if shard not in seen:
                seen[shard] = None
                if len(seen) == want:
                    break
        return list(seen)

    def sibling(self, key: str) -> int:
        """The failover shard for ``key`` — distinct from its home shard
        whenever the ring has more than one shard."""
        order = self.successors(key, limit=2)
        return order[1] if len(order) > 1 else order[0]

    def keyspace_share(self, sample_keys: Sequence[str]) -> Dict[int, int]:
        """How many of ``sample_keys`` each shard owns (balance probe)."""
        share = {shard: 0 for shard in self.shards}
        for key in sample_keys:
            share[self.route(key)] += 1
        return share
