"""Fault injection for proving the degradation paths.

The robustness guarantee of :func:`repro.robust.safe_optimize` — *every
failure lands on a legal schedule* — is only as good as the failures the
test suite can manufacture.  This module injects configurable faults into
the flow's seams:

========== ==================================================== ===========
site       what is wrapped                                      default exc
========== ==================================================== ===========
classify   :func:`repro.core.classify.classify`                 ClassificationError
emu        :func:`repro.core.emu.emu` (tile-bound emulation)    ReproError
cost       :func:`repro.core.costs.total_cost` /                ReproError
           :func:`repro.core.costs.spatial_partial_cost`
simulate   :func:`repro.sim.executor.run_nests`                 SimulationError
schedule   :func:`repro.core.standard.build_schedule`           ScheduleError
analyze    :func:`repro.ir.analysis.analyze_func`               ClassificationError
========== ==================================================== ===========

Three fault kinds are supported, each firing on the *N*-th call to the
site (and optionally a limited number of subsequent calls):

* ``raise`` — raise an exception (default per site, overridable);
* ``deadline`` — exhaust the ambient :class:`~repro.util.Deadline`
  (via :meth:`~repro.util.deadline.Deadline.force_expire`), so the next
  cooperative checkpoint raises :class:`~repro.util.DeadlineExceeded`
  exactly as a genuinely slow search would;
* ``poison`` — return a configurable value (default ``nan``) instead of
  calling the real function, modelling a numerically corrupted cost model.

Use as a context manager or decorator::

    with FaultInjector(raise_on("classify")):
        result = safe_optimize(func, arch)     # lands on a fallback rung

Injection patches the functions in their defining modules *and* in the
namespaces of the known importers (``optimize`` binds ``classify`` at
import time), and restores everything on exit, even when the body raises.

A second, process-level family targets the sweep workers of
:mod:`repro.sweep`: a :class:`WorkerFaultPlan` built from
:func:`kill_worker` / :func:`hang_worker` / :func:`corrupt_worker` specs
arms the ``REPRO_WORKER_FAULT`` environment variable for chosen worker
spawns, making the subprocess die by SIGKILL, stall past its timeout, or
write garbage on its result channel — the failure modes the runner's
retry/quarantine machinery exists to absorb.
"""

from __future__ import annotations

import functools
import importlib
import math
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.util import DeadlineExceeded, ReproError, current_deadline
from repro.util.errors import (
    ClassificationError,
    ScheduleError,
    SimulationError,
)

KIND_RAISE = "raise"
KIND_DEADLINE = "deadline"
KIND_POISON = "poison"

_KINDS = (KIND_RAISE, KIND_DEADLINE, KIND_POISON)

#: site -> [(module, attribute), ...]: every namespace holding a reference
#: that must be patched for the fault to be visible to the flow.
_PATCH_TABLE: Dict[str, List[Tuple[str, str]]] = {
    "classify": [
        ("repro.core.classify", "classify"),
        ("repro.core.optimizer", "classify"),
    ],
    "emu": [
        # emu_l1/emu_l2 call through this module-global, so one patch
        # covers both Algorithm-2 and Algorithm-3 bound queries.
        ("repro.core.emu", "emu"),
    ],
    "cost": [
        ("repro.core.costs", "total_cost"),
        ("repro.core.temporal", "total_cost"),
        ("repro.core.costs", "spatial_partial_cost"),
        ("repro.core.spatial", "spatial_partial_cost"),
    ],
    "simulate": [
        ("repro.sim.executor", "run_nests"),
        ("repro.sim.machine", "run_nests"),
    ],
    # The two seams below exist to drive the fallback chain all the way
    # down in tests: "schedule" fails every rung that materializes tiles
    # (proposed + auto-scheduler), "analyze" fails every rung that inspects
    # the statement (proposed + auto-scheduler + baseline), leaving only
    # the untransformed rung standing.
    "schedule": [
        ("repro.core.standard", "build_schedule"),
        ("repro.core.optimizer", "build_schedule"),
        ("repro.baselines.autoscheduler", "build_schedule"),
    ],
    "analyze": [
        ("repro.ir.analysis", "analyze_func"),
        ("repro.core.classify", "analyze_func"),
        ("repro.core.temporal", "analyze_func"),
        ("repro.core.spatial", "analyze_func"),
        ("repro.baselines.autoscheduler", "analyze_func"),
        ("repro.baselines.baseline", "analyze_func"),
    ],
}

_DEFAULT_EXC: Dict[str, Callable[[str], ReproError]] = {
    "classify": lambda site: ClassificationError(
        "injected fault: classification failed"
    ),
    "emu": lambda site: ReproError("injected fault: cache emulation failed"),
    "cost": lambda site: ReproError("injected fault: cost evaluation failed"),
    "simulate": lambda site: SimulationError(
        "injected fault: simulator inconsistency"
    ),
    "schedule": lambda site: ScheduleError(
        "injected fault: schedule construction failed"
    ),
    "analyze": lambda site: ClassificationError(
        "injected fault: statement analysis failed"
    ),
}


@dataclass
class FaultSpec:
    """One fault: *where*, *what kind*, and *when* it fires.

    Attributes
    ----------
    site:
        One of ``classify``, ``emu``, ``cost``, ``simulate``.
    kind:
        ``raise``, ``deadline`` or ``poison``.
    on_call:
        1-based call index at which the fault starts firing.
    count:
        How many consecutive calls fire (``None`` = every call from
        ``on_call`` on).
    exc:
        Exception *instance* to raise for ``raise`` faults; defaults to
        the site's natural error type.
    value:
        Return value for ``poison`` faults (default NaN; use
        ``float("inf")`` for infinity poisoning).
    """

    site: str
    kind: str = KIND_RAISE
    on_call: int = 1
    count: Optional[int] = None
    exc: Optional[BaseException] = None
    value: float = float("nan")

    def __post_init__(self) -> None:
        if self.site not in _PATCH_TABLE:
            raise ValueError(
                f"unknown fault site {self.site!r}; known: "
                f"{sorted(_PATCH_TABLE)}"
            )
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {list(_KINDS)}"
            )
        if self.on_call < 1:
            raise ValueError(f"on_call is 1-based, got {self.on_call}")
        if self.count is not None and self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")

    def fires(self, call_index: int) -> bool:
        """Whether the fault is armed for the given 1-based call index."""
        if call_index < self.on_call:
            return False
        if self.count is None:
            return True
        return call_index < self.on_call + self.count


def raise_on(
    site: str,
    n: int = 1,
    exc: Optional[BaseException] = None,
    count: Optional[int] = None,
) -> FaultSpec:
    """Fault: raise on the ``n``-th call to ``site`` (and onwards)."""
    return FaultSpec(site=site, kind=KIND_RAISE, on_call=n, count=count, exc=exc)


def poison(
    site: str, value: float = float("nan"), n: int = 1
) -> FaultSpec:
    """Fault: return ``value`` (NaN/inf) instead of the real result."""
    return FaultSpec(site=site, kind=KIND_POISON, on_call=n, value=value)


def exhaust_deadline(site: str, n: int = 1) -> FaultSpec:
    """Fault: expire the ambient deadline when ``site`` is called."""
    return FaultSpec(site=site, kind=KIND_DEADLINE, on_call=n)


class FaultInjector:
    """Context manager / decorator installing a set of :class:`FaultSpec`.

    Call counters are **per site** (shared across that site's patched
    functions) and reset on every ``__enter__``, so one injector can be
    reused across tests.  :meth:`calls` exposes the counters for
    asserting that a fault actually fired.
    """

    def __init__(self, *specs: FaultSpec) -> None:
        if not specs:
            raise ValueError("FaultInjector needs at least one FaultSpec")
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self._counters: Dict[str, int] = {}
        self._saved: List[Tuple[object, str, object]] = []
        self._active = False

    # -- bookkeeping ---------------------------------------------------

    def calls(self, site: str) -> int:
        """How many times ``site`` has been called under injection."""
        return self._counters.get(site, 0)

    def _specs_for(self, site: str) -> List[FaultSpec]:
        return [s for s in self.specs if s.site == site]

    def _fire(self, site: str) -> Optional[FaultSpec]:
        """Record a call to ``site``; return the spec that fires, if any."""
        self._counters[site] = self._counters.get(site, 0) + 1
        index = self._counters[site]
        for spec in self._specs_for(site):
            if spec.fires(index):
                return spec
        return None

    def _wrap(self, site: str, original: Callable) -> Callable:
        @functools.wraps(original)
        def wrapper(*args, **kwargs):
            spec = self._fire(site)
            if spec is None:
                return original(*args, **kwargs)
            if spec.kind == KIND_RAISE:
                raise spec.exc if spec.exc is not None else _DEFAULT_EXC[site](site)
            if spec.kind == KIND_DEADLINE:
                deadline = current_deadline()
                if deadline is None:
                    # No budget to exhaust: surface the intent directly so
                    # the fault is never silently absorbed.
                    raise DeadlineExceeded(
                        f"injected fault: {site} exhausted a deadline, but "
                        f"no deadline was active"
                    )
                deadline.force_expire()
                return original(*args, **kwargs)
            # KIND_POISON: skip the real computation entirely.
            return spec.value

        return wrapper

    # -- installation --------------------------------------------------

    def __enter__(self) -> "FaultInjector":
        if self._active:
            raise RuntimeError("FaultInjector is not re-entrant")
        self._active = True
        self._counters = {}
        sites = {spec.site for spec in self.specs}
        # Wrap each distinct original once so sites with several aliases
        # (classify in two namespaces) share one wrapper and counter.
        wrappers: Dict[int, Callable] = {}
        try:
            for site in sorted(sites):
                for module_name, attr in _PATCH_TABLE[site]:
                    module = importlib.import_module(module_name)
                    original = getattr(module, attr)
                    key = id(original)
                    if key not in wrappers:
                        wrappers[key] = self._wrap(site, original)
                    self._saved.append((module, attr, original))
                    setattr(module, attr, wrappers[key])
        except BaseException:
            self.__exit__(None, None, None)
            raise
        return self

    def __exit__(self, *exc_info) -> None:
        while self._saved:
            module, attr, original = self._saved.pop()
            setattr(module, attr, original)
        self._active = False

    # -- decorator support ---------------------------------------------

    def __call__(self, fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with self:
                return fn(*args, **kwargs)

        return wrapper


def inject(*specs: FaultSpec) -> FaultInjector:
    """Sugar: ``with inject(raise_on("classify")): ...``."""
    return FaultInjector(*specs)


# ----------------------------------------------------------------------
# Worker-process faults (sweep subprocess isolation)
# ----------------------------------------------------------------------

KIND_KILL = "kill"
KIND_HANG = "hang"
KIND_CORRUPT = "corrupt"

_WORKER_KINDS = (KIND_KILL, KIND_HANG, KIND_CORRUPT)

#: Environment variable read by ``repro.sweep.worker`` at startup.
WORKER_FAULT_ENV = "REPRO_WORKER_FAULT"


@dataclass
class WorkerFaultSpec:
    """One process-level fault, fired on the *N*-th worker spawn.

    Attributes
    ----------
    kind:
        ``kill`` (SIGKILL self before any work), ``hang`` (sleep
        ``hang_seconds``, forcing the parent's timeout), or ``corrupt``
        (write non-JSON garbage to the result channel and exit 0).
    on_spawn:
        1-based spawn index at which the fault starts firing.
    count:
        How many consecutive spawns fire (``None`` = every spawn from
        ``on_spawn`` on).  Defaults to 1 so a retried cell succeeds.
    hang_seconds:
        Sleep length for ``hang`` faults; pick it above the sweep's
        per-cell timeout.
    """

    kind: str
    on_spawn: int = 1
    count: Optional[int] = 1
    hang_seconds: float = 3600.0

    def __post_init__(self) -> None:
        if self.kind not in _WORKER_KINDS:
            raise ValueError(
                f"unknown worker fault kind {self.kind!r}; "
                f"known: {list(_WORKER_KINDS)}"
            )
        if self.on_spawn < 1:
            raise ValueError(f"on_spawn is 1-based, got {self.on_spawn}")
        if self.count is not None and self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")

    def fires(self, spawn_index: int) -> bool:
        if spawn_index < self.on_spawn:
            return False
        if self.count is None:
            return True
        return spawn_index < self.on_spawn + self.count

    def env_value(self) -> str:
        if self.kind == KIND_HANG:
            return f"{KIND_HANG}:{self.hang_seconds}"
        return self.kind


def kill_worker(n: int = 1, count: Optional[int] = 1) -> WorkerFaultSpec:
    """Fault: the ``n``-th spawned worker SIGKILLs itself immediately."""
    return WorkerFaultSpec(kind=KIND_KILL, on_spawn=n, count=count)


def hang_worker(
    n: int = 1, seconds: float = 3600.0, count: Optional[int] = 1
) -> WorkerFaultSpec:
    """Fault: the ``n``-th spawned worker stalls for ``seconds``."""
    return WorkerFaultSpec(
        kind=KIND_HANG, on_spawn=n, count=count, hang_seconds=seconds
    )


def corrupt_worker(n: int = 1, count: Optional[int] = 1) -> WorkerFaultSpec:
    """Fault: the ``n``-th spawned worker emits garbage instead of JSON."""
    return WorkerFaultSpec(kind=KIND_CORRUPT, on_spawn=n, count=count)


class ServeFaultPlan:
    """Deterministic faults for the optimization service's worker pool.

    :class:`repro.serve.server.OptimizeServer` consults the plan once
    per *executed job* (coalesced waiters share their leader's job, so
    indices count distinct computations, in admission order):

    * ``slow`` — the worker sleeps ``seconds`` before doing the real
      work, modelling a stuck search so queue backpressure and
      ``Retry-After`` shedding become testable without real load;
    * ``crash`` — the worker raises :class:`~repro.util.ReproError`
      before doing any work, driving the 500 error path for every
      waiter of the job.

    The environment spelling ``REPRO_SERVE_FAULT=slow:0.5:2`` (kind,
    optional seconds, optional 1-based job index) lets subprocess tests
    and CI arm one fault without touching code; :func:`parse_serve_fault`
    builds the plan.
    """

    def __init__(self, *specs: "ServeFaultSpec") -> None:
        if not specs:
            raise ValueError("ServeFaultPlan needs at least one spec")
        self.specs: Tuple[ServeFaultSpec, ...] = tuple(specs)
        self._lock = threading.Lock()
        self._jobs = 0

    @property
    def jobs(self) -> int:
        """How many job executions have consulted the plan."""
        return self._jobs

    def spec_for_job(self) -> Optional["ServeFaultSpec"]:
        """Record one job execution; return the spec firing on it."""
        with self._lock:
            self._jobs += 1
            index = self._jobs
        for spec in self.specs:
            if spec.fires(index):
                return spec
        return None


KIND_SLOW = "slow"
KIND_CRASH = "crash"

_SERVE_KINDS = (KIND_SLOW, KIND_CRASH)

#: Environment variable read by ``repro.serve.server`` at startup.
SERVE_FAULT_ENV = "REPRO_SERVE_FAULT"


@dataclass
class ServeFaultSpec:
    """One serving-layer fault: *what kind*, *which job*, *how long*."""

    kind: str
    on_job: int = 1
    count: Optional[int] = 1
    seconds: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in _SERVE_KINDS:
            raise ValueError(
                f"unknown serve fault kind {self.kind!r}; "
                f"known: {list(_SERVE_KINDS)}"
            )
        if self.on_job < 1:
            raise ValueError(f"on_job is 1-based, got {self.on_job}")
        if self.count is not None and self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")
        if self.seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {self.seconds}")

    def fires(self, job_index: int) -> bool:
        if job_index < self.on_job:
            return False
        if self.count is None:
            return True
        return job_index < self.on_job + self.count


def slow_job(
    n: int = 1, seconds: float = 0.5, count: Optional[int] = 1
) -> ServeFaultSpec:
    """Fault: the ``n``-th served job stalls for ``seconds`` first."""
    return ServeFaultSpec(
        kind=KIND_SLOW, on_job=n, count=count, seconds=seconds
    )


def crash_job(n: int = 1, count: Optional[int] = 1) -> ServeFaultSpec:
    """Fault: the ``n``-th served job raises before doing any work."""
    return ServeFaultSpec(kind=KIND_CRASH, on_job=n, count=count)


def parse_serve_fault(value: str) -> ServeFaultPlan:
    """Build a plan from the ``REPRO_SERVE_FAULT`` spelling.

    Format: ``kind[:seconds[:on_job]]`` — e.g. ``crash``, ``slow:2``,
    ``slow:0.25:3``.  Raises :class:`ValueError` on malformed input so
    a typo'd environment fails server startup loudly instead of
    silently disarming the fault.
    """
    parts = value.split(":")
    kind = parts[0]
    seconds = float(parts[1]) if len(parts) > 1 and parts[1] else 0.5
    on_job = int(parts[2]) if len(parts) > 2 else 1
    if len(parts) > 3:
        raise ValueError(f"malformed serve fault {value!r}")
    return ServeFaultPlan(
        ServeFaultSpec(kind=kind, on_job=on_job, seconds=seconds)
    )


class WorkerFaultPlan:
    """Decides, per worker spawn, which fault environment to install.

    The sweep runner calls :meth:`env_for_spawn` once per subprocess
    launch (thread-safe — spawns from parallel ``--jobs`` workers share
    one counter) and merges the returned mapping into the worker's
    environment.  :attr:`spawns` exposes the counter so tests can assert
    how many launches a retry policy actually performed.
    """

    def __init__(self, *specs: WorkerFaultSpec) -> None:
        if not specs:
            raise ValueError("WorkerFaultPlan needs at least one spec")
        self.specs: Tuple[WorkerFaultSpec, ...] = tuple(specs)
        self._lock = threading.Lock()
        self._spawns = 0

    @property
    def spawns(self) -> int:
        return self._spawns

    def env_for_spawn(self) -> Dict[str, str]:
        """Record a spawn; return the fault env for it (possibly empty)."""
        with self._lock:
            self._spawns += 1
            index = self._spawns
        for spec in self.specs:
            if spec.fires(index):
                return {WORKER_FAULT_ENV: spec.env_value()}
        return {}
