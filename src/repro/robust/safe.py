"""``safe_optimize``: the paper's flow with graceful degradation.

:func:`repro.core.optimize` is a straight-line pipeline — classification
feeds Algorithm 2/3, which feed scheduling — and any
:class:`~repro.util.ReproError` aborts the whole run.  ``safe_optimize``
wraps it in a **fallback chain** (see :mod:`repro.robust.policy`): each
rung is attempted under a per-rung :class:`~repro.util.Deadline`, any
failure is recorded in a :class:`~repro.robust.diagnostics.Diagnostics`
collector, and the flow descends until some rung produces a schedule that
passes structural validation.  The last rung (the untransformed nest) runs
without a deadline and cannot realistically fail, so a lenient policy
always returns a legal schedule — the "always return a legal schedule"
discipline production autoschedulers adopt.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.arch import ArchSpec
from repro.baselines.autoscheduler import autoschedule
from repro.baselines.baseline import baseline_schedule
from repro.core.optimizer import OptimizationResult, optimize
from repro.core.standard import untransformed_schedule
from repro.ir.func import Func, Pipeline
from repro.ir.schedule import Schedule
from repro.ir.validate import validate_func, validate_schedule
from repro.obs.events import EVENT_RUNG
from repro.obs.tracer import current_tracer
from repro.robust.diagnostics import Diagnostics
from repro.robust.policy import (
    RUNG_AUTOSCHEDULER,
    RUNG_BASELINE,
    RUNG_CACHE,
    RUNG_PROPOSED,
    RUNG_UNTRANSFORMED,
    FallbackPolicy,
)
from repro.util import (
    Deadline,
    ReproError,
    ValidationError,
    active_deadline,
)

#: Non-``ReproError`` exception classes a lenient policy also treats as a
#: rung failure.  Anything outside this set (``KeyboardInterrupt``,
#: ``MemoryError``, plain bugs raising ``TypeError``...) propagates.
_UNEXPECTED_CAUGHT = (ValueError, KeyError, ZeroDivisionError, OverflowError)


@dataclass(frozen=True)
class RungAttempt:
    """The outcome of trying one fallback rung."""

    rung: str
    ok: bool
    elapsed_ms: float
    error_type: Optional[str] = None
    error: Optional[str] = None

    def describe(self) -> str:
        status = "ok" if self.ok else f"failed ({self.error_type}: {self.error})"
        return f"{self.rung}: {status} in {self.elapsed_ms:.1f} ms"


@dataclass
class SafeResult:
    """What :func:`safe_optimize` returns — always with diagnostics.

    Attributes
    ----------
    func / schedule:
        The optimized Func and the legal schedule that will be used.
    rung:
        The fallback rung that produced ``schedule``.
    result:
        The full :class:`~repro.core.OptimizationResult` when the
        ``proposed`` rung succeeded, else ``None``.
    attempts:
        Every rung tried, in order, with timing and failure cause.
    diagnostics:
        Structured warning/error records for the whole run.
    elapsed_ms:
        Wall-clock time of the entire chain.
    """

    func: Func
    schedule: Schedule
    rung: str
    result: Optional[OptimizationResult]
    attempts: List[RungAttempt] = field(default_factory=list)
    diagnostics: Diagnostics = field(default_factory=Diagnostics)
    elapsed_ms: float = 0.0

    @property
    def fell_back(self) -> bool:
        """True when the best rung (``proposed``) did not produce the
        schedule — i.e. the flow degraded.  A schedule-cache hit is a
        replayed ``proposed`` result, not a degradation."""
        return self.rung not in (RUNG_PROPOSED, RUNG_CACHE)

    def describe(self) -> str:
        lines = [
            f"{self.func.name}: rung={self.rung} "
            f"({'degraded' if self.fell_back else 'full flow'}), "
            f"{self.elapsed_ms:.1f} ms total",
        ]
        lines += [f"  attempt {a.describe()}" for a in self.attempts]
        summary = self.diagnostics.summary()
        if summary:
            lines += ["  " + line for line in summary.splitlines()]
        return "\n".join(lines)


def _rung_builders(
    func: Func, arch: ArchSpec, policy: FallbackPolicy
) -> Dict[str, Callable[[], Tuple[Schedule, Optional[OptimizationResult]]]]:
    """One zero-argument builder per rung, sharing func/arch/policy."""

    def proposed() -> Tuple[Schedule, Optional[OptimizationResult]]:
        result = optimize(
            func,
            arch,
            use_nti=policy.allow_nti,
            parallelize=policy.parallelize,
            vectorize=policy.vectorize,
            exhaustive=policy.exhaustive,
            use_emu=policy.use_emu,
            order_step=policy.order_step,
            jobs=policy.jobs,
        )
        if policy.require_finite_cost:
            _check_finite_cost(result)
        return result.schedule, result

    def auto_scheduler() -> Tuple[Schedule, Optional[OptimizationResult]]:
        return autoschedule(func, arch).schedule, None

    def baseline() -> Tuple[Schedule, Optional[OptimizationResult]]:
        return baseline_schedule(func, arch), None

    def untransformed() -> Tuple[Schedule, Optional[OptimizationResult]]:
        schedule = untransformed_schedule(
            func,
            arch,
            parallelize=policy.parallelize,
            vectorize=policy.vectorize,
            nontemporal=False,
        )
        return schedule, None

    return {
        RUNG_PROPOSED: proposed,
        RUNG_AUTOSCHEDULER: auto_scheduler,
        RUNG_BASELINE: baseline,
        RUNG_UNTRANSFORMED: untransformed,
    }


def _check_finite_cost(result: OptimizationResult) -> None:
    """Reject analytical-search outcomes whose cost is NaN or infinite.

    A poisoned (NaN) or degenerate (every candidate rejected → ``inf``)
    cost means the analytical model did not actually discriminate between
    candidates; the auto-scheduler rung is then the better-informed choice.
    """
    search = result.temporal or result.spatial
    if search is not None and not math.isfinite(search.cost):
        raise ValidationError(
            f"{result.func.name}: analytical search produced a non-finite "
            f"cost ({search.cost!r}); refusing the proposed schedule"
        )


def safe_optimize(
    func: Func,
    arch: ArchSpec,
    policy: Optional[FallbackPolicy] = None,
    *,
    cache=None,
) -> SafeResult:
    """Optimize ``func`` with fallbacks, deadlines and diagnostics.

    ``cache`` is an optional :class:`repro.cache.ScheduleCache`: it is
    consulted before the fallback chain — a replayable entry keyed by
    this exact (Func, arch, policy options) short-circuits the whole
    chain with ``rung="cache"`` — and a successful ``proposed`` rung
    stores its schedule back, so the next run with the same inputs skips
    the search entirely.  Entries that fail replay or validation degrade
    to misses; degraded (fallback) schedules are never cached.

    Walks ``policy.rungs`` best-first.  Each rung runs under a
    :class:`~repro.util.Deadline` of ``min(policy.deadline_ms, remaining
    total budget)``; any :class:`~repro.util.ReproError` (including
    :class:`~repro.util.DeadlineExceeded` raised by the cooperative
    checkpoints inside Algorithm 2/3) or a small set of unexpected
    exceptions triggers descent to the next rung.  The terminal
    ``untransformed`` rung runs without a deadline.

    Raises
    ------
    ValidationError
        When ``policy.validate_inputs`` is on and ``func`` itself is
        invalid — no rung could produce a legal schedule for it.
    ReproError
        In ``strict`` policies, the first rung failure propagates; in
        lenient policies only the (never observed in practice) failure of
        every rung including ``untransformed`` re-raises.
    """
    policy = policy or FallbackPolicy()
    diagnostics = Diagnostics()
    attempts: List[RungAttempt] = []
    started = time.perf_counter()

    if policy.validate_inputs:
        # An invalid Func is a hard failure, not a degradation: even the
        # untransformed rung cannot schedule unbounded/empty loops.
        validate_func(func)

    cache_options = _policy_cache_options(policy)
    if cache is not None and RUNG_PROPOSED in policy.rungs:
        hit = _consult_cache(cache, func, arch, cache_options, policy)
        if hit is not None:
            elapsed_ms = (time.perf_counter() - started) * 1000.0
            attempts.append(
                RungAttempt(rung=RUNG_CACHE, ok=True, elapsed_ms=elapsed_ms)
            )
            tracer = current_tracer()
            if tracer.enabled:
                tracer.count("schedule_cache.hits")
                tracer.event(
                    EVENT_RUNG,
                    func=func.name,
                    rung=RUNG_CACHE,
                    ok=True,
                    elapsed_ms=round(elapsed_ms, 3),
                )
            return SafeResult(
                func=func,
                schedule=hit,
                rung=RUNG_CACHE,
                result=None,
                attempts=attempts,
                diagnostics=diagnostics,
                elapsed_ms=elapsed_ms,
            )

    total = (
        Deadline(policy.total_deadline_ms / 1000.0, label="safe_optimize")
        if policy.total_deadline_ms is not None
        else None
    )
    builders = _rung_builders(func, arch, policy)
    last_error: Optional[BaseException] = None

    for index, rung in enumerate(policy.rungs):
        next_rung = (
            policy.rungs[index + 1] if index + 1 < len(policy.rungs) else None
        )
        deadline = _rung_deadline(rung, policy, total)
        rung_started = time.perf_counter()
        try:
            with active_deadline(deadline):
                schedule, result = builders[rung]()
                if policy.validate_schedules:
                    validate_schedule(schedule)
        except (ReproError,) + _UNEXPECTED_CAUGHT as exc:
            elapsed_ms = (time.perf_counter() - rung_started) * 1000.0
            attempts.append(
                RungAttempt(
                    rung=rung,
                    ok=False,
                    elapsed_ms=elapsed_ms,
                    error_type=exc.__class__.__name__,
                    error=str(exc),
                )
            )
            diagnostics.record_exception(
                rung, exc, elapsed_ms=elapsed_ms, fallback_to=next_rung
            )
            tracer = current_tracer()
            if tracer.enabled:
                tracer.count("rung.failures")
                tracer.event(
                    EVENT_RUNG,
                    func=func.name,
                    rung=rung,
                    ok=False,
                    error_type=exc.__class__.__name__,
                    elapsed_ms=round(elapsed_ms, 3),
                    fallback_to=next_rung,
                )
            last_error = exc
            if policy.strict:
                raise
            continue

        elapsed_ms = (time.perf_counter() - rung_started) * 1000.0
        attempts.append(RungAttempt(rung=rung, ok=True, elapsed_ms=elapsed_ms))
        tracer = current_tracer()
        if tracer.enabled:
            tracer.event(
                EVENT_RUNG,
                func=func.name,
                rung=rung,
                ok=True,
                elapsed_ms=round(elapsed_ms, 3),
            )
        if rung == RUNG_PROPOSED and cache is not None:
            # Only the full proposed flow is worth persisting: fallback
            # schedules are cheap to rebuild and would shadow a later
            # successful search under the same key.
            cache.put(
                func,
                arch,
                cache_options,
                schedule,
                meta={"rung": rung, "func": func.name, "arch": arch.name},
            )
        if rung != RUNG_PROPOSED:
            diagnostics.warning(
                rung,
                f"degraded schedule in use (rung {index + 1} of "
                f"{len(policy.rungs)})",
                elapsed_ms=elapsed_ms,
            )
        return SafeResult(
            func=func,
            schedule=schedule,
            rung=rung,
            result=result,
            attempts=attempts,
            diagnostics=diagnostics,
            elapsed_ms=(time.perf_counter() - started) * 1000.0,
        )

    # Every rung failed.  With a lenient policy this requires the
    # untransformed rung itself to raise, which means the input (or an
    # injected fault) is beyond repair — surface the last cause.
    assert last_error is not None
    raise last_error


def _policy_cache_options(policy: FallbackPolicy) -> Dict:
    """The schedule-cache options key for a policy's proposed rung.

    Imported lazily-shaped (a plain dict) so the robust layer does not
    depend on :mod:`repro.cache` unless a cache is actually passed.
    """
    return {
        "use_nti": policy.allow_nti,
        "parallelize": policy.parallelize,
        "vectorize": policy.vectorize,
        "exhaustive": policy.exhaustive,
        "use_emu": policy.use_emu,
        "order_step": policy.order_step,
    }


def _consult_cache(
    cache, func: Func, arch: ArchSpec, options: Dict, policy: FallbackPolicy
) -> Optional[Schedule]:
    """A replayed-and-validated cached schedule, or ``None`` to search."""
    schedule = cache.get(func, arch, options)
    if schedule is None:
        return None
    if policy.validate_schedules:
        try:
            validate_schedule(schedule)
        except ReproError:
            return None
    return schedule


def _rung_deadline(
    rung: str, policy: FallbackPolicy, total: Optional[Deadline]
) -> Optional[Deadline]:
    """Per-rung deadline: min(per-rung budget, remaining total budget).

    The terminal ``untransformed`` rung is exempt in lenient policies so
    an exhausted budget still yields a legal schedule.
    """
    if rung == RUNG_UNTRANSFORMED and not policy.strict:
        return None
    budgets = []
    if policy.deadline_ms is not None:
        budgets.append(policy.deadline_ms / 1000.0)
    if total is not None:
        remaining = total.remaining()
        if remaining is not None:
            budgets.append(remaining)
    if not budgets:
        return None
    return Deadline(min(budgets), label=rung)


def safe_optimize_pipeline(
    pipeline: Pipeline,
    arch: ArchSpec,
    policy: Optional[FallbackPolicy] = None,
) -> Dict[Func, SafeResult]:
    """Run :func:`safe_optimize` on every stage of a pipeline.

    Stages are independent (compute_root), so one stage degrading does not
    affect the others; the per-stage results carry their own diagnostics.
    A ``total_deadline_ms`` in the policy applies **per stage** here — use
    an outer :class:`~repro.util.Deadline` for a whole-pipeline budget.
    """
    return {
        stage: safe_optimize(stage, arch, policy) for stage in pipeline
    }
