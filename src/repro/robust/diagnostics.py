"""Structured diagnostics for the graceful-degradation flow.

The straight-line flow of the paper (Fig. 1) either succeeds silently or
raises; once :func:`repro.robust.safe_optimize` starts absorbing failures
and descending a fallback chain, *what went wrong and what was done about
it* must travel with the result instead of being printed or lost.  A
:class:`Diagnostics` collector is attached to every
:class:`~repro.robust.safe.SafeResult`; each entry is a
:class:`DiagnosticRecord` carrying the stage, severity, the exception that
triggered it, elapsed time, and the rung the flow descended to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

SEVERITY_INFO = "info"
SEVERITY_WARNING = "warning"
SEVERITY_ERROR = "error"

_SEVERITIES = (SEVERITY_INFO, SEVERITY_WARNING, SEVERITY_ERROR)


@dataclass(frozen=True)
class DiagnosticRecord:
    """One structured event of a ``safe_optimize`` run.

    Attributes
    ----------
    severity:
        ``"info"``, ``"warning"`` or ``"error"``.
    stage:
        Where the event happened — a fallback rung (``"proposed"``,
        ``"auto-scheduler"``, ...) or a flow stage (``"validation"``).
    message:
        Human-readable description.
    error_type:
        Class name of the triggering exception, when there was one.
    elapsed_ms:
        Time spent in the stage before the event, when measured.
    fallback_to:
        The rung the flow descended to because of this event, when any.
    """

    severity: str
    stage: str
    message: str
    error_type: Optional[str] = None
    elapsed_ms: Optional[float] = None
    fallback_to: Optional[str] = None

    def __post_init__(self) -> None:
        if self.severity not in _SEVERITIES:
            raise ValueError(
                f"severity must be one of {_SEVERITIES}, got {self.severity!r}"
            )

    def describe(self) -> str:
        parts = [f"[{self.severity}] {self.stage}: {self.message}"]
        if self.error_type:
            parts.append(f"({self.error_type})")
        if self.elapsed_ms is not None:
            parts.append(f"after {self.elapsed_ms:.1f} ms")
        if self.fallback_to:
            parts.append(f"-> falling back to {self.fallback_to!r}")
        return " ".join(parts)


@dataclass
class Diagnostics:
    """An append-only collection of :class:`DiagnosticRecord`."""

    records: List[DiagnosticRecord] = field(default_factory=list)

    # -- recording -----------------------------------------------------

    def add(self, record: DiagnosticRecord) -> DiagnosticRecord:
        self.records.append(record)
        return record

    def info(self, stage: str, message: str, **kwargs) -> DiagnosticRecord:
        return self.add(
            DiagnosticRecord(SEVERITY_INFO, stage, message, **kwargs)
        )

    def warning(self, stage: str, message: str, **kwargs) -> DiagnosticRecord:
        return self.add(
            DiagnosticRecord(SEVERITY_WARNING, stage, message, **kwargs)
        )

    def error(self, stage: str, message: str, **kwargs) -> DiagnosticRecord:
        return self.add(
            DiagnosticRecord(SEVERITY_ERROR, stage, message, **kwargs)
        )

    def record_exception(
        self,
        stage: str,
        exc: BaseException,
        *,
        elapsed_ms: Optional[float] = None,
        fallback_to: Optional[str] = None,
    ) -> DiagnosticRecord:
        """Record a caught exception as an error entry."""
        return self.error(
            stage,
            str(exc) or exc.__class__.__name__,
            error_type=exc.__class__.__name__,
            elapsed_ms=elapsed_ms,
            fallback_to=fallback_to,
        )

    # -- querying ------------------------------------------------------

    @property
    def warnings(self) -> List[DiagnosticRecord]:
        return [r for r in self.records if r.severity == SEVERITY_WARNING]

    @property
    def errors(self) -> List[DiagnosticRecord]:
        return [r for r in self.records if r.severity == SEVERITY_ERROR]

    def has_errors(self) -> bool:
        return any(r.severity == SEVERITY_ERROR for r in self.records)

    def for_stage(self, stage: str) -> List[DiagnosticRecord]:
        return [r for r in self.records if r.stage == stage]

    def summary(self) -> str:
        """Multi-line rendering of every record (empty string when clean)."""
        return "\n".join(r.describe() for r in self.records)

    def __iter__(self) -> Iterator[DiagnosticRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def __bool__(self) -> bool:
        # A Diagnostics object is always truthy so ``result.diagnostics``
        # can be tested for presence without surprising emptiness checks.
        return True
