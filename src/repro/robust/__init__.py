"""Graceful degradation: safe optimization with fallbacks and deadlines.

The paper's flow (Fig. 1) is a straight-line pipeline; this package wraps
it with the robustness layer a production deployment needs:

* :mod:`repro.robust.policy` — the fallback chain (proposed →
  auto-scheduler → baseline → untransformed) and its budgets;
* :mod:`repro.robust.safe` — :func:`safe_optimize`, which walks the chain
  under per-rung deadlines and always returns a legal schedule under a
  lenient policy;
* :mod:`repro.robust.diagnostics` — structured warning/error records
  returned on every result instead of printed or lost;
* :mod:`repro.robust.faults` — the fault-injection framework the test
  suite uses to prove every degradation path.
"""

from repro.robust.diagnostics import (
    DiagnosticRecord,
    Diagnostics,
    SEVERITY_ERROR,
    SEVERITY_INFO,
    SEVERITY_WARNING,
)
from repro.robust.faults import (
    FaultInjector,
    FaultSpec,
    SERVE_FAULT_ENV,
    ServeFaultPlan,
    ServeFaultSpec,
    WORKER_FAULT_ENV,
    WorkerFaultPlan,
    WorkerFaultSpec,
    corrupt_worker,
    crash_job,
    exhaust_deadline,
    hang_worker,
    inject,
    kill_worker,
    parse_serve_fault,
    poison,
    raise_on,
    slow_job,
)
from repro.robust.policy import (
    FALLBACK_CHAIN,
    FallbackPolicy,
    RUNG_AUTOSCHEDULER,
    RUNG_BASELINE,
    RUNG_CACHE,
    RUNG_PROPOSED,
    RUNG_UNTRANSFORMED,
)
from repro.robust.safe import (
    RungAttempt,
    SafeResult,
    safe_optimize,
    safe_optimize_pipeline,
)

__all__ = [
    "DiagnosticRecord",
    "Diagnostics",
    "SEVERITY_ERROR",
    "SEVERITY_INFO",
    "SEVERITY_WARNING",
    "FaultInjector",
    "FaultSpec",
    "SERVE_FAULT_ENV",
    "ServeFaultPlan",
    "ServeFaultSpec",
    "WORKER_FAULT_ENV",
    "WorkerFaultPlan",
    "WorkerFaultSpec",
    "corrupt_worker",
    "crash_job",
    "exhaust_deadline",
    "hang_worker",
    "inject",
    "kill_worker",
    "parse_serve_fault",
    "poison",
    "raise_on",
    "slow_job",
    "FALLBACK_CHAIN",
    "FallbackPolicy",
    "RUNG_AUTOSCHEDULER",
    "RUNG_BASELINE",
    "RUNG_CACHE",
    "RUNG_PROPOSED",
    "RUNG_UNTRANSFORMED",
    "RungAttempt",
    "SafeResult",
    "safe_optimize",
    "safe_optimize_pipeline",
]
