"""Degradation policy: which rungs to try, under which budgets.

The fallback chain orders schedule generators from "best when it works"
to "cannot fail":

1. ``proposed`` — the paper's full flow (:func:`repro.core.optimize`);
2. ``auto-scheduler`` — the Mullapudi-style heuristic baseline, which
   needs no classification or cache emulation;
3. ``baseline`` — parallel outer loop + vectorized inner loop;
4. ``untransformed`` — the definition's own loop nest, untransformed and
   run without a deadline so it always completes.

A :class:`FallbackPolicy` selects a suffix-closed subset of that chain,
sets per-rung and total deadlines, and carries the knobs forwarded to the
underlying optimizers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple, Union

RUNG_PROPOSED = "proposed"
RUNG_AUTOSCHEDULER = "auto-scheduler"
RUNG_BASELINE = "baseline"
RUNG_UNTRANSFORMED = "untransformed"

#: Pseudo-rung reported by ``safe_optimize`` when a persistent
#: :class:`repro.cache.ScheduleCache` served the schedule.  Not part of
#: :data:`FALLBACK_CHAIN` (it is not configurable — a cache hit simply
#: short-circuits the chain) and not a degradation: the cached schedule
#: *is* a previously computed ``proposed`` result.
RUNG_CACHE = "cache"

#: The full chain, best-first.  ``safe_optimize`` walks it left to right.
FALLBACK_CHAIN: Tuple[str, ...] = (
    RUNG_PROPOSED,
    RUNG_AUTOSCHEDULER,
    RUNG_BASELINE,
    RUNG_UNTRANSFORMED,
)


@dataclass(frozen=True)
class FallbackPolicy:
    """Configuration of :func:`repro.robust.safe_optimize`.

    Attributes
    ----------
    rungs:
        The fallback rungs to attempt, best-first.  Must be a subsequence
        of :data:`FALLBACK_CHAIN` and must end with ``untransformed`` —
        the rung that cannot fail — unless ``strict`` is set.
    deadline_ms:
        Per-rung time budget in milliseconds (``None`` = unbounded).
        Enforced cooperatively via the checkpoints threaded through the
        optimizer's candidate loops; the final ``untransformed`` rung is
        exempt so the flow always terminates with a schedule.
    total_deadline_ms:
        Budget for the whole chain; each rung gets the minimum of its own
        budget and what remains of the total.
    strict:
        Re-raise the first failure instead of descending.  The chain then
        degenerates to running ``rungs[0]`` with validation and deadline
        enforcement — useful when a crash is preferable to a silently
        slower schedule.
    validate_inputs:
        Run :func:`repro.ir.validate_func` before the first rung.
    validate_schedules:
        Run :func:`repro.ir.validate_schedule` on each rung's schedule;
        a structurally broken schedule triggers descent like any error.
    require_finite_cost:
        Reject a ``proposed`` result whose search cost is NaN/infinite
        (poisoned or degenerate analytical model) and descend.
    allow_nti / parallelize / vectorize / exhaustive:
        Forwarded to :func:`repro.core.optimize`.
    use_emu / order_step:
        The proposed flow's ablation switches, forwarded verbatim (both
        default to the paper's full method).  They are part of the
        schedule-cache key — ablated and full schedules never mix.
    jobs:
        Worker processes for the proposed rung's candidate searches
        (0 or ``"auto"`` = resolve from the CPU count, 1 = serial);
        bit-identical results either way, so *not* part of the cache
        key.
    """

    rungs: Tuple[str, ...] = FALLBACK_CHAIN
    deadline_ms: Optional[float] = None
    total_deadline_ms: Optional[float] = None
    strict: bool = False
    validate_inputs: bool = True
    validate_schedules: bool = True
    require_finite_cost: bool = True
    allow_nti: bool = True
    parallelize: bool = True
    vectorize: bool = True
    exhaustive: bool = False
    use_emu: bool = True
    order_step: bool = True
    jobs: Union[int, str] = 1

    def __post_init__(self) -> None:
        if not self.rungs:
            raise ValueError("a FallbackPolicy needs at least one rung")
        unknown = [r for r in self.rungs if r not in FALLBACK_CHAIN]
        if unknown:
            raise ValueError(
                f"unknown fallback rung(s) {unknown}; known: "
                f"{list(FALLBACK_CHAIN)}"
            )
        positions = [FALLBACK_CHAIN.index(r) for r in self.rungs]
        if positions != sorted(set(positions)):
            raise ValueError(
                f"rungs must be distinct and ordered best-first as in "
                f"{list(FALLBACK_CHAIN)}, got {list(self.rungs)}"
            )
        if not self.strict and self.rungs[-1] != RUNG_UNTRANSFORMED:
            raise ValueError(
                "a lenient policy must end with the 'untransformed' rung "
                "so a schedule is always produced"
            )
        for name in ("deadline_ms", "total_deadline_ms"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        from repro.core.parallel import resolve_jobs

        resolve_jobs(self.jobs)  # rejects negatives and unknown spellings

    # -- conveniences --------------------------------------------------

    @classmethod
    def lenient(
        cls,
        deadline_ms: Optional[float] = None,
        **overrides,
    ) -> "FallbackPolicy":
        """The default production posture: degrade, never crash."""
        return cls(deadline_ms=deadline_ms, strict=False, **overrides)

    @classmethod
    def strict_policy(
        cls,
        deadline_ms: Optional[float] = None,
        **overrides,
    ) -> "FallbackPolicy":
        """Fail fast: validation + deadlines on, no degradation."""
        overrides.setdefault("rungs", (RUNG_PROPOSED,))
        return cls(deadline_ms=deadline_ms, strict=True, **overrides)

    def with_overrides(self, **kwargs) -> "FallbackPolicy":
        """Copy with some fields replaced (runs validation again)."""
        return replace(self, **kwargs)
