"""Tune-cell planning: expand one request into its grid of cells.

A ``repro-tune-v1`` request names corpus kernels (directly or by
family), target platforms, and an options grid; the planner expands the
cross product into :class:`~repro.sweep.SweepCell` values of kind
``tune``, each carrying one frozen
:class:`~repro.options.OptimizeOptions`.  Planning is deterministic:
kernels in request order (families expand in corpus order), platforms
in request order, overlays in grid order — so a resumed tune walks the
cells in exactly the order the interrupted one did.
"""

from __future__ import annotations

from typing import Dict, List

from repro.frontend.corpus import CORPUS, CorpusKernel, corpus_kernel
from repro.options import OptimizeOptions
from repro.sweep import KIND_TUNE, SweepCell

from repro.tune.schema import validate_tune_request


def resolve_kernels(payload: Dict) -> List[CorpusKernel]:
    """The corpus kernels one request selects, in deterministic order."""
    if payload.get("kernels") is not None:
        return [corpus_kernel(name) for name in payload["kernels"]]
    families = set(payload.get("families") or ())
    return [kernel for kernel in CORPUS if kernel.family in families]


def plan_tune_cells(payload: Dict) -> List[SweepCell]:
    """Expand one validated request into its (deduplicated) cell list."""
    problems = validate_tune_request(payload)
    if problems:
        raise ValueError("; ".join(problems))
    kernels = resolve_kernels(payload)
    if not kernels:
        raise ValueError(
            f"request selects no kernels (families="
            f"{payload.get('families')!r})"
        )
    fast = bool(payload.get("fast", False))
    cells: List[SweepCell] = []
    seen = set()
    for kernel in kernels:
        for platform in payload["platforms"]:
            for overlay in payload["grid"] or [{}]:
                cell = SweepCell(
                    benchmark=kernel.name,
                    technique="proposed",
                    platform=platform,
                    line_budget=0,
                    fast=fast,
                    kind=KIND_TUNE,
                    options=OptimizeOptions().replace(**overlay),
                )
                key = cell.key()
                if key not in seen:
                    seen.add(key)
                    cells.append(cell)
    return cells
