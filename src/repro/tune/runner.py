"""The tune job executor: fan cells across the fleet, journal progress.

:class:`TuneRunner` drives one planned tune grid to completion.  Every
cell is executed as an **ordinary** ``/v1/optimize`` against the fleet
router — so request coalescing, deadline budgets, circuit breakers and
health-gated failover all apply to tune traffic unchanged, and every
schedule a cell searches lands in the home shard's
:class:`~repro.cache.ScheduleCache` as a side effect (the fleet is warm
for subsequent ``/v1/optimize`` calls by construction).

Crash safety mirrors :class:`repro.sweep.SweepRunner`: per-cell retries
on the deterministic :class:`~repro.sweep.runner.RetryPolicy` backoff,
quarantine after repeated failures, and every settled cell appended to
the checksummed ``repro-sweep-v1`` :class:`~repro.sweep.Journal`.  A
SIGKILLed tune re-run on the same journal resumes: completed cells are
replayed from their journaled values, and because a cell's milliseconds
come from a **deterministic simulator replay** of the returned
schedules (never wall-clock), the final ``repro-tune-report-v1`` is
bit-identical to an uninterrupted run's.
"""

from __future__ import annotations

import hashlib
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.exitcodes import EXIT_OK, EXIT_QUARANTINED
from repro.obs.events import (
    EVENT_TUNE_CELL_OK,
    EVENT_TUNE_CELL_QUARANTINED,
    EVENT_TUNE_CELL_RESUMED,
    EVENT_TUNE_REPORT,
    EVENT_TUNE_START,
)
from repro.obs.tracer import NULL_TRACER
from repro.sweep import (
    Journal,
    JournalRecord,
    STATUS_OK,
    STATUS_QUARANTINED,
    SweepCell,
)
from repro.sweep.runner import RetryPolicy
from repro.tune.schema import (
    CELL_OK,
    CELL_QUARANTINED,
    CELL_RESUMED,
    cell_record,
    tune_report,
)
from repro.util import ServeError, ServeOverloaded


def _stable_seed(text: str) -> int:
    """A deterministic 32-bit seed from a cell key (for client backoff)."""
    return int(hashlib.sha256(text.encode("utf-8")).hexdigest()[:8], 16)


def _machine_for(cell: SweepCell):
    """The simulator used for deterministic cell replay."""
    from repro.arch import platform_by_name
    from repro.experiments.harness import ExperimentConfig

    arch = platform_by_name(cell.platform)
    return arch, ExperimentConfig(fast=cell.fast).machine(arch)


def replay_ms(cell: SweepCell, schedules_payload: Sequence[Dict]) -> float:
    """Simulated milliseconds of a cell's returned schedules.

    The serve worker already timed the schedules, but wall-clock numbers
    are not reproducible across runs or shards — so the tune layer
    re-times them on the deterministic simulator, making journaled
    values (and therefore resumed reports) bit-stable.
    """
    from repro.frontend.corpus import corpus_kernel
    from repro.ir.serialize import schedule_from_dict

    kernel = corpus_kernel(cell.benchmark)
    case = kernel.case(fast=cell.fast)
    arch, machine = _machine_for(cell)
    by_stage = {
        entry["stage"]: entry["schedule"] for entry in schedules_payload
    }
    schedules = {}
    for stage in case.pipeline:
        if stage.name not in by_stage:
            raise ServeError(
                f"result for {cell.key()} is missing stage {stage.name!r}"
            )
        schedules[stage] = schedule_from_dict(stage, by_stage[stage.name])
    return machine.time_pipeline(case.pipeline, schedules)


def baseline_ms_for(cell: SweepCell) -> float:
    """Deterministic baseline milliseconds for a cell's kernel."""
    from repro.baselines import baseline_schedule
    from repro.frontend.corpus import corpus_kernel

    kernel = corpus_kernel(cell.benchmark)
    case = kernel.case(fast=cell.fast)
    arch, machine = _machine_for(cell)
    return machine.time_pipeline(
        case.pipeline,
        {stage: baseline_schedule(stage, arch) for stage in case.pipeline},
    )


@dataclass
class TuneOutcome:
    """One settled cell: its record-shaped view plus raw schedules."""

    cell: SweepCell
    status: str  # CELL_OK | CELL_QUARANTINED | CELL_RESUMED
    ms: Optional[float] = None
    attempts: int = 1
    error: Optional[str] = None
    schedules: Optional[List[Dict]] = None

    def record(self) -> Dict:
        """The repro-tune-v1 stream record for this outcome."""
        return cell_record(
            key=self.cell.key(),
            status=self.status,
            kernel=self.cell.benchmark,
            platform=self.cell.platform,
            options=self.cell.options.cache_dict(),
            ms=self.ms,
            baseline_ms=(
                baseline_ms_for(self.cell) if self.ms is not None else None
            ),
            error=self.error,
        )


@dataclass
class TuneReport:
    """Everything one finished tune produced."""

    tune_id: str
    platforms: List[str]
    outcomes: List[TuneOutcome] = field(default_factory=list)

    @property
    def quarantined(self) -> List[TuneOutcome]:
        return [o for o in self.outcomes if o.status == CELL_QUARANTINED]

    def document(self) -> Dict:
        """The final ``repro-tune-report-v1`` document (bit-stable)."""
        return tune_report(
            tune_id_value=self.tune_id,
            platforms=self.platforms,
            outcomes=[o.record() for o in self.outcomes],
        )

    def exit_code(self) -> int:
        return EXIT_QUARANTINED if self.quarantined else EXIT_OK

    def summary(self) -> str:
        ok = sum(
            1 for o in self.outcomes if o.status in (CELL_OK, CELL_RESUMED)
        )
        resumed = sum(1 for o in self.outcomes if o.status == CELL_RESUMED)
        parts = [
            f"tune {self.tune_id}: {len(self.outcomes)} cells: {ok} ok"
        ]
        if resumed:
            parts.append(f"{resumed} resumed from journal")
        if self.quarantined:
            parts.append(f"{len(self.quarantined)} quarantined")
        return ", ".join(parts)

    def install_winners(self, cache) -> int:
        """Write each (kernel, platform) winner's schedules into a
        :class:`~repro.cache.ScheduleCache`; returns stores made.

        The fleet's shard caches are warm already (each cell ran as a
        real ``/v1/optimize`` on its home shard); this explicitly warms
        an *additional* cache — e.g. a standalone server's, or a local
        file handed to ``repro tune --schedule-cache``.
        """
        from repro.frontend.corpus import corpus_kernel
        from repro.ir.serialize import schedule_from_dict

        winners: Dict[str, TuneOutcome] = {}
        for outcome in self.outcomes:
            if outcome.ms is None or not outcome.schedules:
                continue
            slot = f"{outcome.cell.benchmark}@{outcome.cell.platform}"
            best = winners.get(slot)
            if best is None or outcome.ms < best.ms:
                winners[slot] = outcome
        stores = 0
        for outcome in winners.values():
            cell = outcome.cell
            kernel = corpus_kernel(cell.benchmark)
            case = kernel.case(fast=cell.fast)
            arch, _machine = _machine_for(cell)
            by_stage = {
                entry["stage"]: entry["schedule"]
                for entry in outcome.schedules
            }
            for stage in case.pipeline:
                payload = by_stage.get(stage.name)
                if payload is None:
                    continue
                cache.put(
                    stage,
                    arch,
                    cell.options.cache_dict(),
                    schedule_from_dict(stage, payload),
                    meta={
                        "origin": "tune",
                        "kernel": cell.benchmark,
                        "arch": arch.name,
                    },
                )
                stores += 1
        return stores


class TuneRunner:
    """Run tune cells against a fleet router, crash-safely.

    Parameters
    ----------
    journal:
        The resumable :class:`~repro.sweep.Journal` holding per-cell
        progress; pass the same path to resume an interrupted tune.
    host / port:
        The fleet router (or a single serve worker — the protocol is
        identical) every cell is submitted to.
    jobs:
        Concurrent in-flight cells (each on its own thread + client).
    timeout_s:
        Socket timeout for one cell round-trip.
    deadline_ms:
        Optional per-cell server-side budget, forwarded on the request.
    retry:
        A :class:`~repro.sweep.runner.RetryPolicy`; quarantine after its
        ``max_attempts``.
    client_retries:
        Shed-response (429/503) re-submissions *within* one attempt,
        delegated to :class:`~repro.serve.client.ServeClient`.
    """

    def __init__(
        self,
        journal: Journal,
        *,
        host: str = "127.0.0.1",
        port: int,
        jobs: int = 1,
        timeout_s: float = 120.0,
        deadline_ms: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        client_retries: int = 8,
        progress=None,
        tracer=None,
        sleeper: Callable[[float], None] = time.sleep,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.journal = journal
        self.host = host
        self.port = port
        self.jobs = jobs
        self.timeout_s = timeout_s
        self.deadline_ms = deadline_ms
        self.retry = retry or RetryPolicy()
        self.client_retries = client_retries
        self.progress = progress
        self.tracer = tracer or NULL_TRACER
        self.sleeper = sleeper
        self._lock = threading.Lock()

    # -- driving -------------------------------------------------------

    def run(
        self,
        cells: Sequence[SweepCell],
        *,
        tune_id: str = "",
        on_record: Optional[Callable[[Dict], None]] = None,
    ) -> TuneReport:
        """Execute every cell (resuming from the journal); returns the
        report.  ``on_record`` is invoked once per settled cell with its
        stream record — resumed cells first, then live ones as they
        finish (serialized under a lock for ``jobs > 1``)."""
        unique: List[SweepCell] = []
        seen = set()
        for cell in cells:
            if cell.key() not in seen:
                seen.add(cell.key())
                unique.append(cell)
        platforms = sorted({cell.platform for cell in unique})
        self.tracer.event(
            EVENT_TUNE_START,
            tune_id=tune_id,
            cells=len(unique),
            platforms=platforms,
        )
        report = TuneReport(tune_id=tune_id, platforms=platforms)
        journaled = self.journal.load()
        pending: List[SweepCell] = []
        for cell in unique:
            record = journaled.get(cell.key())
            if record is not None and record.status == STATUS_OK:
                outcome = TuneOutcome(
                    cell=cell,
                    status=CELL_RESUMED,
                    ms=record.ms,
                    attempts=record.attempts,
                    schedules=record.schedules,
                )
                self.tracer.event(EVENT_TUNE_CELL_RESUMED, key=cell.key())
                self.tracer.count("tune.cells.resumed")
                self._settle(report, outcome, on_record)
            elif record is not None and record.status == STATUS_QUARANTINED:
                outcome = TuneOutcome(
                    cell=cell,
                    status=CELL_QUARANTINED,
                    attempts=record.attempts,
                    error=record.error,
                )
                self._settle(report, outcome, on_record)
            else:
                pending.append(cell)
        if pending:
            if self.jobs == 1:
                for cell in pending:
                    self._settle(
                        report, self._run_cell(cell), on_record
                    )
            else:
                with ThreadPoolExecutor(
                    max_workers=self.jobs,
                    thread_name_prefix="repro-tune",
                ) as pool:
                    for outcome in pool.map(self._run_cell, pending):
                        self._settle(report, outcome, on_record)
        self.tracer.event(
            EVENT_TUNE_REPORT,
            tune_id=tune_id,
            cells=len(report.outcomes),
            quarantined=len(report.quarantined),
        )
        return report

    def _settle(
        self,
        report: TuneReport,
        outcome: TuneOutcome,
        on_record: Optional[Callable[[Dict], None]],
    ) -> None:
        with self._lock:
            report.outcomes.append(outcome)
            if on_record is not None:
                on_record(outcome.record())
            if self.progress is not None:
                print(
                    f"  [tune] {outcome.cell.key()}: {outcome.status}"
                    + (f" ({outcome.ms:.3f} ms)" if outcome.ms else "")
                    + (f" — {outcome.error}" if outcome.error else ""),
                    file=self.progress,
                    flush=True,
                )

    # -- one cell ------------------------------------------------------

    def _run_cell(self, cell: SweepCell) -> TuneOutcome:
        key = cell.key()
        trail: List[str] = []
        last_error = "unknown"
        for attempt in range(1, self.retry.max_attempts + 1):
            if attempt > 1:
                self.sleeper(self.retry.delay_before(key, attempt))
            try:
                ms, schedules = self._attempt(cell, attempt)
            except (ConnectionError, ServeOverloaded, ServeError,
                    KeyError, ValueError) as exc:
                last_error = f"{type(exc).__name__}: {exc}"
                trail.append(f"attempt {attempt}: {last_error}")
                continue
            outcome = TuneOutcome(
                cell=cell,
                status=CELL_OK,
                ms=ms,
                attempts=attempt,
                schedules=schedules,
            )
            self.journal.append(
                JournalRecord(
                    cell=cell,
                    status=STATUS_OK,
                    ms=ms,
                    attempts=attempt,
                    trail=trail,
                    schedules=schedules,
                )
            )
            self.tracer.event(EVENT_TUNE_CELL_OK, key=key, attempts=attempt)
            self.tracer.count("tune.cells.ok")
            return outcome
        self.journal.append(
            JournalRecord(
                cell=cell,
                status=STATUS_QUARANTINED,
                attempts=self.retry.max_attempts,
                error=last_error,
                trail=trail,
            )
        )
        self.tracer.event(
            EVENT_TUNE_CELL_QUARANTINED, key=key, error=last_error
        )
        self.tracer.count("tune.cells.quarantined")
        return TuneOutcome(
            cell=cell,
            status=CELL_QUARANTINED,
            attempts=self.retry.max_attempts,
            error=last_error,
        )

    def _attempt(self, cell: SweepCell, attempt: int):
        """One live try: submit through the router, replay the answer."""
        from repro.frontend.corpus import corpus_kernel
        from repro.serve.client import ServeClient

        kernel = corpus_kernel(cell.benchmark)
        client = ServeClient(
            self.host,
            self.port,
            timeout_s=self.timeout_s,
            retries=self.client_retries,
            backoff_base_s=0.05,
            backoff_cap_s=0.5,
            backoff_seed=_stable_seed(f"{cell.key()}#{attempt}"),
        )
        result = client.optimize(
            platform=cell.platform,
            fast=cell.fast,
            deadline_ms=self.deadline_ms,
            spec=kernel.spec,
            dims=dict(kernel.fast_dims if cell.fast else kernel.dims),
            dtypes=None if kernel.dtypes is None else dict(kernel.dtypes),
            params=None if kernel.params is None else dict(kernel.params),
            **cell.options.cache_dict(),
        )
        schedules = result.get("schedules") or []
        return replay_ms(cell, schedules), schedules
