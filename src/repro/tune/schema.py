"""Wire formats of the fleet autotuning service (``repro-tune-v1``).

One tune job = (kernel selection) × (platforms) × (an options grid).
The request selects corpus kernels either by name (``kernels``) or by
corpus family (``families``), never both; the grid is a list of
:class:`~repro.options.OptimizeOptions` overlays (``[{}]`` = just the
defaults).  Each resulting cell is executed as an ordinary
``/v1/optimize`` through the fleet router, so coalescing, deadlines,
circuit breakers and failover all apply unchanged.

Three documents travel the wire:

* the **request** (``POST /v1/tune`` body, format ``repro-tune-v1``);
* per-cell **stream records** (chunked NDJSON, one line per finished
  cell, format ``repro-tune-v1`` with ``kind: "cell"``);
* the final **report** (last NDJSON line, format
  ``repro-tune-report-v1``): winners per (kernel, platform), the full
  speedup table, quarantined cells.

The report deliberately excludes anything nondeterministic (attempt
counts, wall-clock, shard attribution): a tune SIGKILLed mid-run and
resumed from its journal must produce a report bit-identical to an
uninterrupted run — CI enforces this (``repro tune --check``).

``validate_tune_request`` / ``validate_tune_record`` /
``validate_tune_report`` return human-readable problem lists (empty =
valid), mirroring :func:`repro.serve.schema.validate_metrics` and
:func:`repro.fleet.validate_fleet_metrics`.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional, Sequence

from repro.options import CACHE_KEYS

TUNE_FORMAT = "repro-tune-v1"
TUNE_REPORT_FORMAT = "repro-tune-report-v1"

#: Stream-record statuses (the report folds ``resumed`` into ``ok``).
CELL_OK = "ok"
CELL_QUARANTINED = "quarantined"
CELL_RESUMED = "resumed"
_CELL_STATUSES = (CELL_OK, CELL_QUARANTINED, CELL_RESUMED)

#: Known corpus families a request may select by.
KNOWN_FAMILIES = ("polybench", "dl", "micro", "mef")


def build_tune_request(
    *,
    kernels: Optional[Sequence[str]] = None,
    families: Optional[Sequence[str]] = None,
    platforms: Sequence[str] = ("i7-5930k",),
    grid: Optional[Sequence[Dict]] = None,
    fast: bool = False,
    deadline_ms: Optional[float] = None,
) -> Dict:
    """Assemble (and sanity-check) one ``repro-tune-v1`` request body."""
    payload = {
        "format": TUNE_FORMAT,
        "platforms": list(platforms),
        "grid": [dict(overlay) for overlay in (grid or [{}])],
        "fast": bool(fast),
        "deadline_ms": deadline_ms,
    }
    if kernels is not None:
        payload["kernels"] = list(kernels)
    if families is not None:
        payload["families"] = list(families)
    problems = validate_tune_request(payload)
    if problems:
        raise ValueError("; ".join(problems))
    return payload


def tune_id(payload: Dict) -> str:
    """Deterministic job identity: 16 hex chars over the request's
    schedule-relevant fields (canonical JSON).  Re-POSTing the same
    request resumes the same journal."""
    identity = {
        "kernels": sorted(payload.get("kernels") or []),
        "families": sorted(payload.get("families") or []),
        "platforms": list(payload.get("platforms") or []),
        "grid": payload.get("grid") or [{}],
        "fast": bool(payload.get("fast", False)),
    }
    blob = json.dumps(identity, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def validate_tune_request(payload: Dict) -> List[str]:
    """Schema-check one tune request; returns problems (empty = valid)."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"request must be an object, got {type(payload).__name__}"]
    if payload.get("format") != TUNE_FORMAT:
        problems.append(
            f"format must be {TUNE_FORMAT!r}, got {payload.get('format')!r}"
        )
    kernels = payload.get("kernels")
    families = payload.get("families")
    if (kernels is None) == (families is None):
        problems.append("exactly one of 'kernels' or 'families' is required")
    if kernels is not None:
        if not isinstance(kernels, list) or not kernels or not all(
            isinstance(k, str) and k for k in kernels
        ):
            problems.append("'kernels' must be a non-empty list of names")
    if families is not None:
        if not isinstance(families, list) or not families or not all(
            isinstance(f, str) for f in families
        ):
            problems.append("'families' must be a non-empty list of names")
        else:
            unknown = sorted(set(families) - set(KNOWN_FAMILIES))
            if unknown:
                problems.append(
                    f"unknown families {unknown}; known: "
                    f"{list(KNOWN_FAMILIES)}"
                )
    platforms = payload.get("platforms")
    if not isinstance(platforms, list) or not platforms or not all(
        isinstance(p, str) and p for p in platforms
    ):
        problems.append("'platforms' must be a non-empty list of names")
    grid = payload.get("grid")
    if not isinstance(grid, list) or not grid:
        problems.append("'grid' must be a non-empty list of option overlays")
    else:
        for index, overlay in enumerate(grid):
            if not isinstance(overlay, dict):
                problems.append(f"grid[{index}] must be an object")
                continue
            unknown = sorted(set(overlay) - set(CACHE_KEYS) - {"multistride"})
            if unknown:
                problems.append(
                    f"grid[{index}] has unknown option(s) {unknown}; "
                    f"known: {list(CACHE_KEYS) + ['multistride']}"
                )
            bad = sorted(
                k for k, v in overlay.items()
                if k in CACHE_KEYS and not isinstance(v, bool)
            )
            if bad:
                problems.append(f"grid[{index}]: option(s) {bad} must be booleans")
            if "multistride" in overlay:
                ms = overlay["multistride"]
                if isinstance(ms, bool) or not (
                    ms in ("off", "auto")
                    or (isinstance(ms, int) and ms >= 2)
                ):
                    problems.append(
                        f"grid[{index}]: 'multistride' must be 'off', "
                        f"'auto' or an integer >= 2, got {ms!r}"
                    )
    if not isinstance(payload.get("fast", False), bool):
        problems.append("'fast' must be a boolean")
    deadline = payload.get("deadline_ms")
    if deadline is not None:
        if not isinstance(deadline, (int, float)) or isinstance(
            deadline, bool
        ) or deadline <= 0:
            problems.append("'deadline_ms' must be a positive number or null")
    known = {
        "format", "kernels", "families", "platforms", "grid", "fast",
        "deadline_ms",
    }
    for name in sorted(set(payload) - known):
        problems.append(f"unknown request field {name!r}")
    return problems


def cell_record(
    *,
    key: str,
    status: str,
    kernel: str,
    platform: str,
    options: Dict[str, bool],
    ms: Optional[float],
    baseline_ms: Optional[float],
    error: Optional[str] = None,
) -> Dict:
    """One per-cell NDJSON stream line."""
    speedup = None
    if ms and baseline_ms:
        speedup = round(baseline_ms / ms, 6)
    return {
        "format": TUNE_FORMAT,
        "kind": "cell",
        "key": key,
        "status": status,
        "kernel": kernel,
        "platform": platform,
        "options": dict(options),
        "ms": ms,
        "baseline_ms": baseline_ms,
        "speedup": speedup,
        "error": error,
    }


def validate_tune_record(payload: Dict) -> List[str]:
    """Schema-check one per-cell stream record."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"record must be an object, got {type(payload).__name__}"]
    if payload.get("format") != TUNE_FORMAT:
        problems.append(
            f"format must be {TUNE_FORMAT!r}, got {payload.get('format')!r}"
        )
    if payload.get("kind") != "cell":
        problems.append(f"kind must be 'cell', got {payload.get('kind')!r}")
    status = payload.get("status")
    if status not in _CELL_STATUSES:
        problems.append(
            f"status must be one of {_CELL_STATUSES}, got {status!r}"
        )
    for name in ("key", "kernel", "platform"):
        if not isinstance(payload.get(name), str) or not payload.get(name):
            problems.append(f"'{name}' must be a non-empty string")
    options = payload.get("options")
    if not isinstance(options, dict) or sorted(
        set(options) - {"multistride"}
    ) != sorted(CACHE_KEYS):
        problems.append(
            f"'options' must carry exactly the switch set {list(CACHE_KEYS)}"
            f" (plus an optional 'multistride')"
        )
    ms = payload.get("ms")
    if status in (CELL_OK, CELL_RESUMED):
        if not isinstance(ms, (int, float)) or isinstance(ms, bool) or ms <= 0:
            problems.append(f"{status} records need a positive 'ms', got {ms!r}")
    elif ms is not None:
        problems.append("quarantined records must carry ms=null")
    if status == CELL_QUARANTINED and not payload.get("error"):
        problems.append("quarantined records need a non-empty 'error'")
    return problems


def tune_report(
    *,
    tune_id_value: str,
    platforms: Sequence[str],
    outcomes: Sequence[Dict],
) -> Dict:
    """Fold per-cell outcome dicts into the final report document.

    Each outcome is a :func:`cell_record`-shaped dict; ``resumed``
    counts as ``ok`` so an interrupted-then-resumed tune folds to the
    same report as an uninterrupted one.
    """
    ok = [o for o in outcomes if o["status"] in (CELL_OK, CELL_RESUMED)]
    quarantined = [o for o in outcomes if o["status"] == CELL_QUARANTINED]
    winners: Dict[str, Dict] = {}
    for outcome in ok:
        slot = f"{outcome['kernel']}@{outcome['platform']}"
        best = winners.get(slot)
        if best is None or outcome["ms"] < best["ms"]:
            winners[slot] = {
                "options": dict(outcome["options"]),
                "ms": outcome["ms"],
                "baseline_ms": outcome["baseline_ms"],
                "speedup": outcome["speedup"],
            }
    table = sorted(
        (
            {
                "kernel": o["kernel"],
                "platform": o["platform"],
                "options": dict(o["options"]),
                "ms": o["ms"],
                "baseline_ms": o["baseline_ms"],
                "speedup": o["speedup"],
            }
            for o in ok
        ),
        key=lambda row: (row["kernel"], row["platform"],
                         json.dumps(row["options"], sort_keys=True)),
    )
    return {
        "format": TUNE_REPORT_FORMAT,
        "tune_id": tune_id_value,
        "platforms": list(platforms),
        "cells": len(outcomes),
        "ok": len(ok),
        "quarantined": len(quarantined),
        "winners": winners,
        "table": table,
        "quarantined_cells": sorted(o["key"] for o in quarantined),
    }


def validate_tune_report(payload: Dict) -> List[str]:
    """Schema-check one final report; returns problems (empty = valid)."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"report must be an object, got {type(payload).__name__}"]
    if payload.get("format") != TUNE_REPORT_FORMAT:
        problems.append(
            f"format must be {TUNE_REPORT_FORMAT!r}, "
            f"got {payload.get('format')!r}"
        )
    tid = payload.get("tune_id")
    if not isinstance(tid, str) or len(tid) != 16:
        problems.append(f"'tune_id' must be 16 hex chars, got {tid!r}")
    for name in ("cells", "ok", "quarantined"):
        value = payload.get(name)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            problems.append(f"'{name}' must be a non-negative integer")
    if all(
        isinstance(payload.get(n), int) and not isinstance(payload.get(n), bool)
        for n in ("cells", "ok", "quarantined")
    ):
        if payload["ok"] + payload["quarantined"] != payload["cells"]:
            problems.append(
                f"cells ({payload['cells']}) != ok ({payload['ok']}) + "
                f"quarantined ({payload['quarantined']})"
            )
    winners = payload.get("winners")
    if not isinstance(winners, dict):
        problems.append("'winners' must be an object")
    else:
        for slot, entry in winners.items():
            if "@" not in slot:
                problems.append(f"winner slot {slot!r} must be kernel@platform")
            if not isinstance(entry, dict) or not isinstance(
                entry.get("ms"), (int, float)
            ):
                problems.append(f"winner {slot!r} needs a numeric 'ms'")
            elif not isinstance(entry.get("options"), dict):
                problems.append(f"winner {slot!r} needs an 'options' object")
    table = payload.get("table")
    if not isinstance(table, list):
        problems.append("'table' must be a list")
    quarantined_cells = payload.get("quarantined_cells")
    if not isinstance(quarantined_cells, list):
        problems.append("'quarantined_cells' must be a list")
    elif isinstance(payload.get("quarantined"), int) and len(
        quarantined_cells
    ) != payload["quarantined"]:
        problems.append(
            f"quarantined_cells lists {len(quarantined_cells)} keys but "
            f"quarantined={payload['quarantined']}"
        )
    return problems
