"""Fleet-scale autotuning: ``POST /v1/tune`` and ``repro tune``.

ROADMAP open item 4 — the job-lifecycle layer that composes every prior
subsystem into the production end-state:

* :mod:`repro.tune.schema` — the ``repro-tune-v1`` request / stream /
  ``repro-tune-report-v1`` wire formats and their validators;
* :mod:`repro.tune.planner` — expand a request (corpus kernels or
  families × platforms × an options grid) into ``tune``-kind
  :class:`~repro.sweep.SweepCell` values;
* :mod:`repro.tune.runner` — :class:`TuneRunner`: every cell an
  ordinary ``/v1/optimize`` through the fleet router (coalescing,
  deadlines, breakers and failover apply), journaled in the resumable
  checksummed ``repro-sweep-v1`` :class:`~repro.sweep.Journal`, settled
  cells streamed as chunked NDJSON, milliseconds from a deterministic
  simulator replay so an interrupted-then-resumed tune reports
  bit-identically to an uninterrupted one.

Entry points: ``python -m repro tune`` (CLI) and ``POST /v1/tune`` on
the fleet router; see docs/API.md, "Tuning".
"""

from repro.tune.planner import plan_tune_cells, resolve_kernels
from repro.tune.runner import (
    TuneOutcome,
    TuneReport,
    TuneRunner,
    baseline_ms_for,
    replay_ms,
)
from repro.tune.schema import (
    CELL_OK,
    CELL_QUARANTINED,
    CELL_RESUMED,
    TUNE_FORMAT,
    TUNE_REPORT_FORMAT,
    build_tune_request,
    cell_record,
    tune_id,
    tune_report,
    validate_tune_record,
    validate_tune_report,
    validate_tune_request,
)

__all__ = [
    "CELL_OK",
    "CELL_QUARANTINED",
    "CELL_RESUMED",
    "TUNE_FORMAT",
    "TUNE_REPORT_FORMAT",
    "TuneOutcome",
    "TuneReport",
    "TuneRunner",
    "baseline_ms_for",
    "build_tune_request",
    "cell_record",
    "plan_tune_cells",
    "replay_ms",
    "resolve_kernels",
    "tune_id",
    "tune_report",
    "validate_tune_record",
    "validate_tune_report",
    "validate_tune_request",
]
