"""The consolidated optimizer-option surface: :class:`OptimizeOptions`.

Every switch that can influence one optimization run lives here, in one
frozen value object, instead of being spread across a half-dozen keyword
arguments on :class:`repro.api.OptimizeRequest`:

* the six **schedule-changing** switches (``use_nti``, ``parallelize``,
  ``vectorize``, ``exhaustive``, ``use_emu``, ``order_step``) — exactly
  the set the persistent :class:`repro.cache.ScheduleCache` and the
  serve-layer coalescing keys fingerprint;
* ``multistride`` — the multi-striding strategy (``"off"`` | ``"auto"`` |
  stream count ``>= 2``); schedule-changing and therefore
  fingerprint-bearing, but included in :meth:`cache_dict` **only when
  enabled**, so every pre-multistride fingerprint stays byte-identical;
* ``jobs`` — parallel candidate evaluation; bit-identical to serial, so
  deliberately **excluded** from :meth:`cache_dict` (worker count must
  never fragment caches; see :mod:`repro.core.parallel`);
* ``tracer`` — observability; likewise excluded (tracing is
  bit-for-bit neutral by contract, see :mod:`repro.obs`).

:func:`repro.cache.fingerprint.optimize_options` delegates here, which
makes this class the single source of truth for option fingerprints:
the cache key, the serve coalesce key, and the fleet shard key all
derive from :meth:`cache_dict` of the same value object.

The legacy per-keyword spelling on ``OptimizeRequest`` keeps working
through a deprecation shim (warns :class:`DeprecationWarning`; CI runs
the suite with ``-W error::DeprecationWarning`` so no internal caller
may use it).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Union

__all__ = ["OptimizeOptions"]

#: The switches that can change the chosen schedule — the fingerprint set.
CACHE_KEYS = (
    "use_nti",
    "parallelize",
    "vectorize",
    "exhaustive",
    "use_emu",
    "order_step",
)


@dataclass(frozen=True)
class OptimizeOptions:
    """One optimizer configuration, hashable down to its cache identity.

    Attributes
    ----------
    use_nti / parallelize / vectorize / exhaustive / use_emu / order_step:
        The uniform switch set of the legacy surfaces (paper ablations).
    jobs:
        Worker processes for the Algorithm-2/3 candidate searches
        (0 or ``"auto"`` = resolve from ``os.cpu_count()``; 1 = serial);
        results are bit-identical either way, so ``jobs`` is not part of
        :meth:`cache_dict`.
    tracer:
        Optional :class:`repro.obs.Tracer` installed for the run;
        bit-for-bit neutral, so likewise not part of the cache identity.
    """

    use_nti: bool = True
    parallelize: bool = True
    vectorize: bool = True
    exhaustive: bool = False
    use_emu: bool = True
    order_step: bool = True
    multistride: Union[str, int] = "off"
    jobs: Union[int, str] = 1
    tracer: object = None

    def __post_init__(self) -> None:
        # Delegate jobs validation (and the "auto" spelling) to the
        # parallel-search layer so every surface rejects the same inputs.
        from repro.core.parallel import resolve_jobs

        resolve_jobs(self.jobs)
        ms = self.multistride
        if isinstance(ms, bool) or not (
            ms in ("off", "auto") or (isinstance(ms, int) and ms >= 2)
        ):
            raise ValueError(
                f"multistride must be 'off', 'auto' or an int >= 2, "
                f"got {ms!r}"
            )

    def cache_dict(self) -> Dict[str, object]:
        """The canonical options dict — exactly the switches that can
        change the chosen schedule, nothing that cannot (``jobs``,
        tracers, deadlines).  This is the options half of every cache,
        coalescing and shard key.

        ``multistride`` joins the dict **only when enabled**: the default
        ``"off"`` is omitted so every pre-multistride fingerprint, cache
        entry, coalescing key and tune_id stays byte-identical."""
        d: Dict[str, object] = {
            key: bool(getattr(self, key)) for key in CACHE_KEYS
        }
        if self.multistride != "off":
            d["multistride"] = self.multistride
        return d

    def fingerprint(self) -> str:
        """SHA-256 of :meth:`cache_dict` (canonical JSON)."""
        from repro.cache.fingerprint import options_fingerprint

        return options_fingerprint(self.cache_dict())

    def replace(self, **overrides) -> "OptimizeOptions":
        """Copy with some fields replaced (runs validation again)."""
        known = {f.name for f in fields(self)}
        unknown = sorted(set(overrides) - known)
        if unknown:
            raise TypeError(
                f"unknown option(s) {unknown}; known: {sorted(known)}"
            )
        merged = {f.name: getattr(self, f.name) for f in fields(self)}
        merged.update(overrides)
        return OptimizeOptions(**merged)
