"""TSS — "Tile Size Selection Revisited" (Mehta, Beeraka, Yew [14]).

The paper's Sec. 5.2 characterizes TSS as: reuse in the L1 **and** L2
caches, associativity taken into account, **no prefetching** — neither in
the miss model (cold misses stay at ``T / lc`` per row) nor in the
interference analysis (no prefetched-line padding, no halved L2).  This
module implements that model over the same structural search as the
proposed optimizer so the two differ *only* in prefetch awareness — which
is precisely the comparison Table 6 makes.

Because TSS (like TTS) "relies on the compiler in the back-end to find the
optimal loop order", :func:`tss_schedule` takes the loop order as an input;
the Table 6 experiment tries every permutation and keeps the best, exactly
as the paper did for these baselines.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch import ArchSpec
from repro.core.costs import (
    extract_patterns,
    level1_misses,
    level2_misses,
    working_set_l1,
    working_set_l2,
)
from repro.core.standard import build_schedule
from repro.ir.analysis import analyze_func
from repro.ir.func import Func
from repro.ir.schedule import Schedule
from repro.obs.events import REASON_CAPACITY
from repro.obs.stats import (
    CandidateCounter,
    CandidateStats,
    deprecated_counter_read,
)
from repro.util import ceil_div, tile_candidates


@dataclass
class TileModelResult:
    """Tiles chosen by an analytical baseline model."""

    tiles: Dict[str, int]
    cost: float
    stats: CandidateStats

    @property
    def candidates_evaluated(self) -> int:
        """Deprecated alias for ``stats.considered``."""
        deprecated_counter_read("TileModelResult")
        return self.stats.considered


def _capacity_bound(arch: ArchSpec, level: int, dts: int) -> int:
    """Conflict-free row bound from capacity/associativity alone (TSS's
    interference reasoning, sans prefetch padding): one way's worth of
    rows of the array column, i.e. ``capacity / ways`` elements."""
    spec = arch.cache_level(level)
    return max(1, spec.size // (spec.ways * dts))


def tss_tiles(
    func: Func,
    arch: ArchSpec,
    *,
    exhaustive: bool = False,
) -> TileModelResult:
    """Select tile sizes with the TSS model (L1+L2 reuse, prefetch-blind)."""
    info = analyze_func(func)
    patterns = extract_patterns(info)
    dts = info.dtype_size
    lc = arch.lc(dts)

    all_vars = [v.name for v in info.definition.all_vars()]
    bounds = {v: func.bound_of(v) for v in all_vars}
    c = info.output.leading_var or all_vars[-1]
    others = [v for v in all_vars if v != c]

    l1_capacity = arch.cache_level(1).capacity_elements(dts)
    l2_capacity = arch.cache_level(2).capacity_elements(dts)
    a2 = arch.access_cost(2)
    a3 = arch.access_cost(3)

    best: Optional[Tuple[float, Dict[str, int]]] = None
    counter = CandidateCounter("tss")
    c_cands = tile_candidates(bounds[c], bounds[c], quantum=lc, exhaustive=exhaustive)
    c_cands = [t for t in c_cands if t >= 2]
    for t_c in c_cands:
        for d2, d3 in _pairs(others):
            d2_cands = (
                tile_candidates(bounds[d2], l1_capacity // max(1, t_c), exhaustive=exhaustive)
                if d2
                else [None]
            )
            d3_cands = (
                tile_candidates(bounds[d3], l2_capacity // max(1, t_c), exhaustive=exhaustive)
                if d3
                else [None]
            )
            rest = [v for v in others if v not in (d2, d3)]
            for t2 in d2_cands:
                for t3 in d3_cands:
                    tiles = {c: t_c}
                    if d2:
                        tiles[d2] = t2
                    if d3:
                        tiles[d3] = t3
                    for v in rest:
                        tiles[v] = 1
                    counter.considered()
                    chain = [v for v in (d3, d2) if v]
                    intra = (
                        ([chain[0]] if chain else []) + rest + chain[1:] + [c]
                    )
                    inter = [v for v in intra if v != c] + [c]
                    ws1 = working_set_l1(patterns, tiles, intra)
                    ws2 = working_set_l2(patterns, tiles, intra)
                    if ws1 > l1_capacity or ws2 > l2_capacity:
                        counter.pruned(REASON_CAPACITY)
                        continue
                    cost = a2 * level1_misses(
                        patterns, tiles, bounds, intra, lc, prefetch_aware=False
                    ) + a3 * level2_misses(
                        patterns,
                        tiles,
                        bounds,
                        intra,
                        inter,
                        lc,
                        prefetch_aware=False,
                    )
                    if best is None or cost < best[0]:
                        best = (cost, dict(tiles))
    if best is None:
        best = (float("inf"), {v: bounds[v] for v in all_vars})
    return TileModelResult(tiles=best[1], cost=best[0], stats=counter.stats)


def _pairs(others: Sequence[str]) -> List[Tuple[Optional[str], Optional[str]]]:
    if not others:
        return [(None, None)]
    if len(others) == 1:
        return [(others[0], None)]
    return list(itertools.permutations(others, 2))


def tss_schedule(
    func: Func,
    arch: ArchSpec,
    *,
    loop_order: Optional[Sequence[str]] = None,
    tiles: Optional[Dict[str, int]] = None,
) -> Schedule:
    """Build a schedule from TSS tiles and a given loop order.

    ``loop_order`` lists the original variables outermost-first for *both*
    tile levels; when omitted, the definition order is used (TSS leaves
    ordering to the compiler).
    """
    result_tiles = tiles or tss_tiles(func, arch).tiles
    info = analyze_func(func)
    all_vars = [v.name for v in info.definition.all_vars()]
    bounds = {v: func.bound_of(v) for v in all_vars}
    order = list(loop_order) if loop_order else all_vars
    inter = [v for v in order if ceil_div(bounds[v], result_tiles[v]) > 1]
    intra = [v for v in order if result_tiles[v] > 1]
    if not intra:
        intra = [order[-1]]
        result_tiles[order[-1]] = bounds[order[-1]]
    return build_schedule(
        func,
        arch,
        result_tiles,
        inter,
        intra,
        parallelize=True,
        vectorize=True,
        nontemporal=False,
    )
