"""An OpenTuner-style stochastic autotuner baseline (Ansel et al. [2]).

The Halide autotuner explores schedule configurations by repeatedly
compiling and *running* candidates, keeping the best measured time.  Here a
candidate is evaluated on the :class:`~repro.sim.Machine` simulator — the
same measurement the other techniques are scored with — and the search is
a seeded random sampler with hill-climbing mutations of the incumbent,
which is how OpenTuner's ensemble behaves on this space.

Two paper-reported characteristics are reproduced:

* **budget-bounded quality**: the figures' "Autotuner" bars come from a
  one-hour search and Fig. 5's from a one-day search; here the budget is
  an evaluation count (``evaluations``), and more evaluations monotonically
  improve (or keep) the incumbent;
* **restricted search space**: "the autotuner schedules only attempt
  tiling in the dimensions of the output array" (Sec. 5.1) — reduction
  dimensions are not tiled unless ``tile_reductions=True`` is passed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.arch import ArchSpec
from repro.core.standard import build_schedule
from repro.ir.analysis import analyze_func
from repro.ir.func import Func
from repro.ir.schedule import Schedule
from repro.sim import Machine
from repro.util import ceil_div, pow2_range


@dataclass
class _Candidate:
    """One point of the search space."""

    tiles: Dict[str, int]
    inter_order: Tuple[str, ...]
    intra_order: Tuple[str, ...]


@dataclass
class AutotuneResult:
    """Search outcome: the incumbent schedule and its trajectory."""

    schedule: Schedule
    best_ms: float
    evaluations: int
    history: List[float] = field(default_factory=list)
    best_tiles: Dict[str, int] = field(default_factory=dict)

    def improvements(self) -> List[float]:
        """The decreasing sequence of incumbent times."""
        out: List[float] = []
        for ms in self.history:
            if not out or ms < out[-1]:
                out.append(ms)
        return out


class Autotuner:
    """Stochastic schedule search against the simulator.

    Parameters
    ----------
    machine:
        The simulated platform candidates are measured on.
    evaluations:
        Measurement budget (the stand-in for the paper's 1 h / 1 day).
    seed:
        RNG seed; searches are reproducible.
    tile_reductions:
        Include reduction dimensions in the tiling space (off by default,
        matching the Halide autotuner's restriction the paper reports).
    """

    def __init__(
        self,
        machine: Machine,
        *,
        evaluations: int = 40,
        seed: int = 0,
        tile_reductions: bool = False,
    ) -> None:
        if evaluations < 1:
            raise ValueError("need at least one evaluation")
        self.machine = machine
        self.evaluations = evaluations
        self.seed = seed
        self.tile_reductions = tile_reductions

    # ------------------------------------------------------------------

    def tune(self, func: Func) -> AutotuneResult:
        """Search for a schedule of ``func``'s main definition."""
        rng = random.Random(self.seed)
        info = analyze_func(func)
        pure_vars = [v.name for v in info.definition.lhs_vars]
        rvars = list(info.reduction_vars)
        bounds = {
            v.name: func.bound_of(v.name) for v in info.definition.all_vars()
        }
        tileable = pure_vars + (rvars if self.tile_reductions else [])

        best_ms = float("inf")
        best: Optional[_Candidate] = None
        best_schedule: Optional[Schedule] = None
        history: List[float] = []

        for step in range(self.evaluations):
            if best is not None and rng.random() < 0.5:
                cand = self._mutate(best, bounds, tileable, rvars, rng)
            else:
                cand = self._random(bounds, tileable, pure_vars, rvars, rng)
            schedule = self._materialize(func, cand, bounds)
            if schedule is None:
                history.append(float("inf"))
                continue
            ms = self.machine.time_funcs([(func, schedule)])
            history.append(ms)
            if ms < best_ms:
                best_ms = ms
                best = cand
                best_schedule = schedule

        if best_schedule is None:
            # Degenerate budget: fall back to the default loop nest.
            best_schedule = Schedule(func)
            best_ms = self.machine.time_funcs([(func, best_schedule)])
            best = _Candidate({}, (), ())
        return AutotuneResult(
            schedule=best_schedule,
            best_ms=best_ms,
            evaluations=len(history),
            history=history,
            best_tiles=dict(best.tiles),
        )

    # ------------------------------------------------------------------

    def _random(
        self,
        bounds: Dict[str, int],
        tileable: List[str],
        pure_vars: List[str],
        rvars: List[str],
        rng: random.Random,
    ) -> _Candidate:
        tiles: Dict[str, int] = {}
        for var, bound in bounds.items():
            if var in tileable:
                options = [t for t in pow2_range(1, bound) if bound % t == 0]
                options = options or [1, bound]
                tiles[var] = rng.choice(options)
            else:
                tiles[var] = bound
        inter = [v for v in bounds if ceil_div(bounds[v], tiles[v]) > 1]
        intra = [v for v in bounds if tiles[v] > 1]
        rng.shuffle(inter)
        rng.shuffle(intra)
        # Keep the contiguous output dimension innermost often enough for
        # vectorization to make sense (the tuner's space does include bad
        # orders; they simply measure poorly).
        if pure_vars and pure_vars[-1] in intra and rng.random() < 0.8:
            intra.remove(pure_vars[-1])
            intra.append(pure_vars[-1])
        return _Candidate(tiles, tuple(inter), tuple(intra))

    def _mutate(
        self,
        base: _Candidate,
        bounds: Dict[str, int],
        tileable: List[str],
        rvars: List[str],
        rng: random.Random,
    ) -> _Candidate:
        tiles = dict(base.tiles)
        var = rng.choice(list(tiles))
        if var in tileable:
            options = [
                t for t in pow2_range(1, bounds[var]) if bounds[var] % t == 0
            ] or [1, bounds[var]]
            tiles[var] = rng.choice(options)
        inter = [v for v in bounds if ceil_div(bounds[v], tiles[v]) > 1]
        intra = [v for v in bounds if tiles[v] > 1]
        # Preserve the incumbent's relative order where possible.
        inter.sort(
            key=lambda v: base.inter_order.index(v)
            if v in base.inter_order
            else len(base.inter_order)
        )
        intra.sort(
            key=lambda v: base.intra_order.index(v)
            if v in base.intra_order
            else len(base.intra_order)
        )
        if rng.random() < 0.3 and len(inter) > 1:
            a, b = rng.sample(range(len(inter)), 2)
            inter[a], inter[b] = inter[b], inter[a]
        return _Candidate(tiles, tuple(inter), tuple(intra))

    def _materialize(
        self, func: Func, cand: _Candidate, bounds: Dict[str, int]
    ) -> Optional[Schedule]:
        from repro.util import ScheduleError

        intra = list(cand.intra_order)
        if not intra:
            return None
        try:
            return build_schedule(
                func,
                self.machine.arch,
                cand.tiles,
                list(cand.inter_order),
                intra,
                parallelize=True,
                vectorize=True,
                nontemporal=False,  # the autotuner cannot emit NT stores
            )
        except (ScheduleError, ValueError):
            return None
