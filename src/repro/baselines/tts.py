"""TTS — TurboTiling (Mehta, Garg, Trivedi, Yew [15]).

Per the paper's Sec. 5.2 characterization: TTS "optimizes for L2 and L3
cache while taking advantage of hardware prefetching.  However, prefetching
is not considered in the analytical model and prefetched references are not
taken into account while estimating the number of cold misses".

Concretely, relative to TSS the reuse targets shift one level out:

* the intra-tile reuse loop keeps its working set within the **L2** cache
  (instead of L1) — prefetchers are trusted to cover the L1;
* the inter-tile reuse loop keeps the tile footprint within the (per-core
  share of the) **L3** cache — so the tiles come out *larger* than both
  TSS's and the proposed optimizer's;
* the cold-miss estimates remain prefetch-blind (``T / lc`` per row), and
  no interference emulation bounds the tiles — capacity only.

Like TSS, the loop order is an input (Table 6 tries all of them).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch import ArchSpec
from repro.baselines.tss import TileModelResult, _pairs
from repro.obs.events import REASON_CAPACITY
from repro.obs.stats import CandidateCounter
from repro.core.costs import (
    extract_patterns,
    level1_misses,
    level2_misses,
    working_set_l1,
    working_set_l2,
)
from repro.core.standard import build_schedule
from repro.ir.analysis import analyze_func
from repro.ir.func import Func
from repro.ir.schedule import Schedule
from repro.util import ceil_div, tile_candidates


def _l3_share_elements(arch: ArchSpec, dts: int) -> int:
    """Effective per-core last-level capacity TTS tiles against."""
    if arch.l3 is not None:
        return arch.l3.capacity_elements(dts) // max(1, arch.n_cores)
    # No L3 (ARM): the shared L2 is the last level.
    return arch.cache_level(2).capacity_elements(dts) // max(1, arch.n_cores)


def tts_tiles(
    func: Func,
    arch: ArchSpec,
    *,
    exhaustive: bool = False,
) -> TileModelResult:
    """Select tile sizes with the TurboTiling model (L2+L3 reuse)."""
    info = analyze_func(func)
    patterns = extract_patterns(info)
    dts = info.dtype_size
    lc = arch.lc(dts)

    all_vars = [v.name for v in info.definition.all_vars()]
    bounds = {v: func.bound_of(v) for v in all_vars}
    c = info.output.leading_var or all_vars[-1]
    others = [v for v in all_vars if v != c]

    l2_capacity = arch.cache_level(2).capacity_elements(dts)
    l3_capacity = _l3_share_elements(arch, dts)
    a3 = arch.access_cost(3)
    amem = arch.access_cost(4)

    best: Optional[Tuple[float, Dict[str, int]]] = None
    counter = CandidateCounter("tts")
    c_cands = tile_candidates(bounds[c], bounds[c], quantum=lc, exhaustive=exhaustive)
    c_cands = [t for t in c_cands if t >= 2]
    for t_c in c_cands:
        for d2, d3 in _pairs(others):
            d2_cands = (
                tile_candidates(
                    bounds[d2], l2_capacity // max(1, t_c), exhaustive=exhaustive
                )
                if d2
                else [None]
            )
            d3_cands = (
                tile_candidates(
                    bounds[d3], l3_capacity // max(1, t_c), exhaustive=exhaustive
                )
                if d3
                else [None]
            )
            rest = [v for v in others if v not in (d2, d3)]
            for t2 in d2_cands:
                for t3 in d3_cands:
                    tiles = {c: t_c}
                    if d2:
                        tiles[d2] = t2
                    if d3:
                        tiles[d3] = t3
                    for v in rest:
                        tiles[v] = 1
                    counter.considered()
                    chain = [v for v in (d3, d2) if v]
                    intra = (
                        ([chain[0]] if chain else []) + rest + chain[1:] + [c]
                    )
                    inter = [v for v in intra if v != c] + [c]
                    # Reuse one level out: the "L1" working set must fit
                    # L2, the tile footprint must fit the L3 share.
                    ws_inner = working_set_l1(patterns, tiles, intra)
                    ws_tile = working_set_l2(patterns, tiles, intra)
                    if ws_inner > l2_capacity or ws_tile > l3_capacity:
                        counter.pruned(REASON_CAPACITY)
                        continue
                    cost = a3 * level1_misses(
                        patterns, tiles, bounds, intra, lc, prefetch_aware=False
                    ) + amem * level2_misses(
                        patterns,
                        tiles,
                        bounds,
                        intra,
                        inter,
                        lc,
                        prefetch_aware=False,
                    )
                    if best is None or cost < best[0]:
                        best = (cost, dict(tiles))
    if best is None:
        best = (float("inf"), {v: bounds[v] for v in all_vars})
    return TileModelResult(tiles=best[1], cost=best[0], stats=counter.stats)


def tts_schedule(
    func: Func,
    arch: ArchSpec,
    *,
    loop_order: Optional[Sequence[str]] = None,
    tiles: Optional[Dict[str, int]] = None,
) -> Schedule:
    """Build a schedule from TTS tiles and a given loop order."""
    result_tiles = tiles or tts_tiles(func, arch).tiles
    info = analyze_func(func)
    all_vars = [v.name for v in info.definition.all_vars()]
    bounds = {v: func.bound_of(v) for v in all_vars}
    order = list(loop_order) if loop_order else all_vars
    inter = [v for v in order if ceil_div(bounds[v], result_tiles[v]) > 1]
    intra = [v for v in order if result_tiles[v] > 1]
    if not intra:
        intra = [order[-1]]
        result_tiles[order[-1]] = bounds[order[-1]]
    return build_schedule(
        func,
        arch,
        result_tiles,
        inter,
        intra,
        parallelize=True,
        vectorize=True,
        nontemporal=False,
    )
