"""A Halide-Auto-Scheduler-style heuristic baseline (Mullapudi et al. [16]).

The paper characterizes the Auto-Scheduler's limitations it competes
against (Sec. 2): "the cache and tiling analysis it employs is limited
(considering only one level of cache hierarchy)", it works from bounds
inference rather than source patterns, and it only tiles the *output*
dimensions.  This module reproduces that behaviour:

* tile sizes are chosen over the output (pure) dimensions only, innermost
  first, greedily growing each tile by powers of two while the estimated
  tile footprint fits a single cache budget (a fraction of L2 — the
  Auto-Scheduler's single ``last_level_cache_size`` parameter);
* reduction loops stay inside the tile untouched;
* the innermost output dimension is vectorized at native width and the
  outermost tile loop is parallelized, with outer tile loops fused until
  every core has work (the Auto-Scheduler's parallelism target).

No prefetcher model, no associativity/interference reasoning, no
non-temporal stores — the gaps the paper's proposed optimizer fills.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.arch import ArchSpec
from repro.core.standard import build_schedule
from repro.ir.analysis import StatementInfo, analyze_func
from repro.ir.func import Func
from repro.ir.schedule import Schedule
from repro.util import ceil_div


@dataclass
class AutoSchedulerResult:
    """Decisions of the heuristic, for inspection and tests."""

    tiles: Dict[str, int]
    inter_order: List[str]
    intra_order: List[str]
    footprint_elements: float
    schedule: Schedule


def _tile_footprint(
    info: StatementInfo, tiles: Dict[str, int], bounds: Dict[str, int]
) -> float:
    """Elements touched by one tile: per unique array, the product of tile
    extents of its variables (reduction variables count their full bound —
    the Auto-Scheduler keeps reductions inside the tile)."""
    seen = set()
    total = 0.0
    for ref in [info.output] + info.inputs:
        key = (ref.name, ref.dim_vars)
        if key in seen:
            continue
        seen.add(key)
        footprint = 1.0
        for var in ref.index_vars:
            footprint *= tiles.get(var, bounds.get(var, 1))
        total += footprint
    return total


def autoschedule(
    func: Func,
    arch: ArchSpec,
    *,
    cache_budget_bytes: Optional[int] = None,
) -> AutoSchedulerResult:
    """Produce the Auto-Scheduler-style schedule for ``func``.

    Parameters
    ----------
    cache_budget_bytes:
        The single cache-size parameter of the heuristic — Halide's
        auto-scheduler exposes exactly one ``last_level_cache_size`` knob;
        the default is the per-core share of the last-level cache (L3 on
        Intel, the shared L2 on ARM).  Working against one level of the
        hierarchy is precisely the limitation the paper exploits.
    """
    info = analyze_func(func)
    dts = func.dtype.size
    if cache_budget_bytes is None:
        if arch.l3 is not None:
            cache_budget_bytes = arch.l3.size // arch.n_cores
        else:
            cache_budget_bytes = arch.cache_level(2).size
    budget = cache_budget_bytes // dts

    pure_vars = [v.name for v in info.definition.lhs_vars]
    rvars = list(info.reduction_vars)
    bounds = {
        v.name: func.bound_of(v.name) for v in info.definition.all_vars()
    }

    # Reduction dimensions are not tiled: their "tile" is the full extent.
    tiles: Dict[str, int] = {v: bounds[v] for v in rvars}
    # Start with minimal output tiles: vector width innermost, 1 elsewhere.
    lanes = arch.vector_lanes(dts)
    for v in pure_vars:
        tiles[v] = 1
    inner = pure_vars[-1]
    tiles[inner] = min(bounds[inner], max(lanes, 1))

    # Greedily double output-tile extents, innermost dimension first, while
    # the footprint stays within the budget (the Auto-Scheduler's greedy
    # grouping/tiling pass behaves the same way on a single stage).
    grew = True
    while grew:
        grew = False
        for v in reversed(pure_vars):
            if tiles[v] >= bounds[v]:
                continue
            trial = dict(tiles)
            trial[v] = min(bounds[v], tiles[v] * 2)
            if _tile_footprint(info, trial, bounds) <= budget:
                tiles = trial
                grew = True

    # Keep enough outer parallelism: shrink the outermost tiled dimension
    # until the tile grid covers the cores.
    cores = arch.n_cores
    def grid() -> int:
        g = 1
        for v in pure_vars:
            g *= ceil_div(bounds[v], tiles[v])
        return g

    for v in pure_vars:
        while grid() < cores and tiles[v] > 1:
            tiles[v] = max(1, tiles[v] // 2)

    inter_order = [v for v in pure_vars if ceil_div(bounds[v], tiles[v]) > 1]
    intra_order = [v for v in pure_vars if tiles[v] > 1]
    # Reduction loops run inside the tile, outside the intra output loops
    # (Halide's default update nesting).
    intra_order = rvars + intra_order
    # Fall back to a plain nest when nothing is tiled.
    if not intra_order:
        intra_order = [pure_vars[-1]]

    schedule = build_schedule(
        func,
        arch,
        tiles,
        inter_order,
        intra_order,
        parallelize=True,
        vectorize=True,
        nontemporal=False,  # the Auto-Scheduler cannot emit NT stores
    )
    return AutoSchedulerResult(
        tiles=tiles,
        inter_order=inter_order,
        intra_order=intra_order,
        footprint_elements=_tile_footprint(info, tiles, bounds),
        schedule=schedule,
    )
