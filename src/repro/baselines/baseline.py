"""The "Baseline" schedule of the paper's figures.

"The Baseline bar corresponds to the most basic optimization a developer
may perform, which usually includes parallelization of the outer loop and
vectorization of the inner one." (Sec. 5.1)

For definitions whose default innermost loop is not the contiguous output
dimension (e.g. matmul, whose reduction variable sits innermost by
default), the developer-obvious reorder is applied first so the vectorized
loop is the contiguous one.
"""

from __future__ import annotations

from repro.arch import ArchSpec
from repro.ir.analysis import analyze_func
from repro.ir.func import Func
from repro.ir.schedule import Schedule


def baseline_schedule(func: Func, arch: ArchSpec) -> Schedule:
    """Parallel outermost pure loop, vectorized contiguous inner loop."""
    info = analyze_func(func)
    schedule = Schedule(func)
    names = schedule.loop_names()

    c = info.output.leading_var
    if c is not None and names[-1] != c:
        # Bring the contiguous output dimension innermost; everything else
        # keeps its relative order.
        rest = [n for n in names if n != c]
        schedule.reorder_outer_to_inner(*(rest + [c]))

    loops = schedule.loops()
    lanes = arch.vector_lanes(func.dtype.size)
    if lanes > 1 and loops[-1].extent >= 2:
        schedule.vectorize(loops[-1].name, width=lanes)
    if len(schedule.loops()) > 1:
        schedule.parallel(schedule.loops()[0].name)
    return schedule
