"""The comparison techniques of the paper's evaluation (Sec. 5).

* :mod:`repro.baselines.baseline` — the "Baseline" bars of Figs. 4/7: the
  most basic developer schedule, parallel outer loop + vectorized inner
  loop, no tiling.
* :mod:`repro.baselines.autoscheduler` — a Mullapudi-et-al.-style
  heuristic (the Halide Auto-Scheduler [16]): single-level cache model,
  tiles only the output dimensions, no prefetcher awareness.
* :mod:`repro.baselines.autotuner` — an OpenTuner-style stochastic search
  (the Halide autotuner [2]) with an evaluation budget; by default its
  space tiles only output-array dimensions, matching the limitation the
  paper reports.
* :mod:`repro.baselines.tss` — TSS [14]: L1+L2 reuse tile-size selection
  *without* prefetch awareness.
* :mod:`repro.baselines.tts` — TTS / TurboTiling [15]: tiles for reuse in
  the last-level cache assuming prefetching fills it, but without
  subtracting prefetched references from the miss model.
"""

from repro.baselines.baseline import baseline_schedule
from repro.baselines.autoscheduler import autoschedule, AutoSchedulerResult
from repro.baselines.autotuner import Autotuner, AutotuneResult
from repro.baselines.tss import tss_tiles, tss_schedule
from repro.baselines.tts import tts_tiles, tts_schedule

__all__ = [
    "baseline_schedule",
    "autoschedule",
    "AutoSchedulerResult",
    "Autotuner",
    "AutotuneResult",
    "tss_tiles",
    "tss_schedule",
    "tts_tiles",
    "tts_schedule",
]
