"""Load generation and serving-performance measurement (``repro loadgen``).

An **open-loop** arrival process against the serve/fleet HTTP surface:
inter-arrival gaps are drawn from a seeded exponential distribution at a
target rate and every request fires at its scheduled instant whether or
not earlier ones have finished — the discipline that actually measures a
service under load (a closed loop would slow its own arrivals down to
whatever the service can absorb and hide every queueing delay).  For
the same reason, each request's latency is measured from its *scheduled*
arrival, not from when a thread got around to sending it, so
coordinated omission cannot flatter the percentiles.

The key mix is hot/cold: a ``hot_fraction`` of requests re-ask one fixed
identity (exercising coalescing and the schedule cache — these must come
back warm), the rest walk a deterministic pool of distinct
benchmark/option combinations (exercising cold searches and shard
spread).  ``corpus_family`` swaps the built-in identity pool for one
drawn from the kernel-spec corpus (:data:`repro.frontend.corpus.CORPUS`):
the family's first kernel becomes the hot identity and the remaining
kernels the cold pool, every request travelling as a ``spec`` payload —
the mix ``repro tune`` warms, so a post-tune loadgen run measures a warm
fleet.  Latency percentiles are derived from the same log-spaced
histogram the servers export (:class:`repro.serve.LatencyHistogram`), so
loadgen-side and server-side distributions are directly comparable.

``BENCH_serve.json`` is this module's committed baseline, gated by CI's
``bench-serve`` job exactly like ``BENCH_search.json``: absolute
milliseconds are informational (machine properties), while the gated
quantities are machine-independent code properties —

* ``errors`` must stay zero (every admitted request gets an answer);
* ``responses_identical`` — every response for one identity carries
  bit-identical schedules, across shards, coalescing and failover;
* ``warm_duplicate_fraction`` — repeat requests must be served without
  a search (``cache``/``coalesced``), within tolerance of the baseline.
"""

from __future__ import annotations

import json
import random
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.serve.client import ServeClient
from repro.serve.metrics import LatencyHistogram
from repro.serve.schema import (
    SERVED_BY,
    SERVED_BY_CACHE,
    SERVED_BY_COALESCED,
)

#: Schema tag of BENCH_serve.json; bump on incompatible layout change.
BENCH_SERVE_FORMAT = "repro-bench-serve-v1"

#: The identity every hot request re-asks.
HOT_SPEC = ("matmul", ())
#: The cold pool: distinct identities walked round-robin (benchmark ×
#: option flips — each is a different coalesce/cache/shard key).
COLD_SPECS: Tuple[Tuple[str, Tuple[Tuple[str, bool], ...]], ...] = (
    ("syrk", ()),
    ("tpm", ()),
    ("copy", ()),
    ("matmul", (("use_nti", False),)),
    ("syrk", (("use_nti", False),)),
    ("tpm", (("vectorize", False),)),
)

__all__ = [
    "BENCH_SERVE_FORMAT",
    "GATED_QUANTITIES",
    "check_serve_regression",
    "percentiles_from_histogram",
    "run_loadgen",
    "write_payload",
]


def percentiles_from_histogram(
    snapshot: Dict, quantiles: Sequence[float] = (0.5, 0.9, 0.99)
) -> Dict[str, float]:
    """Upper-bound percentile estimates from one histogram snapshot.

    Each quantile resolves to the upper edge of the bucket containing
    it (the conservative read every fixed-bucket pipeline reports); a
    quantile landing in the overflow bucket reports the observed max.
    """
    bounds = snapshot["bounds_ms"]
    counts = snapshot["counts"]
    total = sum(counts)
    out: Dict[str, float] = {}
    for q in quantiles:
        label = f"p{q * 100:g}_ms"
        if total == 0:
            out[label] = 0.0
            continue
        target = q * total
        seen = 0
        value = float(snapshot.get("max_ms", bounds[-1]))
        for index, count in enumerate(counts):
            seen += count
            if seen >= target:
                if index < len(bounds):
                    value = float(bounds[index])
                break
        out[label] = value
    return out


def _identity_pool(corpus_family: Optional[str]):
    """The (hot, cold-pool) identity mix one run walks.

    Default: the built-in named-benchmark mix.  With ``corpus_family``:
    the family's kernels from the spec corpus, hot = the first one.
    """
    if corpus_family is None:
        return HOT_SPEC, COLD_SPECS
    from repro.frontend.corpus import CORPUS

    kernels = [k for k in CORPUS if k.family == corpus_family]
    if not kernels:
        known = sorted({k.family for k in CORPUS})
        raise ValueError(
            f"unknown corpus family {corpus_family!r}; known: {known}"
        )
    hot = (kernels[0], ())
    cold = tuple((kernel, ()) for kernel in kernels[1:]) or (hot,)
    return hot, cold


def _build_plan(
    requests: int,
    rate_rps: float,
    hot_fraction: float,
    seed: int,
    corpus_family: Optional[str] = None,
) -> List[Tuple[float, object, Dict[str, bool]]]:
    """The deterministic arrival schedule: (at_s, identity, options).

    An identity is a benchmark name or a
    :class:`~repro.frontend.corpus.CorpusKernel` (``corpus_family``
    mode).
    """
    rng = random.Random(f"repro-loadgen#{seed}")
    hot_spec, cold_specs = _identity_pool(corpus_family)
    plan = []
    at = 0.0
    cold_index = 0
    for _ in range(requests):
        at += rng.expovariate(rate_rps)
        if rng.random() < hot_fraction:
            identity, options = hot_spec
        else:
            identity, options = cold_specs[cold_index % len(cold_specs)]
            cold_index += 1
        plan.append((at, identity, dict(options)))
    return plan


def _spec_key(benchmark: str, options: Dict[str, bool]) -> str:
    return json.dumps([benchmark, sorted(options.items())])


def run_loadgen(
    *,
    host: str = "127.0.0.1",
    port: int,
    requests: int = 20,
    rate_rps: float = 2.0,
    hot_fraction: float = 0.5,
    seed: int = 0,
    platform: str = "i7-5930k",
    fast: bool = True,
    timeout_s: float = 120.0,
    retries: int = 4,
    corpus_family: Optional[str] = None,
) -> Dict:
    """Run one measured open-loop load against a serve/fleet endpoint.

    Returns the ``repro-bench-serve-v1`` payload (sans the ``target``
    block the CLI adds).  Each in-flight request gets its own
    one-shot :class:`~repro.serve.ServeClient` thread; the per-thread
    ``backoff_seed`` keeps even the retry schedules reproducible.
    """
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests}")
    if rate_rps <= 0:
        raise ValueError(f"rate_rps must be positive, got {rate_rps}")
    if not 0.0 <= hot_fraction <= 1.0:
        raise ValueError(
            f"hot_fraction must be in [0, 1], got {hot_fraction}"
        )
    plan = _build_plan(requests, rate_rps, hot_fraction, seed, corpus_family)
    histogram = LatencyHistogram()
    lock = threading.Lock()
    served_by_counts: Dict[str, int] = {name: 0 for name in SERVED_BY}
    schedules_by_key: Dict[str, set] = {}
    occurrences: Dict[str, int] = {}
    duplicates = 0
    warm_duplicates = 0
    errors: List[str] = []

    epoch = time.perf_counter()

    def fire(index: int, at_s: float, identity, options) -> None:
        nonlocal duplicates, warm_duplicates
        delay = epoch + at_s - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        client = ServeClient(
            host,
            port,
            timeout_s=timeout_s,
            retries=retries,
            backoff_seed=seed * 10_000 + index,
        )
        name = identity if isinstance(identity, str) else identity.name
        key = _spec_key(name, options)
        try:
            if isinstance(identity, str):
                result = client.optimize(
                    identity, platform, fast=fast, **options
                )
            else:
                kernel = identity
                result = client.optimize(
                    platform=platform,
                    fast=fast,
                    spec=kernel.spec,
                    dims=dict(kernel.fast_dims if fast else kernel.dims),
                    dtypes=(
                        None if kernel.dtypes is None else dict(kernel.dtypes)
                    ),
                    params=(
                        None if kernel.params is None else dict(kernel.params)
                    ),
                    **options,
                )
        except Exception as exc:
            with lock:
                # Latency of a failed request still counts — dropping it
                # would be coordinated omission by another name.
                histogram.observe(
                    (time.perf_counter() - epoch - at_s) * 1000.0
                )
                errors.append(f"request {index} ({name}): {exc}")
                if occurrences.get(key, 0) > 0:
                    duplicates += 1
                occurrences[key] = occurrences.get(key, 0) + 1
            return
        latency_ms = (time.perf_counter() - epoch - at_s) * 1000.0
        canonical = json.dumps(result["schedules"], sort_keys=True)
        with lock:
            histogram.observe(latency_ms)
            served = result.get("served_by", "?")
            if served in served_by_counts:
                served_by_counts[served] += 1
            schedules_by_key.setdefault(key, set()).add(canonical)
            if occurrences.get(key, 0) > 0:
                duplicates += 1
                if served in (SERVED_BY_CACHE, SERVED_BY_COALESCED):
                    warm_duplicates += 1
            occurrences[key] = occurrences.get(key, 0) + 1

    threads = [
        threading.Thread(
            target=fire,
            args=(index, at_s, benchmark, options),
            name=f"repro-loadgen-{index}",
            daemon=True,
        )
        for index, (at_s, benchmark, options) in enumerate(plan)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_ms = (time.perf_counter() - epoch) * 1000.0

    snapshot = histogram.snapshot()
    identical = all(len(v) == 1 for v in schedules_by_key.values())
    return {
        "format": BENCH_SERVE_FORMAT,
        "seed": seed,
        "requests": requests,
        "rate_rps": rate_rps,
        "hot_fraction": hot_fraction,
        "platform": platform,
        "fast": fast,
        "corpus_family": corpus_family,
        "wall_ms": round(wall_ms, 3),
        "latency_ms": {
            **snapshot,
            **percentiles_from_histogram(snapshot),
        },
        "served_by": served_by_counts,
        "distinct_keys": len(schedules_by_key),
        "duplicates": {
            "total": duplicates,
            "warm": warm_duplicates,
            "warm_duplicate_fraction": (
                round(warm_duplicates / duplicates, 4) if duplicates else 1.0
            ),
        },
        "errors": len(errors),
        "error_samples": errors[:5],
        "responses_identical": identical,
    }


# ---------------------------------------------------------------------
# Regression gate (mirrors repro.bench.perf.check_regression)
# ---------------------------------------------------------------------

#: What the CI bench-serve gate protects.  Latency percentiles and wall
#: time are machine properties and stay informational.
GATED_QUANTITIES = ("errors", "responses_identical", "warm_duplicate_fraction")


def check_serve_regression(
    current: Dict, baseline: Dict, *, tolerance: float = 0.2
) -> List[str]:
    """Compare a fresh loadgen run against the committed baseline.

    Returns human-readable failures (empty = gate passes).  Gated:
    zero errors, cross-response schedule identity, and the
    warm-duplicate fraction within one-sided ``tolerance`` of the
    baseline's.
    """
    failures: List[str] = []
    if current.get("format") != baseline.get("format"):
        failures.append(
            f"format mismatch: current={current.get('format')!r} "
            f"baseline={baseline.get('format')!r} (regenerate the baseline)"
        )
        return failures
    for key in ("seed", "requests", "hot_fraction"):
        if current.get(key) != baseline.get(key):
            failures.append(
                f"workload mismatch on {key!r}: current={current.get(key)!r} "
                f"baseline={baseline.get(key)!r} (compare like with like)"
            )
    if failures:
        return failures
    errors = current.get("errors", -1)
    if errors != 0:
        samples = "; ".join(current.get("error_samples", [])[:2])
        failures.append(
            f"{errors} request(s) failed (must be 0): {samples or 'n/a'}"
        )
    if not current.get("responses_identical", False):
        failures.append(
            "responses for one identity are not bit-identical across "
            "shards/coalescing — determinism regression"
        )
    cur = current.get("duplicates", {}).get("warm_duplicate_fraction")
    base = baseline.get("duplicates", {}).get("warm_duplicate_fraction")
    if cur is None or base is None:
        failures.append(
            "missing warm_duplicate_fraction in current or baseline"
        )
    else:
        floor = base * (1.0 - tolerance)
        if cur < floor:
            failures.append(
                f"warm_duplicate_fraction regressed: {cur:.2f} < "
                f"{floor:.2f} (baseline {base:.2f} - {tolerance:.0%} "
                f"tolerance) — repeat requests are re-searching"
            )
    return failures


def write_payload(payload: Dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
