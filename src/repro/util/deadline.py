"""Cooperative deadlines for the optimization flow.

The paper reports optimizer runtime as a first-class result (Table 5), but
the search loops of Algorithms 2 and 3 have no intrinsic time bound: an
adversarial problem size can make the candidate enumeration arbitrarily
slow.  This module provides the cooperative budget machinery that
:func:`repro.robust.safe_optimize` uses to bound each fallback rung:

* :class:`Deadline` — a ``time.perf_counter``-based budget with an explicit
  expiry, checked (never preempted) at well-known points;
* :func:`active_deadline` — a context manager installing a deadline into a
  :class:`contextvars.ContextVar`, so deeply nested search loops need no
  parameter threading;
* :func:`checkpoint` — the probe the candidate loops of
  ``optimize_temporal`` / ``optimize_spatial`` (and the simulator) call;
  it raises :class:`~repro.util.errors.DeadlineExceeded` when the active
  deadline has expired and is a cheap no-op otherwise.

Checkpoints are *cooperative*: a deadline can only fire at a checkpoint,
so the guarantee is "the search stops within one candidate evaluation of
the budget", not a hard preemption — the same discipline production
autoschedulers use to stay signal-safe.
"""

from __future__ import annotations

import contextlib
import contextvars
import time
from typing import Iterator, Optional

from repro.util.errors import DeadlineExceeded


class Deadline:
    """A wall-clock budget measured with ``time.perf_counter``.

    Parameters
    ----------
    budget_seconds:
        How long the guarded work may run.  ``None`` means unbounded (every
        probe is a no-op), which lets callers thread one object through
        unconditionally.
    label:
        Human-readable name included in the ``DeadlineExceeded`` message
        (e.g. the fallback rung being attempted).
    """

    __slots__ = ("budget_seconds", "label", "_started_at", "_expires_at")

    def __init__(
        self, budget_seconds: Optional[float], label: str = "optimize"
    ) -> None:
        if budget_seconds is not None and budget_seconds < 0:
            raise ValueError(
                f"deadline budget must be >= 0, got {budget_seconds}"
            )
        self.budget_seconds = budget_seconds
        self.label = label
        self._started_at = time.perf_counter()
        self._expires_at = (
            None
            if budget_seconds is None
            else self._started_at + budget_seconds
        )

    # -- introspection -------------------------------------------------

    def elapsed(self) -> float:
        """Seconds since the deadline was created."""
        return time.perf_counter() - self._started_at

    def remaining(self) -> Optional[float]:
        """Seconds left (never negative), or ``None`` when unbounded."""
        if self._expires_at is None:
            return None
        return max(0.0, self._expires_at - time.perf_counter())

    def remaining_ms(self) -> Optional[float]:
        """Milliseconds left (never negative), or ``None`` when unbounded.

        The serving layers speak milliseconds on the wire
        (``deadline_ms``, the end-to-end budget header), so they get the
        unit conversion in one place instead of four.
        """
        remaining = self.remaining()
        return None if remaining is None else remaining * 1000.0

    def expired(self) -> bool:
        """Whether the budget has run out."""
        if self._expires_at is None:
            return False
        return time.perf_counter() >= self._expires_at

    # -- enforcement ---------------------------------------------------

    def check(self, stage: str = "") -> None:
        """Raise :class:`DeadlineExceeded` if the budget has run out."""
        if self.expired():
            where = f" during {stage}" if stage else ""
            raise DeadlineExceeded(
                f"deadline {self.label!r} exhausted after "
                f"{self.elapsed() * 1000:.1f} ms "
                f"(budget {self.budget_seconds * 1000:.1f} ms){where}"
            )

    def force_expire(self) -> None:
        """Expire the deadline immediately.

        Used by the fault-injection framework to model a stage exhausting
        its budget without actually sleeping through it.
        """
        now = time.perf_counter()
        self._expires_at = now
        if self.budget_seconds is None:
            self.budget_seconds = now - self._started_at

    def __repr__(self) -> str:
        if self.budget_seconds is None:
            return f"Deadline({self.label!r}, unbounded)"
        return (
            f"Deadline({self.label!r}, budget={self.budget_seconds * 1000:.1f}ms, "
            f"remaining={(self.remaining() or 0.0) * 1000:.1f}ms)"
        )


_ACTIVE: contextvars.ContextVar[Optional[Deadline]] = contextvars.ContextVar(
    "repro_active_deadline", default=None
)


def current_deadline() -> Optional[Deadline]:
    """The deadline installed by the nearest :func:`active_deadline`."""
    return _ACTIVE.get()


@contextlib.contextmanager
def active_deadline(deadline: Optional[Deadline]) -> Iterator[Optional[Deadline]]:
    """Install ``deadline`` as the ambient deadline for the ``with`` body.

    Passing ``None`` explicitly clears any outer deadline, so a rung that
    must always complete (the untransformed fallback) can opt out.
    """
    token = _ACTIVE.set(deadline)
    try:
        yield deadline
    finally:
        _ACTIVE.reset(token)


def checkpoint(stage: str = "") -> None:
    """Cooperative probe: raise if the ambient deadline has expired.

    A no-op when no deadline is active, so the optimizer's candidate loops
    can call this unconditionally.
    """
    deadline = _ACTIVE.get()
    if deadline is not None:
        deadline.check(stage)
