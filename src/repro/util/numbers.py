"""Integer helpers: ceil-division, divisors and tile-size candidate lattices.

The paper's Algorithm 2 nominally "evaluates all valid tile sizes".  Testing
every integer up to the loop bound is neither necessary (the cost functions
are smooth between cache-geometry breakpoints) nor what the paper's reported
millisecond runtimes (Table 5) allow.  :func:`tile_candidates` builds the
candidate lattice we search instead: powers of two, multiples of the cache
line / vector width, and exact divisors of the bound, all clamped to an upper
bound.  An exhaustive mode is available for small bounds and for tests.
"""

from __future__ import annotations

from typing import List


def ceil_div(a: int, b: int) -> int:
    """Return ``ceil(a / b)`` for non-negative ``a`` and positive ``b``."""
    if b <= 0:
        raise ValueError(f"ceil_div requires a positive divisor, got {b}")
    if a < 0:
        raise ValueError(f"ceil_div requires a non-negative dividend, got {a}")
    return -(-a // b)


def clamp(value: int, low: int, high: int) -> int:
    """Clamp ``value`` into the inclusive range ``[low, high]``."""
    if low > high:
        raise ValueError(f"clamp range is empty: [{low}, {high}]")
    return max(low, min(high, value))


def divisors(n: int) -> List[int]:
    """Return all positive divisors of ``n`` in ascending order."""
    if n <= 0:
        raise ValueError(f"divisors requires a positive integer, got {n}")
    small = []
    large = []
    d = 1
    while d * d <= n:
        if n % d == 0:
            small.append(d)
            if d != n // d:
                large.append(n // d)
        d += 1
    return small + large[::-1]


def pow2_range(low: int, high: int) -> List[int]:
    """Return the powers of two in the inclusive range ``[low, high]``."""
    if low < 1:
        low = 1
    out = []
    p = 1
    while p < low:
        p *= 2
    while p <= high:
        out.append(p)
        p *= 2
    return out


def tile_candidates(
    bound: int,
    upper: int,
    *,
    quantum: int = 1,
    exhaustive: bool = False,
) -> List[int]:
    """Candidate tile sizes for a loop of extent ``bound``.

    Parameters
    ----------
    bound:
        The loop extent (problem size in this dimension).
    upper:
        Upper bound on the tile size (e.g. returned by the cache-emulation
        Algorithm 1, or the extent itself).
    quantum:
        A granularity to favor, typically the vector width or the number of
        elements per cache line; multiples of it are included.
    exhaustive:
        When true, return every integer in ``[1, min(bound, upper)]``.

    Returns
    -------
    list of int
        Sorted, de-duplicated candidate tile sizes, always including 1, the
        cap itself and the full extent if it fits under ``upper``.
    """
    if bound <= 0:
        raise ValueError(f"tile_candidates requires a positive bound, got {bound}")
    cap = min(bound, max(1, upper))
    if exhaustive:
        return list(range(1, cap + 1))
    cands = {1, cap}
    cands.update(p for p in pow2_range(1, cap))
    if quantum > 1:
        m = quantum
        while m <= cap:
            cands.add(m)
            m += quantum
            # Keep the multiple list short for very large caps.
            if m > 16 * quantum and m < cap - quantum:
                m = min(2 * m, cap)
        cands.add(min(quantum, cap))
    for d in divisors(bound):
        if d <= cap:
            cands.add(d)
    if bound <= cap:
        cands.add(bound)
    return sorted(cands)
