"""Exception hierarchy for the reproduction library.

All library-raised exceptions derive from :class:`ReproError` so that callers
can catch everything coming from this package with a single ``except``.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ScheduleError(ReproError):
    """An illegal scheduling directive or an inconsistent schedule.

    Raised, for example, when splitting an unknown variable, reordering with
    a variable that does not belong to the loop nest, or vectorizing a loop
    whose extent is not divisible by the vector width in strict mode.
    """


class ClassificationError(ReproError):
    """The classifier could not analyze the statement.

    Raised when a statement contains index expressions outside the affine
    subset the analytical model supports (e.g. indirect accesses ``A[B[i]]``).
    """


class SimulationError(ReproError):
    """The trace generator or cache simulator hit an inconsistent state."""


class ValidationError(ReproError, ValueError):
    """An input failed structural validation before any optimization ran.

    Raised for zero/negative loop bounds, degenerate cache geometries
    (non-power-of-two line sizes, an L1 bigger than its L2, ...), and other
    inputs the analytical model cannot meaningfully process.  Subclasses
    :class:`ValueError` so callers predating the ``ReproError`` hierarchy
    keep working.
    """


class DeadlineExceeded(ReproError, TimeoutError):
    """A cooperative deadline expired while the optimizer was searching.

    Raised from the checkpoints threaded through the candidate loops of
    :func:`repro.core.temporal.optimize_temporal` and
    :func:`repro.core.spatial.optimize_spatial` when the active
    :class:`repro.util.deadline.Deadline` runs out of budget.  Subclasses
    :class:`TimeoutError` for interoperability with generic timeout
    handling.
    """
