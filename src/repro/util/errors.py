"""Exception hierarchy for the reproduction library.

All library-raised exceptions derive from :class:`ReproError` so that callers
can catch everything coming from this package with a single ``except``.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ScheduleError(ReproError):
    """An illegal scheduling directive or an inconsistent schedule.

    Raised, for example, when splitting an unknown variable, reordering with
    a variable that does not belong to the loop nest, or vectorizing a loop
    whose extent is not divisible by the vector width in strict mode.
    """


class ClassificationError(ReproError):
    """The classifier could not analyze the statement.

    Raised when a statement contains index expressions outside the affine
    subset the analytical model supports (e.g. indirect accesses ``A[B[i]]``).
    """


class SimulationError(ReproError):
    """The trace generator or cache simulator hit an inconsistent state."""
