"""Exception hierarchy for the reproduction library.

All library-raised exceptions derive from :class:`ReproError` so that callers
can catch everything coming from this package with a single ``except``.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ScheduleError(ReproError):
    """An illegal scheduling directive or an inconsistent schedule.

    Raised, for example, when splitting an unknown variable, reordering with
    a variable that does not belong to the loop nest, or vectorizing a loop
    whose extent is not divisible by the vector width in strict mode.
    """


class ClassificationError(ReproError):
    """The classifier could not analyze the statement.

    Raised when a statement contains index expressions outside the affine
    subset the analytical model supports (e.g. indirect accesses ``A[B[i]]``).
    """


class SimulationError(ReproError):
    """The trace generator or cache simulator hit an inconsistent state."""


class ValidationError(ReproError, ValueError):
    """An input failed structural validation before any optimization ran.

    Raised for zero/negative loop bounds, degenerate cache geometries
    (non-power-of-two line sizes, an L1 bigger than its L2, ...), and other
    inputs the analytical model cannot meaningfully process.  Subclasses
    :class:`ValueError` so callers predating the ``ReproError`` hierarchy
    keep working.
    """


class ServeError(ReproError):
    """A serving-layer failure: malformed ``repro-serve-v1`` payloads,
    transport problems, or a server-side error response.

    Raised by :mod:`repro.serve` on both sides of the wire — the server
    maps it to a 4xx/5xx JSON error response, the client re-raises it
    with the server's friendly message attached.
    """


class ServeOverloaded(ServeError):
    """The server shed the request (admission queue full or draining).

    Carries the server's ``Retry-After`` hint so callers can implement
    their own backoff; :meth:`repro.serve.client.ServeClient.optimize`
    raises this only once its bounded retries are exhausted — or, when
    the caller set a ``deadline_ms``, as soon as that budget forbids
    another retry (``reason`` is then
    :data:`repro.serve.schema.REASON_DEADLINE_EXHAUSTED`).
    """

    def __init__(
        self,
        message: str,
        retry_after_s: float = 1.0,
        *,
        reason: str = "",
        last_status: int = 0,
    ) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s
        self.reason = reason
        self.last_status = last_status


class DeadlineExceeded(ReproError, TimeoutError):
    """A cooperative deadline expired while the optimizer was searching.

    Raised from the checkpoints threaded through the candidate loops of
    :func:`repro.core.temporal.optimize_temporal` and
    :func:`repro.core.spatial.optimize_spatial` when the active
    :class:`repro.util.deadline.Deadline` runs out of budget.  Subclasses
    :class:`TimeoutError` for interoperability with generic timeout
    handling.
    """
