"""Small shared helpers used across the reproduction packages."""

from repro.util.errors import (
    ReproError,
    ScheduleError,
    ClassificationError,
    SimulationError,
)
from repro.util.numbers import (
    ceil_div,
    divisors,
    pow2_range,
    tile_candidates,
    clamp,
)

__all__ = [
    "ReproError",
    "ScheduleError",
    "ClassificationError",
    "SimulationError",
    "ceil_div",
    "divisors",
    "pow2_range",
    "tile_candidates",
    "clamp",
]
