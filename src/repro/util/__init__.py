"""Small shared helpers used across the reproduction packages."""

from repro.util.errors import (
    ReproError,
    ScheduleError,
    ClassificationError,
    SimulationError,
    ValidationError,
    DeadlineExceeded,
    ServeError,
    ServeOverloaded,
)
from repro.util.deadline import (
    Deadline,
    active_deadline,
    checkpoint,
    current_deadline,
)
from repro.util.numbers import (
    ceil_div,
    divisors,
    pow2_range,
    tile_candidates,
    clamp,
)

__all__ = [
    "ReproError",
    "ScheduleError",
    "ClassificationError",
    "SimulationError",
    "ValidationError",
    "DeadlineExceeded",
    "ServeError",
    "ServeOverloaded",
    "Deadline",
    "active_deadline",
    "checkpoint",
    "current_deadline",
    "ceil_div",
    "divisors",
    "pow2_range",
    "tile_candidates",
    "clamp",
]
