"""The generated kernel corpus: the workload ring beyond Table 4.

Every kernel is *one spec string* — the same notation `repro.api`, the
CLI and the serve wire format accept — plus its extents, so the corpus
doubles as a conformance suite for the frontend: the committed golden
manifest (``benchmarks/corpus_manifest.json``) pins every kernel's
per-stage fingerprints and classification, and CI fails on any lowering
or classifier drift.

Four families:

* **polybench** — the PolyBench kernels ROADMAP item 3 calls for beyond
  the hand-written suite (bicg, atax, mvt, gemver, gesummv, doitgen,
  2mm/3mm, jacobi-1d/2d, seidel...);
* **dl** — DL-shaped ops (batched matmul, convolutions with channels,
  depthwise, attention-shaped chains, a 2-layer MLP);
* **micro** — streaming/transposition micro-kernels that pin the
  classifier's SPATIAL/NONE boundaries;
* **mef** — the multi-striding evaluation family (Blom et al.): long
  streaming reductions, column-major walks, stencils and convolutions
  sized so the three-way strategy classifier
  (:mod:`repro.multistride.strategy`) has something real to decide —
  its sweep (:mod:`repro.experiments.mef`) shows every verdict (tile /
  multistride / combined) at least once.

Sizing: ``dims`` are the measurement sizes (modest — the corpus trades
per-kernel size for breadth); ``fast_dims`` are the smoke sizes used by
``--fast`` runs and CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.bench.suite import BenchmarkCase
from repro.frontend.lowering import Lowered, lower_spec

__all__ = [
    "CORPUS",
    "CorpusKernel",
    "MANIFEST_FORMAT",
    "corpus_case",
    "corpus_kernel",
    "corpus_manifest",
    "corpus_names",
]

#: Format tag of the committed golden manifest.
MANIFEST_FORMAT = "repro-frontend-corpus-v1"

Number = Union[int, float]


@dataclass(frozen=True)
class CorpusKernel:
    """One corpus entry: a spec plus everything needed to lower it."""

    name: str
    family: str  # "polybench" | "dl" | "micro" | "mef"
    description: str
    spec: str
    dims: Mapping[str, int]
    fast_dims: Mapping[str, int]
    dtypes: Optional[Mapping[str, str]] = None
    params: Optional[Mapping[str, Number]] = None

    def lower(self, *, fast: bool = False) -> Lowered:
        """Lower at measurement (default) or smoke (``fast``) sizes."""
        return lower_spec(
            self.spec,
            self.fast_dims if fast else self.dims,
            dtypes=self.dtypes,
            params=self.params,
            name=self.name,
        )

    def case(self, *, fast: bool = False) -> BenchmarkCase:
        """The kernel as a :class:`repro.bench.BenchmarkCase`."""
        lowered = self.lower(fast=fast)
        dims = self.fast_dims if fast else self.dims
        size = "x".join(str(v) for v in dims.values())
        return BenchmarkCase(
            name=self.name,
            description=f"[{self.family}] {self.description}",
            pipeline=lowered.pipeline,
            problem_size=size,
        )


def _k(
    name: str,
    family: str,
    description: str,
    spec: str,
    dims: Dict[str, int],
    fast_dims: Dict[str, int],
    dtypes: Optional[Dict[str, str]] = None,
    params: Optional[Dict[str, Number]] = None,
) -> CorpusKernel:
    return CorpusKernel(
        name=name,
        family=family,
        description=description,
        spec=spec,
        dims=dims,
        fast_dims=fast_dims,
        dtypes=dtypes,
        params=params,
    )


def _square(n: int, *names: str) -> Dict[str, int]:
    return {name: n for name in names}


#: The corpus, in presentation order (stable: the manifest and the
#: win/loss table iterate this list).
CORPUS: Tuple[CorpusKernel, ...] = (
    # ---- polybench: linear algebra (temporal reuse) -------------------
    _k(
        "mxv", "polybench", "matrix-vector product",
        "y[i] += A[i,k] * x[k]",
        _square(1024, "i", "k"), _square(96, "i", "k"),
    ),
    _k(
        "matmul", "polybench", "square matrix product (hand-written twin)",
        "C[i,j] += A[i,k] * B[k,j]",
        _square(256, "i", "j", "k"), _square(48, "i", "j", "k"),
    ),
    _k(
        "gemm", "polybench", "C = beta*C + alpha*A.B",
        "C[i,j] = beta * Cin[i,j]; C[i,j] += alpha * A[i,k] * B[k,j]",
        _square(256, "i", "j", "k"), _square(48, "i", "j", "k"),
        params={"alpha": 1.5, "beta": 1.2},
    ),
    _k(
        "syrk", "polybench", "symmetric rank-k update",
        "C[i,j] += A[i,k] * A[j,k]",
        _square(256, "i", "j", "k"), _square(48, "i", "j", "k"),
    ),
    _k(
        "syr2k", "polybench", "symmetric rank-2k update",
        "C[i,j] += A[i,k] * B[j,k] + B[i,k] * A[j,k]",
        _square(192, "i", "j", "k"), _square(48, "i", "j", "k"),
    ),
    _k(
        "gesummv", "polybench", "scalar, vector and matrix multiplication",
        "y[i] += alpha * A[i,j] * x[j] + beta * B[i,j] * x[j]",
        _square(768, "i", "j"), _square(96, "i", "j"),
        params={"alpha": 1.5, "beta": 1.2},
    ),
    _k(
        "atax", "polybench", "A^T times A times x",
        "T[i] += A[i,j] * x[j]; y[j2] += A[i2,j2] * T[i2]",
        _square(768, "i", "j", "i2", "j2"),
        _square(96, "i", "j", "i2", "j2"),
    ),
    _k(
        "bicg", "polybench", "BiCG sub-kernel of BiCGStab",
        "s[j] += A[i,j] * r[i]; q[i2] += A[i2,j2] * p[j2]",
        _square(768, "i", "j", "i2", "j2"),
        _square(96, "i", "j", "i2", "j2"),
    ),
    _k(
        "mvt", "polybench", "matrix-vector product and transpose",
        "x1[i] += A[i,j] * y1[j]; x2[i2] += A[j2,i2] * y2[j2]",
        _square(768, "i", "j", "i2", "j2"),
        _square(96, "i", "j", "i2", "j2"),
    ),
    _k(
        "gemver", "polybench", "rank-2 update then matrix-vector product",
        "Ah[i,j] = A[i,j] + u1[i] * v1[j] + u2[i] * v2[j];"
        " w[i2] += alpha * Ah[i2,j2] * x[j2]",
        _square(512, "i", "j", "i2", "j2"),
        _square(64, "i", "j", "i2", "j2"),
        params={"alpha": 1.5},
    ),
    _k(
        "2mm", "polybench", "two chained matrix products",
        "T[i,j] += alpha * A[i,k] * B[k,j];"
        " D[i2,j2] += T[i2,k2] * C[k2,j2]",
        _square(160, "i", "j", "k", "i2", "j2", "k2"),
        _square(32, "i", "j", "k", "i2", "j2", "k2"),
        params={"alpha": 1.5},
    ),
    _k(
        "3mm", "polybench", "three chained matrix products",
        "E[i,j] += A[i,k] * B[k,j]; F[j,l] += C[j,m] * D[m,l];"
        " G[i2,l2] += E[i2,j2] * F[j2,l2]",
        _square(128, "i", "j", "k", "l", "m", "i2", "j2", "l2"),
        _square(32, "i", "j", "k", "l", "m", "i2", "j2", "l2"),
    ),
    _k(
        "doitgen", "polybench", "multi-resolution analysis kernel",
        "Acc[r,q,p] += A[r,q,s] * C4[s,p];"
        " Out[r2,q2,p2] = Acc[r2,q2,p2]",
        {"r": 64, "q": 64, "p": 64, "s": 64,
         "r2": 64, "q2": 64, "p2": 64},
        {"r": 16, "q": 16, "p": 16, "s": 16,
         "r2": 16, "q2": 16, "p2": 16},
    ),
    _k(
        "ttm", "polybench", "tensor-times-matrix contraction",
        "Y[i,j,l] += X[i,j,k] * M[k,l]",
        {"i": 64, "j": 64, "k": 128, "l": 128},
        {"i": 12, "j": 12, "k": 32, "l": 32},
    ),
    # ---- dl: batched / channelled shapes (temporal reuse) -------------
    _k(
        "bmm", "dl", "batched matrix product",
        "C[b,i,j] += A[b,i,k] * B[b,k,j]",
        {"b": 16, "i": 96, "j": 96, "k": 96},
        {"b": 4, "i": 32, "j": 32, "k": 32},
    ),
    _k(
        "bmxv", "dl", "batched matrix-vector product",
        "y[b,i] += A[b,i,k] * x[b,k]",
        {"b": 32, "i": 256, "k": 256},
        {"b": 4, "i": 48, "k": 48},
    ),
    _k(
        "conv3x3", "dl", "3x3 convolution with input/output channels",
        "Out[f,y,x] += In[c,y+ky,x+kx] * W[f,c,ky,kx]",
        {"f": 32, "c": 32, "y": 28, "x": 28, "ky": 3, "kx": 3},
        {"f": 8, "c": 8, "y": 14, "x": 14, "ky": 3, "kx": 3},
    ),
    _k(
        "conv1x1", "dl", "pointwise (1x1) convolution",
        "Out[f,y,x] += In[c,y,x] * W[f,c]",
        {"f": 64, "c": 64, "y": 28, "x": 28},
        {"f": 16, "c": 16, "y": 14, "x": 14},
    ),
    _k(
        "depthwise3x3", "dl", "depthwise 3x3 convolution",
        "Out[c,y,x] += In[c,y+ky,x+kx] * W[c,ky,kx]",
        {"c": 64, "y": 28, "x": 28, "ky": 3, "kx": 3},
        {"c": 16, "y": 14, "x": 14, "ky": 3, "kx": 3},
    ),
    _k(
        "attn-qk", "dl", "attention scores: Q.K^T per batch",
        "S[b,i,j] += Q[b,i,d] * K[b,j,d]",
        {"b": 8, "i": 96, "j": 96, "d": 64},
        {"b": 2, "i": 32, "j": 32, "d": 16},
    ),
    _k(
        "attn-av", "dl", "attention values: P.V per batch",
        "O[b,i,d] += P[b,i,j] * V[b,j,d]",
        {"b": 8, "i": 96, "j": 96, "d": 64},
        {"b": 2, "i": 32, "j": 32, "d": 16},
    ),
    _k(
        "attn-chain", "dl", "attention-shaped chain: scores then values",
        "S[b,i,j] += Q[b,i,d] * K[b,j,d];"
        " O[b2,i2,d2] += S[b2,i2,j2] * V[b2,j2,d2]",
        {"b": 8, "i": 64, "j": 64, "d": 48,
         "b2": 8, "i2": 64, "j2": 64, "d2": 48},
        {"b": 2, "i": 24, "j": 24, "d": 12,
         "b2": 2, "i2": 24, "j2": 24, "d2": 12},
    ),
    _k(
        "mlp2", "dl", "two dense layers (no nonlinearity)",
        "H[i,j] += X[i,k] * W1[k,j]; Y[i2,l] += H[i2,j2] * W2[j2,l]",
        {"i": 128, "j": 128, "k": 128, "i2": 128, "j2": 128, "l": 128},
        {"i": 32, "j": 32, "k": 32, "i2": 32, "j2": 32, "l": 32},
    ),
    # ---- micro: transposed inputs (spatial reuse) ---------------------
    _k(
        "transpose", "micro", "out-of-place transposition",
        "B[i,j] = A[j,i]",
        _square(1024, "i", "j"), _square(96, "i", "j"),
    ),
    _k(
        "transpose-bitmask", "micro",
        "elementwise AND against a transposed operand (int32)",
        "C[x,y] = A[x,y] & B[y,x]",
        _square(1024, "x", "y"), _square(96, "x", "y"),
        dtypes={"C": "int32", "A": "int32", "B": "int32"},
    ),
    _k(
        "transpose-add", "micro", "add a transposed operand",
        "C[i,j] = A[i,j] + B[j,i]",
        _square(1024, "i", "j"), _square(96, "i", "j"),
    ),
    _k(
        "transpose-scale", "micro", "scaled transposition",
        "B[i,j] = 2.0 * A[j,i]",
        _square(1024, "i", "j"), _square(96, "i", "j"),
    ),
    # ---- micro + polybench stencils: streaming (no transformation) ----
    _k(
        "copy2d", "micro", "plane copy",
        "B[i,j] = A[i,j]",
        _square(1024, "i", "j"), _square(96, "i", "j"),
    ),
    _k(
        "axpy", "micro", "scaled vector addition",
        "y[i] = a * x[i] + y0[i]",
        {"i": 262144}, {"i": 4096},
        params={"a": 2.5},
    ),
    _k(
        "scale2d", "micro", "uniform scaling",
        "B[i,j] = 3.0 * A[i,j]",
        _square(1024, "i", "j"), _square(96, "i", "j"),
    ),
    _k(
        "jacobi1d", "polybench", "3-point Jacobi smoothing",
        "B[i] = 0.33333 * (A[i-1] + A[i] + A[i+1])",
        {"i": 262144}, {"i": 4096},
    ),
    _k(
        "jacobi2d", "polybench",
        "5-point Jacobi stencil (hand-written twin)",
        "Jac[y,x] = 0.2 * (Ain[y,x] + Ain[y,x-1] + Ain[y,x+1]"
        " + Ain[y-1,x] + Ain[y+1,x])",
        _square(512, "x", "y"), _square(64, "x", "y"),
    ),
    _k(
        "seidel9", "polybench", "9-point box smoothing",
        "B[y,x] = (A[y-1,x-1] + A[y-1,x] + A[y-1,x+1]"
        " + A[y,x-1] + A[y,x] + A[y,x+1]"
        " + A[y+1,x-1] + A[y+1,x] + A[y+1,x+1]) / 9.0",
        _square(512, "x", "y"), _square(64, "x", "y"),
    ),
    _k(
        "stencil5w", "micro",
        "weighted 5-point stencil (the spec-language example)",
        "B[i,j] = a*A[i,j] + b*(A[i-1,j]+A[i+1,j]+A[i,j-1]+A[i,j+1])",
        _square(512, "i", "j"), _square(64, "i", "j"),
        params={"a": 0.5, "b": 0.125},
    ),
    _k(
        "blur1d3", "micro", "horizontal 3-tap blur",
        "B[y,x] = 0.25 * A[y,x-1] + 0.5 * A[y,x] + 0.25 * A[y,x+1]",
        _square(512, "x", "y"), _square(64, "x", "y"),
    ),
    # ---- mef: multi-striding evaluation family (Blom et al.) ----------
    # Sized so one vectorized stream cannot hide the prefetch latency
    # (long contiguous reduction axes) — the regime where interleaved
    # sub-streams pay — alongside shapes where they cannot (stencils
    # whose engines a split would thrash, nests with no serial stream
    # loop left).  The three-strategy table over this family is
    # regenerated by ``python -m repro.experiments.mef``.
    _k(
        "mef-mxv", "mef", "matrix-vector product, long reduction rows",
        "y[i] += A[i,k] * x[k]",
        {"i": 2048, "k": 8192}, {"i": 128, "k": 512},
    ),
    _k(
        "mef-mxvt", "mef",
        "transposed matrix-vector product (column-major walk)",
        "z[j] += A[i,j] * w[i]",
        {"i": 4096, "j": 4096}, {"i": 256, "j": 256},
    ),
    _k(
        "mef-rowsum", "mef", "row-wise reduction over a wide matrix",
        "acc[i] += A[i,k]",
        {"i": 2048, "k": 16384}, {"i": 128, "k": 1024},
    ),
    _k(
        "mef-bicg", "mef", "BiCG sub-kernel at multi-striding sizes",
        "s[j] += A[i,j] * r[i]; q[i2] += A[i2,j2] * p[j2]",
        _square(2048, "i", "j", "i2", "j2"),
        _square(128, "i", "j", "i2", "j2"),
    ),
    _k(
        "mef-gemver", "mef",
        "rank-2 update then matrix-vector product, multi-striding sizes",
        "Ah[i,j] = A[i,j] + u1[i] * v1[j] + u2[i] * v2[j];"
        " w[i2] += alpha * Ah[i2,j2] * x[j2]",
        _square(2048, "i", "j", "i2", "j2"),
        _square(128, "i", "j", "i2", "j2"),
        params={"alpha": 1.5},
    ),
    _k(
        "mef-doitgen", "mef",
        "multi-resolution contraction (temporal reuse keeps tiling ahead)",
        "Acc[r,q,p] += A[r,q,s] * C4[s,p]",
        _square(64, "r", "q", "p", "s"),
        _square(16, "r", "q", "p", "s"),
    ),
    _k(
        "mef-jacobi2d", "mef",
        "5-point Jacobi stencil with very long rows",
        "Jac[y,x] = 0.2 * (Ain[y,x] + Ain[y,x-1] + Ain[y,x+1]"
        " + Ain[y-1,x] + Ain[y+1,x])",
        {"x": 8192, "y": 512}, {"x": 512, "y": 64},
    ),
    _k(
        "mef-conv3x3", "mef",
        "3x3 convolution with long rows (engine pool already saturated)",
        "Out[f,y,x] += In[c,y+ky,x+kx] * W[f,c,ky,kx]",
        {"f": 16, "c": 16, "y": 64, "x": 2048, "ky": 3, "kx": 3},
        {"f": 4, "c": 4, "y": 16, "x": 256, "ky": 3, "kx": 3},
    ),
)

_BY_NAME: Dict[str, CorpusKernel] = {k.name: k for k in CORPUS}
assert len(_BY_NAME) == len(CORPUS), "duplicate corpus kernel name"


def corpus_names() -> List[str]:
    """Kernel names in corpus order."""
    return [k.name for k in CORPUS]


def corpus_kernel(name: str) -> CorpusKernel:
    """Look one kernel up by name (KeyError message lists the corpus)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown corpus kernel {name!r}; known: {corpus_names()}"
        ) from None


def corpus_case(name: str, *, fast: bool = False) -> BenchmarkCase:
    """Lower one corpus kernel into a :class:`BenchmarkCase`."""
    return corpus_kernel(name).case(fast=fast)


def corpus_manifest() -> Dict:
    """The golden manifest: per-kernel stage fingerprints at measurement
    sizes, plus the classifier's verdict per stage.

    Committed as ``benchmarks/corpus_manifest.json``; CI regenerates it
    and fails on any drift (lowering change, fingerprint change, or
    classification change are all API breaks for the serve layer, which
    coalesces and shards on exactly these hashes).
    """
    from repro.core.classify import classify

    kernels = {}
    for kernel in CORPUS:
        lowered = kernel.lower()
        stages = []
        for func, fingerprint in zip(lowered.funcs, lowered.fingerprints):
            verdict = classify(func)
            stages.append(
                {
                    "stage": func.name,
                    "fingerprint": fingerprint,
                    "locality": verdict.locality.value,
                    "use_nti": verdict.use_nti,
                }
            )
        kernels[kernel.name] = {
            "family": kernel.family,
            "dims": dict(kernel.dims),
            "stages": stages,
        }
    return {"format": MANIFEST_FORMAT, "kernels": kernels}
