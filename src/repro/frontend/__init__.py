"""`repro.frontend` — the kernel spec language.

One line of einsum/affine notation describes a kernel::

    C[i,j] += A[i,k] * B[k,j]

and :func:`lower_spec` compiles it (plus a ``dims`` extent mapping) into
the same :class:`repro.ir.Func` pipeline a hand-written builder would
produce — deterministically, down to the content fingerprint.  The spec
string is accepted everywhere a Func is: :class:`repro.api
.OptimizeRequest(spec=..., dims=...) <repro.api.OptimizeRequest>`, the
CLI (``repro optimize --spec`` / ``repro submit --spec``) and the serve
wire format (repro-serve-v1.1 ``{"spec": ..., "dims": ...}`` bodies).

:mod:`repro.frontend.corpus` uses it to generate the next workload ring
beyond the hand-written Table 4 suite: the remaining PolyBench kernels
plus DL-shaped ops (batched matmul, convolutions with channels,
attention-shaped chains) — see ``python -m repro.frontend corpus``.
"""

from repro.frontend.lowering import DTYPES, Lowered, lower_spec
from repro.frontend.parser import parse_spec

__all__ = ["DTYPES", "Lowered", "lower_spec", "parse_spec"]
