"""Lowering: spec string + dims → :class:`repro.ir.Func` pipeline.

The contract that makes the frontend a *wire format* rather than sugar:
lowering is **deterministic and fingerprint-stable**.  Two lowerings of
the same ``(spec, dims, dtypes, params)`` — in the same process, in two
interpreters, on two machines — produce Funcs with identical
:func:`repro.cache.fingerprint.func_fingerprint` hashes, and a spec that
describes the same kernel as a hand-written Func produces the *same*
fingerprint as that Func.  That is what lets spec-submissions coalesce,
cache-hit, and shard together with ``repro.ir`` submissions.

How the stability is achieved:

* **Canonical index ordering** — every affine index is decomposed into
  ``{var: coeff} + const`` and rebuilt in first-appearance order with
  the constant last (``1 + y`` and ``y + 1`` both lower to ``y + 1``),
  using exactly the expression shapes Python operator overloading builds
  (``y + 1`` is ``BinOp('+', Var('y'), Const(1))``).
* **Offset normalization** — stencil specs are written with natural
  negative neighbors (``A[i-1, j]``); lowering shifts each buffer
  dimension so the smallest reachable index is 0 and pads the inferred
  shape accordingly, which reproduces the hand-padded form of kernels
  like :func:`repro.bench.polybench.make_jacobi2d` exactly.
* **Inferred shapes** — buffer shapes are the tightest extent every
  access can reach given ``dims`` (after the shift), so the same spec
  never lowers to two different shapes.
* **Literal fidelity** — numeric literals keep their written int/float
  type and scalar parameters are substituted as ``Const`` values, so
  constants fingerprint identically to hand-written code.

Scope (mirrors the paper's: dense affine loop nests): indices must be
affine in the loop variables; reads of *earlier stages* must use plain
loop variables (no stencil over a stage — same restriction the repo's
hand-written pipelines obey); a stage may read itself only at the
current point (classic reduction updates).  Everything out of scope
raises :class:`~repro.util.ValidationError` with an actionable message.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.frontend.parser import (
    Bin,
    Name,
    Neg,
    Num,
    Ref,
    Statement,
    parse_spec,
)
from repro.ir.expr import Access, BinOp, Const, Expr
from repro.ir.func import (
    Buffer,
    DType,
    Func,
    Pipeline,
    RVar,
    Var,
    float32,
    float64,
    int32,
    int64,
    uint8,
    uint16,
)
from repro.util import ReproError, ValidationError

__all__ = ["DTYPES", "Lowered", "lower_spec"]

#: Element types a spec's ``dtypes`` mapping may name.
DTYPES: Dict[str, DType] = {
    "float32": float32,
    "float64": float64,
    "int32": int32,
    "int64": int64,
    "uint16": uint16,
    "uint8": uint8,
}

Number = Union[int, float]


@dataclass(frozen=True)
class Lowered:
    """One lowered spec: the pipeline plus its identity.

    ``fingerprints`` carries one
    :func:`repro.cache.fingerprint.func_fingerprint` per stage, in
    pipeline order — the exact hashes the serve layer coalesces and
    shards on, so a ``Lowered`` is directly comparable with hand-written
    Funcs.
    """

    pipeline: Pipeline
    spec: str
    dims: Mapping[str, int]
    fingerprints: Tuple[str, ...]

    @property
    def name(self) -> str:
        return self.pipeline.name

    @property
    def funcs(self) -> List[Func]:
        return list(self.pipeline)

    @property
    def output(self) -> Func:
        return self.pipeline.output


# --- affine index decomposition -------------------------------------------


def _affine(node, where: str) -> Tuple[Dict[str, int], int]:
    """Decompose an index AST into ``({var: coeff}, const)``.

    Coefficients and the constant must be integers; anything non-affine
    (products of variables, division, bitwise ops, float offsets) is a
    :class:`~repro.util.ValidationError` naming the access.
    """
    if isinstance(node, Num):
        if not isinstance(node.value, int):
            raise ValidationError(
                f"index of {where} uses the non-integer constant "
                f"{node.value!r}; indices must be affine in the loop "
                f"variables with integer coefficients"
            )
        return {}, node.value
    if isinstance(node, Name):
        return {node.id: 1}, 0
    if isinstance(node, Neg):
        coeffs, const = _affine(node.operand, where)
        return {v: -c for v, c in coeffs.items()}, -const
    if isinstance(node, Bin):
        if node.op in ("+", "-"):
            lc, lk = _affine(node.lhs, where)
            rc, rk = _affine(node.rhs, where)
            sign = 1 if node.op == "+" else -1
            out = dict(lc)
            for v, c in rc.items():
                out[v] = out.get(v, 0) + sign * c
            return {v: c for v, c in out.items() if c != 0}, lk + sign * rk
        if node.op == "*":
            lc, lk = _affine(node.lhs, where)
            rc, rk = _affine(node.rhs, where)
            if lc and rc:
                raise ValidationError(
                    f"index of {where} multiplies two loop variables; "
                    f"indices must be affine"
                )
            coeffs, scale = (lc, rk) if lc else (rc, lk)
            return {v: c * scale for v, c in coeffs.items() if c * scale}, (
                lk * rk
            )
        raise ValidationError(
            f"index of {where} uses operator {node.op!r}; only affine "
            f"'+', '-' and '*'-by-constant are allowed in indices"
        )
    if isinstance(node, Ref):
        raise ValidationError(
            f"index of {where} nests the access {node.name!r}[...]; "
            f"indirect (gather) indexing is outside the affine scope"
        )
    raise ValidationError(f"index of {where} is not an affine expression")


def _term_order(node, order: List[str]) -> None:
    """First-appearance order of variables in one index AST."""
    if isinstance(node, Name):
        if node.id not in order:
            order.append(node.id)
    elif isinstance(node, Neg):
        _term_order(node.operand, order)
    elif isinstance(node, Bin):
        _term_order(node.lhs, order)
        _term_order(node.rhs, order)


def _rebuild_index(
    coeffs: Dict[str, int],
    const: int,
    order: List[str],
    env: Dict[str, object],
) -> Expr:
    """Canonical expression for one affine index.

    Terms in first-appearance order, constant last — exactly the shapes
    the IR's operator overloading produces, so ``repr`` (and therefore
    the fingerprint) matches hand-written definitions.
    """
    expr: Optional[Expr] = None
    for name in order:
        coeff = coeffs.get(name, 0)
        if coeff == 0:
            continue
        var = env[name]
        term = var if abs(coeff) == 1 else BinOp("*", Const(abs(coeff)), var)
        if expr is None:
            expr = BinOp("-", Const(0), term) if coeff < 0 else term
        else:
            expr = BinOp("-" if coeff < 0 else "+", expr, term)
    if expr is None:
        return Const(const)
    if const > 0:
        expr = BinOp("+", expr, Const(const))
    elif const < 0:
        expr = BinOp("-", expr, Const(-const))
    return expr


# --- collected access bookkeeping -----------------------------------------


@dataclass
class _BufferInfo:
    """Everything seen about one (not-yet-built) input buffer."""

    rank: int
    #: per dimension: (min reachable index, max reachable index)
    lo: List[int] = field(default_factory=list)
    hi: List[int] = field(default_factory=list)
    shift: List[int] = field(default_factory=list)
    shape: Tuple[int, ...] = ()


class _Lowering:
    def __init__(
        self,
        spec: str,
        dims: Mapping[str, int],
        dtypes: Optional[Mapping[str, str]],
        params: Optional[Mapping[str, Number]],
        name: Optional[str],
    ) -> None:
        self.spec = spec
        self.dims = self._check_dims(dims)
        self.dtypes = self._check_dtypes(dtypes)
        self.params = self._check_params(params)
        self.pipeline_name = name
        self.statements = parse_spec(spec)
        #: stage name -> its statements, in first-definition order
        self.stages: Dict[str, List[Statement]] = {}
        self.buffers: Dict[str, _BufferInfo] = {}
        self.built_buffers: Dict[str, Buffer] = {}
        self.built_funcs: Dict[str, Func] = {}
        #: per stage: {var name -> Var|RVar} (role differs per stage)
        self.envs: Dict[str, Dict[str, object]] = {}
        self._vars: Dict[str, Var] = {}
        self._rvars: Dict[str, RVar] = {}
        self.used_dims: Dict[str, bool] = {d: False for d in self.dims}
        self.used_params: Dict[str, bool] = {p: False for p in self.params}

    # -- input validation ---------------------------------------------

    @staticmethod
    def _check_dims(dims) -> Dict[str, int]:
        if not isinstance(dims, Mapping) or not dims:
            raise ValidationError(
                "dims must be a non-empty mapping of loop-variable "
                "extents, e.g. {'i': 512, 'j': 512, 'k': 512}"
            )
        out: Dict[str, int] = {}
        for key, value in dims.items():
            if not isinstance(key, str) or not key.isidentifier():
                raise ValidationError(
                    f"dims key {key!r} is not a loop-variable name"
                )
            if (
                isinstance(value, bool)
                or not isinstance(value, int)
                or value <= 0
            ):
                raise ValidationError(
                    f"dims[{key!r}] must be a positive integer, got "
                    f"{value!r}"
                )
            out[key] = int(value)
        return out

    @staticmethod
    def _check_dtypes(dtypes) -> Dict[str, DType]:
        if dtypes is None:
            return {}
        if not isinstance(dtypes, Mapping):
            raise ValidationError(
                f"dtypes must be a mapping of name -> element type, got "
                f"{type(dtypes).__name__}"
            )
        out: Dict[str, DType] = {}
        for key, value in dtypes.items():
            if value not in DTYPES:
                raise ValidationError(
                    f"dtypes[{key!r}] names unknown element type "
                    f"{value!r}; known: {sorted(DTYPES)}"
                )
            out[str(key)] = DTYPES[value]
        return out

    @staticmethod
    def _check_params(params) -> Dict[str, Number]:
        if params is None:
            return {}
        if not isinstance(params, Mapping):
            raise ValidationError(
                f"params must be a mapping of name -> number, got "
                f"{type(params).__name__}"
            )
        out: Dict[str, Number] = {}
        for key, value in params.items():
            if isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                raise ValidationError(
                    f"params[{key!r}] must be a number, got {value!r}"
                )
            out[str(key)] = value
        return out

    # -- pass 1: roles, ranks, reachable index ranges -------------------

    def analyze(self) -> None:
        for statement in self.statements:
            name = statement.lhs_name
            if name in self.stages:
                if list(self.stages).index(name) != len(self.stages) - 1:
                    raise ValidationError(
                        f"statements for stage {name!r} must be "
                        f"consecutive (pure definition, then its updates)"
                    )
            else:
                if name in self.buffers:
                    raise ValidationError(
                        f"{name!r} is read before its first definition; "
                        f"define a stage before any stage reads it"
                    )
                if name in self.dims or name in self.params:
                    raise ValidationError(
                        f"{name!r} is defined as a stage but also named "
                        f"in dims/params"
                    )
                self.stages[name] = []
            self.stages[name].append(statement)
            self._analyze_statement(statement)

    def _lhs_var_names(self, statement: Statement) -> List[str]:
        names: List[str] = []
        for index in statement.lhs_indices:
            if not isinstance(index, Name):
                raise ValidationError(
                    f"left-hand side of {statement.lhs_name!r} must index "
                    f"with plain loop variables, e.g. "
                    f"'{statement.lhs_name}[i, j]'"
                )
            if index.id in names:
                raise ValidationError(
                    f"duplicate variable {index.id!r} on the left-hand "
                    f"side of {statement.lhs_name!r}"
                )
            names.append(index.id)
        return names

    def _analyze_statement(self, statement: Statement) -> None:
        lhs_names = self._lhs_var_names(statement)
        for var in lhs_names:
            self._dim_of(var, f"left-hand side of {statement.lhs_name!r}")
        self._analyze_value(statement.rhs, statement.lhs_name, lhs_names)

    def _dim_of(self, var: str, where: str) -> int:
        if var not in self.dims:
            raise ValidationError(
                f"loop variable {var!r} (used in the {where}) has no "
                f"extent; add it to dims"
            )
        self.used_dims[var] = True
        return self.dims[var]

    def _analyze_value(self, node, stage: str, lhs_names: List[str]) -> None:
        if isinstance(node, Num):
            return
        if isinstance(node, Name):
            if node.id not in self.params:
                known = sorted(self.params) or "none declared"
                raise ValidationError(
                    f"{node.id!r} is used as a scalar value in stage "
                    f"{stage!r} but is not in params (known: {known}); "
                    f"loop variables may only appear inside [...] indices"
                )
            self.used_params[node.id] = True
            return
        if isinstance(node, Neg):
            self._analyze_value(node.operand, stage, lhs_names)
            return
        if isinstance(node, Bin):
            self._analyze_value(node.lhs, stage, lhs_names)
            self._analyze_value(node.rhs, stage, lhs_names)
            return
        if isinstance(node, Ref):
            self._analyze_ref(node, stage, lhs_names)
            return
        raise ValidationError(
            f"unsupported expression in stage {stage!r}"
        )

    def _analyze_ref(self, ref: Ref, stage: str, lhs_names: List[str]) -> None:
        where = f"access {ref.name!r} in stage {stage!r}"
        if ref.name == stage or ref.name in self.stages:
            # Stage reads (self-reference or an earlier stage): plain
            # loop variables only — the same restriction the repo's
            # hand-written pipelines obey (no stencil over a stage).
            for index in ref.indices:
                coeffs, const = _affine(index, where)
                if const != 0 or sorted(coeffs.values()) != [1]:
                    raise ValidationError(
                        f"{where} must use plain loop variables "
                        f"(stage outputs cannot be read at an offset)"
                    )
                self._dim_of(next(iter(coeffs)), where)
            if ref.name == stage:
                names = [
                    next(iter(_affine(ix, where)[0])) for ix in ref.indices
                ]
                if names != lhs_names:
                    raise ValidationError(
                        f"stage {stage!r} may only read itself at the "
                        f"current point {lhs_names}, got {names}"
                    )
            return
        if ref.name in self.dims or ref.name in self.params:
            raise ValidationError(
                f"{ref.name!r} is indexed like a buffer in stage "
                f"{stage!r} but is named in dims/params"
            )
        info = self.buffers.get(ref.name)
        if info is None:
            info = _BufferInfo(rank=len(ref.indices))
            info.lo = [0] * info.rank
            info.hi = [0] * info.rank
            self.buffers[ref.name] = info
        if len(ref.indices) != info.rank:
            raise ValidationError(
                f"buffer {ref.name!r} is accessed with "
                f"{len(ref.indices)} indices in stage {stage!r} but "
                f"{info.rank} elsewhere"
            )
        for d, index in enumerate(ref.indices):
            coeffs, const = _affine(index, where)
            lo = hi = const
            for var, coeff in coeffs.items():
                extent = self._dim_of(var, where)
                span = coeff * (extent - 1)
                lo += min(0, span)
                hi += max(0, span)
            info.lo[d] = min(info.lo[d], lo)
            info.hi[d] = max(info.hi[d], hi)

    # -- pass 2: build buffers, Funcs, pipeline -------------------------

    def build(self) -> Lowered:
        self.analyze()
        unused_dims = [d for d, used in self.used_dims.items() if not used]
        if unused_dims:
            raise ValidationError(
                f"dims entr{'y' if len(unused_dims) == 1 else 'ies'} "
                f"{unused_dims} never appear in the spec (typo?)"
            )
        unused_params = [
            p for p, used in self.used_params.items() if not used
        ]
        if unused_params:
            raise ValidationError(
                f"params entr{'y' if len(unused_params) == 1 else 'ies'} "
                f"{unused_params} never appear in the spec (typo?)"
            )
        tensors = set(self.buffers) | set(self.stages)
        unused_dtypes = sorted(set(self.dtypes) - tensors)
        if unused_dtypes:
            raise ValidationError(
                f"dtypes entr{'y' if len(unused_dtypes) == 1 else 'ies'} "
                f"{unused_dtypes} never appear in the spec (typo?)"
            )
        for bname, info in self.buffers.items():
            info.shift = [max(0, -lo) for lo in info.lo]
            info.shape = tuple(
                hi + shift + 1 for hi, shift in zip(info.hi, info.shift)
            )
            self.built_buffers[bname] = Buffer(
                bname, info.shape, self.dtypes.get(bname, float32)
            )
        for sname, statements in self.stages.items():
            self._build_stage(sname, statements)
        funcs = list(self.built_funcs.values())
        pipeline = Pipeline(
            funcs, name=self.pipeline_name or funcs[-1].name
        )
        from repro.cache.fingerprint import func_fingerprint

        return Lowered(
            pipeline=pipeline,
            spec=self.spec,
            dims=dict(self.dims),
            fingerprints=tuple(func_fingerprint(f) for f in funcs),
        )

    def _env_for(self, sname: str, lhs_names: List[str]) -> Dict[str, object]:
        env: Dict[str, object] = {}
        for var in lhs_names:
            if var not in self._vars:
                self._vars[var] = Var(var)
            env[var] = self._vars[var]
        # Any other variable this stage reads is a reduction variable
        # with its extent taken from dims.
        for var, extent in self.dims.items():
            if var not in env:
                if var not in self._rvars:
                    self._rvars[var] = RVar(var, extent)
                env[var] = self._rvars[var]
        return env

    def _build_stage(self, sname: str, statements: List[Statement]) -> None:
        lhs_names = self._lhs_var_names(statements[0])
        for statement in statements[1:]:
            if self._lhs_var_names(statement) != lhs_names:
                raise ValidationError(
                    f"update of {sname!r} must use the pure variables "
                    f"{lhs_names}, got "
                    f"{self._lhs_var_names(statement)}"
                )
        env = self._env_for(sname, lhs_names)
        self.envs[sname] = env
        dtype = self.dtypes.get(sname, float32)
        func = Func(sname, dtype)
        lhs_vars = tuple(env[v] for v in lhs_names)
        first = statements[0]
        if first.op == "+=":
            # `C[i,j] += ...` on a fresh stage is the classic reduction
            # idiom: a zero pure definition plus one update.
            func[lhs_vars] = 0.0 if dtype.name.startswith("float") else 0
        for position, statement in enumerate(statements):
            rhs = self._build_value(statement.rhs, sname, env, lhs_vars)
            if statement.op == "+=" and (position > 0 or first.op == "+="):
                rhs = BinOp("+", Access(func, lhs_vars), rhs)
            elif statement.op == "+=":
                raise ValidationError(  # pragma: no cover - unreachable
                    f"stage {sname!r}: '+=' before a pure definition"
                )
            try:
                func[lhs_vars] = rhs
            except ReproError as exc:
                raise ValidationError(
                    f"stage {sname!r} does not lower: {exc}"
                ) from None
        func.set_bounds(
            {env[v]: self.dims[v] for v in lhs_names}
        )
        self.built_funcs[sname] = func

    def _build_value(
        self,
        node,
        sname: str,
        env: Dict[str, object],
        lhs_vars: Tuple[object, ...],
    ) -> Expr:
        if isinstance(node, Num):
            return Const(node.value)
        if isinstance(node, Name):
            return Const(self.params[node.id])
        if isinstance(node, Neg):
            return BinOp(
                "-",
                Const(0),
                self._build_value(node.operand, sname, env, lhs_vars),
            )
        if isinstance(node, Bin):
            return BinOp(
                node.op,
                self._build_value(node.lhs, sname, env, lhs_vars),
                self._build_value(node.rhs, sname, env, lhs_vars),
            )
        assert isinstance(node, Ref)
        where = f"access {node.name!r} in stage {sname!r}"
        if node.name == sname:
            return Access(self.built_funcs.get(sname) or self._self(sname), lhs_vars)
        if node.name in self.built_funcs:
            stage = self.built_funcs[node.name]
            indices = tuple(
                env[next(iter(_affine(ix, where)[0]))] for ix in node.indices
            )
            return Access(stage, indices)
        info = self.buffers[node.name]
        buffer = self.built_buffers[node.name]
        indices = []
        for d, index in enumerate(node.indices):
            coeffs, const = _affine(index, where)
            order: List[str] = []
            _term_order(index, order)
            indices.append(
                _rebuild_index(coeffs, const + info.shift[d], order, env)
            )
        return Access(buffer, tuple(indices))

    def _self(self, sname: str) -> Func:
        # Self-references appear only inside updates, by which point the
        # Func exists; reaching here otherwise is a lowering bug.
        raise ValidationError(
            f"stage {sname!r} reads itself in its pure definition"
        )


def lower_spec(
    spec: str,
    dims: Mapping[str, int],
    *,
    dtypes: Optional[Mapping[str, str]] = None,
    params: Optional[Mapping[str, Number]] = None,
    name: Optional[str] = None,
) -> Lowered:
    """Compile one spec string into a :class:`Lowered` pipeline.

    Parameters
    ----------
    spec:
        The kernel, e.g. ``"C[i,j] += A[i,k] * B[k,j]"``; multiple
        ``;``-separated statements build multi-stage pipelines.
    dims:
        Extent of every loop variable, e.g. ``{"i": 512, "j": 512,
        "k": 512}``.  Unused entries are rejected (typo protection).
    dtypes:
        Optional element types by stage/buffer name (default
        ``float32``); see :data:`DTYPES`.
    params:
        Values for scalar parameters appearing in value positions
        (``B[i,j] = a*A[i,j] + ...`` with ``params={"a": 0.5}``).
    name:
        Pipeline name (default: the final stage's name).

    Raises :class:`~repro.util.ValidationError` on any malformed input —
    the serve layer maps these to HTTP 400 with
    ``reason="invalid_spec"``.
    """
    return _Lowering(spec, dims, dtypes, params, name).build()
