"""Tokenizer and recursive-descent parser for the kernel spec language.

The grammar (see docs/API.md § *Kernel spec language*)::

    spec   := stmt (';' stmt)* [';']
    stmt   := access ('=' | '+=') expr
    access := NAME '[' expr (',' expr)* ']'
    expr   := orex
    orex   := andex ('|' andex)*
    andex  := sum ('&' sum)*
    sum    := product (('+' | '-') product)*
    product:= unary (('*' | '/') unary)*
    unary  := '-' unary | atom
    atom   := NUMBER | NAME | access | '(' expr ')'

Numbers keep their written type (``2`` is an integer, ``2.0`` / ``0.2``
a float) — this matters because lowered constants are fingerprinted by
value *and* type.  The parser produces a tiny plain AST
(:class:`Num` / :class:`Name` / :class:`Neg` / :class:`Bin` /
:class:`Ref`); all semantic checks (which names are loop variables,
buffers, stages or scalar parameters; affine index validation) happen in
:mod:`repro.frontend.lowering`.

Every syntax error raises :class:`~repro.util.ValidationError` with the
offending position, so malformed specs surface as HTTP 400s (never 500s)
when they arrive over the serve wire.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Tuple, Union

from repro.util import ValidationError

__all__ = [
    "Bin",
    "Name",
    "Neg",
    "Num",
    "Ref",
    "Statement",
    "parse_spec",
]


# --- AST -------------------------------------------------------------------


@dataclass(frozen=True)
class Num:
    """A numeric literal; ``value`` keeps the written int/float type."""

    value: Union[int, float]


@dataclass(frozen=True)
class Name:
    """A bare identifier (loop variable in an index, parameter in a value)."""

    id: str


@dataclass(frozen=True)
class Neg:
    """Unary minus."""

    operand: object


@dataclass(frozen=True)
class Bin:
    """A binary operation (``+ - * / & |``)."""

    op: str
    lhs: object
    rhs: object


@dataclass(frozen=True)
class Ref:
    """An indexed reference ``NAME[expr, ...]`` (buffer or stage access)."""

    name: str
    indices: Tuple[object, ...]


@dataclass(frozen=True)
class Statement:
    """One ``LHS[vars...] = rhs`` or ``LHS[vars...] += rhs`` statement."""

    lhs_name: str
    lhs_indices: Tuple[object, ...]
    op: str  # "=" or "+="
    rhs: object


# --- tokenizer -------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?
               |\d+[eE][+-]?\d+|\d+)
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<pluseq>\+=)
  | (?P<sym>[\[\](),;+\-*/&|=])
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[Tuple[str, str, int]]:
    """Yield ``(kind, value, position)`` tokens; reject anything else."""
    tokens: List[Tuple[str, str, int]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ValidationError(
                f"spec syntax error at position {pos}: unexpected "
                f"character {text[pos]!r}"
            )
        kind = match.lastgroup
        if kind != "ws":
            tokens.append((kind, match.group(), pos))
        pos = match.end()
    tokens.append(("eof", "", len(text)))
    return tokens


# --- parser ----------------------------------------------------------------


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.i = 0

    def _peek(self) -> Tuple[str, str, int]:
        return self.tokens[self.i]

    def _next(self) -> Tuple[str, str, int]:
        token = self.tokens[self.i]
        self.i += 1
        return token

    def _expect(self, value: str) -> None:
        kind, got, pos = self._peek()
        if got != value:
            raise ValidationError(
                f"spec syntax error at position {pos}: expected {value!r}, "
                f"got {got!r}" + ("" if kind != "eof" else " (end of spec)")
            )
        self._next()

    def _error(self, message: str) -> ValidationError:
        _kind, got, pos = self._peek()
        what = repr(got) if got else "end of spec"
        return ValidationError(
            f"spec syntax error at position {pos}: {message}, got {what}"
        )

    # statements

    def parse(self) -> List[Statement]:
        statements = [self._statement()]
        while self._peek()[1] == ";":
            self._next()
            if self._peek()[0] == "eof":
                break  # tolerate one trailing semicolon
            statements.append(self._statement())
        if self._peek()[0] != "eof":
            raise self._error("expected ';' between statements")
        return statements

    def _statement(self) -> Statement:
        kind, name, _pos = self._peek()
        if kind != "name":
            raise self._error("expected a statement like 'C[i,j] = ...'")
        self._next()
        if self._peek()[1] != "[":
            raise self._error(
                f"left-hand side {name!r} needs an index list like "
                f"'{name}[i,j]'"
            )
        indices = self._index_list()
        kind, op, _pos = self._peek()
        if op not in ("=", "+="):
            raise self._error("expected '=' or '+=' after the left-hand side")
        self._next()
        rhs = self._expr()
        return Statement(
            lhs_name=name, lhs_indices=indices, op=op, rhs=rhs
        )

    def _index_list(self) -> Tuple[object, ...]:
        self._expect("[")
        indices = [self._expr()]
        while self._peek()[1] == ",":
            self._next()
            indices.append(self._expr())
        self._expect("]")
        return tuple(indices)

    # expressions, loosest binding first

    def _expr(self):
        return self._orex()

    def _orex(self):
        node = self._andex()
        while self._peek()[1] == "|":
            self._next()
            node = Bin("|", node, self._andex())
        return node

    def _andex(self):
        node = self._sum()
        while self._peek()[1] == "&":
            self._next()
            node = Bin("&", node, self._sum())
        return node

    def _sum(self):
        node = self._product()
        while self._peek()[1] in ("+", "-"):
            op = self._next()[1]
            node = Bin(op, node, self._product())
        return node

    def _product(self):
        node = self._unary()
        while self._peek()[1] in ("*", "/"):
            op = self._next()[1]
            node = Bin(op, node, self._unary())
        return node

    def _unary(self):
        if self._peek()[1] == "-":
            self._next()
            return Neg(self._unary())
        return self._atom()

    def _atom(self):
        kind, value, _pos = self._peek()
        if kind == "number":
            self._next()
            if re.search(r"[.eE]", value):
                return Num(float(value))
            return Num(int(value))
        if kind == "name":
            self._next()
            if self._peek()[1] == "[":
                return Ref(value, self._index_list())
            return Name(value)
        if value == "(":
            self._next()
            node = self._expr()
            self._expect(")")
            return node
        raise self._error("expected a number, name, access or '('")


def parse_spec(text: str) -> List[Statement]:
    """Parse one spec string into its statements.

    Raises :class:`~repro.util.ValidationError` (with position) on any
    syntax violation; an empty spec is a violation too.
    """
    if not isinstance(text, str):
        raise ValidationError(
            f"spec must be a string, got {type(text).__name__}"
        )
    if not text.strip():
        raise ValidationError("spec must not be empty")
    return _Parser(text).parse()
