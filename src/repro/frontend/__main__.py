"""The frontend CLI: lower specs, list the corpus, pin the manifest.

Usage::

    python -m repro.frontend lower 'C[i,j] += A[i,k] * B[k,j]' \
        --dims i=512,j=512,k=512
    python -m repro.frontend corpus
    python -m repro.frontend manifest > benchmarks/corpus_manifest.json
    python -m repro.frontend manifest --check benchmarks/corpus_manifest.json
    python -m repro.frontend manifest --family mef --check \
        benchmarks/corpus_manifest.json

``lower`` prints the lowered stages and their content fingerprints —
the hashes the serve layer coalesces and shards on — so two interpreter
runs printing identical output *is* the determinism guarantee.

``manifest --check`` exits 1 on any drift against the committed golden
file: a lowering change, fingerprint change, or classification change
is an API break for every cache and serve deployment, so CI treats it
like one.
"""

from __future__ import annotations

import argparse
import difflib
import json
import sys

from repro.frontend.corpus import CORPUS, corpus_manifest
from repro.frontend.lowering import lower_spec
from repro.util import ValidationError

EXIT_OK = 0
EXIT_DRIFT = 1
EXIT_USAGE = 2


def _dims(value: str):
    out = {}
    for item in value.split(","):
        name, sep, raw = item.partition("=")
        if not sep:
            raise argparse.ArgumentTypeError(
                f"--dims wants NAME=EXT[,NAME=EXT...], got {item!r}"
            )
        try:
            out[name.strip()] = int(raw)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"--dims: {name.strip()}={raw!r} is not an integer"
            ) from None
    return out


def _kv(value: str, flag: str):
    out = {}
    for item in value.split(","):
        name, sep, raw = item.partition("=")
        if not sep:
            raise argparse.ArgumentTypeError(
                f"{flag} wants NAME=VALUE[,NAME=VALUE...], got {item!r}"
            )
        out[name.strip()] = raw.strip()
    return out


def cmd_lower(args) -> int:
    params = None
    if args.params:
        params = {}
        for group in args.params:
            for name, raw in _kv(group, "--param").items():
                try:
                    params[name] = float(raw)
                except ValueError:
                    print(
                        f"error: --param {name}={raw!r} is not a number",
                        file=sys.stderr,
                    )
                    return EXIT_USAGE
    try:
        lowered = lower_spec(
            args.spec, args.dims or {}, dtypes=args.dtypes, params=params
        )
    except ValidationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    for func, fingerprint in zip(lowered.funcs, lowered.fingerprints):
        print(f"stage {func.name}: {fingerprint}")
        if args.verbose:
            for index, definition in enumerate(func.definitions):
                kind = "pure" if index == 0 else f"update {index}"
                print(f"  {kind}: {definition.rhs!r}")
            bounds = {
                v.name: func.bound_of(v.name)
                for v in func.definitions[0].lhs_vars
            }
            print(f"  bounds: {bounds}")
    return EXIT_OK


def cmd_corpus(_args) -> int:
    for kernel in CORPUS:
        print(
            f"{kernel.name:20s} {kernel.family:9s} "
            f"{'x'.join(str(v) for v in kernel.dims.values()):>14s}  "
            f"{kernel.description}"
        )
    print(f"{len(CORPUS)} kernels")
    return EXIT_OK


def _filter_family(manifest: dict, family):
    if family is None:
        return manifest
    return {
        "format": manifest["format"],
        "kernels": {
            name: entry
            for name, entry in manifest["kernels"].items()
            if entry.get("family") == family
        },
    }


def _render_manifest(family=None) -> str:
    manifest = _filter_family(corpus_manifest(), family)
    return json.dumps(manifest, indent=2, sort_keys=True) + "\n"


def cmd_manifest(args) -> int:
    families = {kernel.family for kernel in CORPUS}
    if args.family is not None and args.family not in families:
        print(
            f"error: unknown family {args.family!r}; "
            f"known: {sorted(families)}",
            file=sys.stderr,
        )
        return EXIT_USAGE
    rendered = _render_manifest(args.family)
    if args.check is None:
        sys.stdout.write(rendered)
        return EXIT_OK
    try:
        with open(args.check) as handle:
            golden = handle.read()
    except OSError as exc:
        print(
            f"error: cannot read {args.check!r}: {exc.strerror or exc}",
            file=sys.stderr,
        )
        return EXIT_USAGE
    if args.family is not None:
        # Compare only the selected family's slice of the golden file,
        # rendered through the same canonical JSON as the regeneration.
        try:
            golden_doc = json.loads(golden)
        except json.JSONDecodeError as exc:
            print(
                f"error: {args.check!r} is not valid JSON ({exc.msg})",
                file=sys.stderr,
            )
            return EXIT_USAGE
        golden = (
            json.dumps(
                _filter_family(golden_doc, args.family),
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
    if golden == rendered:
        scope = f"family {args.family!r}" if args.family else "manifest"
        count = len(json.loads(rendered)["kernels"])
        print(f"{args.check}: {scope} matches ({count} kernels)")
        return EXIT_OK
    diff = difflib.unified_diff(
        golden.splitlines(keepends=True),
        rendered.splitlines(keepends=True),
        fromfile=args.check,
        tofile="regenerated",
    )
    sys.stderr.writelines(diff)
    print(
        f"{args.check}: manifest drift — lowering, fingerprints, or "
        f"classification changed; regenerate with `python -m "
        f"repro.frontend manifest > {args.check}` if intentional",
        file=sys.stderr,
    )
    return EXIT_DRIFT


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.frontend",
        description="Kernel spec frontend: lower, list, pin",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_lower = sub.add_parser("lower", help="lower one spec, print stages")
    p_lower.add_argument("spec", help="e.g. 'C[i,j] += A[i,k] * B[k,j]'")
    p_lower.add_argument("--dims", type=_dims, default=None,
                         metavar="N=EXT,...",
                         help="loop extents, e.g. i=512,j=512,k=512")
    p_lower.add_argument("--dtypes", type=lambda v: _kv(v, "--dtypes"),
                         default=None, metavar="T=DT,...",
                         help="per-tensor dtypes (default float32)")
    p_lower.add_argument("--param", action="append", default=None,
                         dest="params", metavar="NAME=VALUE",
                         help="scalar constant (repeatable)")
    p_lower.add_argument("-v", "--verbose", action="store_true",
                         help="also print definitions and bounds")

    sub.add_parser("corpus", help="list the generated kernel corpus")

    p_manifest = sub.add_parser(
        "manifest",
        help="print (or --check) the golden corpus manifest",
    )
    p_manifest.add_argument("--check", default=None, metavar="PATH",
                            help="compare against a committed manifest; "
                                 "exit 1 on drift")
    p_manifest.add_argument("--family", default=None, metavar="NAME",
                            help="restrict to one corpus family (with "
                                 "--check, gate only that family's slice)")

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "lower": cmd_lower,
        "corpus": cmd_corpus,
        "manifest": cmd_manifest,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
