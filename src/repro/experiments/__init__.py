"""Regenerators for every table and figure of the paper's evaluation.

Each module exposes ``run(...) -> dict`` printing the same rows/series the
paper reports and returning the raw numbers for tests and benches:

* :mod:`repro.experiments.platforms` — Table 3 (platform parameters).
* :mod:`repro.experiments.table4` — Table 4 (benchmarks + best times).
* :mod:`repro.experiments.table5` — Table 5 (optimizer runtime).
* :mod:`repro.experiments.fig4` — Fig. 4a/4b (relative throughput on the
  two Intel platforms, five techniques).
* :mod:`repro.experiments.fig5` — Fig. 5 (one-day autotuner vs proposed).
* :mod:`repro.experiments.fig6` — Fig. 6 (the effect of NT stores).
* :mod:`repro.experiments.fig7` — Fig. 7 (ARM Cortex-A15 results).
* :mod:`repro.experiments.table6` — Table 6 (TTS / TSS / proposed).
* :mod:`repro.experiments.corpus` — per-class win/loss of the classifier
  over the :mod:`repro.frontend` kernel corpus (writes ``CORPUS.md``).

Shared machinery lives in :mod:`repro.experiments.harness`; knobs (trace
budget, autotuner evaluations, small sizes for smoke runs) are env-var
controlled — see :class:`repro.experiments.harness.ExperimentConfig`.
"""

from repro.experiments.harness import (
    ExperimentConfig,
    TECHNIQUES,
    clear_measure_cache,
    mark_quarantined,
    measure_case,
    measure_key,
    optimize_runtime,
    optimize_runtime_key,
    recording_cells,
    schedules_for,
    seed_measure_cache,
)

__all__ = [
    "ExperimentConfig",
    "TECHNIQUES",
    "clear_measure_cache",
    "mark_quarantined",
    "measure_case",
    "measure_key",
    "optimize_runtime",
    "optimize_runtime_key",
    "recording_cells",
    "schedules_for",
    "seed_measure_cache",
]
