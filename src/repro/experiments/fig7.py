"""Fig. 7: the ARM Cortex-A15 platform.

No L3 cache, a 512 KB L2 *shared by all four cores* (so the model divides
the effective L2 associativity by ``NCores`` instead of threads-per-core —
the one-line model change Sec. 5.1 describes, implemented by
``ArchSpec.l2_shared_across_cores``), one thread per core, and no vector
NT stores — hence copy/mask are excluded and there is no "+NTI" bar.

Three techniques per benchmark: Proposed, Auto-Scheduler, Baseline,
plotted as throughput relative to the fastest.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.bench import benchmark_names
from repro.experiments.harness import (
    ExperimentConfig,
    completion_note,
    format_table,
    measure_case,
    nanmin,
    relative,
)

PLATFORM = "arm-a15"
TECHNIQUES = ("proposed", "autoscheduler", "baseline")
#: copy/mask are excluded on ARM (identical implementations without NTI).
BENCHMARKS = tuple(n for n in (
    "doitgen", "matmul", "convlayer", "gemm", "3mm", "trmm", "syrk",
    "syr2k", "tp", "tpm",
))


def run(
    *,
    benchmarks: Tuple[str, ...] = BENCHMARKS,
    config: Optional[ExperimentConfig] = None,
    echo: bool = True,
) -> Dict[str, Dict[str, float]]:
    """Regenerate Fig. 7.

    Returns ``{benchmark: {technique: relative throughput}}``.
    """
    config = config or ExperimentConfig()
    out: Dict[str, Dict[str, float]] = {}
    rows = []
    for name in benchmarks:
        times = {
            t: measure_case(name, t, PLATFORM, config=config)
            for t in TECHNIQUES
        }
        fastest = nanmin(times.values())
        out[name] = {t: relative(fastest, ms) for t, ms in times.items()}
        rows.append((name,) + tuple(out[name][t] for t in TECHNIQUES))
    if echo:
        print("Fig. 7 — ARM Cortex A15: throughput relative to fastest")
        print(
            format_table(
                ("benchmark", "Proposed", "Auto-Scheduler", "Baseline"), rows
            )
        )
        note = completion_note(
            v for cell in out.values() for v in cell.values()
        )
        if note:
            print(note)
    return out


if __name__ == "__main__":
    run()
