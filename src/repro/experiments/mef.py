"""Three-strategy table: tile-only vs multistride-only vs combined.

For every stage of every ``mef``-family corpus kernel (the
multi-striding evaluation set of Blom et al., lowered from spec strings
like the rest of the corpus), this regenerator runs the paper's
optimizer to obtain the ``tile`` incumbent and then asks the three-way
classifier (:func:`repro.multistride.decide_strategy`) to price the
feasible ``multistride``/``combined`` challengers on the dedicated
pricing machine.  The published table therefore *is* the classifier's
argmin — same candidates, same machine, same margins — not a parallel
re-derivation that could drift.

Everything is deterministic (the pricing machine has a fixed line
budget, the stream model has no randomness), so two runs of ::

    python -m repro.experiments.mef

produce bit-identical tables; CI's ``multistride-smoke`` job compares a
4-kernel sweep run twice, byte for byte.  On full-size runs the rendered
markdown replaces the marked section at the end of ``CORPUS.md``
(``--fast`` and ``--only`` runs never rewrite it).
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Sequence

from repro.arch import platform_by_name
from repro.core import optimize
from repro.experiments.harness import ExperimentConfig, format_table
from repro.frontend.corpus import CORPUS
from repro.multistride import (
    STRATEGY_COMBINED,
    STRATEGY_MULTISTRIDE,
    STRATEGY_TILE,
    decide_strategy,
    pricing_machine,
)

PLATFORM = "i7-5930k"

#: Family this regenerator sweeps.
FAMILY = "mef"

#: Where the committed table lives: a marked section appended to the
#: corpus artifact (regenerated on full runs only).
TABLE_ENV = "REPRO_MEF_TABLE"
TABLE_PATH = "CORPUS.md"

SECTION_BEGIN = "<!-- mef-three-strategy:begin -->"
SECTION_END = "<!-- mef-three-strategy:end -->"

STRATEGIES = (STRATEGY_TILE, STRATEGY_MULTISTRIDE, STRATEGY_COMBINED)


def _family_kernels():
    return [kernel for kernel in CORPUS if kernel.family == FAMILY]


def run(
    *,
    config: Optional[ExperimentConfig] = None,
    echo: bool = True,
    only: Optional[Sequence[str]] = None,
) -> Dict[str, Dict]:
    """Classify every ``mef`` stage; returns ``{"kernel/stage": row}``
    plus the per-strategy aggregate under the ``"strategies"`` key.

    ``only`` restricts the run to the named kernels (CI smoke subsets);
    restricted and ``--fast`` runs never rewrite the committed table.
    """
    config = config or ExperimentConfig()
    arch = platform_by_name(PLATFORM)
    machine = pricing_machine(arch)

    kernels = _family_kernels()
    if only is not None:
        wanted = set(only)
        unknown = wanted - {kernel.name for kernel in kernels}
        if unknown:
            raise SystemExit(
                f"unknown {FAMILY} kernel(s): {', '.join(sorted(unknown))}"
            )
        kernels = [kernel for kernel in kernels if kernel.name in wanted]

    rows: Dict[str, Dict] = {}
    for kernel in kernels:
        case = kernel.case(fast=config.fast)
        for stage in case.funcs:
            tile = optimize(stage, arch).schedule
            decision = decide_strategy(stage, arch, tile, machine=machine)
            label = (
                kernel.name
                if len(case.funcs) == 1
                else f"{kernel.name}/{stage.name}"
            )
            rows[label] = {
                "kernel": kernel.name,
                "stage": stage.name,
                "strategy": decision.strategy,
                "streams": decision.streams,
                "loop": decision.loop,
                "costs": dict(decision.costs),
            }

    strategies: Dict[str, Dict] = {
        name: {"stages": 0, "kernels": []} for name in STRATEGIES
    }
    for label, row in rows.items():
        agg = strategies[row["strategy"]]
        agg["stages"] += 1
        agg["kernels"].append(label)

    if echo:
        print(_render(rows, strategies, config))
    if not config.fast and only is None:
        path = os.environ.get(TABLE_ENV, TABLE_PATH)
        _write_section(_markdown(rows, strategies), path)
    return {**rows, "strategies": strategies}


def _cost(row, name) -> str:
    value = row["costs"].get(name)
    return "—" if value is None else f"{value:.4f}"


def _rewrite(row) -> str:
    if row["strategy"] == STRATEGY_TILE:
        return "—"
    return f"{row['loop']} x{row['streams']}"


def _stage_rows(rows):
    return [
        (
            label,
            _cost(row, STRATEGY_TILE),
            _cost(row, STRATEGY_MULTISTRIDE),
            _cost(row, STRATEGY_COMBINED),
            row["strategy"],
            _rewrite(row),
        )
        for label, row in rows.items()
    ]


def _strategy_rows(strategies):
    return [
        (
            name,
            strategies[name]["stages"],
            ", ".join(strategies[name]["kernels"]) or "—",
        )
        for name in STRATEGIES
    ]


_STAGE_HEADERS = (
    "kernel", "tile ms", "multistride ms", "combined ms", "chosen", "rewrite"
)
_STRATEGY_HEADERS = ("strategy", "stages", "chosen for")


def _render(rows, strategies, config) -> str:
    sizes = "smoke sizes" if config.fast else "corpus sizes"
    lines = [
        f"Three-strategy classification — {PLATFORM} ({sizes}), "
        f"{len(rows)} stages ({FAMILY} family)",
        format_table(_STAGE_HEADERS, _stage_rows(rows)),
        "",
        "Per-strategy summary:",
        format_table(_STRATEGY_HEADERS, _strategy_rows(strategies)),
    ]
    return "\n".join(lines)


def _markdown(rows, strategies) -> str:
    def table(headers, body):
        out = [
            "| " + " | ".join(str(h) for h in headers) + " |",
            "|" + "|".join(" --- " for _ in headers) + "|",
        ]
        out += ["| " + " | ".join(str(c) for c in r) + " |" for r in body]
        return "\n".join(out)

    return (
        "## Multi-striding: three-strategy classification\n\n"
        "Per-stage verdict of the three-way strategy classifier\n"
        "(`repro.multistride`) over the `mef` family: the main\n"
        "optimizer's schedule (*tile*), the best feasible\n"
        "`multistride(loop, K)` on the untransformed schedule\n"
        "(*multistride*), and multistride applied on top of the tiled\n"
        f"schedule (*combined*), priced on the simulated {PLATFORM}\n"
        "with the multi-stream detector enabled.  `—` marks strategies\n"
        "with no feasible candidate.  Regenerate with\n"
        "`python -m repro.experiments.mef` (full sizes; `--fast` and\n"
        "`--only` runs never rewrite this section).\n\n"
        + table(_STAGE_HEADERS, _stage_rows(rows))
        + "\n\n### Per-strategy summary\n\n"
        + table(_STRATEGY_HEADERS, _strategy_rows(strategies))
        + "\n"
    )


def _write_section(section: str, path: str) -> None:
    """Replace (or append) the marked section of ``path``, idempotently."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except FileNotFoundError:
        text = ""
    begin = text.find(SECTION_BEGIN)
    end = text.find(SECTION_END)
    if begin != -1 and end != -1:
        text = text[:begin] + text[end + len(SECTION_END):]
    block = f"{SECTION_BEGIN}\n{section}{SECTION_END}\n"
    text = text.rstrip("\n")
    text = f"{text}\n\n{block}" if text else block
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.mef",
        description="Three-way tile/multistride/combined classification "
        "over the mef corpus family.",
    )
    parser.add_argument(
        "--fast", action="store_true",
        help="smoke sizes (never rewrites the committed table)",
    )
    parser.add_argument(
        "--only",
        metavar="K1,K2,...",
        help="comma-separated kernel subset (never rewrites the table)",
    )
    args = parser.parse_args()
    run(
        config=ExperimentConfig(fast=args.fast),
        only=args.only.split(",") if args.only else None,
    )
