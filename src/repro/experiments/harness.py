"""Shared machinery for the experiment regenerators.

The five techniques of the paper's figures are named as in the legends:

* ``proposed`` — this paper's optimizer, NT stores disabled;
* ``proposed_nti`` — same, with the ``store_nontemporal`` directive where
  the classifier allows it;
* ``autoscheduler`` — the Mullapudi-style heuristic baseline;
* ``baseline`` — parallel outer + vectorized inner, no tiling;
* ``autotuner`` — the stochastic search, budgeted by evaluation count.

``measure_case`` runs a whole benchmark pipeline (all stages) under a
technique on a simulated platform and returns milliseconds.  Results are
memoized per (benchmark, size, technique, platform, budget, seed) within
a process, because Table 4, Fig. 4 and Fig. 6 share measurements.

The in-process memo integrates with the crash-safe sweep layer
(:mod:`repro.sweep`) through three hooks:

* :func:`recording_cells` — a planning mode in which ``measure_case``
  records the cell it *would* measure and returns NaN, so the sweep
  runner can enumerate every cell a set of regenerators needs without
  duplicating their loops;
* :func:`seed_measure_cache` — pre-populates the memo from a sweep
  journal, turning it into a persistent cross-process cache;
* :func:`mark_quarantined` — cells that repeatedly crashed in sweep
  workers return NaN instead of recomputing, and the table/figure
  renderers show them as ``—``.
"""

from __future__ import annotations

import math
import os
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, Optional, Set, Tuple

from repro.arch import ArchSpec, platform_by_name
from repro.baselines import Autotuner, autoschedule, baseline_schedule
from repro.bench import BenchmarkCase, make_benchmark, size_for
from repro.core import optimize
from repro.ir.func import Func
from repro.ir.schedule import Schedule
from repro.sim import Machine

#: Technique keys in the order the paper's legends list them.
TECHNIQUES = (
    "proposed",
    "proposed_nti",
    "autoscheduler",
    "baseline",
    "autotuner",
)


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        warnings.warn(
            f"ignoring malformed {name}={raw!r}; "
            f"falling back to the default ({default})",
            stacklevel=2,
        )
        return default


@dataclass
class ExperimentConfig:
    """Budget knobs for the regenerators.

    Environment overrides: ``REPRO_LINE_BUDGET`` (trace lines per nest),
    ``REPRO_AT_EVALS`` (autotuner budget ~ "one hour"),
    ``REPRO_AT_EVALS_DAY`` (autotuner budget ~ "one day"),
    ``REPRO_FAST=1`` (scaled-down problem sizes for smoke runs).
    """

    line_budget: int = field(
        default_factory=lambda: _env_int("REPRO_LINE_BUDGET", 60_000)
    )
    autotune_evals: int = field(
        default_factory=lambda: _env_int("REPRO_AT_EVALS", 12)
    )
    autotune_evals_day: int = field(
        default_factory=lambda: _env_int("REPRO_AT_EVALS_DAY", 80)
    )
    fast: bool = field(
        default_factory=lambda: os.environ.get("REPRO_FAST", "") == "1"
    )
    seed: int = 0

    def machine(self, arch: ArchSpec) -> Machine:
        return Machine(arch, line_budget=self.line_budget)

    def case(self, name: str) -> BenchmarkCase:
        return make_benchmark(name, **size_for(name, small=self.fast))


def schedules_for(
    case: BenchmarkCase,
    technique: str,
    arch: ArchSpec,
    *,
    config: Optional[ExperimentConfig] = None,
    autotune_evals: Optional[int] = None,
    cache=None,
    jobs: int = 1,
    options=None,
) -> Dict[Func, Schedule]:
    """Produce one schedule per pipeline stage under a technique.

    ``cache`` is an optional :class:`repro.cache.ScheduleCache` consulted
    for the ``proposed``/``proposed_nti`` techniques (the only ones whose
    schedules come from the expensive Algorithm-2/3 search); hits skip
    the search, misses search and store.  ``jobs`` parallelizes the
    search itself (bit-identical results; see :mod:`repro.core.parallel`).

    ``options`` is an optional :class:`repro.options.OptimizeOptions`
    overriding the full switch set for the ``proposed``/``proposed_nti``
    techniques (tune cells carry one); ``None`` keeps the historical
    behaviour where the technique name alone decides ``use_nti``.
    """
    config = config or ExperimentConfig()
    out: Dict[Func, Schedule] = {}
    for stage in case.pipeline:
        if technique in ("proposed", "proposed_nti"):
            from repro.options import CACHE_KEYS, OptimizeOptions

            if options is None:
                opts = OptimizeOptions(
                    use_nti=technique == "proposed_nti"
                )
            else:
                opts = options
            schedule = None
            if cache is not None:
                schedule = cache.get(stage, arch, opts.cache_dict())
            if schedule is None:
                switches = {
                    key: bool(getattr(opts, key)) for key in CACHE_KEYS
                }
                schedule = optimize(stage, arch, jobs=jobs, **switches).schedule
                if cache is not None:
                    cache.put(
                        stage,
                        arch,
                        opts.cache_dict(),
                        schedule,
                        meta={
                            "technique": technique,
                            "func": stage.name,
                            "arch": arch.name,
                        },
                    )
            out[stage] = schedule
        elif technique == "autoscheduler":
            out[stage] = autoschedule(stage, arch).schedule
        elif technique == "baseline":
            out[stage] = baseline_schedule(stage, arch)
        elif technique == "autotuner":
            machine = config.machine(arch)
            tuner = Autotuner(
                machine,
                evaluations=autotune_evals or config.autotune_evals,
                seed=config.seed,
            )
            out[stage] = tuner.tune(stage).schedule
        else:
            raise KeyError(
                f"unknown technique {technique!r}; known: {TECHNIQUES}"
            )
    return out


_MEASURE_CACHE: Dict[Tuple, float] = {}

#: Memo keys of cells quarantined by the sweep runner (poison list):
#: ``measure_case`` returns NaN for them instead of recomputing, and the
#: renderers show ``—``.
_QUARANTINED: Set[Tuple] = set()

#: When set, ``measure_case`` records the normalized cell parameters via
#: this callback and returns NaN without simulating anything — the sweep
#: planner uses it to enumerate cells (see :func:`recording_cells`).
_CELL_RECORDER: Optional[Callable[[Dict], None]] = None


def measure_key(
    name: str,
    technique: str,
    platform: str,
    *,
    line_budget: int,
    autotune_evals: Optional[int],
    fast: bool,
    seed: int,
    size_overrides: Optional[dict] = None,
) -> Tuple:
    """The memo key for one measurement cell.

    Only the autotuner consumes the evaluation budget and the RNG seed,
    so both are normalized away for the deterministic techniques — the
    other parameters identify the measurement for every technique.  The
    sweep journal (:mod:`repro.sweep`) derives its record keys from the
    same tuple, keeping the in-process memo and the on-disk store in
    agreement.
    """
    is_autotuner = technique == "autotuner"
    return (
        name,
        technique,
        platform,
        line_budget,
        (autotune_evals or 0) if is_autotuner else 0,
        fast,
        seed if is_autotuner else 0,
        tuple(sorted((size_overrides or {}).items())),
    )


def measure_case(
    name: str,
    technique: str,
    platform: str,
    *,
    config: Optional[ExperimentConfig] = None,
    autotune_evals: Optional[int] = None,
    size_overrides: Optional[dict] = None,
) -> float:
    """Milliseconds for one (benchmark, technique, platform) cell.

    Memoized per process; ``size_overrides`` (e.g. Table 6's problem
    sizes), the autotuner budget, and the autotuner seed are part of the
    key.  Returns NaN for cells quarantined by the sweep runner (the
    renderers print ``—`` for those).
    """
    config = config or ExperimentConfig()
    effective_evals = (
        (autotune_evals or config.autotune_evals)
        if technique == "autotuner"
        else None
    )
    key = measure_key(
        name,
        technique,
        platform,
        line_budget=config.line_budget,
        autotune_evals=effective_evals,
        fast=config.fast,
        seed=config.seed,
        size_overrides=size_overrides,
    )
    if _CELL_RECORDER is not None:
        _CELL_RECORDER(
            {
                "kind": "measure",
                "benchmark": name,
                "technique": technique,
                "platform": platform,
                "line_budget": config.line_budget,
                "autotune_evals": effective_evals,
                "fast": config.fast,
                "seed": config.seed,
                "size_overrides": dict(size_overrides or {}),
            }
        )
        return float("nan")
    if key in _MEASURE_CACHE:
        return _MEASURE_CACHE[key]
    if key in _QUARANTINED:
        return float("nan")
    arch = platform_by_name(platform)
    sizes = size_overrides or size_for(name, small=config.fast)
    case = make_benchmark(name, **sizes)
    schedules = schedules_for(
        case, technique, arch, config=config, autotune_evals=autotune_evals
    )
    machine = config.machine(arch)
    ms = machine.time_pipeline(case.pipeline, schedules)
    _MEASURE_CACHE[key] = ms
    return ms


def optimize_runtime_key(name: str, platform: str, fast: bool) -> Tuple:
    """Memo key for a Table-5 optimizer-runtime cell.

    The leading tag keeps these keys disjoint from measurement keys in
    the shared memo/quarantine stores and in the sweep journal.
    """
    return ("__optimize_runtime__", name, platform, fast)


#: Table 5 cost model: seconds per pipeline stage plus seconds per
#: candidate the Algorithm 2/3 searches evaluate.  Calibrated against
#: wall-clock on the development machine (20-40 µs per candidate) so the
#: paper-size numbers keep the paper's shape — convlayer the multi-second
#: outlier (322k candidates, paper: 7.6 s), doitgen second (11.5k), the
#: rest milliseconds — while staying a pure function of the search space,
#: so every run of every process renders the same Table 5 bit for bit.
OPTIMIZER_BASE_S = 2e-3
OPTIMIZER_PER_CANDIDATE_S = 25e-6


def modeled_optimize_seconds(case: BenchmarkCase, arch: ArchSpec) -> float:
    """Deterministic optimizer runtime over ``case``'s stages (Table 5)."""
    seconds = 0.0
    for stage in case.pipeline:
        result = optimize(stage, arch)
        candidates = sum(
            sub.stats.considered
            for sub in (result.temporal, result.spatial)
            if sub is not None
        )
        seconds += OPTIMIZER_BASE_S + candidates * OPTIMIZER_PER_CANDIDATE_S
    return seconds


def optimize_runtime(
    name: str,
    platform: str,
    *,
    config: Optional[ExperimentConfig] = None,
) -> float:
    """Seconds to run the proposed optimizer on every stage (Table 5).

    Derived from the deterministic candidate-evaluation counts via
    :func:`modeled_optimize_seconds` rather than wall-clock — wall-clock
    is inherently non-reproducible, and bitwise-identical output across
    interrupted/resumed/re-run sweeps is a harder requirement here than
    machine-local timing fidelity.  Memoized (and journaled by the
    sweep) exactly like a measurement.
    """
    config = config or ExperimentConfig()
    key = optimize_runtime_key(name, platform, config.fast)
    if _CELL_RECORDER is not None:
        _CELL_RECORDER(
            {
                "kind": "optimize_runtime",
                "benchmark": name,
                "platform": platform,
                "fast": config.fast,
            }
        )
        return float("nan")
    if key in _MEASURE_CACHE:
        return _MEASURE_CACHE[key]
    if key in _QUARANTINED:
        return float("nan")
    arch = platform_by_name(platform)
    case = make_benchmark(name, **size_for(name, small=config.fast))
    seconds = modeled_optimize_seconds(case, arch)
    _MEASURE_CACHE[key] = seconds
    return seconds


def clear_measure_cache() -> None:
    """Drop memoized measurements and quarantine marks (test isolation)."""
    _MEASURE_CACHE.clear()
    _QUARANTINED.clear()


def seed_measure_cache(entries: Dict[Tuple, float]) -> None:
    """Pre-populate the memo (e.g. from a sweep journal's completed cells)."""
    _MEASURE_CACHE.update(entries)


def mark_quarantined(keys: Iterable[Tuple]) -> None:
    """Poison-list cells: ``measure_case`` returns NaN instead of running."""
    _QUARANTINED.update(keys)


@contextmanager
def recording_cells(recorder: Callable[[Dict], None]) -> Iterator[None]:
    """Planning mode: ``measure_case`` reports cells instead of measuring.

    Within the context every ``measure_case`` call invokes ``recorder``
    with the normalized cell parameters (benchmark, technique, platform,
    line_budget, autotune_evals, fast, seed, size_overrides) and returns
    NaN.  The sweep planner runs each regenerator once under this mode to
    discover the exact cell set it needs.
    """
    global _CELL_RECORDER
    if _CELL_RECORDER is not None:
        raise RuntimeError("recording_cells is not re-entrant")
    _CELL_RECORDER = recorder
    try:
        yield
    finally:
        _CELL_RECORDER = None


#: Placeholder the renderers print for cells without a measurement
#: (quarantined by the sweep runner, or not yet swept).
MISSING = "—"


def nanmin(values: Iterable[float]) -> float:
    """``min`` over the non-NaN values; NaN when every value is missing.

    Partial sweep results must not poison a whole row: ``min`` with a NaN
    operand is order-dependent, so the regenerators normalize against the
    fastest *available* measurement instead.
    """
    valid = [v for v in values if not math.isnan(v)]
    return min(valid) if valid else float("nan")


def fmt_value(value: float, fmt: str = "{:.2f}") -> str:
    """Format a measurement, rendering NaN as the ``—`` placeholder."""
    return MISSING if math.isnan(value) else fmt.format(value)


def relative(fastest: float, ms: float) -> float:
    """Throughput of ``ms`` relative to ``fastest``; NaN stays NaN.

    A quarantined cell must render as ``—``, not as a spurious ``0.00``
    (the naive ``ms > 0`` guard is False for NaN).
    """
    if math.isnan(ms) or math.isnan(fastest):
        return float("nan")
    return fastest / ms if ms > 0 else 0.0


def completion_note(values: Iterable[float]) -> Optional[str]:
    """A one-line summary when a result set is partial, else ``None``.

    The regenerators print this after their table whenever quarantined or
    unswept cells left ``—`` placeholders behind.
    """
    values = list(values)
    missing = sum(1 for v in values if math.isnan(v))
    if not missing:
        return None
    done = len(values) - missing
    return (
        f"partial results: {done}/{len(values)} cells measured, "
        f"{missing} unavailable (rendered as {MISSING})"
    )


def ascii_bar(value: float, *, width: int = 24, vmax: float = 1.0) -> str:
    """A proportional bar for terminal "figures" (paper-style relative
    throughput plots)."""
    if vmax <= 0 or math.isnan(value):
        return ""
    filled = int(round(width * max(0.0, min(value, vmax)) / vmax))
    return "#" * filled


def format_table(
    headers: Tuple[str, ...], rows, *, float_fmt: str = "{:.2f}"
) -> str:
    """Plain-text table formatting shared by the regenerators.

    Float cells are formatted with ``float_fmt``; NaN floats render as
    the ``—`` placeholder (missing/quarantined sweep cells).
    """
    rendered = [
        [
            fmt_value(cell, float_fmt) if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        for row in rows
    ]
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in rendered)) if rendered else len(headers[c])
        for c in range(len(headers))
    ]
    def fmt_row(cells):
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))
    lines = [fmt_row(headers), fmt_row(["-" * w for w in widths])]
    lines.extend(fmt_row(r) for r in rendered)
    return "\n".join(lines)
