"""Shared machinery for the experiment regenerators.

The five techniques of the paper's figures are named as in the legends:

* ``proposed`` — this paper's optimizer, NT stores disabled;
* ``proposed_nti`` — same, with the ``store_nontemporal`` directive where
  the classifier allows it;
* ``autoscheduler`` — the Mullapudi-style heuristic baseline;
* ``baseline`` — parallel outer + vectorized inner, no tiling;
* ``autotuner`` — the stochastic search, budgeted by evaluation count.

``measure_case`` runs a whole benchmark pipeline (all stages) under a
technique on a simulated platform and returns milliseconds.  Results are
memoized per (benchmark, size, technique, platform, budget) within a
process, because Table 4, Fig. 4 and Fig. 6 share measurements.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.arch import ArchSpec, platform_by_name
from repro.baselines import Autotuner, autoschedule, baseline_schedule
from repro.bench import BenchmarkCase, make_benchmark, size_for
from repro.core import optimize
from repro.ir.func import Func
from repro.ir.schedule import Schedule
from repro.sim import Machine

#: Technique keys in the order the paper's legends list them.
TECHNIQUES = (
    "proposed",
    "proposed_nti",
    "autoscheduler",
    "baseline",
    "autotuner",
)


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


@dataclass
class ExperimentConfig:
    """Budget knobs for the regenerators.

    Environment overrides: ``REPRO_LINE_BUDGET`` (trace lines per nest),
    ``REPRO_AT_EVALS`` (autotuner budget ~ "one hour"),
    ``REPRO_AT_EVALS_DAY`` (autotuner budget ~ "one day"),
    ``REPRO_FAST=1`` (scaled-down problem sizes for smoke runs).
    """

    line_budget: int = field(
        default_factory=lambda: _env_int("REPRO_LINE_BUDGET", 60_000)
    )
    autotune_evals: int = field(
        default_factory=lambda: _env_int("REPRO_AT_EVALS", 12)
    )
    autotune_evals_day: int = field(
        default_factory=lambda: _env_int("REPRO_AT_EVALS_DAY", 80)
    )
    fast: bool = field(
        default_factory=lambda: os.environ.get("REPRO_FAST", "") == "1"
    )
    seed: int = 0

    def machine(self, arch: ArchSpec) -> Machine:
        return Machine(arch, line_budget=self.line_budget)

    def case(self, name: str) -> BenchmarkCase:
        return make_benchmark(name, **size_for(name, small=self.fast))


def schedules_for(
    case: BenchmarkCase,
    technique: str,
    arch: ArchSpec,
    *,
    config: Optional[ExperimentConfig] = None,
    autotune_evals: Optional[int] = None,
) -> Dict[Func, Schedule]:
    """Produce one schedule per pipeline stage under a technique."""
    config = config or ExperimentConfig()
    out: Dict[Func, Schedule] = {}
    for stage in case.pipeline:
        if technique == "proposed":
            out[stage] = optimize(stage, arch, allow_nti=False).schedule
        elif technique == "proposed_nti":
            out[stage] = optimize(stage, arch, allow_nti=True).schedule
        elif technique == "autoscheduler":
            out[stage] = autoschedule(stage, arch).schedule
        elif technique == "baseline":
            out[stage] = baseline_schedule(stage, arch)
        elif technique == "autotuner":
            machine = config.machine(arch)
            tuner = Autotuner(
                machine,
                evaluations=autotune_evals or config.autotune_evals,
                seed=config.seed,
            )
            out[stage] = tuner.tune(stage).schedule
        else:
            raise KeyError(
                f"unknown technique {technique!r}; known: {TECHNIQUES}"
            )
    return out


_MEASURE_CACHE: Dict[Tuple, float] = {}


def measure_case(
    name: str,
    technique: str,
    platform: str,
    *,
    config: Optional[ExperimentConfig] = None,
    autotune_evals: Optional[int] = None,
    size_overrides: Optional[dict] = None,
) -> float:
    """Milliseconds for one (benchmark, technique, platform) cell.

    Memoized per process; ``size_overrides`` (e.g. Table 6's problem
    sizes) are part of the key.
    """
    config = config or ExperimentConfig()
    key = (
        name,
        technique,
        platform,
        config.line_budget,
        autotune_evals or config.autotune_evals if technique == "autotuner" else 0,
        config.fast,
        tuple(sorted((size_overrides or {}).items())),
    )
    if key in _MEASURE_CACHE:
        return _MEASURE_CACHE[key]
    arch = platform_by_name(platform)
    sizes = size_overrides or size_for(name, small=config.fast)
    case = make_benchmark(name, **sizes)
    schedules = schedules_for(
        case, technique, arch, config=config, autotune_evals=autotune_evals
    )
    machine = config.machine(arch)
    ms = machine.time_pipeline(case.pipeline, schedules)
    _MEASURE_CACHE[key] = ms
    return ms


def clear_measure_cache() -> None:
    """Drop memoized measurements (tests use this for isolation)."""
    _MEASURE_CACHE.clear()


def ascii_bar(value: float, *, width: int = 24, vmax: float = 1.0) -> str:
    """A proportional bar for terminal "figures" (paper-style relative
    throughput plots)."""
    if vmax <= 0:
        return ""
    filled = int(round(width * max(0.0, min(value, vmax)) / vmax))
    return "#" * filled


def format_table(
    headers: Tuple[str, ...], rows, *, float_fmt: str = "{:.2f}"
) -> str:
    """Plain-text table formatting shared by the regenerators."""
    rendered = [
        [
            float_fmt.format(cell) if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        for row in rows
    ]
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in rendered)) if rendered else len(headers[c])
        for c in range(len(headers))
    ]
    def fmt_row(cells):
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))
    lines = [fmt_row(headers), fmt_row(["-" * w for w in widths])]
    lines.extend(fmt_row(r) for r in rendered)
    return "\n".join(lines)
