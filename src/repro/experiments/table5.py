"""Table 5: optimization runtime of the proposed tool per benchmark.

The paper reports milliseconds-scale runtimes for all benchmarks except
the convolution layer (7.6 s), whose deep nest explodes the permutation
space.  The per-benchmark number lives in
:func:`repro.experiments.harness.optimize_runtime`: a deterministic
model (candidate-evaluation counts × calibrated per-candidate cost)
rather than wall-clock, memoized and journaled by the sweep like any
other measurement — that is what keeps an interrupted, resumed, or
re-run regeneration's Table 5 bitwise-identical.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.arch import platform_by_name
from repro.bench import benchmark_names
from repro.experiments.harness import (
    ExperimentConfig,
    completion_note,
    fmt_value,
    format_table,
    optimize_runtime,
)


def run(
    *,
    platform: str = "i7-5930k",
    config: Optional[ExperimentConfig] = None,
    echo: bool = True,
) -> Dict[str, float]:
    """Regenerate Table 5; returns ``{benchmark: seconds}``."""
    config = config or ExperimentConfig()
    arch = platform_by_name(platform)
    out: Dict[str, float] = {}
    for name in benchmark_names():
        out[name] = optimize_runtime(name, platform, config=config)
    if echo:
        print(f"Table 5. Optimization runtime ({arch.name})")
        rows = [
            (name, fmt_value(seconds, "{:.3f}s"))
            for name, seconds in out.items()
        ]
        print(format_table(("benchmark", "runtime"), rows))
        note = completion_note(out.values())
        if note:
            print(note)
    return out


if __name__ == "__main__":
    run()
