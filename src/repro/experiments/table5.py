"""Table 5: optimization runtime of the proposed tool per benchmark.

The paper reports milliseconds-scale runtimes for all benchmarks except
the convolution layer (7.6 s), whose deep nest explodes the permutation
space.  This regenerator times :func:`repro.core.optimize` on every stage
of every benchmark and reports the pipeline total.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro.arch import platform_by_name
from repro.bench import benchmark_names, make_benchmark, size_for
from repro.core import optimize
from repro.experiments.harness import ExperimentConfig, format_table


def run(
    *,
    platform: str = "i7-5930k",
    config: Optional[ExperimentConfig] = None,
    echo: bool = True,
) -> Dict[str, float]:
    """Regenerate Table 5; returns ``{benchmark: seconds}``."""
    config = config or ExperimentConfig()
    arch = platform_by_name(platform)
    out: Dict[str, float] = {}
    for name in benchmark_names():
        case = make_benchmark(name, **size_for(name, small=config.fast))
        start = time.perf_counter()
        for stage in case.pipeline:
            optimize(stage, arch)
        out[name] = time.perf_counter() - start
    if echo:
        print(f"Table 5. Optimization runtime ({arch.name})")
        rows = [(name, f"{seconds:.3f}s") for name, seconds in out.items()]
        print(format_table(("benchmark", "runtime"), rows))
    return out


if __name__ == "__main__":
    run()
