"""Fig. 5: the one-day autotuner against the proposed method.

The paper gives the autotuner a full day (instead of an hour) on four
benchmarks of different loop depths — transpose-and-mask (2-D), matmul
(3-D), doitgen (4-D), convolution layer (5-D) — and the proposed method
still wins, supporting the decision to tile *every* dimension (the
autotuner only tiles output dimensions).

The day-long budget maps to ``ExperimentConfig.autotune_evals_day``
simulator evaluations.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.experiments.harness import (
    ExperimentConfig,
    completion_note,
    format_table,
    measure_case,
    nanmin,
    relative,
)

BENCHMARKS = ("tpm", "convlayer", "matmul", "doitgen")
PLATFORM = "i7-5930k"


def run(
    *,
    benchmarks: Tuple[str, ...] = BENCHMARKS,
    config: Optional[ExperimentConfig] = None,
    echo: bool = True,
) -> Dict[str, Dict[str, float]]:
    """Regenerate Fig. 5.

    Returns ``{benchmark: {"proposed_nti": rel, "autotuner_day": rel}}``
    (throughput relative to the faster of the two).
    """
    config = config or ExperimentConfig()
    out: Dict[str, Dict[str, float]] = {}
    rows = []
    for name in benchmarks:
        proposed = measure_case(name, "proposed_nti", PLATFORM, config=config)
        tuned = measure_case(
            name,
            "autotuner",
            PLATFORM,
            config=config,
            autotune_evals=config.autotune_evals_day,
        )
        fastest = nanmin((proposed, tuned))
        out[name] = {
            "proposed_nti": relative(fastest, proposed),
            "autotuner_day": relative(fastest, tuned),
        }
        rows.append(
            (name, out[name]["proposed_nti"], out[name]["autotuner_day"])
        )
    if echo:
        print("Fig. 5 — throughput relative to fastest (autotuner: 1-day budget)")
        print(format_table(("benchmark", "Proposed+NTI", "Autotuner(day)"), rows))
        note = completion_note(
            v for cell in out.values() for v in cell.values()
        )
        if note:
            print(note)
    return out


if __name__ == "__main__":
    run()
