"""Fig. 6: the effect of non-temporal store instructions.

For the four output-write-once kernels (transpose-and-mask, transpose,
copy, mask) the paper plots throughput relative to the proposed *non-NTI*
implementation on the i7-5930K: the +NTI bars exceed 1.0 (up to ~1.5x on
copy), because bypassing the cache halves the output's DRAM transactions
(no read-for-ownership) and stops the stores from evicting prefetched
input lines.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.experiments.harness import (
    ExperimentConfig,
    completion_note,
    format_table,
    measure_case,
    relative,
)

BENCHMARKS = ("tpm", "tp", "copy", "mask")
PLATFORM = "i7-5930k"
TECHNIQUES = ("proposed", "proposed_nti", "autoscheduler")


def run(
    *,
    benchmarks: Tuple[str, ...] = BENCHMARKS,
    config: Optional[ExperimentConfig] = None,
    echo: bool = True,
) -> Dict[str, Dict[str, float]]:
    """Regenerate Fig. 6.

    Returns ``{benchmark: {technique: throughput relative to proposed}}``.
    """
    config = config or ExperimentConfig()
    out: Dict[str, Dict[str, float]] = {}
    rows = []
    for name in benchmarks:
        times = {
            t: measure_case(name, t, PLATFORM, config=config)
            for t in TECHNIQUES
        }
        ref = times["proposed"]
        out[name] = {t: relative(ref, ms) for t, ms in times.items()}
        rows.append((name,) + tuple(out[name][t] for t in TECHNIQUES))
    if echo:
        print("Fig. 6 — throughput relative to Proposed (non-NTI), i7-5930K")
        print(
            format_table(
                ("benchmark", "Proposed", "Proposed+NTI", "Auto-Scheduler"),
                rows,
            )
        )
        note = completion_note(
            v for cell in out.values() for v in cell.values()
        )
        if note:
            print(note)
    return out


if __name__ == "__main__":
    run()
