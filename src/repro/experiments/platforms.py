"""Table 3: the experimental platforms.

Prints the same parameter rows the paper tabulates, pulled from
:mod:`repro.arch.platforms` so the experiments and this table cannot drift
apart.
"""

from __future__ import annotations

from typing import Dict

from repro.arch import PLATFORMS, ArchSpec
from repro.experiments.harness import format_table


def run(*, echo: bool = True) -> Dict[str, ArchSpec]:
    """Print Table 3; return the platform specs keyed by short name."""
    specs = {key: factory() for key, factory in PLATFORMS.items()}
    order = ["i7-5930k", "i7-6700", "arm-a15"]
    headers = ("parameter",) + tuple(specs[k].name for k in order)
    rows = [
        ("L-CLS",) + tuple(f"{specs[k].l1.line_size}B" for k in order),
        ("L1-way",) + tuple(str(specs[k].l1.ways) for k in order),
        ("L1-CS",) + tuple(f"{specs[k].l1.size // 1024}KB" for k in order),
        ("L2-way",) + tuple(str(specs[k].l2.ways) for k in order),
        ("L2-CS",) + tuple(f"{specs[k].l2.size // 1024}KB" for k in order),
        ("NCores",) + tuple(str(specs[k].n_cores) for k in order),
        ("NThreads",) + tuple(str(specs[k].threads_per_core) for k in order),
    ]
    if echo:
        print("Table 3. Experimental Platforms")
        print(format_table(headers, rows))
    return specs


if __name__ == "__main__":
    run()
