"""Corpus win/loss: the classifier judged over the generated workload ring.

For every kernel of :data:`repro.frontend.corpus.CORPUS` (the PolyBench
remainder + DL-shaped ops + micro-kernels — all lowered from spec
strings), this regenerator compares

* **proposed** — the paper's full flow (classification, then the
  temporal/spatial optimizer or no transformation, NT stores where the
  classifier allows), against
* **baseline** — the developer-obvious schedule (parallel outer loop,
  vectorized contiguous inner loop; Sec. 5.1),

on the simulated i7-5930K, and aggregates wins/losses/ties *per
classifier class* (temporal / spatial / none).  The interesting row is
``none``: the classifier's claim is that for streaming/stencil kernels
no *loop transformation* helps, so any win there must come from the
independent NT-store decision (Sec. 3.4) alone — and a loss would mean
the classifier wrongly skipped a transformation.

Like Table 6, this module measures inline (deterministic simulator
runs; the optimizer search is the only cost) rather than through the
sweep planner.  At paper sizes (not ``--fast``) the rendered table is
also written to ``CORPUS.md`` so the committed artifact is regenerated
by ``python -m repro.experiments``.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Sequence

from repro.arch import platform_by_name
from repro.baselines import baseline_schedule
from repro.core import optimize
from repro.core.classify import classify
from repro.experiments.harness import ExperimentConfig, format_table
from repro.frontend.corpus import CORPUS

PLATFORM = "i7-5930k"

#: Relative tolerance below which proposed-vs-baseline is a tie: the
#: simulator is deterministic, so this only absorbs float round-off.
TIE_RTOL = 1e-3

#: Where the committed per-class table lives (regenerated on full runs).
TABLE_ENV = "REPRO_CORPUS_TABLE"
TABLE_PATH = "CORPUS.md"


def _verdict(baseline_ms: float, proposed_ms: float) -> str:
    if proposed_ms < baseline_ms * (1.0 - TIE_RTOL):
        return "win"
    if proposed_ms > baseline_ms * (1.0 + TIE_RTOL):
        return "loss"
    return "tie"


def _geomean(values) -> float:
    prod = 1.0
    for v in values:
        prod *= v
    return prod ** (1.0 / len(values))


def run(
    *,
    config: Optional[ExperimentConfig] = None,
    echo: bool = True,
    only: Optional[Sequence[str]] = None,
) -> Dict[str, Dict]:
    """Measure every corpus kernel; returns ``{kernel: row}`` plus the
    per-class aggregate under the ``"classes"`` key.

    ``only`` restricts the run to the named kernels (CI smoke subsets);
    restricted runs never rewrite ``CORPUS.md``.
    """
    config = config or ExperimentConfig()
    arch = platform_by_name(PLATFORM)
    machine = config.machine(arch)

    kernels = CORPUS
    if only is not None:
        wanted = set(only)
        unknown = wanted - {kernel.name for kernel in CORPUS}
        if unknown:
            raise SystemExit(
                f"unknown corpus kernel(s): {', '.join(sorted(unknown))}"
            )
        kernels = [kernel for kernel in CORPUS if kernel.name in wanted]

    rows = {}
    for kernel in kernels:
        case = kernel.case(fast=config.fast)
        stages = case.funcs
        locality = classify(stages[-1]).locality.value
        base = [(s, baseline_schedule(s, arch)) for s in stages]
        prop = [(s, optimize(s, arch).schedule) for s in stages]
        baseline_ms = machine.time_funcs(base)
        proposed_ms = machine.time_funcs(prop)
        rows[kernel.name] = {
            "family": kernel.family,
            "class": locality,
            "baseline_ms": baseline_ms,
            "proposed_ms": proposed_ms,
            "speedup": (
                baseline_ms / proposed_ms if proposed_ms > 0 else 1.0
            ),
            "verdict": _verdict(baseline_ms, proposed_ms),
        }

    classes: Dict[str, Dict] = {}
    for row in rows.values():
        agg = classes.setdefault(
            row["class"],
            {"kernels": 0, "win": 0, "loss": 0, "tie": 0, "speedups": []},
        )
        agg["kernels"] += 1
        agg[row["verdict"]] += 1
        agg["speedups"].append(row["speedup"])
    for agg in classes.values():
        agg["geomean_speedup"] = _geomean(agg.pop("speedups"))

    if echo:
        print(_render(rows, classes, config))
    if not config.fast and only is None:
        path = os.environ.get(TABLE_ENV, TABLE_PATH)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(_markdown(rows, classes))
    return {**rows, "classes": classes}


def _kernel_rows(rows):
    return [
        (
            name,
            row["family"],
            row["class"],
            f"{row['baseline_ms']:.3f}",
            f"{row['proposed_ms']:.3f}",
            f"{row['speedup']:.2f}x",
            row["verdict"],
        )
        for name, row in rows.items()
    ]


def _class_rows(classes):
    # temporal / spatial / none, in the classifier's decision order.
    order = ("temporal", "spatial", "none")
    return [
        (
            cls,
            classes[cls]["kernels"],
            classes[cls]["win"],
            classes[cls]["loss"],
            classes[cls]["tie"],
            f"{classes[cls]['geomean_speedup']:.2f}x",
        )
        for cls in order
        if cls in classes
    ]


_KERNEL_HEADERS = (
    "kernel", "family", "class", "baseline", "proposed", "speedup", "verdict"
)
_CLASS_HEADERS = ("class", "kernels", "win", "loss", "tie", "geomean")


def _render(rows, classes, config) -> str:
    sizes = "smoke sizes" if config.fast else "corpus sizes"
    lines = [
        f"Corpus win/loss — proposed vs baseline, {PLATFORM} ({sizes}), "
        f"{len(rows)} kernels",
        format_table(_KERNEL_HEADERS, _kernel_rows(rows)),
        "",
        "Per-class summary (the classifier's scorecard):",
        format_table(_CLASS_HEADERS, _class_rows(classes)),
    ]
    return "\n".join(lines)


def _markdown(rows, classes) -> str:
    def table(headers, body):
        out = [
            "| " + " | ".join(str(h) for h in headers) + " |",
            "|" + "|".join(" --- " for _ in headers) + "|",
        ]
        out += ["| " + " | ".join(str(c) for c in r) + " |" for r in body]
        return "\n".join(out)

    return (
        "# Corpus win/loss\n\n"
        "Per-class scorecard of the paper's classifier over the generated\n"
        f"kernel corpus ({len(rows)} kernels lowered from spec strings by\n"
        "`repro.frontend`), proposed flow vs the Sec. 5.1 baseline\n"
        f"schedule on the simulated {PLATFORM}.  Regenerate with\n"
        "`python -m repro.experiments` (full sizes; this file is not\n"
        "rewritten by `--fast` runs).\n\n"
        "For the `none` class the classifier applies no loop\n"
        "transformation; wins there come from the independent NT-store\n"
        "decision (Sec. 3.4) alone, while a loss would mean the\n"
        "classifier wrongly skipped a transformation.\n\n"
        "## Per-class summary\n\n"
        + table(_CLASS_HEADERS, _class_rows(classes))
        + "\n\n## Per-kernel results\n\n"
        + table(_KERNEL_HEADERS, _kernel_rows(rows))
        + "\n"
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.corpus",
        description="Per-class win/loss of the classifier over the "
        "spec-lowered kernel corpus.",
    )
    parser.add_argument(
        "--fast", action="store_true", help="smoke sizes (never rewrites CORPUS.md)"
    )
    parser.add_argument(
        "--only",
        metavar="K1,K2,...",
        help="comma-separated kernel subset (never rewrites CORPUS.md)",
    )
    args = parser.parse_args()
    run(
        config=ExperimentConfig(fast=args.fast),
        only=args.only.split(",") if args.only else None,
    )
