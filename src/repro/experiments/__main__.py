"""Run every table/figure regenerator, crash-safely.

Usage::

    python -m repro.experiments [--fast] [--jobs N] [--fresh]
                                [--timeout-s S] [--journal PATH]
                                [--no-sweep] [--trace PATH]

``--fast`` (or ``REPRO_FAST=1``) uses the scaled-down problem sizes for
a smoke run; the default regenerates everything at the paper's sizes,
which takes tens of minutes (the autotuner searches dominate).

Every ``measure_case`` cell the regenerators need is first executed by
the crash-safe sweep runner (:mod:`repro.sweep`): isolated worker
subprocesses with per-cell timeouts, retries with backoff, quarantine
for repeat offenders, and a durable journal.  Re-running this command
resumes from the journal — completed cells are never re-measured — and
the tables/figures then render from the journaled values, with ``—``
placeholders (plus a completion summary) for quarantined cells.

Sweep progress and timing go to **stderr**; stdout carries only the
tables and figures, so an interrupted-then-resumed run produces output
bitwise-identical to an uninterrupted one.

``--trace PATH`` records a ``repro-trace-v1`` JSONL event log of the run
(sweep-cell lifecycle from the runner, plus planning/render spans and
any in-process optimizer/simulator activity); inspect it with
``python -m repro trace PATH`` and schema-check it with ``--validate``.

Exit codes: 0 = complete, 2 = usage error, 5 = completed with
quarantined cells (rendered as ``—``).
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys
import time

from repro.core.exitcodes import EXIT_OK
from repro.obs import NULL_TRACER, JsonlTracer, activate_tracer
from repro.experiments import ExperimentConfig
from repro.experiments import (  # noqa: F401  (imported for registry order)
    corpus,
    fig4,
    fig5,
    fig6,
    fig7,
    mef,
    platforms,
    table4,
    table5,
    table6,
)

ORDER = [
    ("Table 3", platforms, False),
    ("Table 5", table5, True),
    ("Fig. 4", fig4, True),
    ("Fig. 6", fig6, True),
    ("Fig. 5", fig5, True),
    ("Fig. 7", fig7, True),
    ("Table 6", table6, True),
    ("Table 4", table4, True),
    ("Corpus", corpus, True),
    # After Corpus: the mef regenerator appends its marked section to the
    # CORPUS.md the corpus regenerator just rewrote.
    ("Multistride", mef, True),
]

#: Regenerators whose measurements flow through the recording-aware
#: harness entry points (``measure_case`` / ``optimize_runtime``) — the
#: set the sweep plans and executes in workers.  Table 6 (tile-size
#: models) measures inline by design: its cells are deterministic
#: simulator runs, cheap relative to the autotuner searches — and the
#: corpus win/loss and mef three-strategy tables measure inline for the
#: same reason.
SWEPT_MODULES = (table5, fig4, fig6, fig5, fig7, table4)

#: Journal location when neither --journal nor REPRO_SWEEP_JOURNAL is set.
DEFAULT_JOURNAL = ".repro-sweep.jsonl"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate every table and figure of the paper",
    )
    parser.add_argument("--fast", action="store_true",
                        help="scaled-down problem sizes (smoke run)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="measure up to N cells in parallel workers")
    parser.add_argument("--fresh", action="store_true",
                        help="discard the journal and re-measure everything")
    parser.add_argument("--timeout-s", type=float, default=None, metavar="S",
                        help="hard wall-clock limit per cell attempt")
    parser.add_argument("--journal", default=None, metavar="PATH",
                        help=f"sweep journal path (default: "
                             f"$REPRO_SWEEP_JOURNAL or {DEFAULT_JOURNAL})")
    parser.add_argument("--schedule-cache", default=None, metavar="PATH",
                        dest="schedule_cache",
                        help="persistent cross-run schedule cache (JSONL); "
                             "workers consult it before searching and "
                             "append what they find")
    parser.add_argument("--no-sweep", action="store_true",
                        help="legacy in-process mode: no isolation, no "
                             "journal, no resume")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write a repro-trace-v1 JSONL event log")
    return parser


def _render_all(config: ExperimentConfig) -> None:
    """Run every regenerator; tables to stdout, timings to stderr."""
    for label, module, takes_config in ORDER:
        print(f"--- {label} " + "-" * (60 - len(label)))
        start = time.perf_counter()
        if takes_config:
            module.run(config=config)
        else:
            module.run()
        print(f"    [{label}: {time.perf_counter() - start:.1f}s]",
              file=sys.stderr)
        print()


def main(argv=None) -> int:
    args = build_parser().parse_args(
        argv if argv is not None else sys.argv[1:]
    )
    if args.jobs < 1:
        build_parser().error(f"--jobs must be >= 1, got {args.jobs}")
    if args.fast:
        os.environ["REPRO_FAST"] = "1"
    config = ExperimentConfig()
    mode = "FAST (scaled sizes)" if config.fast else "paper sizes"
    print(f"=== Regenerating every table and figure [{mode}] ===\n")

    with contextlib.ExitStack() as stack:
        tracer = NULL_TRACER
        if args.trace:
            try:
                tracer = JsonlTracer(args.trace)
            except OSError as exc:
                build_parser().error(
                    f"cannot write {args.trace!r}: {exc.strerror or exc}"
                )
            stack.enter_context(tracer)
            # Ambient for the in-process work (planning, rendering, any
            # --no-sweep measurement); the runner gets it explicitly
            # because its worker threads do not inherit context vars.
            stack.enter_context(activate_tracer(tracer))

        if args.no_sweep:
            with tracer.span("render"):
                _render_all(config)
            return EXIT_OK

        from repro.sweep import Journal, SweepRunner, plan_cells

        journal_path = (
            args.journal
            or os.environ.get("REPRO_SWEEP_JOURNAL")
            or DEFAULT_JOURNAL
        )
        journal = Journal(journal_path)
        if args.fresh:
            journal.clear()

        with tracer.span("plan"):
            cells = plan_cells(SWEPT_MODULES, config=config)
        runner = SweepRunner(
            journal,
            jobs=args.jobs,
            timeout_s=args.timeout_s,
            progress=sys.stderr,
            tracer=tracer,
            schedule_cache=args.schedule_cache,
        )
        report = runner.run(cells)
        print(report.summary(), file=sys.stderr)

        # run() already installed the journal into the measurement memo,
        # so the regenerators below replay journaled numbers instead of
        # re-simulating; quarantined cells render as "—".
        with tracer.span("render"):
            _render_all(config)
        return report.exit_code()


if __name__ == "__main__":
    raise SystemExit(main())
