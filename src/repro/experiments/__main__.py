"""Run every table/figure regenerator in sequence.

Usage::

    python -m repro.experiments [--fast]

``--fast`` (or ``REPRO_FAST=1``) uses the scaled-down problem sizes for a
smoke run; the default regenerates everything at the paper's sizes, which
takes tens of minutes on one core (the autotuner searches dominate).
"""

from __future__ import annotations

import os
import sys
import time

from repro.experiments import ExperimentConfig
from repro.experiments import (  # noqa: F401  (imported for registry order)
    fig4,
    fig5,
    fig6,
    fig7,
    platforms,
    table4,
    table5,
    table6,
)

ORDER = [
    ("Table 3", platforms, False),
    ("Table 5", table5, True),
    ("Fig. 4", fig4, True),
    ("Fig. 6", fig6, True),
    ("Fig. 5", fig5, True),
    ("Fig. 7", fig7, True),
    ("Table 6", table6, True),
    ("Table 4", table4, True),
]


def main(argv=None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    if "--fast" in argv:
        os.environ["REPRO_FAST"] = "1"
    config = ExperimentConfig()
    mode = "FAST (scaled sizes)" if config.fast else "paper sizes"
    print(f"=== Regenerating every table and figure [{mode}] ===\n")
    for label, module, takes_config in ORDER:
        print(f"--- {label} " + "-" * (60 - len(label)))
        start = time.perf_counter()
        if takes_config:
            module.run(config=config)
        else:
            module.run()
        print(f"    ({time.perf_counter() - start:.1f}s)\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
