"""Fig. 4a/4b: relative throughput on the two Intel platforms.

For every benchmark and technique the paper plots throughput (1/s)
relative to the fastest implementation of that benchmark; the proposed
method (with NTI where the classifier allows) tops most plots, the
Auto-Scheduler follows, and the baseline/one-hour-autotuner trail.

This regenerator prints one row per (benchmark, technique) with the
relative value in [0, 1], per platform.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.bench import benchmark_names
from repro.experiments.harness import (
    ExperimentConfig,
    TECHNIQUES,
    completion_note,
    fmt_value,
    format_table,
    measure_case,
    nanmin,
    relative,
)

#: Benchmarks where the classifier enables NT stores, so "Proposed+NTI"
#: is a distinct bar (the last four kernels in the paper's grouping).
NTI_BENCHMARKS = ("tpm", "tp", "copy", "mask")

#: "The syrk and syr2k benchmarks could not be rewritten in such a way and
#: thus the autotuned implementations are excluded." (Sec. 5.1)
AUTOTUNER_EXCLUDED = ("syrk", "syr2k")

PLATFORMS = ("i7-6700", "i7-5930k")


def run(
    *,
    platforms: Tuple[str, ...] = PLATFORMS,
    benchmarks: Optional[Tuple[str, ...]] = None,
    config: Optional[ExperimentConfig] = None,
    echo: bool = True,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Regenerate Fig. 4.

    Returns ``{platform: {benchmark: {technique: relative_throughput}}}``.
    """
    config = config or ExperimentConfig()
    benchmarks = benchmarks or tuple(benchmark_names())
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for platform in platforms:
        per_bench: Dict[str, Dict[str, float]] = {}
        for name in benchmarks:
            times: Dict[str, float] = {}
            for technique in TECHNIQUES:
                if technique == "proposed_nti" and name not in NTI_BENCHMARKS:
                    continue  # identical to "proposed"; skip the sim
                if technique == "autotuner" and name in AUTOTUNER_EXCLUDED:
                    continue  # excluded in the paper (Sec. 5.1)
                times[technique] = measure_case(
                    name, technique, platform, config=config
                )
            fastest = nanmin(times.values())
            per_bench[name] = {
                t: relative(fastest, ms) for t, ms in times.items()
            }
        out[platform] = per_bench
        if echo:
            from repro.experiments.harness import ascii_bar

            print(f"\nFig. 4 — {platform}: throughput relative to fastest")
            headers = ("benchmark",) + TECHNIQUES
            rows = []
            for name, rel in per_bench.items():
                # "-" marks structurally excluded cells (no NTI variant,
                # autotuner exclusions); MISSING marks unmeasured ones.
                rows.append(
                    (name,)
                    + tuple(
                        fmt_value(rel[t]) if t in rel else "-"
                        for t in TECHNIQUES
                    )
                )
            print(format_table(headers, rows))
            note = completion_note(
                v for rel in per_bench.values() for v in rel.values()
            )
            if note:
                print(note)
            print()
            for name, rel in per_bench.items():
                for t in TECHNIQUES:
                    if t in rel:
                        print(f"  {name:>9s} {t:<14s} {ascii_bar(rel[t])}")
    return out


if __name__ == "__main__":
    run()
