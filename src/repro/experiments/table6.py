"""Table 6: the proposed model against the TSS [14] and TTS [15] tile-size
selection models on the i7-5930K.

Paper methodology, reproduced here:

* four benchmarks shared with [15] — matmul, trmm, syrk, syr2k — at four
  problem sizes (400, 800, 1024, 1600);
* TSS and TTS do not choose a loop order, so "we try every possible loop
  permutation for each benchmark and pick the one that results in the best
  performance" — this regenerator measures each model's tiles under every
  permutation of the three loops and keeps the fastest;
* the proposed method chooses its own order.

Paper headline: proposed is on average 26 % faster than TTS and 41 %
faster than TSS, up to ~2x on syr2k; the tests assert the same ordering
holds on the simulator (proposed at least ties the baselines on average).
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, Tuple

from repro.arch import platform_by_name
from repro.baselines import tss_schedule, tss_tiles, tts_schedule, tts_tiles
from repro.bench import make_benchmark
from repro.core import optimize
from repro.experiments.harness import ExperimentConfig, format_table

BENCHMARKS = ("matmul", "trmm", "syrk", "syr2k")
SIZES = (400, 800, 1024, 1600)
PLATFORM = "i7-5930k"


def _best_over_orders(func, arch, machine, tiles, schedule_builder) -> float:
    """Best simulated time of a tile choice over all loop orders."""
    info_vars = [v.name for v in func.main_definition().all_vars()]
    best = float("inf")
    for order in itertools.permutations(info_vars):
        schedule = schedule_builder(
            func, arch, loop_order=list(order), tiles=dict(tiles)
        )
        ms = machine.time_funcs([(func, schedule)])
        best = min(best, ms)
    return best


def run(
    *,
    benchmarks: Tuple[str, ...] = BENCHMARKS,
    sizes: Tuple[int, ...] = SIZES,
    config: Optional[ExperimentConfig] = None,
    echo: bool = True,
) -> Dict[str, Dict[int, Dict[str, float]]]:
    """Regenerate Table 6.

    Returns ``{benchmark: {size: {"tts"|"tss"|"proposed": ms}}}``.
    """
    config = config or ExperimentConfig()
    arch = platform_by_name(PLATFORM)
    machine = config.machine(arch)
    out: Dict[str, Dict[int, Dict[str, float]]] = {}
    rows = []
    for name in benchmarks:
        out[name] = {}
        for n in sizes:
            case = make_benchmark(name, n=n)
            func = case.funcs[-1]
            tss_t = tss_tiles(func, arch).tiles
            tts_t = tts_tiles(func, arch).tiles
            cell = {
                "tts": _best_over_orders(func, arch, machine, tts_t, tts_schedule),
                "tss": _best_over_orders(func, arch, machine, tss_t, tss_schedule),
            }
            result = optimize(func, arch, use_nti=False)
            cell["proposed"] = machine.time_funcs([(func, result.schedule)])
            out[name][n] = cell
            rows.append(
                (name, n, cell["tts"], cell["tss"], cell["proposed"])
            )
    if echo:
        print("Table 6. Average execution time (ms) — i7-5930K")
        print(
            format_table(
                ("benchmark", "size", "TTS", "TSS", "Proposed"), rows
            )
        )
        _print_speedup_summary(out)
    return out


def _print_speedup_summary(data) -> None:
    gains_tts, gains_tss = [], []
    for cells in data.values():
        for cell in cells.values():
            if cell["proposed"] > 0:
                gains_tts.append(cell["tts"] / cell["proposed"])
                gains_tss.append(cell["tss"] / cell["proposed"])
    if gains_tts:
        print(
            f"geo-mean speedup of Proposed: vs TTS "
            f"{_geomean(gains_tts):.2f}x, vs TSS {_geomean(gains_tss):.2f}x "
            f"(paper: 1.26x / 1.41x average)"
        )


def _geomean(values) -> float:
    prod = 1.0
    for v in values:
        prod *= v
    return prod ** (1.0 / len(values))


if __name__ == "__main__":
    run()
