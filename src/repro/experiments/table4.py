"""Table 4: benchmark list, problem sizes, and best implementation times.

The paper's Table 4 reports the average execution time of the *best*
implementation per benchmark and platform.  Here "best" is the fastest of
the evaluated techniques on the simulator (in the paper it is almost
always the proposed method; the tests assert the same holds here for the
temporal and spatial benchmarks).

ARM numbers exclude copy/mask, as in the paper (no vector NT stores on the
A15, making the three implementations identical).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.bench import benchmark_names, size_for
from repro.experiments.harness import (
    ExperimentConfig,
    completion_note,
    format_table,
    measure_case,
    nanmin,
)

#: Techniques over which "best" is taken, per platform.
_INTEL_TECHNIQUES = ("proposed", "proposed_nti", "autoscheduler", "baseline")
_ARM_TECHNIQUES = ("proposed", "autoscheduler", "baseline")

PLATFORM_ORDER = ("i7-6700", "i7-5930k", "arm-a15")


def run(
    *,
    config: Optional[ExperimentConfig] = None,
    echo: bool = True,
) -> Dict[str, Dict[str, float]]:
    """Regenerate Table 4.

    Returns ``{benchmark: {platform: best_ms}}``.
    """
    config = config or ExperimentConfig()
    out: Dict[str, Dict[str, float]] = {}
    rows = []
    for name in benchmark_names():
        per_platform: Dict[str, float] = {}
        for platform in PLATFORM_ORDER:
            if platform == "arm-a15":
                if name in ("copy", "mask"):
                    continue
                techniques = _ARM_TECHNIQUES
            else:
                techniques = _INTEL_TECHNIQUES
            best = nanmin(
                measure_case(name, t, platform, config=config)
                for t in techniques
            )
            per_platform[platform] = best
        out[name] = per_platform
        size = "x".join(str(v) for v in size_for(name, small=config.fast).values())
        rows.append(
            (
                name,
                size,
                per_platform.get("i7-6700", float("nan")),
                per_platform.get("i7-5930k", float("nan")),
                per_platform.get("arm-a15", float("nan"))
                if "arm-a15" in per_platform
                else "-",
            )
        )
    if echo:
        print("Table 4. Benchmarks — average execution time (ms), best implementation")
        print(
            format_table(
                ("benchmark", "size", "i7-6700", "i7-5930K", "ARM A15"), rows
            )
        )
        note = completion_note(
            v for per_platform in out.values() for v in per_platform.values()
        )
        if note:
            print(note)
    return out


if __name__ == "__main__":
    run()
