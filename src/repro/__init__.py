"""Reproduction of *Loop Transformations Leveraging Hardware Prefetching*
(Sioutas, Stuijk, Corporaal, Basten, Somers — CGO 2018).

Quickstart::

    from repro import Var, RVar, Buffer, Func, optimize, Machine
    from repro.arch import intel_i7_5930k

    n = 2048
    i, j = Var("i"), Var("j")
    k = RVar("k", n)
    A, B = Buffer("A", (n, n)), Buffer("B", (n, n))
    C = Func("C")
    C[i, j] = 0.0
    C[i, j] = C[i, j] + A[i, k] * B[k, j]
    C.set_bounds({i: n, j: n})

    arch = intel_i7_5930k()
    result = optimize(C, arch)          # the paper's optimization flow
    print(result.describe())

    machine = Machine(arch)             # trace-driven platform simulator
    print(machine.time_funcs([(C, result.schedule)]), "ms")

The **stable, versioned** entry point is :mod:`repro.api`::

    from repro import OptimizeRequest, api
    result = api.optimize(OptimizeRequest(func=C, arch=arch))

It subsumes the five legacy keyword surfaces (``optimize``,
``optimize_temporal``, ``optimize_spatial``, ``safe_optimize``,
``optimize_pipeline``) behind one frozen request/result pair; see
docs/API.md's "Stable API" section.

Package map: :mod:`repro.ir` (the Halide-like DSL), :mod:`repro.arch`
(platforms), :mod:`repro.cachesim` + :mod:`repro.sim` (the simulated
hardware), :mod:`repro.core` (the paper's optimizer), :mod:`repro.baselines`
(comparison techniques), :mod:`repro.robust` (graceful degradation:
``safe_optimize`` with fallback chain, deadlines and fault injection),
:mod:`repro.obs` (observability: structured tracing of search, simulation
and sweeps behind a zero-overhead default), :mod:`repro.cache` (the
persistent cross-run schedule cache), :mod:`repro.bench` (Table 4's
benchmarks plus the ``python -m repro.bench`` perf harness) and
:mod:`repro.experiments` (one regenerator per table/figure).
"""

from repro import api
from repro.api import OptimizeOptions, OptimizeRequest, OptimizeResult
from repro.arch import ArchSpec, CacheSpec, platform_by_name
from repro.cache import ScheduleCache
from repro.core import (
    Classification,
    Locality,
    OptimizationResult,
    classify,
    optimize,
)
from repro.ir import (
    Buffer,
    Func,
    Pipeline,
    RVar,
    Schedule,
    Var,
    float32,
    float64,
    int32,
    lower,
    print_nest,
)
from repro.robust import (
    Diagnostics,
    FallbackPolicy,
    SafeResult,
    safe_optimize,
    safe_optimize_pipeline,
)
from repro.sim import Machine
from repro.util import (
    Deadline,
    DeadlineExceeded,
    ReproError,
    ValidationError,
)

__version__ = "1.0.0"

__all__ = [
    "api",
    "OptimizeOptions",
    "OptimizeRequest",
    "OptimizeResult",
    "ScheduleCache",
    "ArchSpec",
    "CacheSpec",
    "platform_by_name",
    "Classification",
    "Locality",
    "OptimizationResult",
    "classify",
    "optimize",
    "Buffer",
    "Func",
    "Pipeline",
    "RVar",
    "Schedule",
    "Var",
    "float32",
    "float64",
    "int32",
    "lower",
    "print_nest",
    "Machine",
    "Diagnostics",
    "FallbackPolicy",
    "SafeResult",
    "safe_optimize",
    "safe_optimize_pipeline",
    "Deadline",
    "DeadlineExceeded",
    "ReproError",
    "ValidationError",
    "__version__",
]
