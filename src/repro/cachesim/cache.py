"""A set-associative, LRU, line-granular cache model.

Lines are identified by their *line address* (byte address divided by the
line size — the trace generator already performs the division).  Each set is
an ``OrderedDict`` from line address to a "brought in by prefetch" flag;
insertion order doubles as LRU order (``move_to_end`` on hit).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Tuple

from repro.cachesim.stats import LevelStats


class SetAssocCache:
    """One cache level.

    Parameters
    ----------
    name:
        Label used in statistics ("L1", "L2", ...).
    num_sets:
        Number of sets; the set index of a line is ``line_addr % num_sets``
        (or a hash of it, see ``hashed_index``).
    ways:
        Associativity; the replacement policy is true LRU.
    hashed_index:
        XOR-fold the upper line-address bits into the set index, modelling
        the "complex addressing" of Intel last-level caches.  Without it a
        power-of-two stride maps every line to a handful of sets and the
        LLC thrashes — which hashed real hardware does not do.
    """

    __slots__ = ("name", "num_sets", "ways", "hashed_index", "_sets", "stats")

    def __init__(
        self, name: str, num_sets: int, ways: int, *, hashed_index: bool = False
    ) -> None:
        if num_sets <= 0 or ways <= 0:
            raise ValueError("num_sets and ways must be positive")
        self.name = name
        self.num_sets = num_sets
        self.ways = ways
        self.hashed_index = hashed_index
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(num_sets)]
        self.stats = LevelStats(name)

    def set_index(self, line: int) -> int:
        """Set an address maps to (modulo, or XOR-folded when hashed)."""
        if self.hashed_index:
            n = self.num_sets
            folded = line ^ (line // n) ^ (line // (n * n))
            return folded % n
        return line % self.num_sets

    def lookup(self, line: int) -> bool:
        """Demand lookup.  Returns True on hit (and updates LRU order and
        the prefetch-usefulness counter); records a miss otherwise, without
        allocating — call :meth:`fill` to bring the line in."""
        s = self._sets[self.set_index(line)]
        if line in s:
            if s[line]:
                self.stats.prefetch_hits += 1
                s[line] = False
            s.move_to_end(line)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def contains(self, line: int) -> bool:
        """Presence check without touching LRU order or statistics."""
        return line in self._sets[self.set_index(line)]

    def fill(self, line: int, *, prefetched: bool = False) -> Optional[int]:
        """Insert a line; returns the evicted line address, if any.

        ``prefetched`` marks the line as brought in by a prefetch engine so
        that a later demand hit is credited to the prefetcher.
        """
        s = self._sets[self.set_index(line)]
        if line in s:
            # Refill of a resident line: a demand fill clears the prefetch
            # flag; a prefetch fill never downgrades a demand-fetched line.
            if not prefetched:
                s[line] = False
            s.move_to_end(line)
            return None
        s[line] = prefetched
        if prefetched:
            self.stats.prefetches_issued += 1
        if len(s) > self.ways:
            victim, victim_was_prefetch = s.popitem(last=False)
            self.stats.evictions += 1
            if prefetched:
                self.stats.prefetch_evictions += 1
            return victim
        return None

    def invalidate(self, line: int) -> bool:
        """Drop a line if present (used by non-temporal stores)."""
        s = self._sets[self.set_index(line)]
        if line in s:
            del s[line]
            return True
        return False

    def occupancy(self) -> int:
        """Total resident lines (for tests and diagnostics)."""
        return sum(len(s) for s in self._sets)

    def resident_lines(self) -> Tuple[int, ...]:
        """All resident line addresses (diagnostics; order unspecified)."""
        out = []
        for s in self._sets:
            out.extend(s.keys())
        return tuple(out)

    def flush(self) -> None:
        """Empty the cache, keeping statistics."""
        for s in self._sets:
            s.clear()

    def __repr__(self) -> str:
        return (
            f"SetAssocCache({self.name}, sets={self.num_sets}, "
            f"ways={self.ways}, resident={self.occupancy()})"
        )
