"""The multi-level cache hierarchy with prefetchers and NT stores.

``CacheHierarchy`` glues the pieces together:

* demand accesses probe L1 -> L2 -> (L3) -> memory and fill every missed
  level on the way back (inclusive fills, LRU replacement);
* every demand access triggers the streaming (next-line) prefetchers at L1
  and L2 and trains the per-stream stride prefetcher, whose fills land in
  L2 (and L3 when present) — matching the paper's description of Intel's
  prefetchers;
* non-temporal stores bypass all levels (invalidating stale copies) and
  are counted as direct DRAM line transactions;
* ordinary stores are write-allocate (an RFO fetch) and contribute an
  eventual write-back per allocated line.

The hierarchy is *line-granular* and single-threaded; multi-core effects
are applied by :mod:`repro.sim.machine` through capacity/associativity
scaling, the same modelling device the paper itself uses
(``Liway / Nthreads``).

This class is the simulator's innermost loop, so the demand path is written
against pre-bound set arrays rather than through the generic
:class:`~repro.cachesim.cache.SetAssocCache` API (which remains the
reference implementation and is used by the unit tests to cross-check
behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.arch import ArchSpec
from repro.cachesim.cache import SetAssocCache
from repro.cachesim.prefetch import (
    MultiStreamPrefetcher,
    NextLinePrefetcher,
    StreamModelParams,
    StridePrefetcher,
)
from repro.cachesim.stats import HierarchyStats


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one demand access: the level that served it (1..3, or 4
    for DRAM), whether that line had been prefetched there, and — under
    the multi-stream detector model — whether the prefetch was still in
    flight when the demand arrived (a *late* prefetch hit, which still
    pays part of the memory latency)."""

    hit_level: int
    prefetch_credit: bool
    late: bool = False


class CacheHierarchy:
    """L1/L2(/L3) + DRAM with streaming and stride prefetchers.

    Parameters
    ----------
    arch:
        Platform description (cache geometry, prefetch degree/distance).
    l1_ways_divisor / l2_ways_divisor:
        Divide that level's associativity to model cache sharing by
        co-running threads (SMT siblings on Intel's private L1/L2, all
        cores on the ARM A15's shared L2) — the paper's effective
        associativity device.
    l3_capacity_divisor:
        Divide the L3 capacity to model sharing across cores.
    enable_prefetch:
        Master switch; disabling yields the prefetch-blind machine used by
        the ablation experiments.
    stream_model:
        Optional :class:`~repro.cachesim.prefetch.StreamModelParams`.
        When set, the legacy next-line + per-``ref_id`` stride engines are
        replaced by the bounded :class:`MultiStreamPrefetcher` (fixed
        engine pool, LRU eviction, in-flight prefetch latency) and demand
        hits on still-in-flight lines are flagged *late*.  ``None`` (the
        default) keeps the legacy model bit-for-bit — every committed
        baseline and golden trace runs with ``None``.
    """

    def __init__(
        self,
        arch: ArchSpec,
        *,
        l1_ways_divisor: int = 1,
        l2_ways_divisor: int = 1,
        l3_capacity_divisor: int = 1,
        enable_prefetch: bool = True,
        stream_model: Optional[StreamModelParams] = None,
    ) -> None:
        if min(l1_ways_divisor, l2_ways_divisor, l3_capacity_divisor) < 1:
            raise ValueError("divisors must be >= 1")
        self.arch = arch
        self.line_size = arch.l1.line_size
        self.enable_prefetch = enable_prefetch

        ways_divisors = {1: l1_ways_divisor, 2: l2_ways_divisor}
        self.levels: List[SetAssocCache] = []
        for idx, spec in enumerate(arch.levels, start=1):
            ways = max(1, spec.ways // ways_divisors.get(idx, 1))
            num_sets = spec.num_sets
            if idx == 3 and l3_capacity_divisor > 1:
                num_sets = max(1, num_sets // l3_capacity_divisor)
            # Intel LLCs use hashed ("complex") set indexing; private L1/L2
            # are plain modulo.
            self.levels.append(
                SetAssocCache(f"L{idx}", num_sets, ways, hashed_index=(idx == 3))
            )
        self.num_levels = len(self.levels)

        self.l1_stream = NextLinePrefetcher(degree=1)
        self.l2_stream = NextLinePrefetcher(degree=1)
        self.l2_stride = StridePrefetcher(
            degree=arch.l2_prefetches_per_access,
            max_distance=arch.l2_max_prefetch_distance,
        )
        self.stream_model = stream_model
        self._multi: Optional[MultiStreamPrefetcher] = None
        # line -> simulated arrival time of its outstanding prefetch.
        self._inflight: dict = {}
        self.stats = HierarchyStats(levels=[c.stats for c in self.levels])
        self.stats.stream_tables["l2_stride"] = self.l2_stride.stats
        if stream_model is not None:
            self._multi = MultiStreamPrefetcher(stream_model)
            self.stats.stream_tables["multi_stream"] = self._multi.stats
        # Lines written at least once: each eventually costs one write-back
        # line on the DRAM bus (streaming kernels write each line once;
        # accumulations coalesce in cache, also once).
        self._dirty = set()
        # Write-combining coalescing for non-temporal stores.
        self._last_nt_line = None

        # Hot-path bindings.
        self._sets = [c._sets for c in self.levels]
        self._nsets = [c.num_sets for c in self.levels]
        self._hashed = [c.hashed_index for c in self.levels]
        self._ways = [c.ways for c in self.levels]
        self._lstats = [c.stats for c in self.levels]

    # ------------------------------------------------------------------

    def access(
        self, line: int, *, is_write: bool = False, ref_id: int = 0
    ) -> AccessResult:
        """One demand access to a cache line; returns where it hit."""
        stats = self.stats
        stats.total_accesses += 1
        hit_level = 0
        prefetch_credit = False
        late = False
        multi = self._multi
        sets = self._sets
        n = self.num_levels
        for idx in range(n):
            nsets = self._nsets[idx]
            if self._hashed[idx]:
                set_ix = (line ^ (line // nsets) ^ (line // (nsets * nsets))) % nsets
            else:
                set_ix = line % nsets
            s = sets[idx][set_ix]
            lstat = self._lstats[idx]
            if line in s:
                if s[line]:
                    lstat.prefetch_hits += 1
                    s[line] = False
                    prefetch_credit = True
                s.move_to_end(line)
                lstat.hits += 1
                hit_level = idx + 1
                break
            lstat.misses += 1
        if hit_level == 0:
            hit_level = n + 1
            stats.memory_lines += 1
        if multi is not None and line in self._inflight:
            arrival = self._inflight.pop(line)
            if prefetch_credit:
                if arrival > multi._clock:
                    late = True
                    stats.late_prefetch_hits += 1
                    multi.stats.late_hits += 1
                else:
                    multi.stats.on_time_hits += 1
        if is_write and line not in self._dirty:
            # Write-allocate: the dirty line eventually goes back out,
            # whether the allocation came from a demand miss or a prefetch.
            self._dirty.add(line)
            stats.writeback_lines += 1
        # Fill the levels that missed (inclusive), nearest last.
        for idx in range(hit_level - 2, -1, -1):
            self._fill(idx, line, False)
        if self.enable_prefetch:
            if multi is not None:
                targets, arrival = multi.observe(ref_id, line)
                for target in targets:
                    if target >= 0 and not self._contains(1, target):
                        self._prefetch_fill(target, into_level=2)
                        self._inflight[target] = arrival
            else:
                self._prefetch_after(line, ref_id)
        return AccessResult(hit_level, prefetch_credit, late)

    def _fill(self, idx: int, line: int, prefetched: bool) -> None:
        """Insert ``line`` into level ``idx`` (0-based); evict LRU."""
        s = self._sets[idx][self.levels[idx].set_index(line)]
        if line in s:
            if not prefetched:
                s[line] = False
            s.move_to_end(line)
            return
        s[line] = prefetched
        lstat = self._lstats[idx]
        if prefetched:
            lstat.prefetches_issued += 1
        if len(s) > self._ways[idx]:
            s.popitem(last=False)
            lstat.evictions += 1
            if prefetched:
                lstat.prefetch_evictions += 1

    def nt_store(self, line: int) -> None:
        """A non-temporal store: bypass caches, invalidate stale copies.

        Consecutive stores to the same line coalesce in the core's
        write-combining buffers and cost a single DRAM line transaction —
        the mechanism that makes ``movntps`` streams efficient.
        """
        self.stats.total_accesses += 1
        if line == self._last_nt_line:
            return
        self._last_nt_line = line
        self.stats.nt_store_lines += 1
        for cache in self.levels:
            cache.invalidate(line)

    # ------------------------------------------------------------------

    def _contains(self, idx: int, line: int) -> bool:
        return line in self._sets[idx][self.levels[idx].set_index(line)]

    def _prefetch_after(self, line: int, ref_id: int) -> None:
        nxt = line + 1
        # Streaming next-line engines: the L1 engine pulls the line through
        # the hierarchy (filling L2/L3 on the way); when the line already
        # sits in L1, the independent L2 engine may still need to fill L2.
        if not self._contains(0, nxt):
            self._prefetch_fill(nxt, into_level=1)
        elif self.num_levels >= 2 and not self._contains(1, nxt):
            self._prefetch_fill(nxt, into_level=2)
        # Stride engine fills L2 and L3.
        for target in self.l2_stride.observe(ref_id, line):
            if target >= 0 and not self._contains(1, target):
                self._prefetch_fill(target, into_level=2)

    def _prefetch_fill(self, line: int, *, into_level: int) -> None:
        """Insert a prefetched line into ``into_level`` and every missing
        level farther from the core."""
        if line < 0:
            return
        # Where does the prefetch get the data from?
        source = self.num_levels + 1
        for idx in range(into_level, self.num_levels):
            if self._contains(idx, line):
                source = idx + 1
                break
        if source > self.num_levels:
            self.stats.prefetch_memory_lines += 1
        # Fill from the outermost missing level inward, down to the target.
        for level_no in range(min(source - 1, self.num_levels), into_level - 1, -1):
            self._fill(level_no - 1, line, True)

    # ------------------------------------------------------------------

    def flush(self) -> None:
        """Empty all levels and reset prefetcher training (not statistics)."""
        for cache in self.levels:
            cache.flush()
        self.l2_stride.reset()
        if self._multi is not None:
            self._multi.reset()
        self._inflight.clear()

    def summary(self) -> str:
        return self.stats.summary()
