"""Statistics containers for the cache simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class LevelStats:
    """Counters for one cache level.

    ``prefetch_hits`` counts demand accesses that hit a line brought in by a
    prefetcher (the prefetch was *useful*); ``prefetches_issued`` counts
    lines the prefetch engines inserted; ``prefetch_evictions`` counts
    evictions caused by prefetch fills (cache pollution — the phenomenon
    non-temporal stores exist to reduce).
    """

    name: str
    hits: int = 0
    misses: int = 0
    prefetch_hits: int = 0
    prefetches_issued: int = 0
    prefetch_evictions: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0

    def snapshot(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "prefetch_hits": self.prefetch_hits,
            "prefetches_issued": self.prefetches_issued,
            "prefetch_evictions": self.prefetch_evictions,
            "evictions": self.evictions,
        }

    def __repr__(self) -> str:
        return (
            f"LevelStats({self.name}: {self.hits} hits, {self.misses} misses, "
            f"{self.prefetch_hits} pf-hits)"
        )


@dataclass
class HierarchyStats:
    """Aggregated counters across the whole hierarchy plus memory.

    ``stream_tables`` maps a prefetch-engine name (``"l2_stride"`` for the
    bounded per-``ref_id`` stride table; ``"multi_stream"`` when the
    multi-stream detector model is active) to its live
    :class:`~repro.cachesim.prefetch.StreamTableStats` — occupancy,
    peak occupancy and deterministic-LRU eviction counts.
    ``late_prefetch_hits`` counts demand hits that arrived before their
    prefetch did (multi-stream model only; always 0 under the legacy
    prefetcher model).
    """

    levels: List[LevelStats] = field(default_factory=list)
    memory_lines: int = 0          # demand lines fetched from DRAM
    prefetch_memory_lines: int = 0  # prefetched lines fetched from DRAM
    nt_store_lines: int = 0        # non-temporal store line transactions
    writeback_lines: int = 0       # dirty lines written back to DRAM
    total_accesses: int = 0
    late_prefetch_hits: int = 0
    stream_tables: Dict[str, object] = field(default_factory=dict)

    def level(self, index: int) -> LevelStats:
        """1-based level lookup (level 1 = L1)."""
        return self.levels[index - 1]

    @property
    def dram_lines_total(self) -> int:
        """All DRAM line transfers: demand + prefetch + NT stores +
        write-backs (the bandwidth roofline input)."""
        return (
            self.memory_lines
            + self.prefetch_memory_lines
            + self.nt_store_lines
            + self.writeback_lines
        )

    def summary(self) -> str:
        parts = [
            f"{s.name}: {s.hits}h/{s.misses}m (pf-hits {s.prefetch_hits})"
            for s in self.levels
        ]
        parts.append(
            f"DRAM: {self.memory_lines} demand + "
            f"{self.prefetch_memory_lines} prefetch lines, "
            f"{self.nt_store_lines} NT-store lines, "
            f"{self.writeback_lines} writebacks"
        )
        return "; ".join(parts)
