"""Hardware prefetch engines.

Two engines, matching the two mechanisms the paper's model reasons about
(Sec. 3.2):

* :class:`NextLinePrefetcher` — the *streaming* prefetcher present at L1 and
  L2: after every demand reference to line ``n`` it requests line ``n + 1``.
  This is the engine that makes a row of ``T`` contiguous elements cost one
  cold miss instead of ``T / lc`` (the paper's Eq. 2 -> Eq. 3 step).
* :class:`StridePrefetcher` — the *constant-stride* engine: it tracks the
  stride of each reference stream (per ``ref_id``, standing in for the
  program counter of the load) and, once the stride is confirmed, requests
  the next ``degree`` lines along the stride, bounded by a maximum distance
  (the paper's ``L2pref`` and ``L2maxpref``, ~20 lines on Intel).  This is
  the engine that lets tiled code with non-unit inter-tile strides still
  find its data in L2/L3 — the reason the paper weighs misses with the L2
  and L3 access times (Eq. 11) rather than the memory latency.
"""

from __future__ import annotations

from typing import Dict, List, Tuple


class NextLinePrefetcher:
    """Streaming (adjacent-line) prefetcher.

    Parameters
    ----------
    degree:
        Number of consecutive next lines requested per demand access.
    """

    __slots__ = ("degree",)

    def __init__(self, degree: int = 1) -> None:
        if degree < 0:
            raise ValueError(f"degree must be non-negative, got {degree}")
        self.degree = degree

    def requests(self, line: int) -> List[int]:
        """Lines to prefetch after a demand access to ``line``."""
        return [line + d for d in range(1, self.degree + 1)]


class _Stream:
    """Per-reference-stream state of the stride prefetcher."""

    __slots__ = ("last_line", "stride", "confidence")

    def __init__(self) -> None:
        self.last_line = None
        self.stride = 0
        self.confidence = 0


class StridePrefetcher:
    """Constant-stride prefetcher with per-stream training.

    A stream is identified by ``ref_id`` (one per array reference in the
    source statement, standing in for the load PC).  After two consecutive
    accesses with the same non-zero line stride the engine is *trained* and
    issues ``degree`` prefetches along the stride, each no farther than
    ``max_distance`` lines from the demand access.

    Zero-stride repeats (several accesses within one line) neither train
    nor reset the detector, mirroring real hardware that filters same-line
    accesses before the prefetch unit.
    """

    __slots__ = ("degree", "max_distance", "_streams", "train_threshold")

    def __init__(
        self, degree: int = 2, max_distance: int = 20, train_threshold: int = 2
    ) -> None:
        if degree < 0:
            raise ValueError(f"degree must be non-negative, got {degree}")
        if max_distance <= 0:
            raise ValueError(f"max_distance must be positive, got {max_distance}")
        self.degree = degree
        self.max_distance = max_distance
        self.train_threshold = train_threshold
        self._streams: Dict[int, _Stream] = {}

    def observe(self, ref_id: int, line: int) -> List[int]:
        """Record a demand access; return lines to prefetch (maybe empty)."""
        stream = self._streams.get(ref_id)
        if stream is None:
            stream = _Stream()
            self._streams[ref_id] = stream
        if stream.last_line is None:
            stream.last_line = line
            return []
        stride = line - stream.last_line
        if stride == 0:
            return []
        stream.last_line = line
        if stride == stream.stride:
            stream.confidence += 1
        else:
            stream.stride = stride
            stream.confidence = 1
        if stream.confidence < self.train_threshold:
            return []
        out: List[int] = []
        for d in range(1, self.degree + 1):
            target = line + stride * d
            if abs(target - line) > self.max_distance and abs(stride) > 1:
                break
            if abs(stride * d) > self.max_distance * 4:
                break
            out.append(target)
        return out

    def reset(self) -> None:
        """Forget all stream training state."""
        self._streams.clear()

    def stream_state(self, ref_id: int) -> Tuple[int, int]:
        """(stride, confidence) of a stream — diagnostics and tests."""
        stream = self._streams.get(ref_id)
        if stream is None:
            return (0, 0)
        return (stream.stride, stream.confidence)
