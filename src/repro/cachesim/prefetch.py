"""Hardware prefetch engines.

Three engines, matching the mechanisms the two reproduced papers reason
about:

* :class:`NextLinePrefetcher` — the *streaming* prefetcher present at L1 and
  L2: after every demand reference to line ``n`` it requests line ``n + 1``.
  This is the engine that makes a row of ``T`` contiguous elements cost one
  cold miss instead of ``T / lc`` (the paper's Eq. 2 -> Eq. 3 step).
* :class:`StridePrefetcher` — the *constant-stride* engine: it tracks the
  stride of each reference stream (per ``ref_id``, standing in for the
  program counter of the load) and, once the stride is confirmed, requests
  the next ``degree`` lines along the stride, bounded by a maximum distance
  (the paper's ``L2pref`` and ``L2maxpref``, ~20 lines on Intel).  This is
  the engine that lets tiled code with non-unit inter-tile strides still
  find its data in L2/L3 — the reason the paper weighs misses with the L2
  and L3 access times (Eq. 11) rather than the memory latency.
* :class:`MultiStreamPrefetcher` — the bounded multi-stream detector of the
  multi-striding model (Blom et al., "Multi-Strided Access Patterns to
  Boost Hardware Prefetching"): a fixed pool of stream engines, one per
  4 KiB page being streamed, with deterministic LRU eviction.  Engines
  train like the stride engine but are *rate-limited* (at most ``degree``
  issues per trigger, never past the page boundary) and every prefetch is
  *in flight* for ``latency_accesses`` demand accesses — a demand hit that
  arrives before its prefetch is a **late** prefetch hit and still pays
  part of the memory latency.  Splitting one access stream into K
  interleaved sub-streams multiplies the per-stream demand gap by K, which
  is exactly what turns late hits into on-time hits — the effect the
  ``multistride(loop, K)`` directive exists to exploit.

The stride and multi-stream tables share :class:`StreamTableStats`, the
occupancy/eviction counters :class:`repro.cachesim.stats.HierarchyStats`
surfaces under ``stream_tables``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class StreamTableStats:
    """Occupancy/eviction counters of one bounded stream table."""

    capacity: int = 0
    allocations: int = 0       # streams/engines ever allocated
    evictions: int = 0         # LRU evictions (table was full)
    peak_occupancy: int = 0    # high-water mark of live entries
    occupancy: int = 0         # live entries right now
    trained: int = 0           # entries that reached the train threshold
    prefetches_issued: int = 0
    late_hits: int = 0         # demand hits that beat the prefetch arrival
    on_time_hits: int = 0      # demand hits after the prefetch arrived

    def snapshot(self) -> Dict[str, int]:
        return {
            "capacity": self.capacity,
            "allocations": self.allocations,
            "evictions": self.evictions,
            "peak_occupancy": self.peak_occupancy,
            "occupancy": self.occupancy,
            "trained": self.trained,
            "prefetches_issued": self.prefetches_issued,
            "late_hits": self.late_hits,
            "on_time_hits": self.on_time_hits,
        }


class NextLinePrefetcher:
    """Streaming (adjacent-line) prefetcher.

    Parameters
    ----------
    degree:
        Number of consecutive next lines requested per demand access.
        A degree of 0 is legal and yields an engine that never requests
        anything (the disabled configuration of the ablations).
    """

    __slots__ = ("degree",)

    def __init__(self, degree: int = 1) -> None:
        if degree < 0:
            raise ValueError(f"degree must be non-negative, got {degree}")
        self.degree = degree

    def requests(self, line: int) -> List[int]:
        """Lines to prefetch after a demand access to ``line``."""
        return [line + d for d in range(1, self.degree + 1)]


class _Stream:
    """Per-reference-stream state of the stride prefetcher."""

    __slots__ = ("last_line", "stride", "confidence")

    def __init__(self) -> None:
        self.last_line = None
        self.stride = 0
        self.confidence = 0


class StridePrefetcher:
    """Constant-stride prefetcher with per-stream training.

    A stream is identified by ``ref_id`` (one per array reference in the
    source statement, standing in for the load PC).  After two consecutive
    accesses with the same non-zero line stride the engine is *trained* and
    issues ``degree`` prefetches along the stride, each no farther than
    ``max_distance`` lines from the demand access.

    Zero-stride repeats (several accesses within one line) neither train
    nor reset the detector, mirroring real hardware that filters same-line
    accesses before the prefetch unit.

    The stream table is *bounded*: at most ``max_streams`` entries live at
    once, evicted in deterministic least-recently-used order (hardware
    stride tables hold a few dozen entries, not one per static load ever
    seen).  The default is far above any single nest's reference count, so
    bounding never changes existing single-nest simulations; occupancy and
    evictions are surfaced through :attr:`stats`.
    """

    __slots__ = (
        "degree", "max_distance", "max_streams", "_streams",
        "train_threshold", "stats",
    )

    def __init__(
        self,
        degree: int = 2,
        max_distance: int = 20,
        train_threshold: int = 2,
        max_streams: int = 64,
    ) -> None:
        if degree < 0:
            raise ValueError(f"degree must be non-negative, got {degree}")
        if max_distance <= 0:
            raise ValueError(f"max_distance must be positive, got {max_distance}")
        if max_streams <= 0:
            raise ValueError(f"max_streams must be positive, got {max_streams}")
        self.degree = degree
        self.max_distance = max_distance
        self.train_threshold = train_threshold
        self.max_streams = max_streams
        self._streams: "OrderedDict[int, _Stream]" = OrderedDict()
        self.stats = StreamTableStats(capacity=max_streams)

    def _stream_for(self, ref_id: int) -> _Stream:
        stream = self._streams.get(ref_id)
        if stream is not None:
            self._streams.move_to_end(ref_id)
            return stream
        stream = _Stream()
        if len(self._streams) >= self.max_streams:
            self._streams.popitem(last=False)
            self.stats.evictions += 1
        self._streams[ref_id] = stream
        self.stats.allocations += 1
        self.stats.occupancy = len(self._streams)
        if self.stats.occupancy > self.stats.peak_occupancy:
            self.stats.peak_occupancy = self.stats.occupancy
        return stream

    def observe(self, ref_id: int, line: int) -> List[int]:
        """Record a demand access; return lines to prefetch (maybe empty)."""
        stream = self._stream_for(ref_id)
        if stream.last_line is None:
            stream.last_line = line
            return []
        stride = line - stream.last_line
        if stride == 0:
            return []
        stream.last_line = line
        if stride == stream.stride:
            stream.confidence += 1
        else:
            stream.stride = stride
            stream.confidence = 1
        if stream.confidence < self.train_threshold:
            return []
        if stream.confidence == self.train_threshold:
            self.stats.trained += 1
        out: List[int] = []
        for d in range(1, self.degree + 1):
            target = line + stride * d
            if abs(target - line) > self.max_distance and abs(stride) > 1:
                break
            if abs(stride * d) > self.max_distance * 4:
                break
            out.append(target)
        self.stats.prefetches_issued += len(out)
        return out

    def reset(self) -> None:
        """Forget all stream training state (statistics are kept)."""
        self._streams.clear()
        self.stats.occupancy = 0

    def stream_state(self, ref_id: int) -> Tuple[int, int]:
        """(stride, confidence) of a stream — diagnostics and tests."""
        stream = self._streams.get(ref_id)
        if stream is None:
            return (0, 0)
        return (stream.stride, stream.confidence)


# ---------------------------------------------------------------------------
# The bounded multi-stream detector (multi-striding model)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StreamModelParams:
    """Constants of the bounded multi-stream detector model.

    The defaults model an Intel-style L2 streamer: a small pool of stream
    engines tracking one 4 KiB page each, rate-limited issue, bounded
    run-ahead, and a prefetch pipeline whose latency — measured in demand
    accesses, the simulator's clock — exceeds what a *single* stream's
    run-ahead can hide.  That gap is the multi-striding opportunity.

    Attributes
    ----------
    n_engines:
        Concurrent stream engines (table capacity, LRU-evicted).
    train_threshold:
        Consecutive same-stride accesses before an engine issues.
    degree:
        Prefetch issues per trigger (the rate limit).
    max_distance:
        Run-ahead cap in lines (the paper's ``L2maxpref``).
    page_lines:
        Lines per tracked region (4 KiB page / 64 B line = 64); engines
        never prefetch past their page boundary and a stream entering a
        new page must retrain a fresh engine, as on real hardware.
    latency_accesses:
        Demand accesses a prefetch stays in flight; a demand hit earlier
        than that is *late* and still stalls.  The default is chosen
        against ``max_distance``: a single vectorized stream touches a
        new line every ~4 accesses, so its run-ahead hides at most
        ``20 * 4 = 80`` accesses — short of the pipeline's 160.  Four
        interleaved sub-streams quadruple the per-stream gap and clear
        it.  That asymmetry *is* the multi-striding opportunity.
    """

    n_engines: int = 8
    train_threshold: int = 2
    degree: int = 2
    max_distance: int = 20
    page_lines: int = 64
    latency_accesses: int = 160

    def __post_init__(self) -> None:
        if self.n_engines <= 0:
            raise ValueError(f"n_engines must be positive, got {self.n_engines}")
        if self.degree < 0:
            raise ValueError(f"degree must be non-negative, got {self.degree}")
        if self.max_distance <= 0:
            raise ValueError(
                f"max_distance must be positive, got {self.max_distance}"
            )
        if self.page_lines <= 0:
            raise ValueError(
                f"page_lines must be positive, got {self.page_lines}"
            )
        if self.latency_accesses < 0:
            raise ValueError(
                f"latency_accesses must be non-negative, "
                f"got {self.latency_accesses}"
            )


class _Engine:
    """One stream engine: tracks a single page's access stream."""

    __slots__ = ("page", "last_line", "stride", "confidence", "issued_until")

    def __init__(self, page: int, line: int) -> None:
        self.page = page
        self.last_line = line
        self.stride = 0
        self.confidence = 0
        # Highest line already requested along the stride (run-ahead
        # frontier); meaningful only once trained.
        self.issued_until = line


class MultiStreamPrefetcher:
    """Bounded multi-stream detector with deterministic LRU eviction.

    Engines are keyed by 4 KiB page, allocated on first touch and evicted
    least-recently-used when the pool of ``n_engines`` is full.  A trained
    engine issues at most ``degree`` prefetches per trigger, keeps its
    run-ahead within ``max_distance`` lines and never crosses its page.

    :meth:`observe` returns ``(targets, arrival)`` where ``arrival`` is the
    access-count timestamp at which the issued lines stop being in flight;
    the hierarchy uses it to classify later demand hits as late/on-time.
    """

    __slots__ = ("params", "_engines", "stats", "_clock")

    def __init__(self, params: Optional[StreamModelParams] = None) -> None:
        self.params = params or StreamModelParams()
        # page -> _Engine, LRU order (first = coldest).
        self._engines: "OrderedDict[int, _Engine]" = OrderedDict()
        self.stats = StreamTableStats(capacity=self.params.n_engines)
        self._clock = 0

    @property
    def occupancy(self) -> int:
        return len(self._engines)

    def observe(self, ref_id: int, line: int) -> Tuple[List[int], int]:
        """Record a demand access at the next clock tick.

        Returns ``(targets, arrival_clock)``: the lines to prefetch (maybe
        empty) and the clock at which they arrive.
        """
        p = self.params
        self._clock += 1
        page = line // p.page_lines
        engine = self._engines.get(page)
        if engine is None:
            engine = _Engine(page, line)
            if len(self._engines) >= p.n_engines:
                self._engines.popitem(last=False)
                self.stats.evictions += 1
            self._engines[page] = engine
            self.stats.allocations += 1
            self.stats.occupancy = len(self._engines)
            if self.stats.occupancy > self.stats.peak_occupancy:
                self.stats.peak_occupancy = self.stats.occupancy
            return [], self._clock
        self._engines.move_to_end(page)
        stride = line - engine.last_line
        if stride == 0:
            return [], self._clock
        engine.last_line = line
        if stride == engine.stride:
            engine.confidence += 1
        else:
            engine.stride = stride
            engine.confidence = 1
            engine.issued_until = line
        if engine.confidence < p.train_threshold:
            return [], self._clock
        if engine.confidence == p.train_threshold:
            self.stats.trained += 1
            engine.issued_until = line
        # Rate-limited issue along the stride: at most ``degree`` new lines,
        # within the run-ahead window, never past the page boundary.
        targets: List[int] = []
        page_lo = page * p.page_lines
        page_hi = page_lo + p.page_lines - 1
        step = engine.stride
        frontier = engine.issued_until
        for _ in range(p.degree):
            nxt = frontier + step
            if nxt < page_lo or nxt > page_hi:
                break
            if abs(nxt - line) > p.max_distance:
                break
            targets.append(nxt)
            frontier = nxt
        engine.issued_until = frontier
        self.stats.prefetches_issued += len(targets)
        return targets, self._clock + p.latency_accesses

    def reset(self) -> None:
        """Forget all engines and the clock (statistics are kept)."""
        self._engines.clear()
        self.stats.occupancy = 0
        self._clock = 0
