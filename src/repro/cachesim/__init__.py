"""Trace-driven cache-hierarchy simulator with hardware prefetchers.

This package is the reproduction's stand-in for the silicon of the paper's
three evaluation platforms.  It models the mechanisms the paper's analytical
model reasons about:

* set-associative, LRU caches at up to three levels
  (:mod:`repro.cachesim.cache`),
* a next-line *streaming* prefetcher at L1 and L2 and a *constant-stride*
  prefetcher that fills the outer levels (:mod:`repro.cachesim.prefetch`),
* non-temporal stores that bypass the hierarchy
  (:mod:`repro.cachesim.hierarchy`),
* per-level hit/miss/prefetch statistics (:mod:`repro.cachesim.stats`).

Addresses are **cache-line granular**: the trace generator already collapses
element accesses onto lines, so one simulated access is one line touch.
"""

from repro.cachesim.cache import SetAssocCache
from repro.cachesim.prefetch import (
    MultiStreamPrefetcher,
    NextLinePrefetcher,
    StreamModelParams,
    StreamTableStats,
    StridePrefetcher,
)
from repro.cachesim.hierarchy import CacheHierarchy, AccessResult
from repro.cachesim.stats import LevelStats, HierarchyStats

__all__ = [
    "SetAssocCache",
    "MultiStreamPrefetcher",
    "NextLinePrefetcher",
    "StreamModelParams",
    "StreamTableStats",
    "StridePrefetcher",
    "CacheHierarchy",
    "AccessResult",
    "LevelStats",
    "HierarchyStats",
]
